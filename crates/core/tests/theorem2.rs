//! Deterministic property checks for Theorem 2: the batch scheduling
//! problem is a weighted set cover, and the WSC scheduler's behaviour is
//! governed by the cover it computes. Cases are pseudo-randomly generated
//! with the simulator's seeded RNG, so every run exercises the identical
//! instances.

use spindown_core::cost::{energy_cost_j, CostFunction, DiskStatus};
use spindown_core::model::{DataId, DiskId, Request};
use spindown_core::sched::{
    ExplicitPlacement, LocationProvider, Scheduler, SystemView, WscScheduler,
};
use spindown_disk::power::PowerParams;
use spindown_disk::state::DiskPowerState;
use spindown_graph::setcover::{harmonic, SetCoverInstance, DEFAULT_ELEMENT_LIMIT};
use spindown_sim::rng::SimRng;
use spindown_sim::time::{SimDuration, SimTime};

const DISKS: u32 = 5;

/// A random batch: up to 10 queued requests over 5 disks, each request
/// replicated on 1–3 distinct disks, with random disk statuses.
fn random_batch(rng: &mut SimRng) -> (Vec<Request>, ExplicitPlacement, Vec<DiskStatus>) {
    let n = 1 + rng.index(10);
    let mut locations = Vec::new();
    let mut requests = Vec::new();
    for i in 0..n {
        let copies = 1 + rng.index(3);
        let mut locs: Vec<DiskId> = Vec::new();
        while locs.len() < copies {
            let d = DiskId(rng.next_below(DISKS as u64) as u32);
            if !locs.contains(&d) {
                locs.push(d);
            }
        }
        locs.sort_unstable_by_key(|d| d.0);
        locations.push(locs);
        requests.push(Request {
            index: i as u32,
            at: SimTime::from_secs(100),
            data: DataId(i as u64),
            size: 4096,
        });
    }
    let statuses: Vec<DiskStatus> = (0..DISKS)
        .map(|_| DiskStatus {
            state: match rng.index(4) {
                0 => DiskPowerState::Standby,
                1 => DiskPowerState::Idle,
                2 => DiskPowerState::Active,
                _ => DiskPowerState::SpinningUp,
            },
            last_request_at: Some(SimTime::from_secs(90)),
            load: rng.index(5),
        })
        .collect();
    (requests, ExplicitPlacement::new(locations, DISKS), statuses)
}

/// Builds the Theorem-2 set-cover instance for a batch under pure Eq. 5
/// weights.
fn cover_instance(
    requests: &[Request],
    placement: &ExplicitPlacement,
    statuses: &[DiskStatus],
    params: &PowerParams,
    now: SimTime,
) -> SetCoverInstance {
    let mut inst = SetCoverInstance::new(requests.len());
    for d in 0..placement.disks() {
        let disk = DiskId(d);
        let covered = requests.iter().enumerate().filter_map(|(i, r)| {
            placement
                .locations(r.data)
                .contains(&disk)
                .then_some(i as u32)
        });
        inst.add_set(energy_cost_j(&statuses[d as usize], now, params), covered);
    }
    inst
}

/// The greedy cover behind the batch scheduler stays within H_n of the
/// exact minimum-weight cover (Theorem 2 + the classical bound).
#[test]
fn batch_cover_is_within_harmonic_of_optimal() {
    let mut rng = SimRng::seed_from_u64(0x7e02e1);
    for _ in 0..64 {
        let (requests, placement, statuses) = random_batch(&mut rng);
        let params = PowerParams::barracuda();
        let now = SimTime::from_secs(100);
        let inst = cover_instance(&requests, &placement, &statuses, &params, now);
        let greedy = inst.solve_greedy().expect("coverable by construction");
        let exact = inst.solve_exact(DEFAULT_ELEMENT_LIMIT).expect("coverable");
        assert!(inst.is_cover(&greedy.sets));
        assert!(exact.weight <= greedy.weight + 1e-9);
        assert!(
            greedy.weight <= harmonic(requests.len()) * exact.weight + 1e-9,
            "greedy {} vs Hn * exact {}",
            greedy.weight,
            harmonic(requests.len()) * exact.weight
        );
    }
}

/// The WSC scheduler's marginal energy never exceeds what dispatching
/// each request independently to its cheapest location would cost
/// (covering amortizes wake-ups, it never adds them), and its choices
/// are always valid replicas.
#[test]
fn wsc_scheduler_is_no_worse_than_independent_dispatch() {
    let mut rng = SimRng::seed_from_u64(0x7e02e2);
    for _ in 0..64 {
        let (requests, placement, statuses) = random_batch(&mut rng);
        let params = PowerParams::barracuda();
        let now = SimTime::from_secs(100);
        let view = SystemView {
            now,
            params: &params,
            placement: &placement,
            statuses: &statuses,
        };
        let mut sched =
            WscScheduler::new(CostFunction::energy_only(), SimDuration::from_millis(100));
        let picks = sched.assign(&requests, &view);
        assert_eq!(picks.len(), requests.len());

        // Validity.
        for (r, d) in requests.iter().zip(&picks) {
            assert!(placement.locations(r.data).contains(d));
        }

        // Energy of the batch = sum of Eq. 5 weights over *distinct* disks
        // used (each disk pays its marginal cost once per batch).
        let batch_cost = |choices: &[DiskId]| -> f64 {
            let mut used: Vec<DiskId> = choices.to_vec();
            used.sort_unstable();
            used.dedup();
            used.iter()
                .map(|d| energy_cost_j(&statuses[d.index()], now, &params))
                .sum()
        };
        let wsc_cost = batch_cost(&picks);
        let independent: Vec<DiskId> = requests
            .iter()
            .map(|r| {
                *placement
                    .locations(r.data)
                    .iter()
                    .min_by(|a, b| {
                        energy_cost_j(&statuses[a.index()], now, &params)
                            .partial_cmp(&energy_cost_j(&statuses[b.index()], now, &params))
                            .unwrap()
                    })
                    .unwrap()
            })
            .collect();
        let independent_cost = batch_cost(&independent);
        // Greedy set cover is within H_n of optimal, and the independent
        // dispatch is one particular cover, so:
        assert!(
            wsc_cost <= harmonic(requests.len()) * independent_cost + 1e-9,
            "wsc {} vs Hn * independent {}",
            wsc_cost,
            independent_cost
        );
    }
}
