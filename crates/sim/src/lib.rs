//! # spindown-sim
//!
//! Deterministic discrete-event-simulation kernel for the `spindown`
//! workspace — the substrate that replaces OMNeT++ in the reproduction of
//! *"Exploiting Replication for Energy-Aware Scheduling in Disk Storage
//! Systems"* (Chou, Kim, Rotem — ICDCS 2011).
//!
//! The crate provides four building blocks:
//!
//! * [`time`] — integer-microsecond [`time::SimTime`] / [`time::SimDuration`]
//!   clock types (no float drift, total ordering),
//! * [`event`] — a stable-FIFO [`event::EventQueue`],
//! * [`rng`] — a self-contained xoshiro256\*\* PRNG plus the distributions
//!   the workload generators need (exponential, Pareto, log-normal, Zipf,
//!   alias tables),
//! * [`stats`] — streaming statistics: Welford accumulators, a log-bucketed
//!   latency histogram (paper Fig. 12/13), and per-state time accounting
//!   (paper Fig. 9/17),
//! * [`pool`] — a deterministic scoped-thread worker pool
//!   ([`pool::map_indexed`], [`pool::Parallelism`]) shared by every
//!   parallel substrate in the workspace.
//!
//! The simulation kernel itself is single-threaded by design: event-order
//! determinism is what makes the paper's figures exactly reproducible.
//! Parallelism lives strictly *around* it — independent grid cells,
//! sharded conflict-graph enumeration, per-disk offline evaluation — and
//! the pool's index-addressed result slots keep every parallel output
//! bit-identical to the serial one.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod pool;
pub mod rng;
pub mod stats;
pub mod time;

pub use event::{EventQueue, Scheduled};
pub use pool::Parallelism;
pub use rng::{AliasTable, SimRng, Zipf};
pub use stats::{LatencyHistogram, OnlineStats, StateTimer};
pub use time::{SimDuration, SimTime};
