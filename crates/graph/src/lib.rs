//! # spindown-graph
//!
//! Graph-algorithm substrate for the ICDCS 2011 reproduction: the two
//! NP-complete problems the paper reduces energy-aware scheduling to.
//!
//! * [`graph`] — node-weighted undirected [`graph::Graph`] (the `X(i,j,k)`
//!   conflict graph of paper §3.1), its bulk [`graph::GraphBuilder`], and
//!   the [`graph::GraphView`] read trait the solvers are generic over.
//! * [`csr`] — the frozen [`csr::CsrGraph`] compressed-sparse-row layout:
//!   flat offset/neighbor arrays with sorted adjacency, the fast backend
//!   for build-once-solve-many graphs.
//! * [`delta`] — the [`delta::DeltaGraph`] mutation overlay over a frozen
//!   CSR base: tombstoned retirements + appended arrivals with
//!   copy-on-write patch lists, flattened back to flat CSR by
//!   [`delta::DeltaGraph::compact`] under a caller-chosen live order.
//!   The substrate of the rolling-horizon incremental re-planner.
//! * [`mwis`] — maximum-weight-independent-set solvers: the paper's GMIN
//!   greedy ([`mwis::gwmin`], Sakai et al. \[22\]), the stronger
//!   [`mwis::gwmin2`], a [`mwis::local_search`] improver, and an
//!   [`mwis::exact`] iterative bitset branch-and-bound oracle. All generic
//!   over [`graph::GraphView`]; [`mwis::baseline`] keeps the eager-heap
//!   reference cascade and the recursive exact solver as oracles and
//!   benchmark baselines.
//! * [`setcover`] — weighted set cover for the batch scheduler (§3.2):
//!   greedy `H_n`-approximation and an exact iterative bitset
//!   branch-and-bound oracle (recursive baseline retained).
//! * [`bitset`] — the word-packed `u64` bitset primitives both exact
//!   solvers build their alive/covered sets, mask tables, and undo arenas
//!   from.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitset;
pub mod csr;
pub mod delta;
pub mod graph;
pub mod mwis;
pub mod setcover;

pub use csr::CsrGraph;
pub use delta::DeltaGraph;
pub use graph::{Graph, GraphBuilder, GraphView, NodeId};
pub use setcover::{Cover, SetCoverInstance, WeightedSet};
