//! Undirected node-weighted graph.
//!
//! This is the data structure the offline scheduler's conflict graph is
//! built on (paper §3.1.2, Fig. 4): one node per candidate energy saving
//! `X(i,j,k)`, one edge per violated constraint pair.

/// Node identifier (dense, `0..n`).
pub type NodeId = u32;

/// An undirected graph with `f64` node weights and deduplicated adjacency
/// lists.
///
/// # Examples
///
/// ```
/// use spindown_graph::graph::Graph;
///
/// let mut g = Graph::new(3);
/// g.set_weight(0, 5.0);
/// g.add_edge(0, 1);
/// g.add_edge(1, 2);
/// assert_eq!(g.degree(1), 2);
/// assert!(g.has_edge(0, 1));
/// assert!(!g.has_edge(0, 2));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Graph {
    weights: Vec<f64>,
    adj: Vec<Vec<NodeId>>,
    edges: usize,
}

impl Graph {
    /// Creates a graph with `n` isolated nodes of weight 1.
    pub fn new(n: usize) -> Self {
        Graph {
            weights: vec![1.0; n],
            adj: vec![Vec::new(); n],
            edges: 0,
        }
    }

    /// Creates a graph from explicit node weights.
    pub fn with_weights(weights: Vec<f64>) -> Self {
        let n = weights.len();
        Graph {
            weights,
            adj: vec![Vec::new(); n],
            edges: 0,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// `true` if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Number of (undirected) edges.
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// Appends a new node with the given weight, returning its id.
    pub fn add_node(&mut self, weight: f64) -> NodeId {
        self.weights.push(weight);
        self.adj.push(Vec::new());
        (self.weights.len() - 1) as NodeId
    }

    /// Adds the undirected edge `{u, v}`. Self-loops and duplicate edges
    /// are ignored. Returns `true` if the edge was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        assert!(
            (u as usize) < self.len() && (v as usize) < self.len(),
            "edge endpoint out of range"
        );
        if u == v || self.has_edge(u, v) {
            return false;
        }
        self.adj[u as usize].push(v);
        self.adj[v as usize].push(u);
        self.edges += 1;
        true
    }

    /// `true` if the edge `{u, v}` exists.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        let (a, b) = if self.adj[u as usize].len() <= self.adj[v as usize].len() {
            (u, v)
        } else {
            (v, u)
        };
        self.adj[a as usize].contains(&b)
    }

    /// Weight of node `v`.
    pub fn weight(&self, v: NodeId) -> f64 {
        self.weights[v as usize]
    }

    /// Sets the weight of node `v`.
    pub fn set_weight(&mut self, v: NodeId, w: f64) {
        self.weights[v as usize] = w;
    }

    /// All node weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Neighbors of `v`.
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.adj[v as usize]
    }

    /// Degree of `v`.
    pub fn degree(&self, v: NodeId) -> usize {
        self.adj[v as usize].len()
    }

    /// Sum of all node weights.
    pub fn total_weight(&self) -> f64 {
        self.weights.iter().sum()
    }

    /// Sum of weights over `nodes`.
    pub fn set_weight_sum(&self, nodes: &[NodeId]) -> f64 {
        nodes.iter().map(|&v| self.weight(v)).sum()
    }

    /// `true` if `nodes` is an independent set (pairwise non-adjacent,
    /// no duplicates).
    pub fn is_independent_set(&self, nodes: &[NodeId]) -> bool {
        let mut mark = vec![false; self.len()];
        for &v in nodes {
            if (v as usize) >= self.len() || mark[v as usize] {
                return false;
            }
            mark[v as usize] = true;
        }
        for &v in nodes {
            if self.adj[v as usize].iter().any(|&u| mark[u as usize]) {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let mut g = Graph::new(4);
        assert_eq!(g.len(), 4);
        assert!(!g.is_empty());
        assert!(g.add_edge(0, 1));
        assert!(g.add_edge(1, 2));
        assert!(!g.add_edge(1, 0), "duplicate edge must be ignored");
        assert!(!g.add_edge(2, 2), "self-loop must be ignored");
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.degree(3), 0);
        assert!(g.has_edge(2, 1));
        assert!(!g.has_edge(0, 3));
    }

    #[test]
    fn weights() {
        let mut g = Graph::with_weights(vec![1.0, 2.0, 3.0]);
        assert_eq!(g.total_weight(), 6.0);
        g.set_weight(0, 10.0);
        assert_eq!(g.weight(0), 10.0);
        assert_eq!(g.set_weight_sum(&[0, 2]), 13.0);
    }

    #[test]
    fn add_node_extends() {
        let mut g = Graph::new(1);
        let v = g.add_node(7.0);
        assert_eq!(v, 1);
        assert_eq!(g.len(), 2);
        assert_eq!(g.weight(v), 7.0);
        g.add_edge(0, v);
        assert!(g.has_edge(0, 1));
    }

    #[test]
    fn independent_set_checks() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1);
        g.add_edge(2, 3);
        assert!(g.is_independent_set(&[]));
        assert!(g.is_independent_set(&[0, 2]));
        assert!(g.is_independent_set(&[1, 3]));
        assert!(!g.is_independent_set(&[0, 1]));
        assert!(!g.is_independent_set(&[0, 0]), "duplicates rejected");
        assert!(!g.is_independent_set(&[9]), "out of range rejected");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn edge_bounds_checked() {
        let mut g = Graph::new(2);
        g.add_edge(0, 5);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::new(0);
        assert!(g.is_empty());
        assert_eq!(g.total_weight(), 0.0);
        assert!(g.is_independent_set(&[]));
    }
}
