//! `LoadAware` baseline (extension): join-the-shortest-queue over the
//! replica locations, ignoring energy entirely.
//!
//! This is the classical latency-optimal dispatching rule and a sharper
//! performance baseline than `Random`: it shows how much response time is
//! attainable with replica freedom when energy is *not* a concern, which
//! brackets the cost of the heuristic's energy term from the other side
//! (the paper's α = 0 configuration approximates it through Eq. 6).

use crate::model::{DiskId, Request};
use crate::sched::{Scheduler, SystemView};

/// Join-the-shortest-queue scheduler. Among a request's replica
/// locations, picks the disk with the fewest pending requests; ties
/// prefer a ready (spinning) disk, then the lower id.
#[derive(Debug, Default, Clone)]
pub struct LoadAwareScheduler;

impl Scheduler for LoadAwareScheduler {
    fn name(&self) -> &'static str {
        "load-aware"
    }

    fn assign(&mut self, reqs: &[Request], view: &SystemView<'_>) -> Vec<DiskId> {
        let mut out = Vec::with_capacity(reqs.len());
        self.assign_into(reqs, view, &mut out);
        out
    }

    fn assign_into(&mut self, reqs: &[Request], view: &SystemView<'_>, out: &mut Vec<DiskId>) {
        out.clear();
        out.extend(reqs.iter().map(|r| {
            *view
                .locations(r.data)
                .iter()
                .min_by_key(|d| {
                    let s = view.status(**d);
                    // Ready disks can start immediately; sleeping disks
                    // add a spin-up to every queued request.
                    (s.load, !s.state.is_ready(), d.0)
                })
                .expect("every data item has at least one location")
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::DiskStatus;
    use crate::model::DataId;
    use crate::sched::ExplicitPlacement;
    use spindown_disk::power::PowerParams;
    use spindown_disk::state::DiskPowerState;
    use spindown_sim::time::SimTime;

    fn req(data: u64) -> Request {
        Request {
            index: 0,
            at: SimTime::ZERO,
            data: DataId(data),
            size: 4096,
        }
    }

    fn status(state: DiskPowerState, load: usize) -> DiskStatus {
        DiskStatus {
            state,
            last_request_at: None,
            load,
        }
    }

    #[test]
    fn picks_shortest_queue() {
        let placement = ExplicitPlacement::new(vec![vec![DiskId(0), DiskId(1)]], 2);
        let params = PowerParams::barracuda();
        let statuses = vec![
            status(DiskPowerState::Idle, 5),
            status(DiskPowerState::Idle, 1),
        ];
        let view = SystemView {
            now: SimTime::ZERO,
            params: &params,
            placement: &placement,
            statuses: &statuses,
        };
        let mut s = LoadAwareScheduler;
        assert_eq!(s.assign(&[req(0)], &view), vec![DiskId(1)]);
    }

    #[test]
    fn tie_prefers_spinning_disk_then_lower_id() {
        let placement = ExplicitPlacement::new(
            vec![vec![DiskId(0), DiskId(1)], vec![DiskId(2), DiskId(1)]],
            3,
        );
        let params = PowerParams::barracuda();
        let statuses = vec![
            status(DiskPowerState::Standby, 0),
            status(DiskPowerState::Idle, 0),
            status(DiskPowerState::Idle, 0),
        ];
        let view = SystemView {
            now: SimTime::ZERO,
            params: &params,
            placement: &placement,
            statuses: &statuses,
        };
        let mut s = LoadAwareScheduler;
        // Data 0: standby d0 vs idle d1, equal load -> idle d1 wins.
        assert_eq!(s.assign(&[req(0)], &view), vec![DiskId(1)]);
        // Data 1: both idle, equal load -> lower id d1 wins.
        assert_eq!(s.assign(&[req(1)], &view), vec![DiskId(1)]);
        assert_eq!(s.name(), "load-aware");
    }
}
