//! Weighted-set-cover solvers.
//!
//! The paper's batch scheduler (§3.2, Theorem 2) maps each scheduling
//! interval to a weighted set cover: elements are the queued requests, sets
//! are disks (weighted by the marginal energy of using them, Eq. 5), and
//! the chosen cover is where the requests go. The greedy
//! most-cost-effective-set rule used here is the classical `H_n`-factor
//! approximation the paper cites (§6); [`SetCoverInstance::solve_exact`]
//! is the optimality oracle for tests and ablations.

use crate::bitset;

/// Relative tolerance under which two greedy cost-effectiveness ratios
/// count as tied (see [`SetCoverInstance::solve_greedy`]).
const RATIO_TIE_TOL: f64 = 1e-12;

/// Default element budget for [`SetCoverInstance::solve_exact`] when
/// callers have no tighter requirement. The iterative bitset solver raised
/// this from the historical 64 (where the recursive solver's per-branch
/// bookkeeping and `universe`-deep recursion became prohibitive) to 128.
pub const DEFAULT_ELEMENT_LIMIT: usize = 128;

/// One candidate set: a weight and the elements it covers.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedSet {
    /// Cost of selecting this set (for the batch scheduler: Eq. 5 / Eq. 6
    /// marginal cost of the disk).
    pub weight: f64,
    /// Elements covered, as indices into `0..universe`.
    pub elements: Vec<u32>,
}

/// A weighted-set-cover instance over the universe `0..universe`.
#[derive(Debug, Clone, Default)]
pub struct SetCoverInstance {
    universe: usize,
    sets: Vec<WeightedSet>,
    clamped: usize,
}

/// A solution: which sets were selected and their combined weight.
#[derive(Debug, Clone, PartialEq)]
pub struct Cover {
    /// Indices of selected sets, ascending.
    pub sets: Vec<usize>,
    /// Sum of the selected sets' weights.
    pub weight: f64,
}

impl SetCoverInstance {
    /// Creates an instance over `universe` elements.
    pub fn new(universe: usize) -> Self {
        SetCoverInstance {
            universe,
            sets: Vec::new(),
            clamped: 0,
        }
    }

    /// Adds a candidate set; returns its index. Out-of-range elements and
    /// duplicates within a set are dropped. A negative or non-finite
    /// weight is a cost-function bug upstream — Eq. 5 marginal costs are
    /// finite and non-negative by construction — so debug builds assert on
    /// it; release builds clamp the weight to zero and count the event in
    /// [`clamped_weights`](Self::clamped_weights).
    pub fn add_set(&mut self, weight: f64, elements: impl IntoIterator<Item = u32>) -> usize {
        let mut elems: Vec<u32> = elements
            .into_iter()
            .filter(|&e| (e as usize) < self.universe)
            .collect();
        elems.sort_unstable();
        elems.dedup();
        let valid = weight.is_finite() && weight >= 0.0;
        debug_assert!(
            valid,
            "add_set: invalid weight {weight} (Eq. 5 marginal costs are finite and non-negative)"
        );
        if !valid {
            self.clamped += 1;
        }
        self.sets.push(WeightedSet {
            weight: if valid { weight } else { 0.0 },
            elements: elems,
        });
        self.sets.len() - 1
    }

    /// How many [`add_set`](Self::add_set) calls supplied a negative or
    /// non-finite weight and had it clamped to zero. Always zero in a
    /// healthy pipeline; a non-zero count in release builds flags the
    /// upstream cost-function bug that `debug_assert!` would have caught
    /// in a debug build.
    pub fn clamped_weights(&self) -> usize {
        self.clamped
    }

    /// Universe size.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Candidate sets.
    pub fn sets(&self) -> &[WeightedSet] {
        &self.sets
    }

    /// `true` if `cover` covers every element of the universe.
    pub fn is_cover(&self, cover: &[usize]) -> bool {
        let mut covered = vec![false; self.universe];
        for &s in cover {
            let Some(set) = self.sets.get(s) else {
                return false;
            };
            for &e in &set.elements {
                covered[e as usize] = true;
            }
        }
        covered.into_iter().all(|c| c)
    }

    fn weight_of(&self, cover: &[usize]) -> f64 {
        cover.iter().map(|&s| self.sets[s].weight).sum()
    }

    /// Greedy weighted set cover: repeatedly select the set minimizing
    /// `weight / newly covered` until everything is covered. Returns `None`
    /// if the universe is not coverable. `H_n`-approximate.
    ///
    /// Zero-weight sets have cost-effectiveness 0 and are always taken
    /// first — exactly the paper's behaviour where already-spinning disks
    /// (Eq. 5 weight 0) absorb requests before any standby disk is woken.
    ///
    /// # Examples
    ///
    /// ```
    /// use spindown_graph::setcover::SetCoverInstance;
    ///
    /// let mut inst = SetCoverInstance::new(3);
    /// inst.add_set(1.0, [0, 1]);
    /// inst.add_set(1.0, [2]);
    /// inst.add_set(10.0, [0, 1, 2]);
    /// let cover = inst.solve_greedy().unwrap();
    /// assert_eq!(cover.sets, vec![0, 1]);
    /// assert_eq!(cover.weight, 2.0);
    /// ```
    pub fn solve_greedy(&self) -> Option<Cover> {
        let mut covered = vec![false; self.universe];
        let mut remaining = self.universe;
        let mut chosen: Vec<usize> = Vec::new();
        let mut used = vec![false; self.sets.len()];

        while remaining > 0 {
            let mut best: Option<(f64, usize, usize)> = None; // (ratio, new, idx)
            for (i, s) in self.sets.iter().enumerate() {
                if used[i] {
                    continue;
                }
                let new = s.elements.iter().filter(|&&e| !covered[e as usize]).count();
                if new == 0 {
                    continue;
                }
                let ratio = s.weight / new as f64;
                let better = match best {
                    None => true,
                    Some((br, bn, bi)) => {
                        // Relative tie tolerance: with Eq. 5 weights in the
                        // joules range the cost-effectiveness ratios sit at
                        // ~1e8, where one ulp is ~1e-8 — an absolute 1e-15
                        // band never recognizes a tie there, so the
                        // covers-more / lower-index preferences silently
                        // stopped applying at scale.
                        let tol = RATIO_TIE_TOL * ratio.abs().max(br.abs());
                        ratio < br - tol
                            || ((ratio - br).abs() <= tol && (new > bn || (new == bn && i < bi)))
                    }
                };
                if better {
                    best = Some((ratio, new, i));
                }
            }
            let (_, _, idx) = best?;
            used[idx] = true;
            chosen.push(idx);
            for &e in &self.sets[idx].elements {
                if !covered[e as usize] {
                    covered[e as usize] = true;
                    remaining -= 1;
                }
            }
        }
        chosen.sort_unstable();
        Some(Cover {
            weight: self.weight_of(&chosen),
            sets: chosen,
        })
    }

    /// Exact minimum-weight cover by iterative branch-and-bound on the
    /// lowest-index uncovered element, over word-packed `u64` bitsets with
    /// an explicit undo stack — no recursion, no per-branch clone.
    /// Exponential in the worst case — intended for tests and small
    /// batches; returns `None` if the universe is not coverable or exceeds
    /// `element_limit` ([`DEFAULT_ELEMENT_LIMIT`] is the stock budget).
    ///
    /// Layout: one `words = ⌈universe/64⌉`-word covered set, a flat
    /// `sets × words` table of element masks, and an undo arena with one
    /// `words`-word slot per search depth holding the elements the applied
    /// set newly covered; backtracking is `covered &= !slot`.
    ///
    /// Bounds: the incumbent is seeded with the greedy `H_n`-approximate
    /// cover, and each node prunes against `w + max_e min_cover_w(e)` over
    /// its uncovered elements — any completion must pay for a set covering
    /// the most expensive-to-cover element. Both strictly dominate the
    /// recursive baseline's bare `w >= best_w` test;
    /// [`solve_exact_baseline`](Self::solve_exact_baseline) retains that
    /// solver as the differential oracle.
    pub fn solve_exact(&self, element_limit: usize) -> Option<Cover> {
        if self.universe > element_limit {
            return None;
        }
        let words = bitset::words_for(self.universe);
        // Element mask per set; per element, the sets covering it and the
        // cheapest such set's weight.
        let mut masks = vec![0u64; self.sets.len() * words];
        let mut covering: Vec<Vec<u32>> = vec![Vec::new(); self.universe];
        let mut min_cover_w = vec![f64::INFINITY; self.universe];
        for (i, s) in self.sets.iter().enumerate() {
            let row = &mut masks[i * words..(i + 1) * words];
            for &e in &s.elements {
                bitset::set(row, e as usize);
                covering[e as usize].push(i as u32);
                if s.weight < min_cover_w[e as usize] {
                    min_cover_w[e as usize] = s.weight;
                }
            }
        }
        if covering.iter().any(|c| c.is_empty()) && self.universe > 0 {
            return None;
        }
        // Seed the incumbent with the greedy cover so the search prunes
        // against a real cover from the first node instead of +∞.
        let seed = self.solve_greedy()?;
        let mut best = seed.sets;
        let mut best_w = seed.weight;

        let mut full = vec![0u64; words];
        for e in 0..self.universe {
            bitset::set(&mut full, e);
        }
        // Evaluate the current node: record a new incumbent if everything
        // is covered, prune against the lower bound, or return the next
        // element to branch on.
        let eval = |covered: &[u64],
                    w: f64,
                    chosen: &[usize],
                    best: &mut Vec<usize>,
                    best_w: &mut f64|
         -> Option<u32> {
            let mut elem: Option<u32> = None;
            let mut lb = 0.0f64;
            for i in 0..words {
                let mut rem = full[i] & !covered[i];
                if rem != 0 && elem.is_none() {
                    elem = Some((i * 64 + rem.trailing_zeros() as usize) as u32);
                }
                while rem != 0 {
                    let e = i * 64 + rem.trailing_zeros() as usize;
                    rem &= rem - 1;
                    if min_cover_w[e] > lb {
                        lb = min_cover_w[e];
                    }
                }
            }
            let Some(e) = elem else {
                if w < *best_w {
                    *best_w = w;
                    *best = chosen.to_vec();
                }
                return None;
            };
            // Deflate the admissible bound by the relative slack so
            // summation-order rounding can never prune the optimum.
            if w + lb - (w + lb) * crate::mwis::BOUND_SLACK >= *best_w {
                return None;
            }
            Some(e)
        };

        let mut covered = vec![0u64; words];
        let mut chosen: Vec<usize> = Vec::with_capacity(self.universe);
        let mut stack: Vec<CoverFrame> = Vec::with_capacity(self.universe);
        let mut arena = vec![0u64; self.universe * words];
        let mut w = 0.0f64;

        if let Some(e) = eval(&covered, w, &chosen, &mut best, &mut best_w) {
            stack.push(CoverFrame {
                elem: e,
                cand_pos: 0,
                saved_w: w,
            });
        }
        while let Some(top) = stack.last() {
            let depth = stack.len() - 1;
            let (elem, cand_pos, saved_w) = (top.elem as usize, top.cand_pos, top.saved_w);
            let slot_at = depth * words;
            if cand_pos > 0 {
                // Undo the previously applied candidate: exactly the
                // elements it newly covered live in this depth's slot.
                for i in 0..words {
                    covered[i] &= !arena[slot_at + i];
                }
                chosen.pop();
                // w is rebuilt from saved_w when the next candidate is
                // applied, so the undo leaves it alone.
            }
            if cand_pos == covering[elem].len() {
                stack.pop();
                continue;
            }
            let s = covering[elem][cand_pos] as usize;
            stack.last_mut().expect("frame just inspected").cand_pos = cand_pos + 1;
            for i in 0..words {
                let newly = masks[s * words + i] & !covered[i];
                arena[slot_at + i] = newly;
                covered[i] |= newly;
            }
            chosen.push(s);
            w = saved_w + self.sets[s].weight;
            if let Some(e2) = eval(&covered, w, &chosen, &mut best, &mut best_w) {
                stack.push(CoverFrame {
                    elem: e2,
                    cand_pos: 0,
                    saved_w: w,
                });
            }
        }
        best.sort_unstable();
        Some(Cover {
            weight: self.weight_of(&best),
            sets: best,
        })
    }

    /// The pre-bitset exact solver: recursive branch-and-bound with a
    /// `Vec<bool>` covered bitmap and no lower bound beyond the incumbent.
    /// Kept verbatim as the differential oracle for
    /// [`solve_exact`](Self::solve_exact) — it recurses one stack frame
    /// per chosen set, so keep it away from universes anywhere near the
    /// production [`DEFAULT_ELEMENT_LIMIT`].
    pub fn solve_exact_baseline(&self, element_limit: usize) -> Option<Cover> {
        if self.universe > element_limit {
            return None;
        }
        // Pre-index: which sets cover each element?
        let mut covering: Vec<Vec<usize>> = vec![Vec::new(); self.universe];
        for (i, s) in self.sets.iter().enumerate() {
            for &e in &s.elements {
                covering[e as usize].push(i);
            }
        }
        if covering.iter().any(|c| c.is_empty()) && self.universe > 0 {
            return None;
        }

        struct Ctx<'a> {
            inst: &'a SetCoverInstance,
            covering: Vec<Vec<usize>>,
            best_w: f64,
            best: Option<Vec<usize>>,
        }

        fn recurse(ctx: &mut Ctx<'_>, covered: &mut [bool], chosen: &mut Vec<usize>, w: f64) {
            if w >= ctx.best_w {
                return;
            }
            let Some(e) = covered.iter().position(|&c| !c) else {
                ctx.best_w = w;
                ctx.best = Some(chosen.clone());
                return;
            };
            // Try each set that covers e (clone-undo covered bitmap).
            for i in 0..ctx.covering[e].len() {
                let s = ctx.covering[e][i];
                if chosen.contains(&s) {
                    continue;
                }
                let newly: Vec<usize> = ctx.inst.sets[s]
                    .elements
                    .iter()
                    .map(|&x| x as usize)
                    .filter(|&x| !covered[x])
                    .collect();
                for &x in &newly {
                    covered[x] = true;
                }
                chosen.push(s);
                recurse(ctx, covered, chosen, w + ctx.inst.sets[s].weight);
                chosen.pop();
                for &x in &newly {
                    covered[x] = false;
                }
            }
        }

        let mut ctx = Ctx {
            inst: self,
            covering,
            best_w: f64::INFINITY,
            best: None,
        };
        let mut covered = vec![false; self.universe];
        let mut chosen = Vec::new();
        recurse(&mut ctx, &mut covered, &mut chosen, 0.0);
        let mut sets = ctx.best?;
        sets.sort_unstable();
        Some(Cover {
            weight: self.weight_of(&sets),
            sets,
        })
    }
}

/// A suspended branching decision on [`SetCoverInstance::solve_exact`]'s
/// explicit stack: which element is being covered, the next candidate set
/// index into its covering list, and the weight on entry. The elements the
/// currently applied candidate newly covered live in the undo arena slot
/// at this frame's depth.
struct CoverFrame {
    elem: u32,
    cand_pos: usize,
    saved_w: f64,
}

/// The `n`-th harmonic number `H_n = 1 + 1/2 + … + 1/n` — the greedy
/// algorithm's approximation factor (paper §6).
pub fn harmonic(n: usize) -> f64 {
    (1..=n).map(|k| 1.0 / k as f64).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn greedy_prefers_free_sets() {
        let mut inst = SetCoverInstance::new(2);
        inst.add_set(0.0, [0]);
        inst.add_set(5.0, [0, 1]);
        inst.add_set(0.0, [1]);
        let c = inst.solve_greedy().unwrap();
        assert_eq!(c.sets, vec![0, 2]);
        assert_eq!(c.weight, 0.0);
    }

    #[test]
    fn greedy_none_when_uncoverable() {
        let mut inst = SetCoverInstance::new(3);
        inst.add_set(1.0, [0, 1]);
        assert!(inst.solve_greedy().is_none());
        assert!(inst.solve_exact(64).is_none());
    }

    #[test]
    fn empty_universe_is_trivially_covered() {
        let inst = SetCoverInstance::new(0);
        let c = inst.solve_greedy().unwrap();
        assert!(c.sets.is_empty());
        assert_eq!(c.weight, 0.0);
        let e = inst.solve_exact(64).unwrap();
        assert!(e.sets.is_empty());
    }

    #[test]
    fn exact_finds_cheaper_cover_than_greedy_trap() {
        // Classic greedy trap: one big set slightly cheaper per element at
        // first, but two small sets are cheaper overall.
        let mut inst = SetCoverInstance::new(4);
        inst.add_set(3.1, [0, 1, 2, 3]); // ratio 0.775
        inst.add_set(1.0, [0, 1]); // ratio 0.5
        inst.add_set(1.0, [2, 3]); // ratio 0.5
        let g = inst.solve_greedy().unwrap();
        let e = inst.solve_exact(64).unwrap();
        assert_eq!(e.sets, vec![1, 2]);
        assert!((e.weight - 2.0).abs() < 1e-12);
        assert!(g.weight >= e.weight);
        assert!(inst.is_cover(&g.sets));
        assert!(inst.is_cover(&e.sets));
    }

    #[test]
    fn greedy_within_harmonic_factor() {
        // On any instance greedy must be within H_n of optimal.
        let mut inst = SetCoverInstance::new(6);
        inst.add_set(2.0, [0, 1, 2]);
        inst.add_set(2.0, [3, 4, 5]);
        inst.add_set(1.0, [0, 3]);
        inst.add_set(1.0, [1, 4]);
        inst.add_set(1.0, [2, 5]);
        let g = inst.solve_greedy().unwrap();
        let e = inst.solve_exact(64).unwrap();
        assert!(g.weight <= harmonic(6) * e.weight + 1e-9);
    }

    #[test]
    fn add_set_sanitizes_elements() {
        let mut inst = SetCoverInstance::new(3);
        let idx = inst.add_set(5.0, [0, 0, 1, 99]);
        assert_eq!(inst.sets()[idx].weight, 5.0);
        assert_eq!(inst.sets()[idx].elements, vec![0, 1]);
        assert_eq!(inst.clamped_weights(), 0);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "invalid weight")]
    fn add_set_asserts_on_negative_weight_in_debug() {
        let mut inst = SetCoverInstance::new(3);
        inst.add_set(-5.0, [0]);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "invalid weight")]
    fn add_set_asserts_on_nan_weight_in_debug() {
        let mut inst = SetCoverInstance::new(3);
        inst.add_set(f64::NAN, [0]);
    }

    // With debug assertions off (release builds — the CI differential job
    // runs the graph tests both ways), invalid weights are clamped to zero
    // and counted instead of panicking.
    #[cfg(not(debug_assertions))]
    #[test]
    fn add_set_clamps_and_counts_in_release() {
        let mut inst = SetCoverInstance::new(3);
        let idx = inst.add_set(-5.0, [0, 0, 1, 99]);
        assert_eq!(inst.sets()[idx].weight, 0.0);
        assert_eq!(inst.sets()[idx].elements, vec![0, 1]);
        let idx2 = inst.add_set(f64::NAN, [2]);
        assert_eq!(inst.sets()[idx2].weight, 0.0);
        let idx3 = inst.add_set(f64::INFINITY, [2]);
        assert_eq!(inst.sets()[idx3].weight, 0.0);
        inst.add_set(1.0, [1]);
        assert_eq!(inst.clamped_weights(), 3);
    }

    #[test]
    fn greedy_tie_break_is_relative_for_joule_scale_weights() {
        // Two sets whose cost-effectiveness ties at ~3.3e8 J/element: the
        // ratios differ by one ulp (~6e-8), far beyond the historical
        // absolute 1e-15 band, so the old comparison declared the
        // one-ulp-cheaper singleton strictly better and the covers-more
        // tie-break never fired — greedy paid for both sets. The relative
        // tolerance recognizes the tie and takes the bigger set alone.
        let r = 1.0e9_f64 / 3.0;
        let r_down = f64::from_bits(r.to_bits() - 1);
        let mut inst = SetCoverInstance::new(2);
        inst.add_set(r_down, [0]); // ratio one ulp below r
        inst.add_set(2.0 * r, [0, 1]); // ratio exactly r
        let c = inst.solve_greedy().unwrap();
        assert_eq!(c.sets, vec![1], "joule-scale tie: bigger set wins");
        assert_eq!(c.weight, 2.0 * r);
    }

    #[test]
    fn exact_matches_recursive_baseline_on_unit_tests() {
        for inst in [
            {
                let mut i = SetCoverInstance::new(4);
                i.add_set(3.1, [0, 1, 2, 3]);
                i.add_set(1.0, [0, 1]);
                i.add_set(1.0, [2, 3]);
                i
            },
            {
                let mut i = SetCoverInstance::new(6);
                i.add_set(5.0, [0, 1, 2, 4]);
                i.add_set(5.0, [1, 2]);
                i.add_set(5.0, [3, 5]);
                i.add_set(5.0, [2, 3, 4, 5]);
                i
            },
        ] {
            let new = inst.solve_exact(64).unwrap();
            let old = inst.solve_exact_baseline(64).unwrap();
            assert_eq!(new, old);
        }
    }

    #[test]
    fn is_cover_rejects_bad_indices() {
        let mut inst = SetCoverInstance::new(1);
        inst.add_set(1.0, [0]);
        assert!(!inst.is_cover(&[7]));
        assert!(inst.is_cover(&[0]));
        assert!(!inst.is_cover(&[]));
    }

    #[test]
    fn greedy_tie_breaks_deterministically() {
        let mut inst = SetCoverInstance::new(2);
        inst.add_set(1.0, [0, 1]);
        inst.add_set(1.0, [0, 1]);
        let c = inst.solve_greedy().unwrap();
        assert_eq!(c.sets, vec![0], "equal sets: lower index wins");
    }

    #[test]
    fn greedy_prefers_bigger_set_on_equal_ratio() {
        let mut inst = SetCoverInstance::new(3);
        inst.add_set(1.0, [0]); // ratio 1.0
        inst.add_set(2.0, [0, 1]); // ratio 1.0, but covers more
        inst.add_set(0.5, [2]);
        let c = inst.solve_greedy().unwrap();
        assert!(c.sets.contains(&1));
    }

    #[test]
    fn harmonic_values() {
        assert_eq!(harmonic(0), 0.0);
        assert_eq!(harmonic(1), 1.0);
        assert!((harmonic(2) - 1.5).abs() < 1e-12);
        assert!((harmonic(4) - (1.0 + 0.5 + 1.0 / 3.0 + 0.25)).abs() < 1e-12);
    }

    #[test]
    fn exact_respects_element_limit() {
        let mut inst = SetCoverInstance::new(100);
        for e in 0..100 {
            inst.add_set(1.0, [e]);
        }
        assert!(inst.solve_exact(10).is_none());
    }

    #[test]
    fn paper_fig2_batch_instance() {
        // Fig. 2: requests r1..r6 for data b1..b6; d1={b1,b2,b3,b5},
        // d2={b2,b3}, d3={b4,b6}, d4={b3,b4,b5,b6}. All disks standby, so
        // all weights are equal (E_up/down + TB*PI = 5 in the toy model).
        // Minimum cover: {d1, d3} (weight 10) — the paper's schedule B.
        let mut inst = SetCoverInstance::new(6);
        inst.add_set(5.0, [0, 1, 2, 4]); // d1 covers r1,r2,r3,r5
        inst.add_set(5.0, [1, 2]); // d2 covers r2,r3
        inst.add_set(5.0, [3, 5]); // d3 covers r4,r6
        inst.add_set(5.0, [2, 3, 4, 5]); // d4 covers r3,r4,r5,r6
        let e = inst.solve_exact(64).unwrap();
        assert_eq!(e.weight, 10.0, "schedule B uses two disks, energy 10");
        assert_eq!(e.sets, vec![0, 2]);
        let g = inst.solve_greedy().unwrap();
        assert_eq!(g.weight, 10.0, "greedy also finds a two-disk cover");
    }
}
