//! Property-based tests for the MWIS and set-cover solvers: on random
//! instances, every solver's output must be feasible, and the exact solvers
//! must dominate the heuristics.

use proptest::prelude::*;
use spindown_graph::graph::{Graph, NodeId};
use spindown_graph::mwis;
use spindown_graph::setcover::{harmonic, SetCoverInstance};

/// A random graph: n nodes, weights in (0, 10], edge list over pairs.
fn arb_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (2..=max_n).prop_flat_map(|n| {
        let weights = prop::collection::vec(0.01f64..10.0, n);
        let edges = prop::collection::vec((0..n, 0..n), 0..(n * 2));
        (weights, edges).prop_map(|(w, es)| {
            let mut g = Graph::with_weights(w);
            for (u, v) in es {
                if u != v {
                    g.add_edge(u as NodeId, v as NodeId);
                }
            }
            g
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn gwmin_output_is_independent_and_maximal(g in arb_graph(40)) {
        let is = mwis::gwmin(&g);
        prop_assert!(g.is_independent_set(&is));
        // Maximality: no vertex outside the set is addable.
        let mut inset = vec![false; g.len()];
        for &v in &is { inset[v as usize] = true; }
        for v in 0..g.len() {
            if inset[v] { continue; }
            let addable = g.neighbors(v as NodeId).iter().all(|&u| !inset[u as usize]);
            prop_assert!(!addable, "vertex {v} was addable");
        }
    }

    #[test]
    fn gwmin2_output_is_independent(g in arb_graph(40)) {
        let is = mwis::gwmin2(&g);
        prop_assert!(g.is_independent_set(&is));
    }

    #[test]
    fn gwmin_satisfies_sakai_bound(g in arb_graph(30)) {
        let is = mwis::gwmin(&g);
        let bound: f64 = (0..g.len())
            .map(|v| g.weight(v as NodeId) / (g.degree(v as NodeId) as f64 + 1.0))
            .sum();
        prop_assert!(g.set_weight_sum(&is) >= bound - 1e-9);
    }

    #[test]
    fn exact_dominates_heuristics(g in arb_graph(16)) {
        let ex = mwis::exact(&g, 16).expect("within limit");
        prop_assert!(g.is_independent_set(&ex));
        let exw = g.set_weight_sum(&ex);
        for is in [mwis::gwmin(&g), mwis::gwmin2(&g)] {
            prop_assert!(g.set_weight_sum(&is) <= exw + 1e-9,
                "heuristic beat exact: {} > {}", g.set_weight_sum(&is), exw);
        }
        let ls = mwis::local_search(&g, &mwis::gwmin(&g));
        prop_assert!(g.is_independent_set(&ls));
        prop_assert!(g.set_weight_sum(&ls) <= exw + 1e-9);
    }

    #[test]
    fn local_search_never_worsens(g in arb_graph(30)) {
        let start = mwis::gwmin(&g);
        let improved = mwis::local_search(&g, &start);
        prop_assert!(g.is_independent_set(&improved));
        prop_assert!(g.set_weight_sum(&improved) >= g.set_weight_sum(&start) - 1e-9);
    }

    #[test]
    fn greedy_cover_is_valid_and_bounded(
        universe in 1usize..12,
        raw_sets in prop::collection::vec(
            (0.0f64..5.0, prop::collection::vec(0u32..12, 1..6)), 1..10),
    ) {
        let mut inst = SetCoverInstance::new(universe);
        // Guarantee coverability with singletons.
        for e in 0..universe {
            inst.add_set(1.0, [e as u32]);
        }
        for (w, elems) in raw_sets {
            inst.add_set(w, elems);
        }
        let g = inst.solve_greedy().expect("coverable");
        prop_assert!(inst.is_cover(&g.sets));
        let e = inst.solve_exact(12).expect("coverable");
        prop_assert!(inst.is_cover(&e.sets));
        prop_assert!(e.weight <= g.weight + 1e-9, "exact {} > greedy {}", e.weight, g.weight);
        prop_assert!(g.weight <= harmonic(universe) * e.weight + 1e-9,
            "greedy {} exceeded Hn bound on exact {}", g.weight, e.weight);
    }

    #[test]
    fn uncoverable_instances_return_none(
        universe in 2usize..10,
        missing in 0usize..10,
    ) {
        let missing = missing % universe;
        let mut inst = SetCoverInstance::new(universe);
        for e in 0..universe {
            if e != missing {
                inst.add_set(1.0, [e as u32]);
            }
        }
        prop_assert!(inst.solve_greedy().is_none());
        prop_assert!(inst.solve_exact(16).is_none());
    }
}
