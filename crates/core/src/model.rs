//! Core identifiers and the request model (the paper's Table 1 variables).

use spindown_sim::time::SimTime;
pub use spindown_trace::record::DataId;

/// Identifier of a disk in the storage system (`d_k` in the paper; dense,
/// `0..K`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DiskId(pub u32);

impl DiskId {
    /// The disk's index into per-disk arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for DiskId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "d{}", self.0)
    }
}

/// A read request as the scheduler sees it (`r_i` in the paper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Request {
    /// Position in the request stream (requests are sorted by time, so
    /// this is also the paper's subscript `i`).
    pub index: u32,
    /// Disk access time `t_i` — the time the storage system receives the
    /// request.
    pub at: SimTime,
    /// The data item requested.
    pub data: DataId,
    /// Transfer size, bytes.
    pub size: u64,
}

/// A complete scheduling assignment: `assignment[i]` is the disk request
/// `i` was dispatched to.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Assignment {
    /// Chosen disk per request index.
    pub disks: Vec<DiskId>,
}

impl Assignment {
    /// Creates an assignment for `n` requests, all pointing at a
    /// placeholder disk 0 (callers overwrite every slot).
    pub fn with_len(n: usize) -> Self {
        Assignment {
            disks: vec![DiskId(0); n],
        }
    }

    /// Number of assigned requests.
    pub fn len(&self) -> usize {
        self.disks.len()
    }

    /// `true` if no requests are assigned.
    pub fn is_empty(&self) -> bool {
        self.disks.is_empty()
    }

    /// The disk chosen for request `i`.
    pub fn disk_of(&self, i: usize) -> DiskId {
        self.disks[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disk_id_display_and_index() {
        assert_eq!(DiskId(7).to_string(), "d7");
        assert_eq!(DiskId(7).index(), 7);
        assert!(DiskId(1) < DiskId(2));
    }

    #[test]
    fn assignment_basics() {
        let mut a = Assignment::with_len(3);
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
        a.disks[1] = DiskId(9);
        assert_eq!(a.disk_of(1), DiskId(9));
        assert_eq!(a.disk_of(0), DiskId(0));
    }
}
