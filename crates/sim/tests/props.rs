//! Deterministic property checks for the simulation kernel: the event
//! queue against a sorted reference, histogram quantiles against exact
//! order statistics, and statistics accumulators against direct
//! computation. Cases are pseudo-randomly generated with the crate's own
//! seeded RNG, so every run exercises the identical instances.

use spindown_sim::event::EventQueue;
use spindown_sim::rng::{AliasTable, SimRng, Zipf};
use spindown_sim::stats::{LatencyHistogram, OnlineStats};
use spindown_sim::time::{SimDuration, SimTime};

fn random_vec(rng: &mut SimRng, max_len: usize, min_len: usize, lo: f64, hi: f64) -> Vec<f64> {
    let len = min_len + rng.index(max_len - min_len);
    (0..len).map(|_| lo + rng.next_f64() * (hi - lo)).collect()
}

/// Popping the queue yields exactly a stable sort of the scheduled
/// events (by time, ties by insertion order).
#[test]
fn event_queue_is_a_stable_sort() {
    let mut rng = SimRng::seed_from_u64(0x51b1);
    for _ in 0..64 {
        let times: Vec<u64> = (0..rng.index(200)).map(|_| rng.next_below(1_000)).collect();
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_micros(t), i);
        }
        let mut expect: Vec<(u64, usize)> =
            times.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        expect.sort_by_key(|&(t, i)| (t, i)); // stable by construction
        let mut got = Vec::new();
        while let Some(e) = q.pop() {
            got.push((e.at.as_micros(), e.payload));
        }
        assert_eq!(got, expect);
    }
}

/// Histogram quantiles bracket the exact order statistics within one
/// bucket's relative width.
#[test]
fn histogram_quantiles_bracket_exact() {
    let mut rng = SimRng::seed_from_u64(0x51b2);
    for _ in 0..64 {
        let values = random_vec(&mut rng, 300, 1, 1e-5, 100.0);
        let q = rng.next_f64();
        let mut h = LatencyHistogram::default();
        for &v in &values {
            h.record_secs(v);
        }
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let idx = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
        let exact = sorted[idx];
        let approx = h.quantile(q);
        // Bucket growth is 1.25: the reported (upper-edge) quantile may
        // exceed the exact value by one bucket and never undershoots by
        // more than one bucket.
        assert!(approx >= exact / 1.26, "approx {approx} far below exact {exact}");
        assert!(approx <= exact * 1.26, "approx {approx} far above exact {exact}");
    }
}

/// The histogram's mean is exact (it tracks raw values).
#[test]
fn histogram_mean_is_exact() {
    let mut rng = SimRng::seed_from_u64(0x51b3);
    for _ in 0..64 {
        let values = random_vec(&mut rng, 200, 1, 0.0, 50.0);
        let mut h = LatencyHistogram::default();
        for &v in &values {
            h.record(SimDuration::from_secs_f64(v));
        }
        // SimDuration rounds to µs, so compare against the rounded values.
        let rounded: Vec<f64> = values
            .iter()
            .map(|&v| SimDuration::from_secs_f64(v).as_secs_f64())
            .collect();
        let exact = rounded.iter().sum::<f64>() / rounded.len() as f64;
        assert!((h.mean() - exact).abs() < 1e-9);
    }
}

/// Welford statistics match the naive two-pass computation.
#[test]
fn online_stats_match_naive() {
    let mut rng = SimRng::seed_from_u64(0x51b4);
    for _ in 0..64 {
        let values = random_vec(&mut rng, 200, 1, -1e3, 1e3);
        let mut s = OnlineStats::new();
        for &v in &values {
            s.push(v);
        }
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        assert!((s.mean() - mean).abs() < 1e-6);
        assert!((s.population_variance() - var).abs() < 1e-4);
        assert_eq!(s.count(), values.len() as u64);
    }
}

/// Merged accumulators equal the sequential result for any split.
#[test]
fn online_stats_merge_any_split() {
    let mut rng = SimRng::seed_from_u64(0x51b5);
    for _ in 0..64 {
        let values = random_vec(&mut rng, 200, 2, -1e3, 1e3);
        let split = ((values.len() as f64 * rng.next_f64()) as usize).min(values.len());
        let (mut a, mut b) = (OnlineStats::new(), OnlineStats::new());
        for &v in &values[..split] {
            a.push(v);
        }
        for &v in &values[split..] {
            b.push(v);
        }
        a.merge(&b);
        let mut all = OnlineStats::new();
        for &v in &values {
            all.push(v);
        }
        assert!((a.mean() - all.mean()).abs() < 1e-6);
        assert!((a.population_variance() - all.population_variance()).abs() < 1e-4);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }
}

/// Zipf samples always land in range; the PMF is a distribution.
#[test]
fn zipf_is_well_formed() {
    let mut rng = SimRng::seed_from_u64(0x51b6);
    for _ in 0..64 {
        let n = 1 + rng.index(499);
        let z = rng.next_f64() * 2.0;
        let zipf = Zipf::new(n, z).expect("valid parameters");
        let total: f64 = (1..=n).map(|r| zipf.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-6);
        let mut sampler = SimRng::seed_from_u64(rng.next_u64());
        for _ in 0..100 {
            let r = zipf.sample(&mut sampler);
            assert!((1..=n).contains(&r));
        }
    }
}

/// Alias-table samples land in range for any positive weight vector.
#[test]
fn alias_table_is_well_formed() {
    let mut rng = SimRng::seed_from_u64(0x51b7);
    for _ in 0..64 {
        let weights = random_vec(&mut rng, 100, 1, 0.001, 100.0);
        let table = AliasTable::new(&weights).expect("positive weights");
        let mut sampler = SimRng::seed_from_u64(rng.next_u64());
        for _ in 0..100 {
            assert!(table.sample(&mut sampler) < weights.len());
        }
    }
}

/// Forked RNG streams never coincide with the parent over a window.
#[test]
fn forked_streams_diverge() {
    for seed in 0u64..256 {
        let mut parent = SimRng::seed_from_u64(seed * 39 + 1);
        let mut child = parent.fork(1);
        let p: Vec<u64> = (0..16).map(|_| parent.next_u64()).collect();
        let c: Vec<u64> = (0..16).map(|_| child.next_u64()).collect();
        assert_ne!(p, c);
    }
}
