//! `Random` baseline: uniformly pick one of the request's replica
//! locations (paper §4.3).

use spindown_sim::rng::SimRng;

use crate::model::{DiskId, Request};
use crate::sched::{Scheduler, SystemView};

/// The paper's `Random` baseline scheduler.
#[derive(Debug)]
pub struct RandomScheduler {
    rng: SimRng,
}

impl RandomScheduler {
    /// Creates the scheduler with its own deterministic stream.
    pub fn new(seed: u64) -> Self {
        RandomScheduler {
            rng: SimRng::seed_from_u64(seed ^ 0x52414E44), // "RAND"
        }
    }
}

impl Scheduler for RandomScheduler {
    fn name(&self) -> &'static str {
        "random"
    }

    fn assign(&mut self, reqs: &[Request], view: &SystemView<'_>) -> Vec<DiskId> {
        reqs.iter()
            .map(|r| *self.rng.choose(view.locations(r.data)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::DiskStatus;
    use crate::model::DataId;
    use crate::sched::ExplicitPlacement;
    use spindown_disk::power::PowerParams;
    use spindown_disk::state::DiskPowerState;
    use spindown_sim::time::SimTime;

    fn view<'a>(
        placement: &'a ExplicitPlacement,
        params: &'a PowerParams,
        statuses: &'a [DiskStatus],
    ) -> SystemView<'a> {
        SystemView {
            now: SimTime::ZERO,
            params,
            placement,
            statuses,
        }
    }

    fn req(i: u32, data: u64) -> Request {
        Request {
            index: i,
            at: SimTime::ZERO,
            data: DataId(data),
            size: 4096,
        }
    }

    #[test]
    fn picks_only_valid_locations_and_spreads() {
        let placement = ExplicitPlacement::new(vec![vec![DiskId(1), DiskId(3), DiskId(4)]], 5);
        let params = PowerParams::barracuda();
        let statuses = vec![
            DiskStatus {
                state: DiskPowerState::Standby,
                last_request_at: None,
                load: 0
            };
            5
        ];
        let v = view(&placement, &params, &statuses);
        let mut s = RandomScheduler::new(1);
        let mut counts = [0u32; 5];
        for i in 0..3000 {
            let picks = s.assign(&[req(i, 0)], &v);
            counts[picks[0].index()] += 1;
        }
        assert_eq!(counts[0], 0);
        assert_eq!(counts[2], 0);
        for d in [1, 3, 4] {
            assert!(counts[d] > 800, "disk {d} only picked {}", counts[d]);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let placement = ExplicitPlacement::new(vec![vec![DiskId(0), DiskId(1)]], 2);
        let params = PowerParams::barracuda();
        let statuses = vec![
            DiskStatus {
                state: DiskPowerState::Standby,
                last_request_at: None,
                load: 0
            };
            2
        ];
        let v = view(&placement, &params, &statuses);
        let run = |seed| {
            let mut s = RandomScheduler::new(seed);
            (0..50)
                .map(|i| s.assign(&[req(i, 0)], &v)[0])
                .collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }
}
