//! Trace statistics: the quantities used to verify that the synthetic
//! generators match the properties the paper's traces are known for
//! (burstiness, popularity skew, scale).
//!
//! Two entry points: [`TraceStats::compute`] over a materialized
//! [`Trace`] (the batch oracle) and [`TraceStats::from_stream`], a
//! one-pass accumulator over any record stream whose memory footprint is
//! bounded by the number of *distinct* items and seconds, not by the
//! record count. Differential tests pin the two to identical output.

use spindown_sim::stats::OnlineStats;
use spindown_sim::time::SimTime;

use crate::record::{Trace, TraceRecord};

/// Summary statistics of a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    /// Number of requests.
    pub requests: usize,
    /// Distinct data items accessed.
    pub unique_data: usize,
    /// Trace span, seconds.
    pub duration_s: f64,
    /// Mean arrival rate, requests/second.
    pub mean_rate: f64,
    /// Mean inter-arrival gap, seconds.
    pub interarrival_mean_s: f64,
    /// Coefficient of variation of inter-arrival gaps (1 = Poisson;
    /// > 1 = bursty).
    pub interarrival_cv: f64,
    /// Index of dispersion of per-second arrival counts
    /// (variance / mean; 1 = Poisson, larger = bursty).
    pub dispersion_1s: f64,
    /// Fraction of accesses landing on the most popular 1 % of items.
    pub top1pct_share: f64,
    /// Least-squares Zipf exponent fitted to the rank-frequency curve.
    pub fitted_zipf_z: f64,
}

impl TraceStats {
    /// Computes statistics for `trace`. Traces with fewer than two
    /// requests report zeros for the derived quantities.
    pub fn compute(trace: &Trace) -> TraceStats {
        let recs = trace.records();
        let requests = recs.len();
        let unique_data = trace.unique_data();
        let duration_s = trace.duration().as_secs_f64();
        let mean_rate = if duration_s > 0.0 {
            requests as f64 / duration_s
        } else {
            0.0
        };

        // Inter-arrival gaps.
        let mut gaps = OnlineStats::new();
        for w in recs.windows(2) {
            gaps.push(w[1].at.as_secs_f64() - w[0].at.as_secs_f64());
        }
        let interarrival_mean_s = gaps.mean();
        let interarrival_cv = gaps.cv();

        // Index of dispersion over 1-second windows.
        let dispersion_1s = if duration_s >= 2.0 {
            let windows = duration_s.ceil() as usize;
            let start = recs[0].at;
            let mut counts = vec![0f64; windows];
            for r in recs {
                let idx = r.at.saturating_since(start).as_secs_f64() as usize;
                counts[idx.min(windows - 1)] += 1.0;
            }
            let mut cs = OnlineStats::new();
            for c in counts {
                cs.push(c);
            }
            if cs.mean() > 0.0 {
                cs.population_variance() / cs.mean()
            } else {
                0.0
            }
        } else {
            0.0
        };

        // Popularity: counts per item, descending.
        let mut freq: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        for r in recs {
            *freq.entry(r.data.0).or_insert(0) += 1;
        }
        let mut counts: Vec<u64> = freq.into_values().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));

        let top1pct_share = top_share(&counts, requests);
        let fitted_zipf_z = fit_zipf(&counts);

        TraceStats {
            requests,
            unique_data,
            duration_s,
            mean_rate,
            interarrival_mean_s,
            interarrival_cv,
            dispersion_1s,
            top1pct_share,
            fitted_zipf_z,
        }
    }

    /// Computes the same statistics in one pass over a record stream,
    /// without materializing it. Memory is bounded by the number of
    /// distinct data items plus the trace span in seconds.
    ///
    /// Requires the stream's nondecreasing-time invariant (wrap untrusted
    /// input in [`crate::stream::EnsureSorted`]); the batch
    /// [`TraceStats::compute`] is the differential oracle.
    pub fn from_stream<E>(
        stream: impl Iterator<Item = Result<TraceRecord, E>>,
    ) -> Result<TraceStats, E> {
        let mut requests = 0usize;
        let mut first: Option<SimTime> = None;
        let mut last = SimTime::ZERO;
        let mut prev: Option<SimTime> = None;
        let mut gaps = OnlineStats::new();
        // Per-second arrival counts; indices are seconds since the first
        // record, so the vec grows with the trace *span*, not its length.
        let mut counts_1s: Vec<f64> = Vec::new();
        let mut freq: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();

        for r in stream {
            let r = r?;
            requests += 1;
            let start = *first.get_or_insert(r.at);
            last = r.at;
            if let Some(p) = prev {
                gaps.push(r.at.as_secs_f64() - p.as_secs_f64());
            }
            prev = Some(r.at);
            let idx = r.at.saturating_since(start).as_secs_f64() as usize;
            if idx >= counts_1s.len() {
                counts_1s.resize(idx + 1, 0.0);
            }
            counts_1s[idx] += 1.0;
            *freq.entry(r.data.0).or_insert(0) += 1;
        }

        let duration_s = first
            .map(|f| last.saturating_since(f).as_secs_f64())
            .unwrap_or(0.0);
        let mean_rate = if duration_s > 0.0 {
            requests as f64 / duration_s
        } else {
            0.0
        };

        // Mirror the batch clamp `idx.min(windows - 1)`: a record exactly
        // at an integral duration lands one past the last window.
        let dispersion_1s = if duration_s >= 2.0 {
            let windows = duration_s.ceil() as usize;
            counts_1s.resize(windows.max(counts_1s.len()), 0.0);
            while counts_1s.len() > windows {
                let extra = counts_1s.pop().expect("len > windows >= 1");
                counts_1s[windows - 1] += extra;
            }
            let mut cs = OnlineStats::new();
            for c in counts_1s {
                cs.push(c);
            }
            if cs.mean() > 0.0 {
                cs.population_variance() / cs.mean()
            } else {
                0.0
            }
        } else {
            0.0
        };

        let unique_data = freq.len();
        let mut counts: Vec<u64> = freq.into_values().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));

        Ok(TraceStats {
            requests,
            unique_data,
            duration_s,
            mean_rate,
            interarrival_mean_s: gaps.mean(),
            interarrival_cv: gaps.cv(),
            dispersion_1s,
            top1pct_share: top_share(&counts, requests),
            fitted_zipf_z: fit_zipf(&counts),
        })
    }
}

/// Fraction of accesses landing on the most popular 1 % of items
/// (`counts` descending).
fn top_share(counts: &[u64], requests: usize) -> f64 {
    if counts.is_empty() || requests == 0 {
        return 0.0;
    }
    let k = (counts.len() as f64 * 0.01).ceil() as usize;
    let top: u64 = counts.iter().take(k.max(1)).sum();
    top as f64 / requests as f64
}

/// Fits log(freq) = -z log(rank) + c by least squares over all ranks
/// with freq >= 2 (singletons flatten the tail artificially).
fn fit_zipf(counts: &[u64]) -> f64 {
    let pts: Vec<(f64, f64)> = counts
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c >= 2)
        .map(|(i, &c)| (((i + 1) as f64).ln(), (c as f64).ln()))
        .collect();
    if pts.len() < 3 {
        return 0.0;
    }
    let n = pts.len() as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        0.0
    } else {
        -((n * sxy - sx * sy) / denom)
    }
}

impl std::fmt::Display for TraceStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "requests            : {}", self.requests)?;
        writeln!(f, "unique data items   : {}", self.unique_data)?;
        writeln!(f, "duration            : {:.1} s", self.duration_s)?;
        writeln!(f, "mean rate           : {:.2} req/s", self.mean_rate)?;
        writeln!(f, "inter-arrival mean  : {:.4} s", self.interarrival_mean_s)?;
        writeln!(f, "inter-arrival CV    : {:.2}", self.interarrival_cv)?;
        writeln!(f, "dispersion (1s)     : {:.2}", self.dispersion_1s)?;
        writeln!(
            f,
            "top-1% item share   : {:.1}%",
            self.top1pct_share * 100.0
        )?;
        write!(f, "fitted Zipf z       : {:.2}", self.fitted_zipf_z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{CelloLike, FinancialLike, TraceGenerator};

    #[test]
    fn empty_and_singleton_traces() {
        let s = TraceStats::compute(&Trace::default());
        assert_eq!(s.requests, 0);
        assert_eq!(s.mean_rate, 0.0);
        assert_eq!(s.interarrival_cv, 0.0);
        use crate::record::{DataId, OpKind, TraceRecord};
        use spindown_sim::time::SimTime;
        let one = Trace::from_records(vec![TraceRecord {
            at: SimTime::from_secs(1),
            data: DataId(0),
            size: 1,
            op: OpKind::Read,
        }]);
        let s = TraceStats::compute(&one);
        assert_eq!(s.requests, 1);
        assert_eq!(s.dispersion_1s, 0.0);
    }

    #[test]
    fn poisson_trace_has_cv_near_one() {
        let t = FinancialLike {
            requests: 30_000,
            data_items: 5_000,
            ..FinancialLike::default()
        }
        .generate(1);
        let s = TraceStats::compute(&t);
        assert!(
            (s.interarrival_cv - 1.0).abs() < 0.1,
            "cv {}",
            s.interarrival_cv
        );
        assert!(s.dispersion_1s < 2.0, "dispersion {}", s.dispersion_1s);
    }

    #[test]
    fn bursty_trace_has_high_dispersion() {
        let t = CelloLike {
            requests: 30_000,
            data_items: 5_000,
            ..CelloLike::default()
        }
        .generate(1);
        let s = TraceStats::compute(&t);
        assert!(s.interarrival_cv > 1.3, "cv {}", s.interarrival_cv);
        assert!(s.dispersion_1s > 3.0, "dispersion {}", s.dispersion_1s);
    }

    #[test]
    fn fitted_z_tracks_generator_z() {
        for &(z, lo, hi) in &[(0.0, -0.2, 0.35), (1.0, 0.7, 1.3)] {
            let t = CelloLike {
                requests: 50_000,
                data_items: 2_000,
                popularity_z: z,
                ..CelloLike::default()
            }
            .generate(5);
            let s = TraceStats::compute(&t);
            assert!(
                (lo..hi).contains(&s.fitted_zipf_z),
                "z={z} fitted {}",
                s.fitted_zipf_z
            );
        }
    }

    #[test]
    fn skewed_trace_concentrates_top_items() {
        let skewed = CelloLike {
            requests: 30_000,
            data_items: 3_000,
            popularity_z: 1.0,
            ..CelloLike::default()
        }
        .generate(2);
        let uniform = CelloLike {
            requests: 30_000,
            data_items: 3_000,
            popularity_z: 0.0,
            ..CelloLike::default()
        }
        .generate(2);
        let ss = TraceStats::compute(&skewed);
        let su = TraceStats::compute(&uniform);
        assert!(
            ss.top1pct_share > su.top1pct_share * 2.0,
            "skewed {} vs uniform {}",
            ss.top1pct_share,
            su.top1pct_share
        );
    }

    #[test]
    fn one_pass_stream_matches_batch_oracle() {
        let traces = [
            Trace::default(),
            FinancialLike {
                requests: 5_000,
                data_items: 800,
                ..FinancialLike::default()
            }
            .generate(3),
            CelloLike {
                requests: 5_000,
                data_items: 800,
                ..CelloLike::default()
            }
            .generate(4),
        ];
        for t in &traces {
            let one_pass = TraceStats::from_stream(t.stream()).unwrap();
            assert_eq!(one_pass, TraceStats::compute(t));
        }
    }

    #[test]
    fn display_renders() {
        let t = FinancialLike {
            requests: 100,
            data_items: 50,
            ..FinancialLike::default()
        }
        .generate(1);
        let text = TraceStats::compute(&t).to_string();
        assert!(text.contains("requests"));
        assert!(text.contains("Zipf"));
    }
}
