//! Plots (in ASCII) the system's total power draw over time under the
//! static baseline vs. the energy-aware heuristic — making the spin-down
//! dynamics visible: every dip is a disk asleep.
//!
//! ```text
//! cargo run --release --example power_profile
//! ```

use spindown::prelude::*;
use spindown::trace::synth::arrivals::OnOffProcess;

const BARS: &[char] = &[' ', '▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

fn sparkline(samples: &[(f64, f64)], lo: f64, hi: f64, width: usize) -> String {
    if samples.is_empty() {
        return String::new();
    }
    // Downsample to `width` buckets by averaging.
    let mut out = String::new();
    let chunk = (samples.len() as f64 / width as f64).max(1.0);
    let mut i = 0.0;
    while (i as usize) < samples.len() {
        let start = i as usize;
        let end = ((i + chunk) as usize).min(samples.len()).max(start + 1);
        let avg: f64 = samples[start..end].iter().map(|p| p.1).sum::<f64>() / (end - start) as f64;
        let frac = ((avg - lo) / (hi - lo)).clamp(0.0, 1.0);
        let idx = (frac * (BARS.len() - 1) as f64).round() as usize;
        out.push(BARS[idx]);
        i += chunk;
    }
    out
}

fn main() {
    let trace = CelloLike {
        requests: 6_000,
        data_items: 2_500,
        arrivals: OnOffProcess {
            sources: 8,
            on_shape: 1.5,
            on_scale_s: 2.0,
            off_shape: 1.3,
            off_scale_s: 30.0,
            burst_rate: 12.0,
        },
        ..CelloLike::default()
    }
    .generate(33);
    let requests = requests_from_trace(&trace);
    let disks = 16u32;

    let run = |scheduler: SchedulerKind, policy: PolicyKind| {
        let spec = ExperimentSpec {
            placement: PlacementConfig {
                disks,
                replication: 3,
                zipf_z: 1.0,
            },
            scheduler,
            system: SystemConfig {
                disks,
                policy,
                power_sample: Some(SimDuration::from_secs(2)),
                ..SystemConfig::default()
            },
            seed: 33,
        };
        run_experiment(&requests, &spec)
    };

    let always_on = run(SchedulerKind::Static, PolicyKind::AlwaysOn);
    let static_2cpm = run(SchedulerKind::Static, PolicyKind::Breakeven);
    let heuristic = run(
        SchedulerKind::Heuristic(CostFunction::energy_only()),
        PolicyKind::Breakeven,
    );
    let mwis = run(
        SchedulerKind::Mwis {
            solver: MwisSolver::GwMinRefined { passes: 4 },
            max_successors: 3,
        },
        PolicyKind::Breakeven,
    );
    let _ = &mwis; // offline model has no sampled timeline; used for energy

    let params = PowerParams::barracuda();
    let hi = disks as f64 * params.active_w;
    let lo = 0.0;
    println!(
        "system power over {:.0} s ({} disks, 0 W … {:.0} W full-active):\n",
        requests.last().unwrap().at.as_secs_f64(),
        disks,
        hi
    );
    for (name, m) in [
        ("always-on", &always_on),
        ("static+2cpm", &static_2cpm),
        ("heuristic a=1", &heuristic),
    ] {
        println!(
            "{:<12} {}  mean {:>5.0} W  ({:.1}% of always-on energy)",
            name,
            sparkline(&m.power_timeline, lo, hi, 72),
            m.power_timeline.iter().map(|p| p.1).sum::<f64>()
                / m.power_timeline.len().max(1) as f64,
            m.normalized_energy() * 100.0
        );
    }
    println!(
        "\nmwis-r (offline, analytic — no timeline): {:.1}% of always-on energy",
        mwis.normalized_energy() * 100.0
    );
    println!(
        "\nEvery dip below the always-on band is a disk in standby; the\n\
         heuristic deepens the dips by steering reads onto already-awake\n\
         replicas."
    );
}
