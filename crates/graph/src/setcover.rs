//! Weighted-set-cover solvers.
//!
//! The paper's batch scheduler (§3.2, Theorem 2) maps each scheduling
//! interval to a weighted set cover: elements are the queued requests, sets
//! are disks (weighted by the marginal energy of using them, Eq. 5), and
//! the chosen cover is where the requests go. The greedy
//! most-cost-effective-set rule used here is the classical `H_n`-factor
//! approximation the paper cites (§6); [`SetCoverInstance::solve_exact`]
//! is the optimality oracle for tests and ablations.

/// One candidate set: a weight and the elements it covers.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedSet {
    /// Cost of selecting this set (for the batch scheduler: Eq. 5 / Eq. 6
    /// marginal cost of the disk).
    pub weight: f64,
    /// Elements covered, as indices into `0..universe`.
    pub elements: Vec<u32>,
}

/// A weighted-set-cover instance over the universe `0..universe`.
#[derive(Debug, Clone, Default)]
pub struct SetCoverInstance {
    universe: usize,
    sets: Vec<WeightedSet>,
}

/// A solution: which sets were selected and their combined weight.
#[derive(Debug, Clone, PartialEq)]
pub struct Cover {
    /// Indices of selected sets, ascending.
    pub sets: Vec<usize>,
    /// Sum of the selected sets' weights.
    pub weight: f64,
}

impl SetCoverInstance {
    /// Creates an instance over `universe` elements.
    pub fn new(universe: usize) -> Self {
        SetCoverInstance {
            universe,
            sets: Vec::new(),
        }
    }

    /// Adds a candidate set; returns its index. Out-of-range elements and
    /// duplicates within a set are dropped; negative weights are clamped to
    /// zero.
    pub fn add_set(&mut self, weight: f64, elements: impl IntoIterator<Item = u32>) -> usize {
        let mut elems: Vec<u32> = elements
            .into_iter()
            .filter(|&e| (e as usize) < self.universe)
            .collect();
        elems.sort_unstable();
        elems.dedup();
        self.sets.push(WeightedSet {
            weight: if weight.is_finite() {
                weight.max(0.0)
            } else {
                0.0
            },
            elements: elems,
        });
        self.sets.len() - 1
    }

    /// Universe size.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Candidate sets.
    pub fn sets(&self) -> &[WeightedSet] {
        &self.sets
    }

    /// `true` if `cover` covers every element of the universe.
    pub fn is_cover(&self, cover: &[usize]) -> bool {
        let mut covered = vec![false; self.universe];
        for &s in cover {
            let Some(set) = self.sets.get(s) else {
                return false;
            };
            for &e in &set.elements {
                covered[e as usize] = true;
            }
        }
        covered.into_iter().all(|c| c)
    }

    fn weight_of(&self, cover: &[usize]) -> f64 {
        cover.iter().map(|&s| self.sets[s].weight).sum()
    }

    /// Greedy weighted set cover: repeatedly select the set minimizing
    /// `weight / newly covered` until everything is covered. Returns `None`
    /// if the universe is not coverable. `H_n`-approximate.
    ///
    /// Zero-weight sets have cost-effectiveness 0 and are always taken
    /// first — exactly the paper's behaviour where already-spinning disks
    /// (Eq. 5 weight 0) absorb requests before any standby disk is woken.
    ///
    /// # Examples
    ///
    /// ```
    /// use spindown_graph::setcover::SetCoverInstance;
    ///
    /// let mut inst = SetCoverInstance::new(3);
    /// inst.add_set(1.0, [0, 1]);
    /// inst.add_set(1.0, [2]);
    /// inst.add_set(10.0, [0, 1, 2]);
    /// let cover = inst.solve_greedy().unwrap();
    /// assert_eq!(cover.sets, vec![0, 1]);
    /// assert_eq!(cover.weight, 2.0);
    /// ```
    pub fn solve_greedy(&self) -> Option<Cover> {
        let mut covered = vec![false; self.universe];
        let mut remaining = self.universe;
        let mut chosen: Vec<usize> = Vec::new();
        let mut used = vec![false; self.sets.len()];

        while remaining > 0 {
            let mut best: Option<(f64, usize, usize)> = None; // (ratio, new, idx)
            for (i, s) in self.sets.iter().enumerate() {
                if used[i] {
                    continue;
                }
                let new = s.elements.iter().filter(|&&e| !covered[e as usize]).count();
                if new == 0 {
                    continue;
                }
                let ratio = s.weight / new as f64;
                let better = match best {
                    None => true,
                    Some((br, bn, bi)) => {
                        ratio < br - 1e-15
                            || ((ratio - br).abs() <= 1e-15 && (new > bn || (new == bn && i < bi)))
                    }
                };
                if better {
                    best = Some((ratio, new, i));
                }
            }
            let (_, _, idx) = best?;
            used[idx] = true;
            chosen.push(idx);
            for &e in &self.sets[idx].elements {
                if !covered[e as usize] {
                    covered[e as usize] = true;
                    remaining -= 1;
                }
            }
        }
        chosen.sort_unstable();
        Some(Cover {
            weight: self.weight_of(&chosen),
            sets: chosen,
        })
    }

    /// Exact minimum-weight cover by branch-and-bound on the lowest-index
    /// uncovered element. Exponential in the worst case — intended for
    /// tests and small batches; returns `None` if the universe is not
    /// coverable or exceeds `element_limit`.
    pub fn solve_exact(&self, element_limit: usize) -> Option<Cover> {
        if self.universe > element_limit {
            return None;
        }
        // Pre-index: which sets cover each element?
        let mut covering: Vec<Vec<usize>> = vec![Vec::new(); self.universe];
        for (i, s) in self.sets.iter().enumerate() {
            for &e in &s.elements {
                covering[e as usize].push(i);
            }
        }
        if covering.iter().any(|c| c.is_empty()) && self.universe > 0 {
            return None;
        }

        struct Ctx<'a> {
            inst: &'a SetCoverInstance,
            covering: Vec<Vec<usize>>,
            best_w: f64,
            best: Option<Vec<usize>>,
        }

        fn recurse(ctx: &mut Ctx<'_>, covered: &mut [bool], chosen: &mut Vec<usize>, w: f64) {
            if w >= ctx.best_w {
                return;
            }
            let Some(e) = covered.iter().position(|&c| !c) else {
                ctx.best_w = w;
                ctx.best = Some(chosen.clone());
                return;
            };
            // Try each set that covers e (clone-undo covered bitmap).
            for i in 0..ctx.covering[e].len() {
                let s = ctx.covering[e][i];
                if chosen.contains(&s) {
                    continue;
                }
                let newly: Vec<usize> = ctx.inst.sets[s]
                    .elements
                    .iter()
                    .map(|&x| x as usize)
                    .filter(|&x| !covered[x])
                    .collect();
                for &x in &newly {
                    covered[x] = true;
                }
                chosen.push(s);
                recurse(ctx, covered, chosen, w + ctx.inst.sets[s].weight);
                chosen.pop();
                for &x in &newly {
                    covered[x] = false;
                }
            }
        }

        let mut ctx = Ctx {
            inst: self,
            covering,
            best_w: f64::INFINITY,
            best: None,
        };
        let mut covered = vec![false; self.universe];
        let mut chosen = Vec::new();
        recurse(&mut ctx, &mut covered, &mut chosen, 0.0);
        let mut sets = ctx.best?;
        sets.sort_unstable();
        Some(Cover {
            weight: self.weight_of(&sets),
            sets,
        })
    }
}

/// The `n`-th harmonic number `H_n = 1 + 1/2 + … + 1/n` — the greedy
/// algorithm's approximation factor (paper §6).
pub fn harmonic(n: usize) -> f64 {
    (1..=n).map(|k| 1.0 / k as f64).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn greedy_prefers_free_sets() {
        let mut inst = SetCoverInstance::new(2);
        inst.add_set(0.0, [0]);
        inst.add_set(5.0, [0, 1]);
        inst.add_set(0.0, [1]);
        let c = inst.solve_greedy().unwrap();
        assert_eq!(c.sets, vec![0, 2]);
        assert_eq!(c.weight, 0.0);
    }

    #[test]
    fn greedy_none_when_uncoverable() {
        let mut inst = SetCoverInstance::new(3);
        inst.add_set(1.0, [0, 1]);
        assert!(inst.solve_greedy().is_none());
        assert!(inst.solve_exact(64).is_none());
    }

    #[test]
    fn empty_universe_is_trivially_covered() {
        let inst = SetCoverInstance::new(0);
        let c = inst.solve_greedy().unwrap();
        assert!(c.sets.is_empty());
        assert_eq!(c.weight, 0.0);
        let e = inst.solve_exact(64).unwrap();
        assert!(e.sets.is_empty());
    }

    #[test]
    fn exact_finds_cheaper_cover_than_greedy_trap() {
        // Classic greedy trap: one big set slightly cheaper per element at
        // first, but two small sets are cheaper overall.
        let mut inst = SetCoverInstance::new(4);
        inst.add_set(3.1, [0, 1, 2, 3]); // ratio 0.775
        inst.add_set(1.0, [0, 1]); // ratio 0.5
        inst.add_set(1.0, [2, 3]); // ratio 0.5
        let g = inst.solve_greedy().unwrap();
        let e = inst.solve_exact(64).unwrap();
        assert_eq!(e.sets, vec![1, 2]);
        assert!((e.weight - 2.0).abs() < 1e-12);
        assert!(g.weight >= e.weight);
        assert!(inst.is_cover(&g.sets));
        assert!(inst.is_cover(&e.sets));
    }

    #[test]
    fn greedy_within_harmonic_factor() {
        // On any instance greedy must be within H_n of optimal.
        let mut inst = SetCoverInstance::new(6);
        inst.add_set(2.0, [0, 1, 2]);
        inst.add_set(2.0, [3, 4, 5]);
        inst.add_set(1.0, [0, 3]);
        inst.add_set(1.0, [1, 4]);
        inst.add_set(1.0, [2, 5]);
        let g = inst.solve_greedy().unwrap();
        let e = inst.solve_exact(64).unwrap();
        assert!(g.weight <= harmonic(6) * e.weight + 1e-9);
    }

    #[test]
    fn add_set_sanitizes_input() {
        let mut inst = SetCoverInstance::new(3);
        let idx = inst.add_set(-5.0, [0, 0, 1, 99]);
        assert_eq!(inst.sets()[idx].weight, 0.0);
        assert_eq!(inst.sets()[idx].elements, vec![0, 1]);
        let idx2 = inst.add_set(f64::NAN, [2]);
        assert_eq!(inst.sets()[idx2].weight, 0.0);
    }

    #[test]
    fn is_cover_rejects_bad_indices() {
        let mut inst = SetCoverInstance::new(1);
        inst.add_set(1.0, [0]);
        assert!(!inst.is_cover(&[7]));
        assert!(inst.is_cover(&[0]));
        assert!(!inst.is_cover(&[]));
    }

    #[test]
    fn greedy_tie_breaks_deterministically() {
        let mut inst = SetCoverInstance::new(2);
        inst.add_set(1.0, [0, 1]);
        inst.add_set(1.0, [0, 1]);
        let c = inst.solve_greedy().unwrap();
        assert_eq!(c.sets, vec![0], "equal sets: lower index wins");
    }

    #[test]
    fn greedy_prefers_bigger_set_on_equal_ratio() {
        let mut inst = SetCoverInstance::new(3);
        inst.add_set(1.0, [0]); // ratio 1.0
        inst.add_set(2.0, [0, 1]); // ratio 1.0, but covers more
        inst.add_set(0.5, [2]);
        let c = inst.solve_greedy().unwrap();
        assert!(c.sets.contains(&1));
    }

    #[test]
    fn harmonic_values() {
        assert_eq!(harmonic(0), 0.0);
        assert_eq!(harmonic(1), 1.0);
        assert!((harmonic(2) - 1.5).abs() < 1e-12);
        assert!((harmonic(4) - (1.0 + 0.5 + 1.0 / 3.0 + 0.25)).abs() < 1e-12);
    }

    #[test]
    fn exact_respects_element_limit() {
        let mut inst = SetCoverInstance::new(100);
        for e in 0..100 {
            inst.add_set(1.0, [e]);
        }
        assert!(inst.solve_exact(10).is_none());
    }

    #[test]
    fn paper_fig2_batch_instance() {
        // Fig. 2: requests r1..r6 for data b1..b6; d1={b1,b2,b3,b5},
        // d2={b2,b3}, d3={b4,b6}, d4={b3,b4,b5,b6}. All disks standby, so
        // all weights are equal (E_up/down + TB*PI = 5 in the toy model).
        // Minimum cover: {d1, d3} (weight 10) — the paper's schedule B.
        let mut inst = SetCoverInstance::new(6);
        inst.add_set(5.0, [0, 1, 2, 4]); // d1 covers r1,r2,r3,r5
        inst.add_set(5.0, [1, 2]); // d2 covers r2,r3
        inst.add_set(5.0, [3, 5]); // d3 covers r4,r6
        inst.add_set(5.0, [2, 3, 4, 5]); // d4 covers r3,r4,r5,r6
        let e = inst.solve_exact(64).unwrap();
        assert_eq!(e.weight, 10.0, "schedule B uses two disks, energy 10");
        assert_eq!(e.sets, vec![0, 2]);
        let g = inst.solve_greedy().unwrap();
        assert_eq!(g.weight, 10.0, "greedy also finds a two-disk cover");
    }
}
