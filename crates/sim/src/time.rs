//! Simulation clock types.
//!
//! The simulator keeps time as an integer number of **microseconds** so that
//! event ordering is exact and runs are bit-for-bit reproducible. Floating
//! point is only used at the API boundary (converting to/from seconds for
//! human-facing configuration and reporting).

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Number of microseconds in one second.
pub const MICROS_PER_SEC: u64 = 1_000_000;

/// An absolute instant on the simulation clock, in microseconds since the
/// start of the run.
///
/// `SimTime` is a transparent newtype over `u64`; it is `Copy`, totally
/// ordered, and hashable, which makes it usable directly as an event-queue
/// key.
///
/// # Examples
///
/// ```
/// use spindown_sim::time::{SimTime, SimDuration};
///
/// let t0 = SimTime::ZERO;
/// let t1 = t0 + SimDuration::from_secs(5);
/// assert_eq!(t1.as_secs_f64(), 5.0);
/// assert_eq!(t1 - t0, SimDuration::from_secs(5));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulation time, in microseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant (useful as an "infinity" sentinel).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from raw microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Creates a time from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Creates a time from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * MICROS_PER_SEC)
    }

    /// Creates a time from fractional seconds, rounding to the nearest
    /// microsecond. Negative and non-finite inputs saturate to zero.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        SimTime(secs_to_micros(s))
    }

    /// Raw microseconds since the start of the run.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This instant expressed in fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// Time elapsed since `earlier`, saturating to zero if `earlier` is in
    /// the future.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition; `None` on overflow.
    #[inline]
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from raw microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Creates a duration from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Creates a duration from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * MICROS_PER_SEC)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// microsecond. Negative and non-finite inputs saturate to zero.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration(secs_to_micros(s))
    }

    /// Raw microseconds.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This span expressed in fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// `true` if the span is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiplies the span by a non-negative scale factor, rounding to the
    /// nearest microsecond.
    #[inline]
    pub fn mul_f64(self, k: f64) -> SimDuration {
        SimDuration(secs_to_micros(self.as_secs_f64() * k))
    }
}

#[inline]
fn secs_to_micros(s: f64) -> u64 {
    if s.is_nan() || s <= 0.0 {
        return 0;
    }
    if s == f64::INFINITY {
        return u64::MAX;
    }
    let us = s * MICROS_PER_SEC as f64;
    if us >= u64::MAX as f64 {
        u64::MAX
    } else {
        us.round() as u64
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    /// Elapsed time between two instants.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`; use
    /// [`SimTime::saturating_since`] when the ordering is not guaranteed.
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self >= rhs, "SimTime subtraction underflow");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(self >= rhs, "SimDuration subtraction underflow");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_secs(3).as_micros(), 3_000_000);
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimTime::from_micros(7).as_micros(), 7);
        assert_eq!(SimDuration::from_secs(2).as_secs_f64(), 2.0);
    }

    #[test]
    fn fractional_seconds_round_to_nearest_micro() {
        assert_eq!(SimTime::from_secs_f64(1.5).as_micros(), 1_500_000);
        assert_eq!(SimTime::from_secs_f64(0.000_000_4).as_micros(), 0);
        assert_eq!(SimTime::from_secs_f64(0.000_000_6).as_micros(), 1);
    }

    #[test]
    fn negative_and_nan_saturate_to_zero() {
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_secs_f64(f64::NEG_INFINITY),
            SimDuration::ZERO
        );
    }

    #[test]
    fn huge_seconds_saturate_to_max() {
        assert_eq!(SimTime::from_secs_f64(f64::INFINITY), SimTime::MAX);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_secs(4);
        assert_eq!((t + d).as_micros(), 14_000_000);
        assert_eq!((t - d).as_micros(), 6_000_000);
        assert_eq!(t - SimTime::from_secs(4), SimDuration::from_secs(6));
        assert_eq!(d * 3, SimDuration::from_secs(12));
        assert_eq!(d / 2, SimDuration::from_secs(2));
        assert_eq!(d + d, SimDuration::from_secs(8));
        assert_eq!(d - SimDuration::from_secs(1), SimDuration::from_secs(3));
    }

    #[test]
    fn saturating_since_handles_future_origin() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(5);
        assert_eq!(late.saturating_since(early), SimDuration::from_secs(4));
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
    }

    #[test]
    fn mul_f64_rounds() {
        let d = SimDuration::from_secs(10);
        assert_eq!(d.mul_f64(0.5), SimDuration::from_secs(5));
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
        assert_eq!(d.mul_f64(-2.0), SimDuration::ZERO);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert!(SimTime::MAX > SimTime::from_secs(1_000_000));
        assert!(SimDuration::ZERO.is_zero());
        assert!(!SimDuration::from_micros(1).is_zero());
    }

    #[test]
    fn checked_add_detects_overflow() {
        assert!(SimTime::MAX
            .checked_add(SimDuration::from_micros(1))
            .is_none());
        assert_eq!(
            SimTime::ZERO.checked_add(SimDuration::from_secs(1)),
            Some(SimTime::from_secs(1))
        );
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.500000");
        assert_eq!(format!("{:?}", SimDuration::from_secs(2)), "2.000000s");
    }
}
