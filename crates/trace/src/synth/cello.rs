//! Cello-like synthetic trace: bursty arrivals + skewed popularity.
//!
//! The real Cello trace (HP Labs timesharing workload, paper §4.1) is
//! characterized by high inter-arrival burstiness ("much higher burstness
//! and variation", §A.4) and Zipf-like block popularity. This generator
//! reproduces both with a multi-source Pareto-ON/OFF arrival process and a
//! Zipf popularity model.

use spindown_sim::rng::SimRng;

use crate::record::{OpKind, Trace, TraceRecord};
use crate::synth::arrivals::OnOffProcess;
use crate::synth::popularity::ZipfPopularity;
use crate::synth::TraceGenerator;

/// Builder for Cello-like traces.
///
/// Defaults match the paper's experimental scale: 70 000 requests over
/// 30 000 data items, 512 KB blocks, all reads (write off-loading is
/// assumed to have removed writes before the scheduler, §2.1).
///
/// # Examples
///
/// ```
/// use spindown_trace::synth::{CelloLike, TraceGenerator};
///
/// let trace = CelloLike { requests: 1000, data_items: 500, ..CelloLike::default() }
///     .generate(42);
/// assert_eq!(trace.len(), 1000);
/// assert!(trace.unique_data() <= 500);
/// ```
#[derive(Debug, Clone)]
pub struct CelloLike {
    /// Number of requests to generate.
    pub requests: usize,
    /// Number of distinct data items in the id space.
    pub data_items: usize,
    /// Zipf exponent of block popularity.
    pub popularity_z: f64,
    /// Block size, bytes.
    pub block_size: u64,
    /// Fraction of requests that are writes (0 = pure read workload).
    pub write_fraction: f64,
    /// The bursty arrival process.
    pub arrivals: OnOffProcess,
}

impl Default for CelloLike {
    fn default() -> Self {
        CelloLike {
            requests: 70_000,
            data_items: 30_000,
            popularity_z: 1.0,
            block_size: 512 * 1024,
            write_fraction: 0.0,
            arrivals: OnOffProcess {
                sources: 24,
                on_shape: 1.5,
                on_scale_s: 2.0,
                off_shape: 1.3,
                off_scale_s: 30.0,
                burst_rate: 25.0,
            },
        }
    }
}

impl CelloLike {
    /// Lazy equivalent of [`TraceGenerator::generate`]: yields the same
    /// records in the same (time-sorted) order without materializing a
    /// [`Trace`]. Memory is O(data_items + sources); see
    /// [`OnOffProcess::stream`] for how the arrival draws are replayed
    /// bit-identically.
    pub fn stream(&self, seed: u64) -> CelloStream {
        let mut rng = SimRng::seed_from_u64(seed ^ 0xCE110);
        let pop = ZipfPopularity::new(self.data_items, self.popularity_z, &mut rng)
            .expect("valid popularity parameters");
        let arrivals = self.arrivals.stream(&mut rng, self.requests);
        CelloStream {
            arrivals,
            rng,
            pop,
            block_size: self.block_size,
            write_fraction: self.write_fraction,
        }
    }
}

/// Lazy record stream for [`CelloLike`] — see [`CelloLike::stream`].
/// Differential tests pin it bit-identical to the batch generator.
#[derive(Debug)]
pub struct CelloStream {
    arrivals: crate::synth::arrivals::OnOffStream,
    rng: SimRng,
    pop: ZipfPopularity,
    block_size: u64,
    write_fraction: f64,
}

impl Iterator for CelloStream {
    type Item = TraceRecord;

    fn next(&mut self) -> Option<TraceRecord> {
        let at = self.arrivals.next()?;
        Some(TraceRecord {
            at,
            data: self.pop.sample(&mut self.rng),
            size: self.block_size,
            op: if self.rng.chance(self.write_fraction) {
                OpKind::Write
            } else {
                OpKind::Read
            },
        })
    }
}

impl TraceGenerator for CelloLike {
    fn generate(&self, seed: u64) -> Trace {
        let mut rng = SimRng::seed_from_u64(seed ^ 0xCE110);
        let pop = ZipfPopularity::new(self.data_items, self.popularity_z, &mut rng)
            .expect("valid popularity parameters");
        let times = self.arrivals.generate(&mut rng, self.requests);
        let records = times
            .into_iter()
            .map(|at| TraceRecord {
                at,
                data: pop.sample(&mut rng),
                size: self.block_size,
                op: if rng.chance(self.write_fraction) {
                    OpKind::Write
                } else {
                    OpKind::Read
                },
            })
            .collect();
        Trace::from_records(records)
    }

    fn name(&self) -> &'static str {
        "cello-like"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CelloLike {
        CelloLike {
            requests: 5_000,
            data_items: 2_000,
            ..CelloLike::default()
        }
    }

    #[test]
    fn generates_requested_count() {
        let t = small().generate(1);
        assert_eq!(t.len(), 5_000);
        assert!(t.records().iter().all(|r| r.size == 512 * 1024));
        assert!(t.records().iter().all(|r| r.op == OpKind::Read));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = small().generate(7);
        let b = small().generate(7);
        assert_eq!(a.records(), b.records());
        let c = small().generate(8);
        assert_ne!(a.records(), c.records());
    }

    #[test]
    fn popularity_is_skewed() {
        let t = CelloLike {
            requests: 30_000,
            data_items: 1_000,
            ..CelloLike::default()
        }
        .generate(3);
        // Count accesses per item; the hottest item should take far more
        // than the uniform share.
        let mut counts = vec![0u32; 1_000];
        for r in t.records() {
            counts[r.data.0 as usize] += 1;
        }
        let max = *counts.iter().max().unwrap() as f64;
        let uniform_share = 30_000.0 / 1_000.0;
        assert!(max > uniform_share * 20.0, "max {max}");
    }

    #[test]
    fn write_fraction_respected() {
        let t = CelloLike {
            requests: 10_000,
            write_fraction: 0.3,
            ..small()
        }
        .generate(5);
        let writes = t.records().iter().filter(|r| r.op == OpKind::Write).count();
        let frac = writes as f64 / 10_000.0;
        assert!((0.27..0.33).contains(&frac), "write fraction {frac}");
    }

    #[test]
    fn default_scale_matches_paper() {
        let g = CelloLike::default();
        assert_eq!(g.requests, 70_000);
        assert_eq!(g.data_items, 30_000);
        assert_eq!(g.name(), "cello-like");
    }

    /// The lazy stream is bit-identical to the batch oracle (arrival
    /// times via the k-way source merge AND the interleaved
    /// popularity/op draws).
    #[test]
    fn stream_matches_generate() {
        for (seed, wf) in [(7u64, 0.0), (12, 0.25)] {
            let gen = CelloLike {
                write_fraction: wf,
                ..small()
            };
            let batch = gen.generate(seed);
            let streamed: Vec<TraceRecord> = gen.stream(seed).collect();
            assert_eq!(streamed, batch.records());
        }
    }
}
