//! Experiment workloads and scales for the figure harness.

use spindown_core::experiment::requests_from_trace;
use spindown_core::model::Request;
use spindown_trace::synth::arrivals::OnOffProcess;
use spindown_trace::synth::{
    CelloLike, DiurnalLike, DiurnalProcess, FinancialLike, FlashCrowdLike, FlashCrowdProcess,
    TraceGenerator,
};

/// Experiment scale: the paper's full rig or a fast smoke-test variant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scale {
    /// Requests in the trace.
    pub requests: usize,
    /// Distinct data items.
    pub data_items: usize,
    /// Disks in the storage system.
    pub disks: u32,
    /// Aggregate arrival rate, requests per second. Determines the trace
    /// span (`requests / rate`) and therefore how many breakeven windows
    /// the experiment covers.
    pub rate: f64,
}

impl Scale {
    /// The paper's experimental scale (§4.1–4.2): 70 000 requests over
    /// 30 000 data items on 180 disks. The arrival rate is calibrated
    /// (see the `calibrate` binary) so the 2CPM-only saving at
    /// replication factor 1 lands near the paper's Fig. 6 anchor point
    /// (paper ≈ 0.88; ours ≈ 0.79) while the rf = 5 set-cover point
    /// lands near the paper's ≈ 0.52 (ours ≈ 0.60).
    pub fn paper() -> Self {
        Scale {
            requests: 70_000,
            data_items: 30_000,
            disks: 180,
            rate: 45.0,
        }
    }

    /// A reduced scale for quick runs (~10× fewer requests, a third of
    /// the disks, the same per-disk arrival rate — so spin-down dynamics
    /// keep the paper-scale shape).
    pub fn quick() -> Self {
        Scale {
            requests: 8_000,
            data_items: 3_500,
            disks: 60,
            rate: 15.0,
        }
    }

    /// Expected trace span in seconds.
    pub fn span_s(&self) -> f64 {
        self.requests as f64 / self.rate
    }

    /// The scenario × policy sweep scale: ~1850 s of trace (≈10
    /// flash-crowd cycles, ≈2 diurnal periods) on a fleet small enough
    /// that six event-loop simulations stay a sub-second bench
    /// iteration, but sparse enough per disk that quiet-period idle
    /// gaps dwarf the spin-down breakeven.
    pub fn policy_sweep() -> Self {
        Scale {
            requests: 12_000,
            data_items: 4_000,
            disks: 16,
            rate: 6.5,
        }
    }
}

/// The Cello-like generator at a given scale — exposed so streaming
/// benches can replay it lazily via [`CelloLike::stream`].
pub fn cello_like(scale: Scale) -> CelloLike {
    let sources = 24;
    let frac = on_fraction();
    CelloLike {
        requests: scale.requests,
        data_items: scale.data_items,
        arrivals: OnOffProcess {
            sources,
            on_shape: 1.5,
            on_scale_s: 2.0,
            off_shape: 1.3,
            off_scale_s: 30.0,
            // Aggregate ≈ sources × burst_rate × on-fraction = scale.rate.
            burst_rate: scale.rate / (sources as f64 * frac),
        },
        ..CelloLike::default()
    }
}

/// The Cello-like workload at a given scale: bursty multi-source
/// Pareto-ON/OFF arrivals, Zipf block popularity.
pub fn cello(scale: Scale, seed: u64) -> Vec<Request> {
    let trace = cello_like(scale).generate(seed);
    requests_from_trace(&trace)
}

fn on_fraction() -> f64 {
    // Mirrors OnOffProcess::on_fraction() for the parameters above.
    let e_on = 1.5 * 2.0 / 0.5;
    let e_off = 1.3 * 30.0 / 0.3;
    e_on / (e_on + e_off)
}

/// The diurnal workload at a given scale: sinusoid-modulated Poisson
/// arrivals averaging `scale.rate`. The 900 s period (shorter than the
/// trace-like default) lets the policy-sweep span cover two full
/// day/night cycles, so adaptive policies see both regimes.
pub fn diurnal(scale: Scale, seed: u64) -> Vec<Request> {
    let trace = DiurnalLike {
        requests: scale.requests,
        data_items: scale.data_items,
        arrivals: DiurnalProcess {
            base_rate: scale.rate,
            depth: 0.9,
            period_s: 900.0,
            phase: -std::f64::consts::FRAC_PI_2,
        },
        ..DiurnalLike::default()
    }
    .generate(seed);
    requests_from_trace(&trace)
}

/// The flash-crowd workload at a given scale: a background so sparse
/// that each disk's quiet-period inter-arrival mean sits well above the
/// spin-down breakeven (~16 s) — the regime where the quantile policy's
/// conditional-tail test can actually fire (an exponential quiet gap of
/// mean `m` passes a confidence of `c` only when `e^(-TB/m) >= c`) —
/// plus 10 s bursts every ~180 s carrying the rest of `scale.rate`.
pub fn flash_crowd(scale: Scale, seed: u64) -> Vec<Request> {
    let every_s = 180.0;
    let duration_s = 10.0;
    // ~100 s mean quiet gap per disk.
    let base = 0.01 * scale.disks as f64;
    let burst = (scale.rate - base) * (every_s + duration_s) / duration_s;
    assert!(burst > 0.0, "scale.rate too low for the background floor");
    let trace = FlashCrowdLike {
        requests: scale.requests,
        data_items: scale.data_items,
        arrivals: FlashCrowdProcess {
            base_rate: base,
            burst_rate: burst,
            burst_every_s: every_s,
            burst_duration_s: duration_s,
        },
        ..FlashCrowdLike::default()
    }
    .generate(seed);
    requests_from_trace(&trace)
}

/// The Financial1-like workload at a given scale: same aggregate rate as
/// Cello but Poisson (smooth) arrivals — the paper's only cross-trace
/// difference (§A.4).
pub fn financial(scale: Scale, seed: u64) -> Vec<Request> {
    let trace = FinancialLike {
        requests: scale.requests,
        data_items: scale.data_items,
        rate: scale.rate,
        ..FinancialLike::default()
    }
    .generate(seed);
    requests_from_trace(&trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales() {
        assert_eq!(Scale::paper().requests, 70_000);
        assert!(Scale::quick().requests < Scale::paper().requests);
        // Both scales span many breakeven windows (TB ≈ 16 s).
        assert!(Scale::paper().span_s() > 60.0 * 16.0);
        assert!(Scale::quick().span_s() > 30.0 * 16.0);
        // Same per-disk arrival rate at both scales.
        let per_disk = |s: Scale| s.rate / s.disks as f64;
        assert!((per_disk(Scale::paper()) - per_disk(Scale::quick())).abs() < 1e-9);
    }

    fn tiny(rate: f64) -> Scale {
        Scale {
            requests: 20_000,
            data_items: 5_000,
            disks: 16,
            rate,
        }
    }

    #[test]
    fn workloads_have_requested_shape() {
        for reqs in [cello(tiny(20.0), 1), financial(tiny(20.0), 1)] {
            assert_eq!(reqs.len(), 20_000);
            assert!(reqs.windows(2).all(|w| w[0].at <= w[1].at));
        }
    }

    #[test]
    fn cello_rate_tracks_scale() {
        let reqs = cello(tiny(20.0), 2);
        let span = reqs.last().unwrap().at.as_secs_f64();
        let rate = reqs.len() as f64 / span;
        assert!((8.0..40.0).contains(&rate), "rate {rate}");
    }

    #[test]
    fn financial_rate_tracks_scale() {
        let reqs = financial(tiny(20.0), 2);
        let span = reqs.last().unwrap().at.as_secs_f64();
        let rate = reqs.len() as f64 / span;
        assert!((17.0..23.0).contains(&rate), "rate {rate}");
    }
}
