//! Run metrics: everything the paper's evaluation section plots, plus the
//! exact merge operations that reassemble per-island partial metrics into
//! one global [`RunMetrics`] (see DESIGN.md §13).

use spindown_disk::state::DiskPowerState;
use spindown_sim::stats::LatencyHistogram;

use crate::model::DiskId;

/// Per-disk summary (one bar of the paper's Fig. 9/17).
#[derive(Debug, Clone, PartialEq)]
pub struct DiskSummary {
    /// Total energy consumed by the disk, joules.
    pub energy_j: f64,
    /// Fraction of the horizon spent in each power state, indexed by
    /// [`DiskPowerState::index`].
    pub state_fractions: [f64; DiskPowerState::COUNT],
    /// Spin-up transitions.
    pub spinups: u64,
    /// Spin-down transitions.
    pub spindowns: u64,
    /// Requests serviced.
    pub requests: u64,
}

impl DiskSummary {
    /// Fraction of time in standby — the sort key of Fig. 9.
    pub fn standby_fraction(&self) -> f64 {
        self.state_fractions[DiskPowerState::Standby.index()]
    }
}

/// Complete results of one simulation run.
///
/// `PartialEq` lets differential tests assert the streaming and
/// materialized pipelines produce bit-identical results.
#[derive(Debug, Clone, PartialEq)]
pub struct RunMetrics {
    /// Scheduler name.
    pub scheduler: String,
    /// Requests completed.
    pub requests: usize,
    /// Measurement horizon, seconds.
    pub horizon_s: f64,
    /// Total energy across all disks, joules.
    pub energy_j: f64,
    /// Energy an always-on configuration would consume over the same
    /// horizon (all disks idle throughout), joules — the Fig. 6/14
    /// normalization baseline.
    pub always_on_j: f64,
    /// Total spin-up transitions (all disks).
    pub spinups: u64,
    /// Total spin-down transitions (all disks).
    pub spindowns: u64,
    /// Response-time distribution (arrival → completion).
    pub response: LatencyHistogram,
    /// Per-disk summaries, indexed by disk id.
    pub per_disk: Vec<DiskSummary>,
    /// Optional sampled total-power timeline `(t_seconds, watts)` —
    /// populated when the system config enables sampling.
    pub power_timeline: Vec<(f64, f64)>,
    /// Peak number of events resident in the simulator's event queue.
    /// Under streamed ingestion this is bounded by in-flight disk work,
    /// not trace length — the metric that proves constant-memory replay.
    ///
    /// Under island-parallel replay each island has its own queue, so the
    /// merged value is the **maximum across islands** (the largest single
    /// queue), not a sum — it remains the per-loop memory bound.
    pub peak_events: usize,
    /// Peak number of requests buffered by the pipeline at once (batch
    /// buffer plus dispatched-but-uncompleted accounting).
    ///
    /// Like [`RunMetrics::peak_events`], merged across islands as a
    /// **per-island maximum**, not a sum.
    pub peak_in_flight: usize,
    /// Largest per-island lookahead buffer the stream splitter needed
    /// while routing arrivals to island event loops (0 for serial runs).
    /// An operational diagnostic: it depends on thread timing and is
    /// excluded from determinism comparisons.
    pub splitter_high_water: usize,
}

impl RunMetrics {
    /// Energy normalized to the always-on configuration (Fig. 6).
    pub fn normalized_energy(&self) -> f64 {
        if self.always_on_j <= 0.0 {
            0.0
        } else {
            self.energy_j / self.always_on_j
        }
    }

    /// Combined spin transitions — the Fig. 7/15 metric.
    pub fn spin_cycles(&self) -> u64 {
        self.spinups + self.spindowns
    }

    /// Mean response time, seconds (Fig. 8/16).
    pub fn response_mean_s(&self) -> f64 {
        self.response.mean()
    }

    /// 90th-percentile response time, seconds (Fig. 13).
    pub fn response_p90_s(&self) -> f64 {
        self.response.quantile(0.90)
    }

    /// Per-disk state fractions sorted by ascending standby time — the
    /// x-axis ordering of Fig. 9/17.
    pub fn fractions_sorted_by_standby(&self) -> Vec<[f64; DiskPowerState::COUNT]> {
        let mut rows: Vec<[f64; DiskPowerState::COUNT]> =
            self.per_disk.iter().map(|d| d.state_fractions).collect();
        rows.sort_by(|a, b| {
            a[DiskPowerState::Standby.index()]
                .partial_cmp(&b[DiskPowerState::Standby.index()])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        rows
    }

    /// Mean standby fraction across disks.
    pub fn mean_standby_fraction(&self) -> f64 {
        if self.per_disk.is_empty() {
            return 0.0;
        }
        self.per_disk
            .iter()
            .map(DiskSummary::standby_fraction)
            .sum::<f64>()
            / self.per_disk.len() as f64
    }

    /// Folds another run's metrics into this one, treating the two as
    /// disjoint shards of one system:
    ///
    /// * counters (`requests`, `spinups`, `spindowns`) and energies sum;
    /// * `horizon_s` takes the maximum (shards of one run share a horizon);
    /// * `response` histograms merge exactly (integer buckets);
    /// * `per_disk` concatenates in call order;
    /// * `power_timeline` merges **by sample index**: watts at the same
    ///   index sum, and the longer timeline's tail is kept as-is;
    /// * `peak_events` / `peak_in_flight` / `splitter_high_water` take the
    ///   maximum — peaks of independent loops never add.
    ///
    /// This is the general documented fold. The island runner itself uses
    /// [`merge_islands`], which additionally reassembles `per_disk` in
    /// global disk order and re-derives the summed fields from it so the
    /// float addition order matches the serial engine exactly.
    pub fn merge(&mut self, other: &RunMetrics) {
        self.requests += other.requests;
        self.horizon_s = self.horizon_s.max(other.horizon_s);
        self.energy_j += other.energy_j;
        self.always_on_j += other.always_on_j;
        self.spinups += other.spinups;
        self.spindowns += other.spindowns;
        self.response.merge(&other.response);
        self.per_disk.extend(other.per_disk.iter().cloned());
        for (i, &(t, w)) in other.power_timeline.iter().enumerate() {
            if i < self.power_timeline.len() {
                self.power_timeline[i].1 += w;
            } else {
                self.power_timeline.push((t, w));
            }
        }
        self.peak_events = self.peak_events.max(other.peak_events);
        self.peak_in_flight = self.peak_in_flight.max(other.peak_in_flight);
        self.splitter_high_water = self.splitter_high_water.max(other.splitter_high_water);
    }
}

/// Partial metrics of one finished island, ready for exact reassembly by
/// [`merge_islands`]. Produced by the island engine's finalization at the
/// *global* horizon, so every float here is already measured over the same
/// span the serial engine would use.
#[derive(Debug, Clone)]
pub struct IslandPart {
    /// Global ids of the island's disks, ascending.
    pub disk_ids: Vec<DiskId>,
    /// Summaries parallel to `disk_ids`.
    pub per_disk: Vec<DiskSummary>,
    /// The island's response histogram.
    pub response: LatencyHistogram,
    /// Arrivals routed to this island.
    pub requests: usize,
    /// Sample instants of the island's power-sampling chain, seconds.
    pub sample_times: Vec<f64>,
    /// Per-sample per-disk watt rows, flattened
    /// (`sample_times.len() × disk_ids.len()`, row-major).
    pub power_rows: Vec<f64>,
    /// Each disk's power draw after the island drained, parallel to
    /// `disk_ids`. Disk states freeze once an island's queue empties
    /// (transitions only happen via scheduled events), so this value
    /// stands in for every later global sample.
    pub drained_watts: Vec<f64>,
    /// Island-local event-queue high-water mark.
    pub peak_events: usize,
    /// Island-local in-flight high-water mark.
    pub peak_in_flight: usize,
}

/// Reassembles per-island partial metrics into the global [`RunMetrics`],
/// **exactly** reproducing the serial engine's floats:
///
/// * `per_disk` scatters each island's summaries back to global disk
///   order; `energy_j`/`spinups`/`spindowns` are then re-derived by
///   summing in that order — the identical float addition sequence the
///   serial engine performs;
/// * `power_timeline` merges by sample index: sample `k`'s total is the
///   global-disk-order sum of each disk's watts, taken from its island's
///   row `k` when the island was still sampling and from its frozen
///   drained watts afterwards (sample grids are identical integer-µs
///   lattices, so timestamps agree exactly);
/// * `response` histograms fold exactly (integer counters + float max);
/// * peaks take per-island maxima.
///
/// # Panics
///
/// Panics if the islands' disk ids don't cover `0..disks` exactly once.
pub fn merge_islands(
    scheduler: String,
    disks: u32,
    horizon_s: f64,
    always_on_j: f64,
    parts: Vec<IslandPart>,
    splitter_high_water: usize,
) -> RunMetrics {
    let n = disks as usize;
    let mut per_disk: Vec<Option<DiskSummary>> = vec![None; n];
    let mut response = LatencyHistogram::default();
    let mut requests = 0usize;
    let mut peak_events = 0usize;
    let mut peak_in_flight = 0usize;
    for part in &parts {
        assert_eq!(
            part.disk_ids.len(),
            part.per_disk.len(),
            "island summaries must be parallel to its disk ids"
        );
        for (id, summary) in part.disk_ids.iter().zip(&part.per_disk) {
            let slot = &mut per_disk[id.index()];
            assert!(slot.is_none(), "disk {id} claimed by two islands");
            *slot = Some(summary.clone());
        }
        response.merge(&part.response);
        requests += part.requests;
        peak_events = peak_events.max(part.peak_events);
        peak_in_flight = peak_in_flight.max(part.peak_in_flight);
    }
    let per_disk: Vec<DiskSummary> = per_disk
        .into_iter()
        .enumerate()
        .map(|(d, s)| s.unwrap_or_else(|| panic!("disk {d} not covered by any island")))
        .collect();

    // Sample grids are identical `k × interval` lattices; islands only
    // differ in how long their chains stayed alive. Per global sample,
    // read each disk's watts from its island's row (or its frozen
    // drained value) and sum in global disk order.
    let samples = parts.iter().map(|p| p.sample_times.len()).max().unwrap_or(0);
    let mut power_timeline = Vec::with_capacity(samples);
    if samples > 0 {
        let mut watts = vec![0.0f64; n];
        for k in 0..samples {
            let mut t = None;
            for part in &parts {
                let width = part.disk_ids.len();
                let row = if k < part.sample_times.len() {
                    t.get_or_insert(part.sample_times[k]);
                    Some(&part.power_rows[k * width..(k + 1) * width])
                } else {
                    None
                };
                for (l, id) in part.disk_ids.iter().enumerate() {
                    watts[id.index()] = match row {
                        Some(r) => r[l],
                        None => part.drained_watts[l],
                    };
                }
            }
            let total: f64 = watts.iter().sum();
            power_timeline.push((t.expect("some island sampled index k"), total));
        }
    }

    RunMetrics {
        scheduler,
        requests,
        horizon_s,
        energy_j: per_disk.iter().map(|d| d.energy_j).sum(),
        always_on_j,
        spinups: per_disk.iter().map(|d| d.spinups).sum(),
        spindowns: per_disk.iter().map(|d| d.spindowns).sum(),
        response,
        per_disk,
        power_timeline,
        peak_events,
        peak_in_flight,
        splitter_high_water,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(standby: f64, energy: f64) -> DiskSummary {
        let mut fractions = [0.0; DiskPowerState::COUNT];
        fractions[DiskPowerState::Standby.index()] = standby;
        fractions[DiskPowerState::Idle.index()] = 1.0 - standby;
        DiskSummary {
            energy_j: energy,
            state_fractions: fractions,
            spinups: 1,
            spindowns: 1,
            requests: 10,
        }
    }

    fn metrics() -> RunMetrics {
        RunMetrics {
            scheduler: "test".into(),
            requests: 30,
            horizon_s: 100.0,
            energy_j: 500.0,
            always_on_j: 1000.0,
            spinups: 3,
            spindowns: 2,
            response: LatencyHistogram::default(),
            per_disk: vec![
                summary(0.9, 100.0),
                summary(0.1, 300.0),
                summary(0.5, 100.0),
            ],
            power_timeline: Vec::new(),
            peak_events: 0,
            peak_in_flight: 0,
            splitter_high_water: 0,
        }
    }

    #[test]
    fn normalized_energy() {
        let m = metrics();
        assert!((m.normalized_energy() - 0.5).abs() < 1e-12);
        let mut z = metrics();
        z.always_on_j = 0.0;
        assert_eq!(z.normalized_energy(), 0.0);
    }

    #[test]
    fn spin_cycles_sum() {
        assert_eq!(metrics().spin_cycles(), 5);
    }

    #[test]
    fn standby_sort_ascending() {
        let rows = metrics().fractions_sorted_by_standby();
        let sb = DiskPowerState::Standby.index();
        assert!((rows[0][sb] - 0.1).abs() < 1e-12);
        assert!((rows[2][sb] - 0.9).abs() < 1e-12);
    }

    #[test]
    fn mean_standby() {
        let m = metrics();
        assert!((m.mean_standby_fraction() - 0.5).abs() < 1e-12);
        let empty = RunMetrics {
            per_disk: vec![],
            ..metrics()
        };
        assert_eq!(empty.mean_standby_fraction(), 0.0);
    }

    #[test]
    fn response_accessors() {
        let mut m = metrics();
        m.response.record_secs(0.01);
        m.response.record_secs(0.01);
        m.response.record_secs(10.0);
        assert!(m.response_mean_s() > 3.0);
        assert!(m.response_p90_s() >= 9.0);
    }

    #[test]
    fn merge_sums_counters_and_maxes_peaks() {
        let mut a = metrics();
        a.peak_events = 7;
        a.peak_in_flight = 2;
        a.splitter_high_water = 3;
        a.power_timeline = vec![(0.0, 10.0), (5.0, 12.0), (10.0, 8.0)];
        let mut b = metrics();
        b.requests = 12;
        b.spinups = 10;
        b.spindowns = 20;
        b.peak_events = 4;
        b.peak_in_flight = 9;
        b.power_timeline = vec![(0.0, 1.0), (5.0, 2.0)];
        a.merge(&b);
        assert_eq!(a.requests, 42);
        assert_eq!(a.spinups, 13);
        assert_eq!(a.spindowns, 22);
        assert_eq!(a.energy_j, 1000.0);
        assert_eq!(a.always_on_j, 2000.0);
        assert_eq!(a.per_disk.len(), 6);
        // Peaks are per-island maxima, never sums.
        assert_eq!(a.peak_events, 7);
        assert_eq!(a.peak_in_flight, 9);
        assert_eq!(a.splitter_high_water, 3);
        // Timeline merged by sample index; unmatched tail preserved.
        assert_eq!(a.power_timeline, vec![(0.0, 11.0), (5.0, 14.0), (10.0, 8.0)]);
    }

    #[test]
    fn merge_with_empty_side_is_identity_up_to_disks() {
        let mut a = metrics();
        a.response.record_secs(0.02);
        let reference = a.clone();
        let empty = RunMetrics {
            scheduler: "test".into(),
            requests: 0,
            horizon_s: 0.0,
            energy_j: 0.0,
            always_on_j: 0.0,
            spinups: 0,
            spindowns: 0,
            response: LatencyHistogram::default(),
            per_disk: Vec::new(),
            power_timeline: Vec::new(),
            peak_events: 0,
            peak_in_flight: 0,
            splitter_high_water: 0,
        };
        a.merge(&empty);
        assert_eq!(a, reference);
        let mut e = empty.clone();
        e.merge(&reference);
        assert_eq!(e.requests, reference.requests);
        assert_eq!(e.energy_j, reference.energy_j);
        assert_eq!(e.response, reference.response);
        assert_eq!(e.power_timeline, reference.power_timeline);
        assert_eq!(e.per_disk, reference.per_disk);
    }

    #[test]
    fn merge_histogram_buckets_align_exactly() {
        // Recording split across two runs and merging must land every
        // observation in the same bucket as recording serially.
        let mut serial = metrics();
        let mut left = metrics();
        let mut right = metrics();
        right.per_disk.clear();
        let values = [1e-5, 3e-4, 0.002, 0.002, 1.0, 14.9];
        for (i, &v) in values.iter().enumerate() {
            serial.response.record_secs(v);
            if i % 2 == 0 {
                left.response.record_secs(v);
            } else {
                right.response.record_secs(v);
            }
        }
        left.merge(&right);
        assert_eq!(left.response, serial.response);
    }

    fn part(ids: &[u32], energy: f64) -> IslandPart {
        IslandPart {
            disk_ids: ids.iter().copied().map(DiskId).collect(),
            per_disk: ids.iter().map(|_| summary(0.5, energy)).collect(),
            response: LatencyHistogram::default(),
            requests: ids.len(),
            sample_times: Vec::new(),
            power_rows: Vec::new(),
            drained_watts: vec![1.0; ids.len()],
            peak_events: ids.len(),
            peak_in_flight: 1,
        }
    }

    #[test]
    fn merge_islands_reassembles_global_disk_order() {
        // Islands {1,3} and {0,2}, presented out of global order.
        let mut p0 = part(&[1, 3], 10.0);
        p0.response.record_secs(0.5);
        let p1 = part(&[0, 2], 20.0);
        let m = merge_islands("x".into(), 4, 100.0, 400.0, vec![p0, p1], 5);
        assert_eq!(m.per_disk.len(), 4);
        assert_eq!(m.per_disk[0].energy_j, 20.0);
        assert_eq!(m.per_disk[1].energy_j, 10.0);
        assert_eq!(m.per_disk[2].energy_j, 20.0);
        assert_eq!(m.per_disk[3].energy_j, 10.0);
        assert_eq!(m.energy_j, 60.0);
        assert_eq!(m.requests, 4);
        assert_eq!(m.response.count(), 1);
        assert_eq!(m.peak_events, 2);
        assert_eq!(m.peak_in_flight, 1);
        assert_eq!(m.splitter_high_water, 5);
        assert_eq!(m.spinups, 4);
    }

    #[test]
    fn merge_islands_timeline_uses_drained_watts_for_short_chains() {
        // Island A sampled 3 times, island B only once: samples 1 and 2
        // must fall back to B's frozen drained watts.
        let mut a = part(&[0], 1.0);
        a.sample_times = vec![0.0, 5.0, 10.0];
        a.power_rows = vec![4.0, 5.0, 6.0];
        a.drained_watts = vec![0.5];
        let mut b = part(&[1], 1.0);
        b.sample_times = vec![0.0];
        b.power_rows = vec![9.0];
        b.drained_watts = vec![2.0];
        let m = merge_islands("x".into(), 2, 10.0, 20.0, vec![a, b], 0);
        assert_eq!(
            m.power_timeline,
            vec![(0.0, 4.0 + 9.0), (5.0, 5.0 + 2.0), (10.0, 6.0 + 2.0)]
        );
    }

    #[test]
    #[should_panic(expected = "claimed by two islands")]
    fn merge_islands_rejects_overlap() {
        merge_islands(
            "x".into(),
            2,
            1.0,
            1.0,
            vec![part(&[0], 1.0), part(&[0, 1], 1.0)],
            0,
        );
    }

    #[test]
    #[should_panic(expected = "not covered")]
    fn merge_islands_rejects_gaps() {
        merge_islands("x".into(), 3, 1.0, 1.0, vec![part(&[0, 2], 1.0)], 0);
    }
}
