//! Deterministic scoped-thread worker pool.
//!
//! One clamp-and-spawn implementation shared by every parallel substrate
//! in the workspace: experiment-grid cells
//! (`spindown-bench`'s `EvalGrid`), sharded conflict-graph construction
//! and per-disk offline evaluation (`spindown-core`). The contract is
//! strict determinism: results land in **pre-sized, index-addressed
//! slots**, so the output of [`map_indexed`] is bit-identical for every
//! worker count — parallelism only changes wall-clock, never bytes.
//!
//! Scheduling is a shared atomic cursor over the task index space (a
//! work queue, not a static partition), so a straggler task cannot idle
//! the other workers. `jobs = 1` never spawns a thread: the closure runs
//! inline on the caller's stack, making the serial path the literal
//! zero-overhead baseline the determinism suites compare against.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Environment variable consulted by [`Parallelism::from_env`]: a
/// positive integer worker count. Unset and empty fall back to 1
/// (serial); `0` and unparsable values are *rejected* — they also run
/// serial, but with a warning on stderr so a typo (`SPINDOWN_JOBS=0`,
/// `SPINDOWN_JOBS=max`) is never silently swallowed.
pub const JOBS_ENV_VAR: &str = "SPINDOWN_JOBS";

/// How one [`SPINDOWN_JOBS`](JOBS_ENV_VAR) value parsed. Split from the
/// environment read so every path has a deterministic unit test (env
/// mutation is racy under the parallel test harness).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobsParse {
    /// A valid worker count (≥ 1).
    Jobs(usize),
    /// Empty or whitespace-only: treated like unset (silent serial) —
    /// `SPINDOWN_JOBS= cmd` is the conventional shell idiom for "off".
    Unset,
    /// `0` or not a number: rejected; the caller warns and runs serial.
    Invalid,
}

fn parse_jobs(raw: &str) -> JobsParse {
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return JobsParse::Unset;
    }
    match trimmed.parse::<usize>() {
        Ok(n) if n >= 1 => JobsParse::Jobs(n),
        _ => JobsParse::Invalid,
    }
}

/// A resolved worker-thread count (always ≥ 1).
///
/// The precedence chain for user-facing tools is
/// [`Parallelism::resolve`]: an explicit setting (e.g. a `--jobs` flag)
/// wins, otherwise the [`SPINDOWN_JOBS`](JOBS_ENV_VAR) environment
/// variable, otherwise serial.
///
/// # Examples
///
/// ```
/// use spindown_sim::pool::Parallelism;
///
/// assert_eq!(Parallelism::new(0).get(), 1, "zero clamps to serial");
/// assert_eq!(Parallelism::new(8).get(), 8);
/// assert_eq!(Parallelism::resolve(Some(3)).get(), 3, "explicit wins");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Parallelism(usize);

impl Default for Parallelism {
    fn default() -> Self {
        Parallelism::SERIAL
    }
}

impl Parallelism {
    /// Serial execution: one worker, no threads spawned.
    pub const SERIAL: Parallelism = Parallelism(1);

    /// Creates a parallelism level; `0` is clamped to 1.
    pub fn new(jobs: usize) -> Self {
        Parallelism(jobs.max(1))
    }

    /// The worker count (≥ 1).
    pub fn get(self) -> usize {
        self.0
    }

    /// Reads [`SPINDOWN_JOBS`](JOBS_ENV_VAR) from the environment.
    /// Unset and empty yield serial silently; `0` and garbage are
    /// rejected with a warning on stderr (and also yield serial) rather
    /// than being silently resolved.
    pub fn from_env() -> Self {
        match std::env::var(JOBS_ENV_VAR) {
            Ok(v) => match parse_jobs(&v) {
                JobsParse::Jobs(n) => Parallelism(n),
                JobsParse::Unset => Parallelism::SERIAL,
                JobsParse::Invalid => {
                    eprintln!(
                        "warning: ignoring {JOBS_ENV_VAR}={v:?}: \
                         expected a worker count >= 1; running serial"
                    );
                    Parallelism::SERIAL
                }
            },
            Err(_) => Parallelism::SERIAL,
        }
    }

    /// Resolves the user-facing precedence chain: `explicit` (e.g. a
    /// `--jobs` flag) > [`SPINDOWN_JOBS`](JOBS_ENV_VAR) > serial.
    pub fn resolve(explicit: Option<usize>) -> Self {
        match explicit {
            Some(n) => Parallelism::new(n),
            None => Parallelism::from_env(),
        }
    }
}

/// Splits `0..len` into `shards` contiguous, balanced, in-order ranges
/// (the first `len % shards` ranges are one longer). Empty ranges are
/// never produced: the shard count is clamped to `1..=len` (a zero-length
/// input yields no ranges at all).
///
/// Sharded producers pair this with [`map_indexed`]: each shard fills its
/// own output slot and the caller concatenates slots in shard-index
/// order, which keeps the merged result independent of both the worker
/// count *and* the shard count whenever downstream consumers normalize
/// order (e.g. CSR finalization sorts each adjacency slice).
pub fn shard_ranges(len: usize, shards: usize) -> Vec<Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let shards = shards.clamp(1, len);
    let base = len / shards;
    let extra = len % shards;
    let mut out = Vec::with_capacity(shards);
    let mut start = 0usize;
    for s in 0..shards {
        let width = base + usize::from(s < extra);
        out.push(start..start + width);
        start += width;
    }
    debug_assert_eq!(start, len);
    out
}

/// Applies `f` to every index in `0..len` with up to `jobs` worker
/// threads and returns the results in index order.
///
/// * `jobs` is clamped to `1..=len`; `jobs = 1` (or `len <= 1`) runs
///   entirely on the calling thread — no spawn, no locks.
/// * Tasks are claimed from a shared atomic cursor, so scheduling adapts
///   to imbalance; each result is written to its own pre-sized slot, so
///   the returned `Vec` is **bit-identical for any `jobs` value**.
/// * A panic inside `f` propagates to the caller once the scope joins.
pub fn map_indexed<T, F>(jobs: usize, len: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let jobs = jobs.clamp(1, len.max(1));
    if jobs == 1 {
        return (0..len).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..len).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..jobs {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= len {
                    break;
                }
                let out = f(i);
                *slots[i].lock().expect("no panics hold the slot lock") = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("no panics hold the slot lock")
                .expect("work queue computed every slot")
        })
        .collect()
}

/// Sharded map-then-concatenate: runs `f` over [`shard_ranges`]`(len,
/// shards)` with up to `jobs` workers and flattens the per-shard outputs
/// in shard-index order.
///
/// This is the shape of both parallel substrates inside a single
/// simulation — conflict-graph pair enumeration (shards emit edge
/// buckets) and anything else whose serial output is a concatenation of
/// independent contiguous chunks. Because the flatten order is the shard
/// order and the shard order is the index order, the result equals the
/// serial `(0..len)` emission byte for byte.
pub fn map_sharded<T, F>(jobs: usize, len: usize, shards: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> Vec<T> + Sync,
{
    let ranges = shard_ranges(len, shards);
    map_indexed(jobs, ranges.len(), |s| f(ranges[s].clone()))
        .into_iter()
        .flatten()
        .collect()
}

/// Default shard multiplier: sharding finer than the worker count lets
/// the work queue absorb per-shard cost imbalance (dense disks, hot
/// request buckets) without a scheduling heuristic. Four shards per
/// worker keeps the merge bookkeeping negligible while bounding the
/// worst-case idle tail at ~¼ of one worker's share.
pub const SHARDS_PER_JOB: usize = 4;

/// Shard count for `jobs` workers over `len` tasks:
/// `jobs × SHARDS_PER_JOB`, clamped to `1..=len`.
pub fn default_shards(jobs: usize, len: usize) -> usize {
    jobs.saturating_mul(SHARDS_PER_JOB).clamp(1, len.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallelism_clamps_and_resolves() {
        assert_eq!(Parallelism::new(0), Parallelism::SERIAL);
        assert_eq!(Parallelism::new(5).get(), 5);
        assert_eq!(Parallelism::default(), Parallelism::SERIAL);
        assert_eq!(Parallelism::resolve(Some(0)).get(), 1);
        assert_eq!(Parallelism::resolve(Some(7)).get(), 7);
    }

    #[test]
    fn jobs_parse_accepts_positive_counts() {
        assert_eq!(parse_jobs("1"), JobsParse::Jobs(1));
        assert_eq!(parse_jobs("8"), JobsParse::Jobs(8));
        assert_eq!(parse_jobs("  16 "), JobsParse::Jobs(16), "whitespace trimmed");
    }

    #[test]
    fn jobs_parse_treats_empty_as_unset() {
        assert_eq!(parse_jobs(""), JobsParse::Unset);
        assert_eq!(parse_jobs("   "), JobsParse::Unset);
        assert_eq!(parse_jobs("\t"), JobsParse::Unset);
    }

    #[test]
    fn jobs_parse_rejects_zero() {
        assert_eq!(parse_jobs("0"), JobsParse::Invalid);
        assert_eq!(parse_jobs(" 0 "), JobsParse::Invalid);
    }

    #[test]
    fn jobs_parse_rejects_garbage() {
        for garbage in ["max", "-1", "2.5", "1x", "0x8", "eight", "+ 3"] {
            assert_eq!(parse_jobs(garbage), JobsParse::Invalid, "{garbage:?}");
        }
    }

    #[test]
    fn shard_ranges_cover_and_balance() {
        for len in [0usize, 1, 2, 7, 64, 1000] {
            for shards in [1usize, 2, 3, 8, 2000] {
                let ranges = shard_ranges(len, shards);
                if len == 0 {
                    assert!(ranges.is_empty());
                    continue;
                }
                assert_eq!(ranges.len(), shards.min(len));
                // Contiguous, in order, covering 0..len.
                assert_eq!(ranges.first().unwrap().start, 0);
                assert_eq!(ranges.last().unwrap().end, len);
                for w in ranges.windows(2) {
                    assert_eq!(w[0].end, w[1].start);
                }
                // Balanced within one.
                let min = ranges.iter().map(|r| r.len()).min().unwrap();
                let max = ranges.iter().map(|r| r.len()).max().unwrap();
                assert!(max - min <= 1, "len {len} shards {shards}");
                assert!(min >= 1);
            }
        }
    }

    #[test]
    fn map_indexed_matches_serial_for_any_jobs() {
        let serial: Vec<usize> = (0..100).map(|i| i * i).collect();
        for jobs in [1usize, 2, 3, 8, 200] {
            assert_eq!(map_indexed(jobs, 100, |i| i * i), serial, "jobs {jobs}");
        }
        assert!(map_indexed::<usize, _>(4, 0, |_| unreachable!()).is_empty());
    }

    #[test]
    fn map_sharded_equals_serial_concatenation() {
        let serial: Vec<usize> = (0..97).map(|i| i * 3).collect();
        for jobs in [1usize, 2, 8] {
            for shards in [1usize, 2, 5, 97, 500] {
                let got = map_sharded(jobs, 97, shards, |r| r.map(|i| i * 3).collect());
                assert_eq!(got, serial, "jobs {jobs} shards {shards}");
            }
        }
    }

    #[test]
    fn default_shards_oversubscribes_but_clamps() {
        assert_eq!(default_shards(1, 1000), SHARDS_PER_JOB);
        assert_eq!(default_shards(4, 1000), 4 * SHARDS_PER_JOB);
        assert_eq!(default_shards(8, 5), 5, "never more shards than tasks");
        assert_eq!(default_shards(8, 0), 1);
    }

    #[test]
    fn workers_share_one_queue() {
        // More tasks than workers with wildly uneven costs still produce
        // index-ordered output.
        let out = map_indexed(4, 37, |i| {
            if i % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            i
        });
        assert_eq!(out, (0..37).collect::<Vec<_>>());
    }
}
