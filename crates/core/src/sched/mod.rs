//! The paper's schedulers.
//!
//! | Scheduler | Model | Paper section | Type |
//! |-----------|-------|---------------|------|
//! | [`RandomScheduler`] | online | §4.3 | baseline |
//! | [`StaticScheduler`] | online | §4.3 | baseline |
//! | [`HeuristicScheduler`] | online | §3.3 | energy-aware (Eq. 6 cost) |
//! | [`LoadAwareScheduler`] | online | extension | join-the-shortest-queue baseline |
//! | [`WscScheduler`] | batch | §3.2 | energy-aware (weighted set cover) |
//! | [`MwisPlanner`] | offline | §3.1 | energy-aware (max-weight independent set) |
//!
//! Online and batch schedulers implement [`Scheduler`] and run inside the
//! event-driven system simulator. The offline planner has a different
//! lifecycle (it sees the whole request stream up front and is evaluated
//! analytically), so it lives behind its own API in [`mwis`].

mod heuristic;
mod load_aware;
pub mod mwis;
mod random;
mod static_;
mod wsc;

pub use heuristic::HeuristicScheduler;
pub use load_aware::LoadAwareScheduler;
pub use mwis::{MwisPlanner, MwisSolver, PlanScratch, ReplanStats, WindowedPlanner};
pub use random::RandomScheduler;
pub use static_::StaticScheduler;
pub use wsc::WscScheduler;

use spindown_disk::power::PowerParams;
use spindown_sim::time::{SimDuration, SimTime};

use crate::cost::DiskStatus;
use crate::model::{DataId, DiskId, Request};

/// Where a data item's replicas live. Implemented by
/// [`crate::placement::PlacementMap`] (the experiments) and by
/// [`ExplicitPlacement`] (toy instances, reductions, tests).
pub trait LocationProvider {
    /// All replica locations of `data`, original first. Must be non-empty
    /// and duplicate-free for every data id the request stream touches.
    fn locations(&self, data: DataId) -> &[DiskId];

    /// Number of disks in the system.
    fn disks(&self) -> u32;

    /// Number of data items when the placement is a dense table over
    /// `DataId(0..n)`, or `None` when the data-id universe is unknown.
    /// Island partitioning needs this to walk every replica set.
    fn data_items(&self) -> Option<usize> {
        None
    }
}

impl LocationProvider for crate::placement::PlacementMap {
    fn locations(&self, data: DataId) -> &[DiskId] {
        crate::placement::PlacementMap::locations(self, data)
    }

    fn disks(&self) -> u32 {
        crate::placement::PlacementMap::disks(self)
    }

    fn data_items(&self) -> Option<usize> {
        Some(crate::placement::PlacementMap::n_data(self))
    }
}

/// A placement given as an explicit per-data location table (index =
/// `DataId.0`).
#[derive(Debug, Clone)]
pub struct ExplicitPlacement {
    locations: Vec<Vec<DiskId>>,
    disks: u32,
}

impl ExplicitPlacement {
    /// Builds the placement.
    ///
    /// # Panics
    ///
    /// Panics if any location list is empty or contains a disk `>= disks`.
    pub fn new(locations: Vec<Vec<DiskId>>, disks: u32) -> Self {
        for (i, locs) in locations.iter().enumerate() {
            assert!(!locs.is_empty(), "data {i} has no locations");
            assert!(
                locs.iter().all(|d| d.0 < disks),
                "data {i} references an out-of-range disk"
            );
        }
        ExplicitPlacement { locations, disks }
    }
}

impl LocationProvider for ExplicitPlacement {
    fn locations(&self, data: DataId) -> &[DiskId] {
        &self.locations[data.0 as usize]
    }

    fn disks(&self) -> u32 {
        self.disks
    }

    fn data_items(&self) -> Option<usize> {
        Some(self.locations.len())
    }
}

/// Snapshot of the system the scheduler may consult when deciding.
pub struct SystemView<'a> {
    /// Current simulation time.
    pub now: SimTime,
    /// The power model (for Eq. 5).
    pub params: &'a PowerParams,
    /// Replica locations.
    pub placement: &'a dyn LocationProvider,
    /// Per-disk status, indexed by `DiskId`.
    pub statuses: &'a [DiskStatus],
}

impl<'a> SystemView<'a> {
    /// Status of one disk.
    pub fn status(&self, d: DiskId) -> &DiskStatus {
        &self.statuses[d.index()]
    }

    /// Replica locations of `data`.
    pub fn locations(&self, data: DataId) -> &[DiskId] {
        self.placement.locations(data)
    }
}

/// When the scheduler makes decisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleMode {
    /// Dispatch each request the moment it arrives.
    Online,
    /// Queue arrivals and dispatch them together every interval.
    Batch(SimDuration),
}

/// An online or batch scheduler: maps requests to one of their replica
/// locations.
pub trait Scheduler {
    /// Short name for reports (e.g. `"heuristic"`).
    fn name(&self) -> &'static str;

    /// Decision cadence. Online schedulers receive singleton slices in
    /// [`Scheduler::assign`]; batch schedulers receive everything queued
    /// in the last interval.
    fn mode(&self) -> ScheduleMode {
        ScheduleMode::Online
    }

    /// Chooses a disk for every request in `reqs`. The returned vector is
    /// parallel to `reqs`, and every choice must be one of the request's
    /// replica locations.
    fn assign(&mut self, reqs: &[Request], view: &SystemView<'_>) -> Vec<DiskId>;

    /// Allocation-free form of [`Scheduler::assign`]: writes the choices
    /// into `out` (cleared first). Engines call this on the hot path with
    /// a reused scratch vector, so online dispatch performs no
    /// per-arrival allocation. The default delegates to `assign`;
    /// the shipped schedulers override it and implement `assign` as a
    /// thin wrapper.
    fn assign_into(&mut self, reqs: &[Request], view: &SystemView<'_>, out: &mut Vec<DiskId>) {
        out.clear();
        out.append(&mut self.assign(reqs, view));
    }
}

// Forwarding impls so engines can hold schedulers either borrowed (the
// serial oracle path) or owned per worker thread (the island runner).
impl<T: Scheduler + ?Sized> Scheduler for &mut T {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn mode(&self) -> ScheduleMode {
        (**self).mode()
    }

    fn assign(&mut self, reqs: &[Request], view: &SystemView<'_>) -> Vec<DiskId> {
        (**self).assign(reqs, view)
    }

    fn assign_into(&mut self, reqs: &[Request], view: &SystemView<'_>, out: &mut Vec<DiskId>) {
        (**self).assign_into(reqs, view, out)
    }
}

impl<T: Scheduler + ?Sized> Scheduler for Box<T> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn mode(&self) -> ScheduleMode {
        (**self).mode()
    }

    fn assign(&mut self, reqs: &[Request], view: &SystemView<'_>) -> Vec<DiskId> {
        (**self).assign(reqs, view)
    }

    fn assign_into(&mut self, reqs: &[Request], view: &SystemView<'_>, out: &mut Vec<DiskId>) {
        (**self).assign_into(reqs, view, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_placement_lookups() {
        let p = ExplicitPlacement::new(vec![vec![DiskId(0)], vec![DiskId(1), DiskId(2)]], 3);
        assert_eq!(p.locations(DataId(0)), &[DiskId(0)]);
        assert_eq!(p.locations(DataId(1)).len(), 2);
        assert_eq!(p.disks(), 3);
    }

    #[test]
    #[should_panic(expected = "no locations")]
    fn explicit_placement_rejects_empty() {
        ExplicitPlacement::new(vec![vec![]], 1);
    }

    #[test]
    #[should_panic(expected = "out-of-range disk")]
    fn explicit_placement_rejects_out_of_range() {
        ExplicitPlacement::new(vec![vec![DiskId(5)]], 2);
    }
}
