//! Trace transformations: merging, time-windowing, and rate rescaling —
//! the pre-processing toolbox for running real traces through the
//! experiment harness (e.g. extracting a busy hour of Cello, or slowing a
//! trace down to stress the power manager).
//!
//! Each batch function here is a thin materializing wrapper over the
//! corresponding lazy adapter in [`crate::stream`]
//! ([`crate::stream::MergeStream`], [`crate::stream::WindowStream`],
//! [`crate::stream::RescaleStream`]) — compose the adapters directly to
//! transform traces too large to hold in memory.

use spindown_sim::time::SimTime;

use crate::record::Trace;
use crate::stream::{collect_trace, MergeStream, RescaleStream, WindowStream};

/// Merges multiple traces into one time-sorted stream (a k-way heap
/// merge under the hood). Data-id spaces are kept distinct by offsetting
/// each input's ids by the running maximum (`disjoint_data = true`), or
/// merged as-is (`false` — same ids refer to the same blocks).
pub fn merge(traces: &[&Trace], disjoint_data: bool) -> Trace {
    let mut offset: u64 = 0;
    let streams: Vec<_> = traces
        .iter()
        .map(|t| {
            let shift = if disjoint_data { offset } else { 0 };
            if disjoint_data {
                offset += t.data_space();
            }
            t.stream().map(move |r| {
                r.map(|mut rec| {
                    rec.data.0 += shift;
                    rec
                })
            })
        })
        .collect();
    collect_trace(MergeStream::new(streams)).expect("in-memory streams cannot fail")
}

/// Keeps only the records in `[from, to)`, rebased to start at zero.
pub fn window(trace: &Trace, from: SimTime, to: SimTime) -> Trace {
    collect_trace(WindowStream::new(trace.stream(), from, to))
        .expect("in-memory streams cannot fail")
}

/// Rescales all inter-arrival times by `factor` (> 1 stretches the trace
/// — lower rate; < 1 compresses it — higher rate). Request order, data
/// and sizes are untouched.
///
/// # Panics
///
/// Panics if `factor` is not strictly positive and finite.
pub fn rescale_time(trace: &Trace, factor: f64) -> Trace {
    collect_trace(RescaleStream::new(trace.stream(), factor))
        .expect("in-memory streams cannot fail")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{DataId, OpKind, TraceRecord};
    use spindown_sim::time::SimDuration;

    fn rec(at_s: f64, data: u64) -> TraceRecord {
        TraceRecord {
            at: SimTime::from_secs_f64(at_s),
            data: DataId(data),
            size: 4096,
            op: OpKind::Read,
        }
    }

    fn trace(recs: &[(f64, u64)]) -> Trace {
        Trace::from_records(recs.iter().map(|&(t, d)| rec(t, d)).collect())
    }

    #[test]
    fn merge_sorts_and_offsets_ids() {
        let a = trace(&[(0.0, 0), (2.0, 1)]);
        let b = trace(&[(1.0, 0)]);
        let merged = merge(&[&a, &b], true);
        assert_eq!(merged.len(), 3);
        let times: Vec<f64> = merged
            .records()
            .iter()
            .map(|r| r.at.as_secs_f64())
            .collect();
        assert_eq!(times, vec![0.0, 1.0, 2.0]);
        // b's data 0 was offset past a's space (max id 1 -> space 2).
        assert_eq!(merged.records()[1].data, DataId(2));
        assert_eq!(merged.unique_data(), 3);
    }

    #[test]
    fn merge_shared_ids() {
        let a = trace(&[(0.0, 7)]);
        let b = trace(&[(1.0, 7)]);
        let merged = merge(&[&a, &b], false);
        assert_eq!(merged.unique_data(), 1);
    }

    #[test]
    fn merge_empty_inputs() {
        let merged = merge(&[], true);
        assert!(merged.is_empty());
        let a = trace(&[(0.0, 0)]);
        let merged = merge(&[&a, &Trace::default()], true);
        assert_eq!(merged.len(), 1);
    }

    #[test]
    fn window_selects_and_rebases() {
        let t = trace(&[(0.0, 0), (5.0, 1), (10.0, 2), (15.0, 3)]);
        let w = window(&t, SimTime::from_secs(5), SimTime::from_secs(15));
        assert_eq!(w.len(), 2);
        assert_eq!(w.records()[0].at, SimTime::ZERO);
        assert_eq!(w.records()[1].at, SimTime::from_secs(5));
        assert_eq!(w.records()[0].data, DataId(1));
    }

    #[test]
    fn window_empty_range() {
        let t = trace(&[(0.0, 0)]);
        let w = window(&t, SimTime::from_secs(5), SimTime::from_secs(5));
        assert!(w.is_empty());
    }

    #[test]
    fn rescale_stretches_gaps() {
        let t = trace(&[(10.0, 0), (12.0, 1), (14.0, 2)]);
        let slow = rescale_time(&t, 3.0);
        assert_eq!(slow.start(), Some(SimTime::from_secs(10)));
        assert_eq!(slow.duration(), SimDuration::from_secs(12));
        let fast = rescale_time(&t, 0.5);
        assert_eq!(fast.duration(), SimDuration::from_secs(2));
        // Data and order preserved.
        let ids: Vec<u64> = fast.records().iter().map(|r| r.data.0).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn rescale_empty() {
        assert!(rescale_time(&Trace::default(), 2.0).is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rescale_rejects_zero() {
        rescale_time(&Trace::default(), 0.0);
    }
}
