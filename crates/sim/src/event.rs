//! Discrete-event queue.
//!
//! [`EventQueue`] is the heart of the simulation kernel: a priority queue of
//! `(SimTime, payload)` pairs ordered by time, with **stable FIFO ordering
//! for events scheduled at the same instant**. Stability matters for
//! reproducibility: two events at the same timestamp are always delivered in
//! the order they were scheduled, independent of queue internals.
//!
//! Two implementations share the exact same API and pop order:
//!
//! * [`WheelQueue`] — a hierarchical timing wheel (calendar queue), the
//!   production implementation. Scheduling and popping are O(1) amortized
//!   for the small, disk-bounded event populations the simulator carries
//!   (a few events per disk), instead of the heap's O(log n) comparisons
//!   and sift traffic.
//! * [`baseline::EventQueue`] — the original `BinaryHeap` implementation,
//!   kept as the differential oracle. The seeded suite in
//!   `tests/queue_differential.rs` pins both to bit-identical pop
//!   sequences, and the `baseline-queue` cargo feature re-points the
//!   [`EventQueue`] alias at the heap so any full-system run (including
//!   the 1M-line CI byte-diff) can be replayed on the oracle.
//!
//! # Why the wheel preserves FIFO tie order
//!
//! Ticks are integer microseconds ([`SimTime::as_micros`]). The wheel has
//! 11 levels of 64 slots (6 bits per level covers the full 64-bit tick
//! space); an event lands at the level of the highest bit in which its
//! time differs from the current tick, in the slot addressed by its time's
//! bits for that level. Three invariants make drain order exactly the
//! heap's earliest-time, then-lowest-seq order:
//!
//! 1. Every entry in a level-0 slot has the **same** timestamp (its upper
//!    bits equal the current tick's by construction, its low 6 bits are
//!    the slot index), so time never has to be compared inside a slot.
//! 2. Slot queues only ever append: direct schedules arrive in ascending
//!    seq order, and a cascade (re-filing a higher-level slot when time
//!    advances into it) moves entries in their stored order, which
//!    preserves relative seq order of equal-time entries. A level-0 slot
//!    receives at most one cascade batch — at the moment time enters its
//!    window, before any direct append can target it — so the whole slot
//!    stays seq-sorted without ever sorting.
//! 3. Time only moves to the lowest non-empty slot of the lowest
//!    non-empty level, which by the level/slot addressing is the minimum
//!    pending timestamp.

use std::cell::Cell;

use crate::time::SimTime;

/// A scheduled event: delivery time plus an opaque payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scheduled<T> {
    /// When the event fires.
    pub at: SimTime,
    /// The event payload.
    pub payload: T,
}

/// The production event queue. The `baseline-queue` cargo feature swaps
/// this alias to [`baseline::EventQueue`] so whole-system runs can be
/// replayed on the heap oracle.
#[cfg(not(feature = "baseline-queue"))]
pub type EventQueue<T> = WheelQueue<T>;

/// The production event queue (re-pointed at the heap oracle by the
/// `baseline-queue` cargo feature).
#[cfg(feature = "baseline-queue")]
pub type EventQueue<T> = baseline::EventQueue<T>;

/// Bits per wheel level; 64 slots each.
const LEVEL_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << LEVEL_BITS;
/// Levels; `11 × 6 = 66` bits covers the whole `u64` tick space, so no
/// overflow list is ever needed.
const LEVELS: usize = 11;

/// Sentinel "no node" link value.
const NIL: u32 = u32::MAX;

/// One arena cell: an event plus its intrusive slot-list link. The
/// payload is an `Option` only so [`WheelQueue::pop`] can move it out of
/// the arena without unsafe code; a node on a slot list is always `Some`.
struct WheelNode<T> {
    at: SimTime,
    next: u32,
    payload: Option<T>,
}

/// A hierarchical timing wheel with the heap's exact pop order: earliest
/// time first, FIFO among equal times. See the [module docs](self) for
/// the ordering argument.
///
/// # Examples
///
/// ```
/// use spindown_sim::event::EventQueue;
/// use spindown_sim::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs(2), "late");
/// q.schedule(SimTime::from_secs(1), "early");
/// q.schedule(SimTime::from_secs(1), "early-second");
///
/// assert_eq!(q.pop().unwrap().payload, "early");
/// assert_eq!(q.pop().unwrap().payload, "early-second");
/// assert_eq!(q.pop().unwrap().payload, "late");
/// assert!(q.pop().is_none());
/// ```
pub struct WheelQueue<T> {
    /// All pending events, in one contiguous allocation; freed cells are
    /// chained through `next` into a free list. Slot membership is an
    /// intrusive singly-linked list over this arena, so a cascade re-files
    /// a whole slot by rewriting links — payloads never move, and the
    /// working set stays in one block instead of 704 separate buffers.
    arena: Vec<WheelNode<T>>,
    /// Head of the free list (`NIL` when every cell is live).
    free: u32,
    /// Per-slot list head, `LEVELS × SLOTS` row-major (`NIL` = empty).
    /// Entries within a slot are in insertion order — the wheel needs no
    /// sequence stamps: FIFO among equal times is structural (slots only
    /// ever append, in schedule order), unlike the heap baseline which
    /// buys it with a per-entry counter.
    head: Vec<u32>,
    /// Per-slot list tail (`NIL` = empty), for O(1) append.
    tail: Vec<u32>,
    /// Per-slot minimum pending tick (`u64::MAX` when empty), maintained
    /// on every push so [`Self::compute_next`] never has to walk a slot's
    /// entries: higher-level slots span a range of ticks, and scanning one
    /// on every cold peek is the dominant cost of a pop-heavy run.
    slot_min: Vec<u64>,
    /// Per-level occupancy bitmap: bit `s` set ⇔ slot `s` is non-empty.
    occupied: [u64; LEVELS],
    /// Tick (microseconds) of the level-0 slot currently being drained.
    /// Equal to `watermark` between `pop` calls.
    now_tick: u64,
    /// Time of the most recently popped event; used to detect scheduling
    /// into the past (a logic error in the caller).
    watermark: SimTime,
    len: usize,
    /// Cached earliest pending time; `None` = unknown (recompute on peek).
    next_at: Cell<Option<SimTime>>,
}

impl<T> Default for WheelQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> WheelQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        WheelQueue {
            arena: Vec::new(),
            free: NIL,
            head: vec![NIL; LEVELS * SLOTS],
            tail: vec![NIL; LEVELS * SLOTS],
            slot_min: vec![u64::MAX; LEVELS * SLOTS],
            occupied: [0; LEVELS],
            now_tick: 0,
            watermark: SimTime::ZERO,
            len: 0,
            next_at: Cell::new(None),
        }
    }

    /// Creates an empty queue sized for `cap` pending events (pre-reserves
    /// the arena).
    pub fn with_capacity(cap: usize) -> Self {
        let mut q = Self::new();
        q.arena.reserve(cap);
        q
    }

    /// Takes a cell off the free list (or grows the arena) and fills it.
    fn alloc(&mut self, at: SimTime, payload: T) -> u32 {
        if self.free == NIL {
            let idx = self.arena.len() as u32;
            self.arena.push(WheelNode {
                at,
                next: NIL,
                payload: Some(payload),
            });
            idx
        } else {
            let idx = self.free;
            let n = &mut self.arena[idx as usize];
            self.free = n.next;
            n.at = at;
            n.next = NIL;
            n.payload = Some(payload);
            idx
        }
    }

    /// Schedules `payload` for delivery at `at`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `at` is earlier than the time of the most
    /// recently popped event — scheduling into the simulated past is always
    /// a bug in the caller.
    pub fn schedule(&mut self, at: SimTime, payload: T) {
        debug_assert!(
            at >= self.watermark,
            "scheduled event at {at:?} before current time {:?}",
            self.watermark
        );
        self.len += 1;
        match self.next_at.get() {
            _ if self.len == 1 => self.next_at.set(Some(at)),
            Some(t) if at < t => self.next_at.set(Some(at)),
            _ => {}
        }
        let node = self.alloc(at, payload);
        self.insert(node);
    }

    /// Files an unlinked node at the level/slot addressed by its time
    /// relative to `now_tick`. Does not touch `len` — shared by
    /// [`Self::schedule`] and the cascade in [`Self::advance`].
    fn insert(&mut self, node: u32) {
        // Release-mode safety: a caller scheduling into the past (caught by
        // the debug assert) degrades to immediate delivery instead of
        // filing into an already-drained slot.
        let t = self.arena[node as usize].at.as_micros().max(self.now_tick);
        let diff = t ^ self.now_tick;
        let (level, slot) = if diff == 0 {
            (0, (t & (SLOTS as u64 - 1)) as usize)
        } else {
            let level = ((63 - diff.leading_zeros()) / LEVEL_BITS) as usize;
            let slot = ((t >> (LEVEL_BITS as usize * level)) & (SLOTS as u64 - 1)) as usize;
            (level, slot)
        };
        let idx = level * SLOTS + slot;
        self.arena[node as usize].next = NIL;
        let tail = self.tail[idx];
        if tail == NIL {
            self.head[idx] = node;
        } else {
            self.arena[tail as usize].next = node;
        }
        self.tail[idx] = node;
        self.slot_min[idx] = self.slot_min[idx].min(t);
        self.occupied[level] |= 1 << slot;
    }

    /// Moves `now_tick` to the next non-empty slot, cascading one
    /// higher-level slot down when the current 64-tick window is spent.
    /// Requires a non-empty queue and an empty current level-0 slot.
    fn advance(&mut self) {
        debug_assert!(self.len > 0, "advance on empty wheel");
        let cur0 = (self.now_tick & (SLOTS as u64 - 1)) as u32;
        let bits0 = self.occupied[0] & (!0u64 << cur0);
        if bits0 != 0 {
            // Next event lives in the current window: step within level 0.
            self.now_tick = (self.now_tick & !(SLOTS as u64 - 1)) | u64::from(bits0.trailing_zeros());
            return;
        }
        for level in 1..LEVELS {
            let bits = self.occupied[level];
            if bits == 0 {
                continue;
            }
            // Lowest slot of the lowest non-empty level holds the earliest
            // pending entries (levels below it are empty). Jump time to the
            // slot's base and re-file its entries relative to the new now —
            // they all land strictly below `level`.
            let slot = bits.trailing_zeros() as usize;
            self.occupied[level] &= !(1u64 << slot);
            let shift = LEVEL_BITS as usize * level;
            let upper = if shift + LEVEL_BITS as usize >= 64 {
                0
            } else {
                !((1u64 << (shift + LEVEL_BITS as usize)) - 1)
            };
            self.now_tick = (self.now_tick & upper) | ((slot as u64) << shift);
            let idx = level * SLOTS + slot;
            self.slot_min[idx] = u64::MAX;
            let mut cur = self.head[idx];
            self.head[idx] = NIL;
            self.tail[idx] = NIL;
            // Walk the detached list in stored order, re-filing each node
            // by link surgery alone — payloads stay where they are.
            while cur != NIL {
                let next = self.arena[cur as usize].next;
                self.insert(cur);
                cur = next;
            }
            return;
        }
        unreachable!("non-empty wheel with all bitmaps clear");
    }

    /// Removes and returns the earliest event, advancing the internal
    /// watermark to its time.
    pub fn pop(&mut self) -> Option<Scheduled<T>> {
        if self.len == 0 {
            return None;
        }
        loop {
            let idx = (self.now_tick & (SLOTS as u64 - 1)) as usize;
            let node = self.head[idx];
            if node != NIL {
                let n = &mut self.arena[node as usize];
                let at = n.at;
                debug_assert_eq!(at.as_micros(), self.now_tick, "level-0 slot holds one tick");
                let payload = n.payload.take().expect("listed node has a payload");
                let next = n.next;
                n.next = self.free;
                self.free = node;
                self.head[idx] = next;
                if next == NIL {
                    self.tail[idx] = NIL;
                    self.occupied[0] &= !(1u64 << idx);
                    self.slot_min[idx] = u64::MAX;
                    self.next_at.set(None);
                } else {
                    // Same slot, same tick: the cached minimum is unchanged.
                    self.next_at.set(Some(at));
                }
                self.len -= 1;
                self.watermark = at;
                return Some(Scheduled { at, payload });
            }
            self.advance();
        }
    }

    /// The delivery time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        if self.len == 0 {
            return None;
        }
        if let Some(t) = self.next_at.get() {
            return Some(t);
        }
        let t = self.compute_next();
        debug_assert!(t.is_some(), "len > 0 but no pending entry found");
        self.next_at.set(t);
        t
    }

    /// Scans the bitmaps for the earliest pending time. O(levels): the
    /// per-slot minimum is maintained on insert, so no slot is walked.
    /// Called only when the cache is cold.
    fn compute_next(&self) -> Option<SimTime> {
        for level in 0..LEVELS {
            let bits = self.occupied[level];
            if bits == 0 {
                continue;
            }
            // Lowest occupied slot of the lowest non-empty level holds the
            // earliest pending entries (see `advance`).
            let slot = bits.trailing_zeros() as usize;
            return Some(SimTime::from_micros(self.slot_min[level * SLOTS + slot]));
        }
        None
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The time of the most recently popped event (the queue's notion of
    /// "now").
    pub fn now(&self) -> SimTime {
        self.watermark
    }

    /// Resets the queue to its freshly-constructed state, keeping the slot
    /// allocations: pending events are dropped and the watermark returns
    /// to zero. A cleared queue schedules and drains exactly like a fresh
    /// one — the heap baseline additionally rewinds its FIFO tie-break
    /// counter here; the wheel's tie order is structural, so dropping the
    /// entries is already enough — and warm engines can recycle queues
    /// across runs without reallocating.
    pub fn clear(&mut self) {
        for level in 0..LEVELS {
            let mut bits = self.occupied[level];
            while bits != 0 {
                let slot = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                self.head[level * SLOTS + slot] = NIL;
                self.tail[level * SLOTS + slot] = NIL;
                self.slot_min[level * SLOTS + slot] = u64::MAX;
            }
            self.occupied[level] = 0;
        }
        self.arena.clear();
        self.free = NIL;
        self.now_tick = 0;
        self.watermark = SimTime::ZERO;
        self.len = 0;
        self.next_at.set(None);
    }

    /// Number of events the queue can hold without reallocating.
    pub fn capacity(&self) -> usize {
        self.arena.capacity()
    }
}

pub mod baseline {
    //! The original `BinaryHeap` event queue, kept as the differential
    //! oracle for [`WheelQueue`](super::WheelQueue) (and selectable as the
    //! production queue via the `baseline-queue` cargo feature).

    use std::cmp::Ordering;
    use std::collections::BinaryHeap;

    use super::Scheduled;
    use crate::time::SimTime;

    struct Entry<T> {
        at: SimTime,
        seq: u64,
        payload: T,
    }

    impl<T> PartialEq for Entry<T> {
        fn eq(&self, other: &Self) -> bool {
            self.at == other.at && self.seq == other.seq
        }
    }
    impl<T> Eq for Entry<T> {}

    impl<T> PartialOrd for Entry<T> {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }

    impl<T> Ord for Entry<T> {
        fn cmp(&self, other: &Self) -> Ordering {
            // BinaryHeap is a max-heap; invert so the earliest time (and among
            // equal times, the smallest sequence number) is popped first.
            other
                .at
                .cmp(&self.at)
                .then_with(|| other.seq.cmp(&self.seq))
        }
    }

    /// A time-ordered event queue with stable FIFO tie-breaking, backed by
    /// a binary heap. Same API and pop order as
    /// [`WheelQueue`](super::WheelQueue).
    pub struct EventQueue<T> {
        heap: BinaryHeap<Entry<T>>,
        seq: u64,
        /// Time of the most recently popped event; used to detect scheduling
        /// into the past (a logic error in the caller).
        watermark: SimTime,
    }

    impl<T> Default for EventQueue<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<T> EventQueue<T> {
        /// Creates an empty queue.
        pub fn new() -> Self {
            EventQueue {
                heap: BinaryHeap::new(),
                seq: 0,
                watermark: SimTime::ZERO,
            }
        }

        /// Creates an empty queue with pre-allocated capacity.
        pub fn with_capacity(cap: usize) -> Self {
            EventQueue {
                heap: BinaryHeap::with_capacity(cap),
                seq: 0,
                watermark: SimTime::ZERO,
            }
        }

        /// Schedules `payload` for delivery at `at`.
        ///
        /// # Panics
        ///
        /// Panics in debug builds if `at` is earlier than the time of the most
        /// recently popped event — scheduling into the simulated past is always
        /// a bug in the caller.
        pub fn schedule(&mut self, at: SimTime, payload: T) {
            debug_assert!(
                at >= self.watermark,
                "scheduled event at {at:?} before current time {:?}",
                self.watermark
            );
            let seq = self.seq;
            self.seq += 1;
            self.heap.push(Entry { at, seq, payload });
        }

        /// Removes and returns the earliest event, advancing the internal
        /// watermark to its time.
        pub fn pop(&mut self) -> Option<Scheduled<T>> {
            let e = self.heap.pop()?;
            self.watermark = e.at;
            Some(Scheduled {
                at: e.at,
                payload: e.payload,
            })
        }

        /// The delivery time of the earliest pending event.
        pub fn peek_time(&self) -> Option<SimTime> {
            self.heap.peek().map(|e| e.at)
        }

        /// Number of pending events.
        pub fn len(&self) -> usize {
            self.heap.len()
        }

        /// `true` if no events are pending.
        pub fn is_empty(&self) -> bool {
            self.heap.is_empty()
        }

        /// The time of the most recently popped event (the queue's notion of
        /// "now").
        pub fn now(&self) -> SimTime {
            self.watermark
        }

        /// Resets the queue to its freshly-constructed state, keeping the heap
        /// allocation: pending events are dropped and both the FIFO tie-break
        /// counter and the watermark return to zero. A cleared queue behaves
        /// exactly like `with_capacity(self.capacity())`, so warm engines can
        /// recycle queues across runs without reallocating.
        pub fn clear(&mut self) {
            self.heap.clear();
            self.seq = 0;
            self.watermark = SimTime::ZERO;
        }

        /// Number of events the queue can hold without reallocating.
        pub fn capacity(&self) -> usize {
            self.heap.capacity()
        }

        #[cfg(test)]
        pub(crate) fn seq_for_tests(&self) -> u64 {
            self.seq
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    // The shared behavioral suite runs against both implementations via a
    // tiny macro; wheel-specific cases (rollover, cascades, clear-reuse on
    // the slot structure) follow below, and the cross-implementation
    // differential suite lives in `tests/queue_differential.rs`.
    macro_rules! queue_suite {
        ($modname:ident, $Queue:ident) => {
            mod $modname {
                use super::*;

                #[test]
                fn pops_in_time_order() {
                    let mut q = $Queue::new();
                    for &s in &[5u64, 1, 9, 3, 7] {
                        q.schedule(SimTime::from_secs(s), s);
                    }
                    let mut out = Vec::new();
                    while let Some(e) = q.pop() {
                        out.push(e.payload);
                    }
                    assert_eq!(out, vec![1, 3, 5, 7, 9]);
                }

                #[test]
                fn equal_times_are_fifo() {
                    let mut q = $Queue::new();
                    let t = SimTime::from_secs(1);
                    for i in 0..100 {
                        q.schedule(t, i);
                    }
                    let mut out = Vec::new();
                    while let Some(e) = q.pop() {
                        out.push(e.payload);
                    }
                    assert_eq!(out, (0..100).collect::<Vec<_>>());
                }

                #[test]
                fn interleaved_schedule_and_pop_stays_fifo() {
                    let mut q = $Queue::new();
                    let t = SimTime::from_secs(1);
                    q.schedule(t, "a");
                    q.schedule(t, "b");
                    assert_eq!(q.pop().unwrap().payload, "a");
                    q.schedule(t, "c");
                    assert_eq!(q.pop().unwrap().payload, "b");
                    assert_eq!(q.pop().unwrap().payload, "c");
                }

                #[test]
                fn watermark_tracks_pops() {
                    let mut q = $Queue::new();
                    assert_eq!(q.now(), SimTime::ZERO);
                    q.schedule(SimTime::from_secs(4), ());
                    q.pop();
                    assert_eq!(q.now(), SimTime::from_secs(4));
                }

                #[test]
                #[should_panic(expected = "before current time")]
                #[cfg(debug_assertions)]
                fn scheduling_into_past_panics() {
                    let mut q = $Queue::new();
                    q.schedule(SimTime::from_secs(10), ());
                    q.pop();
                    q.schedule(SimTime::from_secs(1), ());
                }

                #[test]
                fn peek_len_empty_clear() {
                    let mut q = $Queue::with_capacity(8);
                    assert!(q.is_empty());
                    assert_eq!(q.peek_time(), None);
                    q.schedule(SimTime::from_secs(2), ());
                    q.schedule(SimTime::from_secs(1), ());
                    assert_eq!(q.len(), 2);
                    assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
                    q.clear();
                    assert!(q.is_empty());
                }

                #[test]
                fn clear_then_reuse_restarts_tie_order() {
                    // PR 8's warm engines rely on `clear` resetting the
                    // FIFO counter and watermark exactly like a fresh
                    // queue: a second run's same-time events must drain in
                    // schedule order, and early times must be legal again.
                    let mut q = $Queue::with_capacity(64);
                    let cap = q.capacity();
                    let t = SimTime::from_secs(9);
                    for i in 0..50 {
                        q.schedule(t, i);
                    }
                    q.pop();
                    assert_eq!(q.now(), t);
                    q.clear();
                    assert!(q.is_empty());
                    assert_eq!(q.now(), SimTime::ZERO);
                    assert!(q.capacity() >= cap, "clear must keep the allocation");
                    q.schedule(SimTime::from_secs(1), 100);
                    q.schedule(SimTime::from_secs(1), 101);
                    assert_eq!(q.pop().unwrap().payload, 100);
                    assert_eq!(q.pop().unwrap().payload, 101);
                }

                #[test]
                fn same_time_as_now_is_allowed() {
                    let mut q = $Queue::new();
                    q.schedule(SimTime::from_secs(1), 0);
                    q.pop();
                    // Re-scheduling at exactly `now` must be fine (zero-delay events).
                    q.schedule(q.now(), 1);
                    assert_eq!(q.pop().unwrap().at, SimTime::from_secs(1));
                }

                #[test]
                fn large_volume_is_sorted() {
                    let mut q = $Queue::new();
                    // Deterministic pseudo-shuffle.
                    let mut x: u64 = 0x9E3779B97F4A7C15;
                    for _ in 0..10_000 {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        q.schedule(SimTime::from_micros(x % 1_000_000), ());
                    }
                    let mut prev = SimTime::ZERO;
                    while let Some(e) = q.pop() {
                        assert!(e.at >= prev);
                        prev = e.at;
                    }
                    let _ = prev + SimDuration::ZERO;
                }
            }
        };
    }

    use baseline::EventQueue as BaselineQueue;
    queue_suite!(wheel, WheelQueue);
    queue_suite!(heap, BaselineQueue);

    #[test]
    fn baseline_clear_resets_seq_counter() {
        let mut q = BaselineQueue::new();
        q.schedule(SimTime::from_secs(1), ());
        q.schedule(SimTime::from_secs(1), ());
        q.clear();
        q.schedule(SimTime::from_secs(1), ());
        q.schedule(SimTime::from_secs(1), ());
        assert_eq!(q.seq_for_tests(), 2);
    }

    #[test]
    fn wheel_crosses_level_boundaries_in_order() {
        // Times straddling 64^k boundaries exercise cascades at every
        // level; drain order must stay globally sorted and FIFO at ties.
        let mut q = WheelQueue::new();
        let boundaries = [
            63u64, 64, 65, 4095, 4096, 4097, 262_143, 262_144, 262_145,
            16_777_215, 16_777_216, 1_073_741_824, 68_719_476_736,
        ];
        let mut i = 0u64;
        for &b in &boundaries {
            for t in [b.saturating_sub(1), b, b + 1] {
                q.schedule(SimTime::from_micros(t), i);
                i += 1;
            }
        }
        let mut prev: Option<(SimTime, u64)> = None;
        while let Some(e) = q.pop() {
            if let Some((pt, pp)) = prev {
                assert!(e.at > pt || (e.at == pt && e.payload > pp));
            }
            prev = Some((e.at, e.payload));
        }
    }

    #[test]
    fn wheel_far_future_event_survives_cascades() {
        let mut q = WheelQueue::new();
        let far = SimTime::from_micros(u64::MAX - 1);
        q.schedule(far, "far");
        for t in 0..200u64 {
            q.schedule(SimTime::from_micros(t * 997), t.to_string().leak() as &str);
        }
        let mut last = None;
        while let Some(e) = q.pop() {
            last = Some(e);
        }
        let last = last.unwrap();
        assert_eq!(last.payload, "far");
        assert_eq!(last.at, far);
    }

    #[test]
    fn wheel_zero_delay_chain_stays_fifo() {
        // Scheduling at exactly `now` while draining the same tick must
        // append after the entries already pending at that tick.
        let mut q = WheelQueue::new();
        let t = SimTime::from_micros(12345);
        q.schedule(t, 0);
        q.schedule(t, 1);
        assert_eq!(q.pop().unwrap().payload, 0);
        q.schedule(q.now(), 2);
        q.schedule(q.now(), 3);
        assert_eq!(q.pop().unwrap().payload, 1);
        assert_eq!(q.pop().unwrap().payload, 2);
        assert_eq!(q.pop().unwrap().payload, 3);
        assert!(q.pop().is_none());
    }

    #[test]
    fn wheel_peek_is_exact_across_levels() {
        let mut q = WheelQueue::new();
        q.schedule(SimTime::from_micros(5_000_000), "far");
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(5_000_000)));
        q.schedule(SimTime::from_micros(70), "near");
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(70)));
        q.pop();
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(5_000_000)));
        q.pop();
        assert_eq!(q.peek_time(), None);
    }
}
