//! End-to-end determinism: figure output must be byte-identical across
//! repeated runs with the same seed, and across worker-thread counts.
//! The parallel grid engine farms (rf, scheduler) cells out to a work
//! queue, so any ordering or float nondeterminism introduced there would
//! surface here as a diff.

use spindown_bench::figures::Harness;
use spindown_bench::workload::Scale;

fn small() -> Scale {
    Scale {
        requests: 300,
        data_items: 120,
        disks: 10,
        rate: 3.0,
    }
}

fn render_all(h: &Harness) -> Vec<(String, String)> {
    Harness::all_ids()
        .iter()
        .map(|id| (id.to_string(), h.generate(id).expect("known figure id")))
        .collect()
}

#[test]
fn figures_identical_across_repeats_and_job_counts() {
    let serial_a = render_all(&Harness::with_jobs(small(), 7, 1));
    let serial_b = render_all(&Harness::with_jobs(small(), 7, 1));
    let parallel = render_all(&Harness::with_jobs(small(), 7, 8));

    assert_eq!(
        serial_a, serial_b,
        "same seed, same jobs: figure bytes diverged between runs"
    );
    for ((id, serial), (_, par)) in serial_a.iter().zip(&parallel) {
        assert_eq!(
            serial, par,
            "figure {id}: jobs=1 and jobs=8 rendered different bytes"
        );
    }
}

#[test]
fn different_seed_changes_grid_figures() {
    // Guard against the determinism test vacuously passing because the
    // seed is ignored: a different seed must change at least one
    // grid-backed figure.
    let a = Harness::with_jobs(small(), 7, 2);
    let b = Harness::with_jobs(small(), 8, 2);
    assert_ne!(a.generate("fig6"), b.generate("fig6"));
}
