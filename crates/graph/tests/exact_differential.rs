//! Differential pinning of the iterative bitset exact solvers against the
//! retained recursive baselines, plus deep-branching instances at the old
//! production limits that the recursive solvers' clone-per-branch /
//! frame-per-branch design made hazardous.
//!
//! Instance weights are continuous draws from the seeded `spindown_sim`
//! RNG, so optima are unique (almost surely, and deterministically for
//! these fixed seeds): the new solvers must return **bit-identical** sets,
//! not merely equal weights. Runs with `-C overflow-checks=on` in the CI
//! differential job to exercise the bitset word arithmetic.

use spindown_graph::csr::CsrGraph;
use spindown_graph::graph::{Graph, NodeId};
use spindown_graph::mwis;
use spindown_graph::setcover::SetCoverInstance;
use spindown_sim::rng::SimRng;

/// A random graph with tunable density: `2..=max_n` nodes, continuous
/// weights in (0, 10], up to `n * edge_factor` edge draws (mirrors the
/// `props.rs` generator).
fn random_graph(rng: &mut SimRng, max_n: usize, edge_factor: usize) -> Graph {
    let n = 2 + rng.index(max_n - 1);
    let weights: Vec<f64> = (0..n).map(|_| 0.01 + rng.next_f64() * 9.99).collect();
    let mut g = Graph::with_weights(weights);
    for _ in 0..rng.index(n * edge_factor) {
        let u = rng.index(n) as NodeId;
        let v = rng.index(n) as NodeId;
        if u != v {
            g.add_edge(u, v);
        }
    }
    g
}

/// A random coverable instance: one continuous-weight singleton per
/// element (coverability and unique-optimum tie-breaking), plus a batch of
/// random multi-element sets.
fn random_cover(rng: &mut SimRng, max_universe: usize) -> SetCoverInstance {
    let universe = 1 + rng.index(max_universe);
    let mut inst = SetCoverInstance::new(universe);
    for e in 0..universe {
        inst.add_set(0.5 + rng.next_f64() * 2.0, [e as u32]);
    }
    for _ in 0..1 + rng.index(2 * universe) {
        let w = 0.1 + rng.next_f64() * 8.0;
        let elems: Vec<u32> = (0..1 + rng.index(universe))
            .map(|_| rng.index(universe) as u32)
            .collect();
        inst.add_set(w, elems);
    }
    inst
}

/// 125 seeded graphs, sparse to near-complete: the iterative solver must
/// return the recursive baseline's exact node set on both storage
/// backends.
#[test]
fn mwis_exact_bit_identical_to_recursive_baseline() {
    let mut rng = SimRng::seed_from_u64(0x6717b0);
    for case in 0..125 {
        let g = random_graph(&mut rng, 24, [1, 2, 4, 8, 12][case % 5]);
        let c = CsrGraph::from_graph(&g);
        let old = mwis::baseline::exact(&g, 24).expect("within limit");
        let new = mwis::exact(&g, 24).expect("within limit");
        assert_eq!(new, old, "case {case}: iterative vs recursive");
        assert_eq!(
            mwis::exact(&c, 24).expect("within limit"),
            new,
            "case {case}: CSR backend diverged"
        );
        assert!(g.is_independent_set(&new), "case {case}: infeasible");
    }
}

/// Zero- and negative-weight vertices never help an optimum; both solvers
/// must agree on instances that contain them (weights here are continuous
/// apart from the sign flip, so optima stay unique).
#[test]
fn mwis_exact_agrees_with_baseline_weight_under_nonpositive_weights() {
    let mut rng = SimRng::seed_from_u64(0x6717b1);
    for case in 0..40 {
        let mut g = random_graph(&mut rng, 16, 3);
        // Flip roughly a third of the weights negative.
        for v in 0..g.len() {
            if rng.index(3) == 0 {
                g.set_weight(v as NodeId, -g.weight(v as NodeId));
            }
        }
        let old = mwis::baseline::exact(&g, 16).expect("within limit");
        let new = mwis::exact(&g, 16).expect("within limit");
        // The baseline may pad its set with zero-weight vertices it
        // happened to branch through; with continuous weights there are
        // none, so the unique positive-weight optimum must match exactly.
        assert_eq!(new, old, "case {case}");
        assert!(g.is_independent_set(&new));
    }
}

/// 125 seeded cover instances: full `Cover` equality (sets and recomputed
/// weight) between the iterative solver and the recursive baseline.
#[test]
fn setcover_exact_bit_identical_to_recursive_baseline() {
    let mut rng = SimRng::seed_from_u64(0x6717b2);
    for case in 0..125 {
        let inst = random_cover(&mut rng, [4, 7, 10, 13, 16][case % 5]);
        let old = inst.solve_exact_baseline(16).expect("coverable");
        let new = inst.solve_exact(16).expect("coverable");
        assert_eq!(new, old, "case {case}: iterative vs recursive");
        assert!(inst.is_cover(&new.sets), "case {case}: not a cover");
    }
}

/// Uncoverable universes: both solvers return `None`.
#[test]
fn setcover_exact_none_matches_baseline_on_uncoverable() {
    let mut rng = SimRng::seed_from_u64(0x6717b3);
    for _ in 0..32 {
        let universe = 2 + rng.index(10);
        let missing = rng.index(universe);
        let mut inst = SetCoverInstance::new(universe);
        for e in 0..universe {
            if e != missing {
                inst.add_set(0.5 + rng.next_f64(), [e as u32]);
            }
        }
        assert!(inst.solve_exact(16).is_none());
        assert!(inst.solve_exact_baseline(16).is_none());
    }
}

/// Eight disjoint 8-cliques at the *old* production node limit of 64 — the
/// shape that drove the recursive solver through deep include/exclude
/// chains with a full bitmap clone per branch. The optimum is each
/// clique's heaviest vertex; the iterative solver must find it with its
/// heap-allocated stack (no thread-stack growth) in one pass.
#[test]
fn mwis_deep_branching_disjoint_cliques_at_old_limit() {
    let mut rng = SimRng::seed_from_u64(0x6717b4);
    let weights: Vec<f64> = (0..64).map(|_| 0.01 + rng.next_f64() * 9.99).collect();
    let mut g = Graph::with_weights(weights.clone());
    for clique in 0..8u32 {
        for a in 0..8u32 {
            for b in (a + 1)..8u32 {
                g.add_edge(clique * 8 + a, clique * 8 + b);
            }
        }
    }
    let expected: Vec<NodeId> = (0..8usize)
        .map(|q| {
            (0..8usize)
                .map(|i| (q * 8 + i) as NodeId)
                .max_by(|&a, &b| {
                    weights[a as usize]
                        .partial_cmp(&weights[b as usize])
                        .unwrap()
                })
                .unwrap()
        })
        .collect();
    let got = mwis::exact(&g, 64).expect("within limit");
    assert_eq!(got, expected, "per-clique argmax optimum");
}

/// A 64-node random-weight path at the old node limit, pinned against an
/// independent `O(n)` dynamic-programming oracle (take/skip recurrence
/// with reconstruction). Paths force the longest exclude chains — the
/// recursion-depth worst case of the old solver.
#[test]
fn mwis_deep_branching_path_matches_dp_oracle() {
    let mut rng = SimRng::seed_from_u64(0x6717b5);
    let n = 64usize;
    let weights: Vec<f64> = (0..n).map(|_| 0.01 + rng.next_f64() * 9.99).collect();
    let mut g = Graph::with_weights(weights.clone());
    for i in 1..n {
        g.add_edge((i - 1) as NodeId, i as NodeId);
    }
    // dp[i] = best IS weight on suffix i..; take w[i] + dp[i+2] or skip.
    let mut dp = vec![0.0f64; n + 2];
    for i in (0..n).rev() {
        dp[i] = dp[i + 1].max(weights[i] + dp[i + 2]);
    }
    let mut expected: Vec<NodeId> = Vec::new();
    let mut i = 0usize;
    while i < n {
        if dp[i] == weights[i] + dp[i + 2] {
            expected.push(i as NodeId);
            i += 2;
        } else {
            i += 1;
        }
    }
    let got = mwis::exact(&g, 64).expect("within limit");
    assert_eq!(got, expected, "DP oracle optimum");
    assert!((g.set_weight_sum(&got) - dp[0]).abs() < 1e-9);
}

/// A universe-64 cover whose optimum takes all 64 singletons (the lone
/// alternative is a decoy costing more than every singleton combined):
/// 64 chosen sets means the old solver recursed 64 frames deep with a
/// fresh `newly`-covered Vec per frame; the iterative solver walks it with
/// its explicit stack and undo arena.
#[test]
fn setcover_deep_branching_singletons_at_old_limit() {
    let mut rng = SimRng::seed_from_u64(0x6717b6);
    let universe = 64usize;
    let mut inst = SetCoverInstance::new(universe);
    let mut total = 0.0f64;
    for e in 0..universe {
        let w = 1.0 + rng.next_f64();
        total += w;
        inst.add_set(w, [e as u32]);
    }
    inst.add_set(total + 1.0, 0..universe as u32); // decoy: always worse
    let got = inst.solve_exact(64).expect("coverable");
    assert_eq!(got.sets, (0..universe).collect::<Vec<_>>());
    assert!((got.weight - total).abs() < 1e-9);
    assert!(inst.is_cover(&got.sets));
}

/// Feasibility and greedy domination on instances past the recursive
/// solver's comfort zone — up to 40 nodes, solved by the new solver only.
#[test]
fn mwis_exact_dominates_greedy_on_midsize_instances() {
    let mut rng = SimRng::seed_from_u64(0x6717b7);
    for case in 0..16 {
        let g = random_graph(&mut rng, 40, 2);
        let ex = mwis::exact(&g, mwis::DEFAULT_NODE_LIMIT).expect("within limit");
        assert!(g.is_independent_set(&ex), "case {case}");
        let exw = g.set_weight_sum(&ex);
        for is in [mwis::gwmin(&g), mwis::gwmin2(&g)] {
            assert!(
                g.set_weight_sum(&is) <= exw + 1e-9,
                "case {case}: greedy beat exact"
            );
        }
    }
}
