//! Differential torture suite: the production timing wheel
//! ([`spindown_sim::event::WheelQueue`]) must produce **bit-identical pop
//! sequences** to the retained heap oracle
//! ([`spindown_sim::event::baseline::EventQueue`]) on hundreds of seeded
//! schedules — same `(time, payload)` stream, same `peek_time`, same
//! `len`, same `now`, through interleaved schedule/pop traffic, rollover
//! boundaries, far-future cross-level events, and clear-then-reuse.

use spindown_sim::event::baseline::EventQueue as HeapQueue;
use spindown_sim::event::WheelQueue;
use spindown_sim::rng::SplitMix64;
use spindown_sim::time::SimTime;

/// Both queues under lockstep: every operation is applied to both and
/// every observable compared.
struct Pair {
    wheel: WheelQueue<u64>,
    heap: HeapQueue<u64>,
    next_payload: u64,
}

impl Pair {
    fn new() -> Self {
        Pair {
            wheel: WheelQueue::new(),
            heap: HeapQueue::new(),
            next_payload: 0,
        }
    }

    fn schedule(&mut self, at: SimTime) {
        let p = self.next_payload;
        self.next_payload += 1;
        self.wheel.schedule(at, p);
        self.heap.schedule(at, p);
        self.check_observables();
    }

    fn pop(&mut self) -> Option<SimTime> {
        let w = self.wheel.pop();
        let h = self.heap.pop();
        match (&w, &h) {
            (None, None) => {}
            (Some(we), Some(he)) => {
                assert_eq!(we.at, he.at, "pop time diverged");
                assert_eq!(we.payload, he.payload, "pop FIFO order diverged");
            }
            _ => panic!("one queue empty, the other not"),
        }
        self.check_observables();
        w.map(|e| e.at)
    }

    fn clear(&mut self) {
        self.wheel.clear();
        self.heap.clear();
        self.next_payload = 0;
        self.check_observables();
    }

    fn check_observables(&self) {
        assert_eq!(self.wheel.len(), self.heap.len(), "len diverged");
        assert_eq!(self.wheel.is_empty(), self.heap.is_empty());
        assert_eq!(self.wheel.now(), self.heap.now(), "watermark diverged");
        assert_eq!(
            self.wheel.peek_time(),
            self.heap.peek_time(),
            "peek_time diverged"
        );
    }

    fn drain(&mut self) {
        while self.pop().is_some() {}
    }
}

/// Draws a schedule delta (µs ahead of `now`) from a mixture that hits
/// every wheel level: same-tick ties, within-window, each cascade level,
/// and far-future times, with extra weight on exact 64^k rollover edges.
fn draw_delta(rng: &mut SplitMix64) -> u64 {
    let class = rng.next_u64() % 100;
    match class {
        // Same-timestamp ties — the FIFO-critical class.
        0..=24 => 0,
        // Within the current 64-tick window (level 0).
        25..=44 => rng.next_u64() % 64,
        // Levels 1–3.
        45..=59 => rng.next_u64() % 4096,
        60..=69 => rng.next_u64() % 262_144,
        70..=79 => rng.next_u64() % 16_777_216,
        // Far future, crossing high levels.
        80..=87 => rng.next_u64() % (1 << 45),
        // Exact rollover boundaries 64^k, ±1.
        _ => {
            let k = 1 + (rng.next_u64() % 8) as u32;
            let base = 1u64 << (6 * k);
            match rng.next_u64() % 3 {
                0 => base - 1,
                1 => base,
                _ => base + 1,
            }
        }
    }
}

/// One seeded schedule: `ops` interleaved schedule/pop operations, then a
/// full drain; every intermediate observable compared.
fn run_schedule(seed: u64, ops: usize) {
    let mut rng = SplitMix64::new(seed);
    let mut pair = Pair::new();
    for _ in 0..ops {
        let roll = rng.next_u64() % 100;
        if roll < 60 || pair.wheel.is_empty() {
            let now = pair.wheel.now();
            let at = SimTime::from_micros(now.as_micros().saturating_add(draw_delta(&mut rng)));
            pair.schedule(at);
        } else {
            pair.pop();
        }
    }
    pair.drain();
}

#[test]
fn seeded_schedules_are_bit_identical() {
    // 200+ seeded schedules as pinned by the tentpole: every pop sequence
    // must match the heap oracle exactly.
    for seed in 0..220u64 {
        run_schedule(seed * 0x9E37_79B9 + 1, 1500);
    }
}

#[test]
fn heavy_tie_schedules_are_bit_identical() {
    // Arrival vs completion vs power-sample events land at the same
    // instant all the time; model that as bursts of identical timestamps
    // interleaved with pops.
    for seed in 0..64u64 {
        let mut rng = SplitMix64::new(seed ^ 0x71E5);
        let mut pair = Pair::new();
        for _ in 0..300 {
            let now = pair.wheel.now().as_micros();
            let t = SimTime::from_micros(now + rng.next_u64() % 128);
            let burst = 1 + rng.next_u64() % 6;
            for _ in 0..burst {
                pair.schedule(t);
            }
            let pops = rng.next_u64() % (burst + 2);
            for _ in 0..pops {
                if pair.pop().is_none() {
                    break;
                }
            }
        }
        pair.drain();
    }
}

#[test]
fn clear_then_reuse_is_bit_identical() {
    // Warm-engine reuse: clear mid-traffic, then replay a fresh seeded
    // schedule on the same (recycled) queues. The FIFO counter and
    // watermark must reset identically on both sides.
    for seed in 0..32u64 {
        let mut rng = SplitMix64::new(seed.wrapping_mul(0xC13A_9CB5) + 7);
        let mut pair = Pair::new();
        for round in 0..3 {
            for _ in 0..200 {
                let roll = rng.next_u64() % 100;
                if roll < 65 || pair.wheel.is_empty() {
                    let now = pair.wheel.now();
                    let at =
                        SimTime::from_micros(now.as_micros().saturating_add(draw_delta(&mut rng)));
                    pair.schedule(at);
                } else {
                    pair.pop();
                }
            }
            if round < 2 {
                pair.clear();
            }
        }
        pair.drain();
    }
}

#[test]
fn far_future_events_cross_all_levels() {
    // A handful of events parked near the top of the tick space must
    // survive every cascade and drain last, in schedule order.
    let mut pair = Pair::new();
    let far = [u64::MAX - 2, u64::MAX - 1, u64::MAX - 2, u64::MAX];
    for &t in &far {
        pair.schedule(SimTime::from_micros(t));
    }
    let mut rng = SplitMix64::new(99);
    for _ in 0..500 {
        let now = pair.wheel.now();
        let at = SimTime::from_micros(now.as_micros().saturating_add(rng.next_u64() % (1 << 40)));
        pair.schedule(at);
        if rng.next_u64().is_multiple_of(3) {
            pair.pop();
        }
    }
    pair.drain();
}

#[test]
fn zero_delay_cascade_reschedules_match() {
    // Events that reschedule at exactly `now` while the same tick drains
    // (spin-up completion chains do this) must interleave identically.
    for seed in 0..32u64 {
        let mut rng = SplitMix64::new(seed + 0x5EED);
        let mut pair = Pair::new();
        pair.schedule(SimTime::from_micros(rng.next_u64() % 10_000));
        for _ in 0..400 {
            match pair.pop() {
                Some(at) => {
                    // Chain: reschedule 0–2 events at the popped instant,
                    // plus occasionally one strictly later.
                    for _ in 0..rng.next_u64() % 3 {
                        pair.schedule(at);
                    }
                    if rng.next_u64().is_multiple_of(4) {
                        pair.schedule(SimTime::from_micros(
                            at.as_micros().saturating_add(1 + rng.next_u64() % 100_000),
                        ));
                    }
                }
                None => {
                    pair.schedule(SimTime::from_micros(
                        pair.wheel.now().as_micros() + rng.next_u64() % 1_000_000,
                    ));
                }
            }
        }
        pair.drain();
    }
}
