//! Property tests for the trace substrate: parser round-trips on arbitrary
//! records and structural invariants of the generators.

use proptest::prelude::*;

use spindown_sim::time::SimTime;
use spindown_trace::record::{OpKind, Trace, TraceRecord};
use spindown_trace::synth::{CelloLike, FinancialLike, TraceGenerator};
use spindown_trace::{spc, srt};

/// Arbitrary trace records with ids that fit both wire formats
/// (16-bit device, 48-bit address).
fn arb_records() -> impl Strategy<Value = Vec<TraceRecord>> {
    let rec = (
        0u64..1_000_000_000, // micros
        0u16..100,           // device / asu
        0u64..(1u64 << 40),  // block / lba
        1u64..10_000_000,    // size
        prop::bool::ANY,     // write?
    )
        .prop_map(|(us, dev, block, size, is_write)| TraceRecord {
            at: SimTime::from_micros(us),
            data: spc::data_id(dev, block),
            size,
            op: if is_write {
                OpKind::Write
            } else {
                OpKind::Read
            },
        });
    prop::collection::vec(rec, 0..100)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// SPC serialization parses back to the identical trace.
    #[test]
    fn spc_roundtrip(records in arb_records()) {
        let trace = Trace::from_records(records);
        let text = spc::to_string(&trace);
        let parsed = spc::parse(&text).expect("own output must parse");
        prop_assert_eq!(parsed.records(), trace.records());
    }

    /// SRT serialization parses back to the identical trace.
    #[test]
    fn srt_roundtrip(records in arb_records()) {
        let trace = Trace::from_records(records);
        let text = srt::to_string(&trace);
        let parsed = srt::parse(&text).expect("own output must parse");
        prop_assert_eq!(parsed.records(), trace.records());
    }

    /// Trace construction invariants: sorted, rebasing anchors at zero,
    /// densification preserves access patterns.
    #[test]
    fn trace_transforms_preserve_structure(records in arb_records()) {
        let trace = Trace::from_records(records);
        prop_assert!(trace.records().windows(2).all(|w| w[0].at <= w[1].at));

        let rebased = trace.rebased();
        prop_assert_eq!(rebased.len(), trace.len());
        if !rebased.is_empty() {
            prop_assert_eq!(rebased.start(), Some(SimTime::ZERO));
            prop_assert_eq!(rebased.duration(), trace.duration());
        }

        let dense = trace.densified();
        prop_assert_eq!(dense.unique_data(), trace.unique_data());
        prop_assert!(dense.data_space() as usize == dense.unique_data());
        // Same-data relations are preserved.
        for (a, b) in trace.records().iter().zip(dense.records()) {
            prop_assert_eq!(a.at, b.at);
            prop_assert_eq!(a.size, b.size);
        }
        for i in 0..trace.len() {
            for j in (i + 1)..trace.len().min(i + 10) {
                let same_before = trace.records()[i].data == trace.records()[j].data;
                let same_after = dense.records()[i].data == dense.records()[j].data;
                prop_assert_eq!(same_before, same_after);
            }
        }
    }

    /// reads_only + the write complement partition the trace.
    #[test]
    fn read_write_split_partitions(records in arb_records()) {
        let trace = Trace::from_records(records);
        let reads = trace.reads_only();
        let writes = trace.len() - reads.len();
        let actual_writes = trace
            .records()
            .iter()
            .filter(|r| r.op == OpKind::Write)
            .count();
        prop_assert_eq!(writes, actual_writes);
    }

    /// Generators honor their request count and stay time-sorted for any
    /// modest parameterization.
    #[test]
    fn generators_hold_structural_invariants(
        n in 1usize..2_000,
        items in 1usize..1_000,
        z in 0.0f64..1.5,
        seed in 0u64..100,
    ) {
        let cello = CelloLike {
            requests: n,
            data_items: items,
            popularity_z: z,
            ..CelloLike::default()
        }
        .generate(seed);
        prop_assert_eq!(cello.len(), n);
        prop_assert!(cello.records().windows(2).all(|w| w[0].at <= w[1].at));
        prop_assert!(cello.unique_data() <= items);

        let fin = FinancialLike {
            requests: n,
            data_items: items,
            popularity_z: z,
            ..FinancialLike::default()
        }
        .generate(seed);
        prop_assert_eq!(fin.len(), n);
        prop_assert!(fin.records().windows(2).all(|w| w[0].at <= w[1].at));
    }
}
