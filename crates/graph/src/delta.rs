//! Delta overlay over a frozen [`CsrGraph`]: tombstones + appends.
//!
//! The rolling-horizon planner (ROADMAP) advances a sliding window every
//! few seconds; between two consecutive windows only a small fraction of
//! conflict-graph nodes retire and arrive, yet [`CsrGraph`] is immutable
//! by design. [`DeltaGraph`] closes that gap: it wraps a base CSR graph
//! and applies a node/edge delta on top —
//!
//! * **tombstones** mark retired base nodes dead ([`tombstone`]); the
//!   dying node is removed from every live neighbor's adjacency via
//!   copy-on-write patch lists, so live views never see a dead neighbor;
//! * **appends** stage arriving nodes ([`append_node`]) and their edges
//!   ([`add_edge`]) past the base id space;
//! * **compaction** ([`compact`]) flattens the overlay back into a plain
//!   [`CsrGraph`] under a caller-chosen live-node ordering, writing the
//!   final offset/neighbor arenas in one exactly-reserved pass and
//!   sorting only the slices the delta actually disturbed.
//!
//! The overlay implements [`GraphView`], so every MWIS solver runs on it
//! unchanged: a dead node presents as an isolated node of weight `0.0`
//! (it can never contribute weight to a solution, and its absence of
//! edges keeps independence checks exact). Production solves still run
//! on the compacted CSR — the overlay's job is to make *applying* a
//! window delta cheap and to batch several advances between solves; the
//! compaction policy (when to flatten) belongs to the caller, and the
//! windowed planner compacts whenever the overlay [`is_dirty`] before a
//! solve.
//!
//! [`tombstone`]: DeltaGraph::tombstone
//! [`append_node`]: DeltaGraph::append_node
//! [`add_edge`]: DeltaGraph::add_edge
//! [`compact`]: DeltaGraph::compact
//! [`is_dirty`]: DeltaGraph::is_dirty

use crate::csr::CsrGraph;
use crate::graph::{GraphView, NodeId};

/// A [`CsrGraph`] plus a mutation overlay: tombstoned base nodes,
/// appended nodes, and edges incident to the appends, flattened back to
/// CSR by [`compact`](DeltaGraph::compact).
///
/// Node ids: `0..base.len()` address base nodes, `base.len()..len()`
/// address appended nodes, in append order. Ids are stable for the
/// overlay's lifetime; compaction assigns fresh dense ids.
///
/// # Examples
///
/// ```
/// use spindown_graph::csr::CsrGraph;
/// use spindown_graph::delta::DeltaGraph;
/// use spindown_graph::graph::GraphView;
///
/// // Base: 0 — 1 (weights 1, 2).
/// let base = CsrGraph::from_unique_edges(vec![1.0, 2.0], &[(0, 1)]);
/// let mut d = DeltaGraph::new(base);
/// d.tombstone(0);
/// let v = d.append_node(5.0);
/// d.add_edge(1, v);
/// assert_eq!(d.live_len(), 2);
/// assert_eq!(d.neighbors(1), &[v], "patched: dead 0 gone, new 2 present");
/// let (csr, map) = d.compact(&[1, v]);
/// assert_eq!(csr.len(), 2);
/// assert!(csr.has_edge(0, 1));
/// assert_eq!(map[1], 0, "old node 1 became compact node 0");
/// ```
#[derive(Debug, Clone)]
pub struct DeltaGraph {
    base: CsrGraph,
    /// Liveness per id (base + appended).
    dead: Vec<bool>,
    dead_count: usize,
    /// Copy-on-write adjacency overrides for base nodes. `Some` once a
    /// base node's neighborhood diverges from the base slice (a neighbor
    /// died, or an appended edge arrived). Invariant: an unpatched live
    /// base node has no dead neighbors — eager tombstoning patches every
    /// surviving neighbor of the dying node — *except* for nodes killed
    /// through the deferred form (counted by `deferred_dead`), whose
    /// entries linger in live lists until compaction filters them.
    patched: Vec<Option<Vec<NodeId>>>,
    /// `true` while the node's live adjacency slice is ascending (base
    /// slices start sorted; removals preserve order; appends past the
    /// maximum preserve it too, anything else clears the flag and
    /// compaction re-sorts that slice).
    sorted: Vec<bool>,
    appended_weights: Vec<f64>,
    appended_adj: Vec<Vec<NodeId>>,
    /// Tombstones whose adjacency purge was deferred to compaction.
    deferred_dead: usize,
    /// Edges staged through the deferred form, stored on their appended
    /// endpoint only; compaction synthesizes the symmetric entries.
    deferred_edges: usize,
    /// Eagerly staged edges incident to an appended node — the two
    /// staging modes must not mix within one overlay generation.
    eager_appended_edges: usize,
    /// Live undirected edge count across base + overlay.
    edges: usize,
    /// Edges added through the overlay (for dirtiness/stats).
    staged_edges: usize,
}

impl DeltaGraph {
    /// Wraps a base CSR graph with an empty overlay.
    pub fn new(base: CsrGraph) -> Self {
        let n = base.len();
        let edges = base.edge_count();
        DeltaGraph {
            base,
            dead: vec![false; n],
            dead_count: 0,
            patched: vec![None; n],
            sorted: vec![true; n],
            appended_weights: Vec::new(),
            appended_adj: Vec::new(),
            deferred_dead: 0,
            deferred_edges: 0,
            eager_appended_edges: 0,
            edges,
            staged_edges: 0,
        }
    }

    /// The wrapped base graph, untouched by the overlay.
    pub fn base(&self) -> &CsrGraph {
        &self.base
    }

    /// Consumes the overlay and returns the wrapped base graph — the
    /// recycling path: a retired generation's arenas flow through
    /// [`CsrGraph::into_parts`] into the next
    /// [`compact_into`](DeltaGraph::compact_into).
    pub fn into_base(self) -> CsrGraph {
        self.base
    }

    /// Total id space: base nodes plus appended nodes, dead included.
    pub fn len(&self) -> usize {
        self.base.len() + self.appended_weights.len()
    }

    /// `true` if the id space is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Live (non-tombstoned) node count.
    pub fn live_len(&self) -> usize {
        self.len() - self.dead_count
    }

    /// Tombstoned node count.
    pub fn dead_count(&self) -> usize {
        self.dead_count
    }

    /// Nodes appended on top of the base id space.
    pub fn appended_count(&self) -> usize {
        self.appended_weights.len()
    }

    /// Edges staged through the overlay (excluding base edges).
    pub fn staged_edge_count(&self) -> usize {
        self.staged_edges
    }

    /// Live undirected edge count (base edges minus edges lost to
    /// tombstones, plus staged edges).
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// `true` once any delta has been applied — the signal the windowed
    /// planner uses to decide whether a solve needs a fresh compaction
    /// or can reuse the base graph as-is (the empty-delta window).
    pub fn is_dirty(&self) -> bool {
        self.dead_count > 0 || !self.appended_weights.is_empty() || self.staged_edges > 0
    }

    /// `true` if `v` is tombstoned.
    pub fn is_dead(&self, v: NodeId) -> bool {
        self.dead[v as usize]
    }

    /// The live adjacency of `v`: the patch list when the overlay has
    /// diverged, the base slice otherwise, the staged list for appended
    /// nodes, empty for the dead.
    fn adj(&self, v: NodeId) -> &[NodeId] {
        let vi = v as usize;
        if self.dead[vi] {
            return &[];
        }
        let n = self.base.len();
        if vi >= n {
            return &self.appended_adj[vi - n];
        }
        match &self.patched[vi] {
            Some(list) => list,
            None => self.base.neighbors(v),
        }
    }

    /// Mutable access to `v`'s owned adjacency, materializing the
    /// copy-on-write patch for a base node on first touch.
    fn adj_mut(&mut self, v: NodeId) -> &mut Vec<NodeId> {
        let vi = v as usize;
        let n = self.base.len();
        if vi >= n {
            return &mut self.appended_adj[vi - n];
        }
        if self.patched[vi].is_none() {
            self.patched[vi] = Some(self.base.neighbors(v).to_vec());
        }
        self.patched[vi].as_mut().expect("just materialized")
    }

    /// `v`'s stored adjacency regardless of liveness — the patch list,
    /// the staged list for appended nodes, or the base slice.
    fn raw_adj(&self, v: NodeId) -> &[NodeId] {
        let vi = v as usize;
        let n = self.base.len();
        if vi >= n {
            return &self.appended_adj[vi - n];
        }
        match &self.patched[vi] {
            Some(list) => list,
            None => self.base.neighbors(v),
        }
    }

    /// Tombstones `v`: removes it from every live neighbor's adjacency
    /// (copy-on-write for base neighbors) and marks it dead. `O(deg(v))`
    /// removals, each `O(deg(u))` in the worst case.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range or already dead.
    pub fn tombstone(&mut self, v: NodeId) {
        self.tombstone_batch(std::slice::from_ref(&v));
    }

    /// Tombstones every node in `victims` at once. Equivalent to
    /// [`tombstone`](DeltaGraph::tombstone) in a loop but marks the
    /// whole batch dead *before* patching any adjacency, so a victim is
    /// never removed from another victim's list — a window retirement
    /// tombstones a dense cluster of mutually-conflicting nodes, and the
    /// batch form pays only for the boundary edges into the survivors.
    ///
    /// # Panics
    ///
    /// Panics if any victim is out of range, already dead, or repeated.
    pub fn tombstone_batch(&mut self, victims: &[NodeId]) {
        assert_eq!(
            self.deferred_edges, 0,
            "tombstone before staging deferred edges: a deferred edge is \
             invisible from its unlisted endpoint"
        );
        for &v in victims {
            assert!((v as usize) < self.len(), "tombstone: node out of range");
            assert!(!self.dead[v as usize], "tombstone: node already dead");
            self.dead[v as usize] = true;
        }
        self.dead_count += victims.len();
        for &v in victims {
            // `adj` answers `&[]` for dead nodes, so read the victim's
            // pre-death adjacency from its underlying storage directly.
            let vi = v as usize;
            let n = self.base.len();
            let nbrs: Vec<NodeId> = if vi >= n {
                std::mem::take(&mut self.appended_adj[vi - n])
            } else {
                match self.patched[vi].take() {
                    Some(list) => list,
                    None => self.base.neighbors(v).to_vec(),
                }
            };
            for &u in &nbrs {
                if self.dead[u as usize] {
                    // The co-victim with the larger id owns the edge
                    // decrement so each intra-batch edge counts once.
                    if v > u {
                        self.edges -= 1;
                    }
                    continue;
                }
                self.edges -= 1;
                let sorted = self.sorted[u as usize];
                let list = self.adj_mut(u);
                let pos = if sorted {
                    list.binary_search(&v).ok()
                } else {
                    list.iter().position(|&x| x == v)
                };
                let pos = pos.expect("adjacency must be symmetric");
                // Removal preserves relative order (and thus sortedness).
                list.remove(pos);
            }
            // Release the dead node's owned storage; views answer via
            // `dead`.
            if vi >= n {
                self.appended_adj[vi - n] = Vec::new();
            } else {
                self.patched[vi] = Some(Vec::new());
            }
            self.sorted[vi] = true;
        }
    }

    /// Tombstones every node in `victims` *without* purging them from
    /// surviving neighbors' adjacency lists — the dead entries linger
    /// until the next [`compact`](DeltaGraph::compact), which filters
    /// them while remapping. The eager batch form pays copy-on-write
    /// list surgery on every survivor adjacent to the batch — retiring a
    /// window prefix makes that nearly `O(E)` on top of compaction's own
    /// pass — while this form pays only `O(Σ deg(v))` over the victims
    /// to keep the edge count exact.
    ///
    /// Until that compaction, [`GraphView::neighbors`] on a live node
    /// may still report tombstoned ids. [`has_edge`](DeltaGraph::has_edge)
    /// (dead endpoints short-circuit), [`weight`](DeltaGraph::weight),
    /// [`append_node`](DeltaGraph::append_node),
    /// [`add_edge`](DeltaGraph::add_edge),
    /// [`edge_count`](DeltaGraph::edge_count) and
    /// [`compact`](DeltaGraph::compact) all stay exact; a caller that
    /// *solves* on the overlay between tombstone and compaction must use
    /// [`tombstone_batch`](DeltaGraph::tombstone_batch) instead.
    ///
    /// # Panics
    ///
    /// Panics if any victim is out of range, already dead, or repeated.
    pub fn tombstone_batch_deferred(&mut self, victims: &[NodeId]) {
        assert_eq!(
            self.deferred_edges, 0,
            "tombstone before staging deferred edges: a deferred edge is \
             invisible from its unlisted endpoint"
        );
        for &v in victims {
            assert!((v as usize) < self.len(), "tombstone: node out of range");
            assert!(!self.dead[v as usize], "tombstone: node already dead");
            self.dead[v as usize] = true;
        }
        self.dead_count += victims.len();
        self.deferred_dead += victims.len();
        // Fix the live edge count: every victim edge dies exactly once.
        // An edge to a co-victim is seen from both ends — the larger id
        // owns the decrement; an edge to a node dead *before* this batch
        // was already decremented when that node died (its entry can
        // still sit in the victim's list if that death was deferred).
        let mut in_batch = vec![false; self.len()];
        for &v in victims {
            in_batch[v as usize] = true;
        }
        let mut killed = 0usize;
        for &v in victims {
            for &u in self.raw_adj(v) {
                if in_batch[u as usize] {
                    if v > u {
                        killed += 1;
                    }
                } else if !self.dead[u as usize] {
                    killed += 1;
                }
            }
        }
        self.edges -= killed;
    }

    /// Appends a new node with the given weight, returning its overlay
    /// id (`len() - 1`).
    pub fn append_node(&mut self, weight: f64) -> NodeId {
        let id = self.len() as NodeId;
        self.appended_weights.push(weight);
        self.appended_adj.push(Vec::new());
        self.dead.push(false);
        self.sorted.push(true);
        id
    }

    /// Stages the undirected edge `{u, v}` between two live nodes. The
    /// caller guarantees the edge is new — the conflict-graph delta emits
    /// every conflict pair exactly once by construction; debug builds
    /// verify and panic on a duplicate. Appending past a list's maximum
    /// keeps it sorted; any other insertion flags the slice for the
    /// compaction re-sort.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range, dead, or `u == v`; debug
    /// builds also panic when the edge already exists.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        assert!(
            (u as usize) < self.len() && (v as usize) < self.len(),
            "add_edge: endpoint out of range"
        );
        assert!(u != v, "add_edge: self-loop");
        assert!(
            !self.dead[u as usize] && !self.dead[v as usize],
            "add_edge: dead endpoint"
        );
        debug_assert!(!self.has_edge(u, v), "add_edge: duplicate edge ({u}, {v})");
        let n = self.base.len();
        if (u as usize) >= n || (v as usize) >= n {
            assert_eq!(
                self.deferred_edges, 0,
                "add_edge: cannot mix eager and deferred staging on appended nodes"
            );
            self.eager_appended_edges += 1;
        }
        for (a, b) in [(u, v), (v, u)] {
            let sorted = self.sorted[a as usize];
            let list = self.adj_mut(a);
            let keeps_order = sorted && list.last().is_none_or(|&l| l < b);
            list.push(b);
            self.sorted[a as usize] = keeps_order;
        }
        self.edges += 1;
        self.staged_edges += 1;
    }

    /// Stages the undirected edge `{x, v}` where `x` is an *appended*
    /// node, recording it on `x`'s list only — the symmetric entry on
    /// `v` (often a base node with a large adjacency) is synthesized
    /// during [`compact`](DeltaGraph::compact). This keeps staging
    /// `O(1)` with no copy-on-write materialization of survivor lists,
    /// the dominant cost of eager staging when a dense delta touches
    /// most of the graph's slices.
    ///
    /// Until compaction, `neighbors(v)` omits the staged edge and
    /// [`has_edge`](DeltaGraph::has_edge) may miss it (it sees only
    /// whichever endpoint's list it searches) — a caller that reads the
    /// overlay between staging and compaction must use
    /// [`add_edge`](DeltaGraph::add_edge) instead. The two staging
    /// modes must not mix on appended endpoints within one overlay
    /// generation, and deferred-staged endpoints must not be tombstoned
    /// before compaction (both are asserted).
    ///
    /// # Panics
    ///
    /// Panics if `x` is not a live appended node, `v` is dead or out of
    /// range, `x == v`, or an appended-incident edge was already staged
    /// eagerly; debug builds also panic on a duplicate.
    pub fn add_edge_deferred(&mut self, x: NodeId, v: NodeId) {
        let n = self.base.len();
        let xi = x as usize;
        assert!(
            xi >= n && xi < self.len(),
            "add_edge_deferred: {x} is not an appended node"
        );
        assert!(
            (v as usize) < self.len(),
            "add_edge_deferred: endpoint out of range"
        );
        assert!(x != v, "add_edge_deferred: self-loop");
        assert!(
            !self.dead[xi] && !self.dead[v as usize],
            "add_edge_deferred: dead endpoint"
        );
        assert_eq!(
            self.eager_appended_edges, 0,
            "add_edge_deferred: cannot mix eager and deferred staging on appended nodes"
        );
        debug_assert!(
            !self.raw_adj(x).contains(&v) && !self.raw_adj(v).contains(&x),
            "add_edge_deferred: duplicate edge ({x}, {v})"
        );
        let keeps = self.sorted[xi] && self.appended_adj[xi - n].last().is_none_or(|&l| l < v);
        self.appended_adj[xi - n].push(v);
        self.sorted[xi] = keeps;
        self.edges += 1;
        self.staged_edges += 1;
        self.deferred_edges += 1;
    }

    /// `true` if the live edge `{u, v}` exists — binary search on sorted
    /// slices, linear scan on slices an out-of-order append disturbed.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        if self.dead[u as usize] || self.dead[v as usize] {
            return false;
        }
        let (a, b) = if self.adj(u).len() <= self.adj(v).len() {
            (u, v)
        } else {
            (v, u)
        };
        let list = self.adj(a);
        if self.sorted[a as usize] {
            list.binary_search(&b).is_ok()
        } else {
            list.contains(&b)
        }
    }

    /// Weight of `v`: its base or appended weight while live, `0.0` once
    /// tombstoned (the [`GraphView`] convention — a dead node can never
    /// add weight to a solution).
    pub fn weight(&self, v: NodeId) -> f64 {
        let vi = v as usize;
        if self.dead[vi] {
            return 0.0;
        }
        let n = self.base.len();
        if vi >= n {
            self.appended_weights[vi - n]
        } else {
            self.base.weight(v)
        }
    }

    /// Flattens the overlay into a plain [`CsrGraph`] whose node `p` is
    /// the overlay node `order[p]`. `order` must list every live node
    /// exactly once; the choice of order is the caller's — the windowed
    /// planner passes the canonical disk-major emission order so the
    /// result is bit-identical to a from-scratch build.
    ///
    /// Returns the compacted graph and the id map: `map[old] = new` for
    /// live nodes, [`TOMBSTONED`] for dead ones.
    ///
    /// One counting pass sizes the offset/neighbor arenas exactly; each
    /// node's live adjacency is remapped and written straight into its
    /// final slot, and only slices that come out non-ascending (an
    /// out-of-order append, or a remap that reordered ids) pay a sort —
    /// untouched survivor slices are a pure remap-and-copy. `O(n + E)`
    /// plus the disturbed-slice sorts.
    ///
    /// # Panics
    ///
    /// Panics if `order` skips or repeats a live node, or names a dead
    /// one.
    pub fn compact(&self, order: &[NodeId]) -> (CsrGraph, Vec<NodeId>) {
        self.compact_into(order, (Vec::new(), Vec::new(), Vec::new()))
    }

    /// [`compact`](DeltaGraph::compact) writing into recycled arenas —
    /// pass the previous generation's [`CsrGraph::into_parts`] so a
    /// rolling compaction reuses capacity instead of re-faulting tens of
    /// megabytes of fresh pages per window. The buffers are cleared
    /// before use; their contents are irrelevant.
    ///
    /// # Panics
    ///
    /// As [`compact`](DeltaGraph::compact).
    pub fn compact_into(
        &self,
        order: &[NodeId],
        buffers: (Vec<f64>, Vec<u32>, Vec<NodeId>),
    ) -> (CsrGraph, Vec<NodeId>) {
        assert_eq!(
            order.len(),
            self.live_len(),
            "compact: order must cover every live node exactly once"
        );
        let mut map: Vec<NodeId> = vec![TOMBSTONED; self.len()];
        for (pos, &v) in order.iter().enumerate() {
            assert!(
                (v as usize) < self.len() && !self.dead[v as usize],
                "compact: order names a dead or out-of-range node"
            );
            assert!(
                map[v as usize] == TOMBSTONED,
                "compact: order repeats node {v}"
            );
            map[v as usize] = pos as NodeId;
        }

        // Synthesize the symmetric halves of deferred-staged edges: a
        // deferred edge sits only on its appended endpoint `x`, so the
        // partner `u` owes one extra entry `map[x]`. One counting pass
        // sizes a per-node extras arena; the fill pass walks appended
        // nodes in id order, which is ascending under any monotone
        // `order` the planner passes — each node's extras run then
        // merges into its remapped slice without a sort.
        let mut extra_off: Vec<u32> = Vec::new();
        let mut extra_vals: Vec<NodeId> = Vec::new();
        if self.deferred_edges > 0 {
            let n = self.base.len();
            extra_off = vec![0u32; order.len() + 1];
            for (ai, list) in self.appended_adj.iter().enumerate() {
                debug_assert!(
                    !self.dead[n + ai],
                    "deferred-staged endpoints must outlive compaction"
                );
                for &u in list {
                    let cu = map[u as usize];
                    debug_assert!(cu != TOMBSTONED, "deferred edge endpoint died before compaction");
                    extra_off[cu as usize + 1] += 1;
                }
            }
            for i in 1..extra_off.len() {
                extra_off[i] += extra_off[i - 1];
            }
            extra_vals = vec![0 as NodeId; self.deferred_edges];
            let mut cursor: Vec<u32> = extra_off[..order.len()].to_vec();
            for (ai, list) in self.appended_adj.iter().enumerate() {
                let cx = map[n + ai];
                for &u in list {
                    let cu = map[u as usize] as usize;
                    extra_vals[cursor[cu] as usize] = cx;
                    cursor[cu] += 1;
                }
            }
        }

        // Monotonicity prechecks, O(n) each. When the remap preserves id
        // order on surviving base nodes, every unpatched base slice —
        // already ascending in the CSR — stays ascending after the remap,
        // so the hot loop below can skip per-entry ascent tracking. The
        // planner's canonical disk-major order always qualifies: survivors
        // keep their relative order within and across disk runs.
        let n_base = self.base.len();
        let base_monotone = {
            let mut prev = None;
            map[..n_base].iter().all(|&m| {
                if m == TOMBSTONED {
                    return true;
                }
                let ok = prev.is_none_or(|p| p < m);
                prev = Some(m);
                ok
            })
        };
        // Likewise for appended nodes: the extras arena is filled in
        // appended-id order, so a monotone remap of appended ids makes
        // every per-node extras run ascending — no per-run check needed.
        let extras_ascending = self.deferred_edges == 0 || {
            let mut prev = None;
            map[n_base..].iter().all(|&m| {
                if m == TOMBSTONED {
                    return true;
                }
                let ok = prev.is_none_or(|p| p < m);
                prev = Some(m);
                ok
            })
        };

        let (mut weights, mut offsets, mut neighbors) = buffers;
        weights.clear();
        weights.reserve(order.len());
        // Capacity bound: the stored half-edges plus synthesized ones —
        // exact when every tombstone was eager, over only by lingering
        // entries that point at deferred-tombstoned nodes (filtered
        // while writing).
        let bound: usize =
            order.iter().map(|&v| self.adj(v).len()).sum::<usize>() + self.deferred_edges;
        offsets.clear();
        offsets.reserve(order.len() + 1);
        offsets.push(0);
        neighbors.clear();
        neighbors.reserve(bound);
        for (p, &v) in order.iter().enumerate() {
            weights.push(self.weight(v));
            let start = neighbors.len();
            let (lo, hi) = if extra_off.is_empty() {
                (0, 0)
            } else {
                (extra_off[p] as usize, extra_off[p + 1] as usize)
            };
            // A non-monotone `order` can break the extras run's ascent;
            // the check is O(|run|), far below the sort it dodges.
            let extras_sorted = extras_ascending
                || hi == lo
                || extra_vals[lo..hi].windows(2).all(|w| w[0] < w[1]);
            let mut e_i = lo;
            let vi = v as usize;
            if extras_sorted && base_monotone && vi < n_base && self.patched[vi].is_none() {
                // Fast path: an unpatched base slice under a monotone
                // remap is ascending by construction, so remap, filter
                // tombstones, and stream-merge the extras in one pass
                // with no ascent bookkeeping. Slices with no pending
                // extras — the common case — skip the merge compares too.
                if lo == hi {
                    for &u in self.base.neighbors(v) {
                        let nu = map[u as usize];
                        if nu == TOMBSTONED {
                            debug_assert!(
                                self.deferred_dead > 0,
                                "live adjacency holds a dead node outside deferred mode"
                            );
                            continue;
                        }
                        neighbors.push(nu);
                    }
                } else {
                    for &u in self.base.neighbors(v) {
                        let nu = map[u as usize];
                        if nu == TOMBSTONED {
                            debug_assert!(
                                self.deferred_dead > 0,
                                "live adjacency holds a dead node outside deferred mode"
                            );
                            continue;
                        }
                        while e_i < hi && extra_vals[e_i] < nu {
                            neighbors.push(extra_vals[e_i]);
                            e_i += 1;
                        }
                        neighbors.push(nu);
                    }
                    while e_i < hi {
                        neighbors.push(extra_vals[e_i]);
                        e_i += 1;
                    }
                }
            } else {
                let mut merging = extras_sorted;
                let mut prev: Option<NodeId> = None;
                for &u in self.adj(v) {
                    let nu = map[u as usize];
                    if nu == TOMBSTONED {
                        debug_assert!(
                            self.deferred_dead > 0,
                            "live adjacency holds a dead node outside deferred mode"
                        );
                        continue;
                    }
                    if merging {
                        if prev.is_none_or(|q| q < nu) {
                            // Still ascending: stream pending extras that
                            // sort below this entry, then the entry itself —
                            // the merged slice comes out sorted in one pass.
                            while e_i < hi && extra_vals[e_i] < nu {
                                neighbors.push(extra_vals[e_i]);
                                e_i += 1;
                            }
                            prev = Some(nu);
                        } else {
                            // The remapped run broke ascent (an out-of-order
                            // append): collect the rest raw and sort below.
                            merging = false;
                        }
                    }
                    neighbors.push(nu);
                }
                while e_i < hi {
                    neighbors.push(extra_vals[e_i]);
                    e_i += 1;
                }
                if !merging {
                    neighbors[start..].sort_unstable();
                }
            }
            debug_assert!(
                neighbors[start..].windows(2).all(|w| w[0] < w[1]),
                "compacted slice must be strictly ascending"
            );
            assert!(
                neighbors.len() <= u32::MAX as usize,
                "CSR offsets are u32: half-edges exceed u32::MAX"
            );
            offsets.push(neighbors.len() as u32);
        }
        let half = neighbors.len();
        debug_assert_eq!(half % 2, 0, "adjacency must be symmetric");
        debug_assert_eq!(half / 2, self.edges, "live edge accounting diverged");
        let csr = CsrGraph::from_sorted_parts(weights, offsets, neighbors, half / 2);
        (csr, map)
    }
}

/// The id-map marker [`DeltaGraph::compact`] assigns to tombstoned
/// nodes.
pub const TOMBSTONED: NodeId = NodeId::MAX;

impl GraphView for DeltaGraph {
    fn len(&self) -> usize {
        DeltaGraph::len(self)
    }

    fn weight(&self, v: NodeId) -> f64 {
        DeltaGraph::weight(self, v)
    }

    fn neighbors(&self, v: NodeId) -> &[NodeId] {
        self.adj(v)
    }

    fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        DeltaGraph::has_edge(self, u, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Graph, GraphBuilder};

    /// A small base graph: path 0-1-2-3 plus chord 0-2, weights 1..=4.
    fn base() -> CsrGraph {
        let mut b = GraphBuilder::with_weights(vec![1.0, 2.0, 3.0, 4.0]);
        for (u, v) in [(0, 1), (1, 2), (2, 3), (0, 2)] {
            b.add_edge(u, v);
        }
        b.finalize_csr()
    }

    #[test]
    fn clean_overlay_mirrors_base() {
        let d = DeltaGraph::new(base());
        assert!(!d.is_dirty());
        assert_eq!(d.len(), 4);
        assert_eq!(d.live_len(), 4);
        assert_eq!(d.edge_count(), 4);
        for v in 0..4u32 {
            assert_eq!(d.neighbors(v), d.base().neighbors(v));
            assert_eq!(GraphView::weight(&d, v), d.base().weight(v));
            for u in 0..4u32 {
                assert_eq!(d.has_edge(u, v), d.base().has_edge(u, v));
            }
        }
        let (csr, map) = d.compact(&[0, 1, 2, 3]);
        assert_eq!(&csr, d.base(), "identity compaction reproduces the base");
        assert_eq!(map, vec![0, 1, 2, 3]);
    }

    #[test]
    fn tombstone_hides_node_and_edges() {
        let mut d = DeltaGraph::new(base());
        d.tombstone(2);
        assert!(d.is_dirty());
        assert_eq!(d.live_len(), 3);
        assert_eq!(d.dead_count(), 1);
        assert_eq!(d.edge_count(), 1, "edges 1-2, 2-3, 0-2 gone");
        assert!(d.is_dead(2));
        assert_eq!(GraphView::weight(&d, 2), 0.0);
        assert!(d.neighbors(2).is_empty());
        assert_eq!(d.neighbors(0), &[1], "patched: 2 removed");
        assert_eq!(d.neighbors(3), &[] as &[NodeId]);
        assert!(!d.has_edge(1, 2));
        assert!(d.has_edge(0, 1));
    }

    #[test]
    fn append_and_connect() {
        let mut d = DeltaGraph::new(base());
        let v = d.append_node(9.0);
        assert_eq!(v, 4);
        assert_eq!(d.live_len(), 5);
        d.add_edge(v, 1);
        d.add_edge(3, v);
        assert_eq!(d.edge_count(), 6);
        assert_eq!(d.staged_edge_count(), 2);
        assert!(d.has_edge(1, v) && d.has_edge(v, 3));
        assert_eq!(GraphView::weight(&d, v), 9.0);
        assert_eq!(d.neighbors(v), &[1, 3], "appends in arrival order");
        assert_eq!(d.neighbors(1), &[0, 2, 4], "sorted append kept order");
    }

    #[test]
    fn overlay_equals_mutable_graph_reference() {
        // Apply the same delta to a mutable adjacency-list Graph built on
        // the live subgraph and compare view-for-view through a relabel.
        let mut d = DeltaGraph::new(base());
        d.tombstone(0);
        let a = d.append_node(7.0);
        let b = d.append_node(8.0);
        d.add_edge(a, 1);
        d.add_edge(a, b);
        d.add_edge(3, b);

        // Reference: live nodes {1, 2, 3, a, b} relabeled 0..5.
        let mut g = Graph::with_weights(vec![2.0, 3.0, 4.0, 7.0, 8.0]);
        g.add_edge(0, 1); // 1-2
        g.add_edge(1, 2); // 2-3
        g.add_edge(3, 0); // a-1
        g.add_edge(3, 4); // a-b
        g.add_edge(2, 4); // 3-b
        let order = [1u32, 2, 3, a, b];
        let (csr, map) = d.compact(&order);
        assert_eq!(csr.len(), g.len());
        assert_eq!(csr.edge_count(), g.edge_count());
        assert_eq!(csr.edge_count(), d.edge_count());
        for (new, &old) in order.iter().enumerate() {
            assert_eq!(map[old as usize], new as NodeId);
            assert_eq!(csr.weight(new as NodeId), g.weight(new as NodeId));
            let mut want = g.neighbors(new as NodeId).to_vec();
            want.sort_unstable();
            assert_eq!(csr.neighbors(new as NodeId), &want[..]);
        }
        assert_eq!(map[0], TOMBSTONED);
    }

    #[test]
    fn compact_under_permuted_order_sorts_disturbed_slices() {
        let mut d = DeltaGraph::new(base());
        let v = d.append_node(5.0);
        d.add_edge(v, 0);
        // Interleave the append into the middle of the id space.
        let (csr, map) = d.compact(&[3, v, 2, 1, 0]);
        assert_eq!(csr.len(), 5);
        // Edge {v, 0} is now {1, 4}; base edge {0, 2} is now {4, 2}.
        assert!(csr.has_edge(map[v as usize], map[0]));
        assert!(csr.has_edge(map[0], map[2]));
        for p in 0..csr.len() as NodeId {
            assert!(
                csr.neighbors(p).windows(2).all(|w| w[0] < w[1]),
                "slice {p} must be sorted"
            );
        }
    }

    #[test]
    fn tombstone_appended_node() {
        let mut d = DeltaGraph::new(base());
        let v = d.append_node(5.0);
        d.add_edge(v, 1);
        d.tombstone(v);
        assert_eq!(d.live_len(), 4);
        assert!(!d.has_edge(v, 1));
        assert_eq!(d.neighbors(1), d.base().neighbors(1), "patch removed v");
        let (csr, _) = d.compact(&[0, 1, 2, 3]);
        assert_eq!(&csr, d.base());
    }

    #[test]
    fn solvers_run_on_the_overlay_view() {
        // Distinct weights avoid tie-degenerate selections; the overlay
        // view and its compaction must agree modulo the relabel.
        let mut d = DeltaGraph::new(base());
        d.tombstone(1);
        let v = d.append_node(10.0);
        d.add_edge(v, 3);
        let order = [0u32, 2, 3, v];
        let (csr, map) = d.compact(&order);
        let on_view = crate::mwis::gwmin(&d);
        let on_csr = crate::mwis::gwmin(&csr);
        // Dead nodes present as isolated weight-0 nodes, so a maximal
        // solver may include them; they carry no weight and drop out of
        // the relabel — the documented overlay-view convention.
        let mut relabeled: Vec<NodeId> = on_view
            .iter()
            .filter(|&&x| !d.is_dead(x))
            .map(|&x| map[x as usize])
            .collect();
        relabeled.sort_unstable();
        assert_eq!(relabeled, on_csr);
        let view_w: f64 = on_view.iter().map(|&x| GraphView::weight(&d, x)).sum();
        let csr_w: f64 = on_csr.iter().map(|&x| csr.weight(x)).sum();
        assert_eq!(view_w, csr_w);
    }

    #[test]
    #[should_panic(expected = "already dead")]
    fn double_tombstone_panics() {
        let mut d = DeltaGraph::new(base());
        d.tombstone(1);
        d.tombstone(1);
    }

    #[test]
    #[should_panic(expected = "dead endpoint")]
    fn edge_to_dead_panics() {
        let mut d = DeltaGraph::new(base());
        d.tombstone(1);
        let v = d.append_node(1.0);
        d.add_edge(v, 1);
    }

    #[test]
    #[should_panic(expected = "cover every live node")]
    fn compact_order_must_cover_live_nodes() {
        let d = DeltaGraph::new(base());
        let _ = d.compact(&[0, 1, 2]);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "duplicate edge")]
    fn duplicate_staged_edge_panics_in_debug() {
        let mut d = DeltaGraph::new(base());
        let v = d.append_node(1.0);
        d.add_edge(v, 0);
        d.add_edge(0, v);
    }

    #[test]
    fn empty_base_grows_from_nothing() {
        let mut d = DeltaGraph::new(CsrGraph::default());
        assert!(d.is_empty());
        let a = d.append_node(1.5);
        let b = d.append_node(2.5);
        d.add_edge(a, b);
        let (csr, _) = d.compact(&[a, b]);
        assert_eq!(csr.len(), 2);
        assert!(csr.has_edge(0, 1));
        assert_eq!(csr.weight(0), 1.5);
    }

    #[test]
    fn deferred_tombstone_compacts_like_eager() {
        // The same retire-append-connect cycle through both tombstone
        // forms must count edges identically and compact to the same
        // CSR, even though the deferred overlay's live lists still hold
        // the dead entries in between.
        let run = |deferred: bool| {
            let mut d = DeltaGraph::new(base());
            if deferred {
                d.tombstone_batch_deferred(&[0, 1]);
            } else {
                d.tombstone_batch(&[0, 1]);
            }
            let v = d.append_node(5.0);
            d.add_edge(v, 2);
            d.add_edge(3, v);
            (d.edge_count(), d.compact(&[2, 3, v]))
        };
        let (eager_edges, (eager_csr, eager_map)) = run(false);
        let (deferred_edges, (deferred_csr, deferred_map)) = run(true);
        assert_eq!(eager_edges, deferred_edges);
        assert_eq!(eager_csr, deferred_csr);
        assert_eq!(eager_map, deferred_map);
    }

    #[test]
    fn deferred_edges_compact_like_eager() {
        // Retire, append two nodes, connect them to survivors and each
        // other through both staging modes: identical edge counts and
        // bit-identical compacted CSRs.
        let run = |deferred: bool| {
            let mut d = DeltaGraph::new(base());
            d.tombstone_batch_deferred(&[0]);
            let a = d.append_node(5.0);
            let b = d.append_node(6.0);
            let edge = |d: &mut DeltaGraph, x: NodeId, v: NodeId| {
                if deferred {
                    d.add_edge_deferred(x, v);
                } else {
                    d.add_edge(x, v);
                }
            };
            edge(&mut d, a, 1);
            edge(&mut d, a, 3);
            edge(&mut d, b, 2);
            edge(&mut d, b, a);
            (d.edge_count(), d.compact(&[1, 2, a, 3, b]))
        };
        let (eager_edges, (eager_csr, eager_map)) = run(false);
        let (deferred_edges, (deferred_csr, deferred_map)) = run(true);
        assert_eq!(eager_edges, deferred_edges);
        assert_eq!(eager_csr, deferred_csr);
        assert_eq!(eager_map, deferred_map);
    }

    #[test]
    #[should_panic(expected = "cannot mix eager and deferred staging")]
    fn mixed_edge_staging_panics() {
        let mut d = DeltaGraph::new(base());
        let a = d.append_node(5.0);
        d.add_edge(a, 1);
        d.add_edge_deferred(a, 2);
    }

    #[test]
    #[should_panic(expected = "tombstone before staging deferred edges")]
    fn tombstone_after_deferred_staging_panics() {
        let mut d = DeltaGraph::new(base());
        let a = d.append_node(5.0);
        d.add_edge_deferred(a, 2);
        d.tombstone(3);
    }

    #[test]
    fn deferred_tombstone_counts_prior_deferred_deaths_once() {
        // 2's edges: {1, 2}, {2, 3}, {0, 2}. Killing 2 (deferred) and
        // then 0 and 3 in a second deferred batch must not re-count the
        // {0, 2} or {2, 3} edges that died with 2, even though 2's id
        // still sits in 0's and 3's stored lists.
        let mut d = DeltaGraph::new(base());
        d.tombstone_batch_deferred(&[2]);
        assert_eq!(d.edge_count(), 1, "only {{0, 1}} survives");
        d.tombstone_batch_deferred(&[0, 3]);
        assert_eq!(d.edge_count(), 0);
        let (csr, _) = d.compact(&[1]);
        assert_eq!(csr.len(), 1);
        assert_eq!(csr.edge_count(), 0);
    }
}
