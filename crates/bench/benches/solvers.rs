//! Benchmarks of the graph-algorithm substrate: MWIS greedies vs exact,
//! and weighted set cover — the per-decision costs behind the paper's
//! Table/Figure reproduction runs.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use spindown_graph::graph::{Graph, NodeId};
use spindown_graph::mwis;
use spindown_graph::setcover::SetCoverInstance;
use spindown_sim::rng::SimRng;

/// A random weighted graph with average degree ~6 (the conflict graphs
/// the MWIS scheduler builds are similarly sparse).
fn random_graph(n: usize, seed: u64) -> Graph {
    let mut rng = SimRng::seed_from_u64(seed);
    let weights: Vec<f64> = (0..n).map(|_| 1.0 + rng.next_f64() * 9.0).collect();
    let mut g = Graph::with_weights(weights);
    for _ in 0..n * 3 {
        let u = rng.index(n) as NodeId;
        let v = rng.index(n) as NodeId;
        if u != v {
            g.add_edge(u, v);
        }
    }
    g
}

fn bench_mwis(c: &mut Criterion) {
    let mut group = c.benchmark_group("mwis");
    for n in [1_000usize, 10_000, 100_000] {
        let g = random_graph(n, 7);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_function(format!("gwmin_{n}"), |b| {
            b.iter(|| black_box(mwis::gwmin(&g)).len());
        });
        group.bench_function(format!("gwmin2_{n}"), |b| {
            b.iter(|| black_box(mwis::gwmin2(&g)).len());
        });
    }
    let g = random_graph(1_000, 7);
    group.bench_function("local_search_1000", |b| {
        let start = mwis::gwmin(&g);
        b.iter(|| black_box(mwis::local_search(&g, &start)).len());
    });
    let small = random_graph(24, 9);
    group.bench_function("exact_24", |b| {
        b.iter(|| black_box(mwis::exact(&small, 24)).unwrap().len());
    });
    group.finish();
}

fn bench_setcover(c: &mut Criterion) {
    let mut group = c.benchmark_group("setcover");
    // Batch-scheduler-shaped instances: elements = queued requests, sets
    // = candidate disks covering ~rf requests each.
    for (elements, sets) in [(32usize, 48usize), (256, 180), (2048, 180)] {
        let mut rng = SimRng::seed_from_u64(11);
        let mut inst = SetCoverInstance::new(elements);
        for e in 0..elements {
            inst.add_set(1.0 + rng.next_f64(), [e as u32]);
        }
        for _ in 0..sets {
            let k = 1 + rng.index(8);
            let elems: Vec<u32> = (0..k).map(|_| rng.index(elements) as u32).collect();
            inst.add_set(rng.next_f64() * 300.0, elems);
        }
        group.throughput(Throughput::Elements(elements as u64));
        group.bench_function(format!("greedy_{elements}e_{sets}s"), |b| {
            b.iter(|| black_box(inst.solve_greedy()).unwrap().weight);
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mwis, bench_setcover);
criterion_main!(benches);
