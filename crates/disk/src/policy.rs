//! Power-management policies: when does an idle disk spin down?
//!
//! The paper's storage system uses **2CPM** — spin down after a fixed
//! idleness threshold equal to the breakeven time `TB` — which is
//! 2-competitive against the offline optimum (Irani et al. \[11\]). This
//! module also ships an always-on policy (the normalization baseline of
//! Fig. 6) and an adaptive-threshold policy used by the ablation benches.

use spindown_sim::time::{SimDuration, SimTime};

use crate::power::PowerParams;

/// Decides how long a disk may sit idle before being spun down.
///
/// Policies are stateful so that adaptive implementations can learn from
/// the arrival process; [`IdlePolicy::on_request`] is invoked on every
/// request the disk receives.
pub trait IdlePolicy: std::fmt::Debug + Send {
    /// Called when the disk enters the idle state at `now`. Returns the
    /// idle duration after which the disk should spin down, or `None` to
    /// keep it spinning indefinitely.
    fn idle_timeout(&mut self, now: SimTime) -> Option<SimDuration>;

    /// Called whenever the disk receives a request (idle period ended).
    fn on_request(&mut self, _now: SimTime) {}

    /// Short policy name for reports.
    fn name(&self) -> &'static str;
}

/// Never spin down — the paper's "always-on" baseline configuration.
#[derive(Debug, Clone, Default)]
pub struct AlwaysOn;

impl IdlePolicy for AlwaysOn {
    fn idle_timeout(&mut self, _now: SimTime) -> Option<SimDuration> {
        None
    }

    fn name(&self) -> &'static str {
        "always-on"
    }
}

/// 2CPM: spin down after a fixed threshold (the breakeven time by default).
#[derive(Debug, Clone)]
pub struct FixedThreshold {
    threshold: SimDuration,
}

impl FixedThreshold {
    /// Fixed threshold of exactly `threshold`.
    pub fn new(threshold: SimDuration) -> Self {
        FixedThreshold { threshold }
    }

    /// The canonical 2CPM configuration: threshold = breakeven time
    /// `TB = E_up/down / P_I` derived from `params`.
    pub fn breakeven(params: &PowerParams) -> Self {
        FixedThreshold {
            threshold: params.breakeven(),
        }
    }

    /// The configured threshold.
    pub fn threshold(&self) -> SimDuration {
        self.threshold
    }
}

impl IdlePolicy for FixedThreshold {
    fn idle_timeout(&mut self, _now: SimTime) -> Option<SimDuration> {
        Some(self.threshold)
    }

    fn name(&self) -> &'static str {
        "2cpm"
    }
}

/// Adaptive threshold (ablation, not in the paper): keeps an exponentially
/// weighted average of observed idle-period lengths and spins down after
/// `scale ×` that average, clamped to `[min, max]`.
///
/// Intuition: if recent idle periods were short, waiting longer avoids
/// wasted spin cycles; if they were long, spinning down sooner saves idle
/// energy.
#[derive(Debug, Clone)]
pub struct AdaptiveThreshold {
    avg_idle_s: f64,
    alpha: f64,
    scale: f64,
    min: SimDuration,
    max: SimDuration,
    idle_since: Option<SimTime>,
}

impl AdaptiveThreshold {
    /// Creates the policy with smoothing factor `alpha ∈ (0,1]`, threshold
    /// multiplier `scale`, and clamping bounds. The initial average is the
    /// midpoint of the bounds.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]`, `scale` is not positive, or
    /// `min > max`.
    pub fn new(alpha: f64, scale: f64, min: SimDuration, max: SimDuration) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0,1]");
        assert!(scale > 0.0, "scale must be positive");
        assert!(min <= max, "min must not exceed max");
        AdaptiveThreshold {
            avg_idle_s: (min.as_secs_f64() + max.as_secs_f64()) / 2.0,
            alpha,
            scale,
            min,
            max,
            idle_since: None,
        }
    }

    /// Current smoothed idle-period estimate, seconds.
    pub fn estimate_s(&self) -> f64 {
        self.avg_idle_s
    }
}

impl IdlePolicy for AdaptiveThreshold {
    fn idle_timeout(&mut self, now: SimTime) -> Option<SimDuration> {
        self.idle_since = Some(now);
        let t = SimDuration::from_secs_f64(self.avg_idle_s * self.scale);
        Some(t.clamp(self.min, self.max))
    }

    fn on_request(&mut self, now: SimTime) {
        if let Some(since) = self.idle_since.take() {
            let observed = now.saturating_since(since).as_secs_f64();
            self.avg_idle_s = self.alpha * observed + (1.0 - self.alpha) * self.avg_idle_s;
        }
    }

    fn name(&self) -> &'static str {
        "adaptive"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_on_never_times_out() {
        let mut p = AlwaysOn;
        assert_eq!(p.idle_timeout(SimTime::ZERO), None);
        assert_eq!(p.name(), "always-on");
    }

    #[test]
    fn fixed_threshold_is_constant() {
        let mut p = FixedThreshold::new(SimDuration::from_secs(7));
        assert_eq!(
            p.idle_timeout(SimTime::ZERO),
            Some(SimDuration::from_secs(7))
        );
        assert_eq!(
            p.idle_timeout(SimTime::from_secs(1000)),
            Some(SimDuration::from_secs(7))
        );
        assert_eq!(p.threshold(), SimDuration::from_secs(7));
    }

    #[test]
    fn breakeven_threshold_matches_params() {
        let params = PowerParams::barracuda();
        let mut p = FixedThreshold::breakeven(&params);
        assert_eq!(p.idle_timeout(SimTime::ZERO), Some(params.breakeven()));
        assert_eq!(p.name(), "2cpm");
    }

    #[test]
    fn adaptive_learns_short_idle_periods() {
        let mut p = AdaptiveThreshold::new(
            0.5,
            1.0,
            SimDuration::from_secs(1),
            SimDuration::from_secs(100),
        );
        let initial = p.estimate_s();
        // Repeatedly observe 2-second idle periods.
        let mut now = SimTime::ZERO;
        for _ in 0..20 {
            p.idle_timeout(now);
            now += SimDuration::from_secs(2);
            p.on_request(now);
        }
        assert!(p.estimate_s() < initial);
        assert!((p.estimate_s() - 2.0).abs() < 0.1, "est {}", p.estimate_s());
    }

    #[test]
    fn adaptive_clamps_to_bounds() {
        let mut p = AdaptiveThreshold::new(
            1.0,
            1.0,
            SimDuration::from_secs(5),
            SimDuration::from_secs(10),
        );
        // Force the average very low.
        p.idle_timeout(SimTime::ZERO);
        p.on_request(SimTime::from_millis(1));
        let t = p.idle_timeout(SimTime::from_secs(1)).unwrap();
        assert_eq!(t, SimDuration::from_secs(5));
        // Force it very high.
        p.on_request(SimTime::from_secs(10_000));
        let t = p.idle_timeout(SimTime::from_secs(10_000)).unwrap();
        assert_eq!(t, SimDuration::from_secs(10));
    }

    #[test]
    fn adaptive_ignores_request_without_idle() {
        let mut p = AdaptiveThreshold::new(
            0.5,
            1.0,
            SimDuration::from_secs(1),
            SimDuration::from_secs(100),
        );
        let before = p.estimate_s();
        p.on_request(SimTime::from_secs(50));
        assert_eq!(p.estimate_s(), before);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn adaptive_rejects_bad_alpha() {
        AdaptiveThreshold::new(0.0, 1.0, SimDuration::ZERO, SimDuration::MAX);
    }
}
