//! The paper's running example (Figs. 2–4): six requests, four disks, the
//! toy power model with `TB = 5 s` and unit idle power.
//!
//! Shared by unit tests, the `paper_walkthrough` example and the
//! `figures` harness, so the numbers the paper quotes (energies 10, 15,
//! 19, 20, 23, 72) are asserted in exactly one encoding.
//!
//! Data/disk naming: the paper's `b1..b6` are [`DataId`] 0–5 and `d1..d4`
//! are [`DiskId`] 0–3.

use spindown_disk::power::PowerParams;
use spindown_sim::time::SimTime;

use crate::model::{Assignment, DataId, DiskId, Request};
use crate::sched::ExplicitPlacement;

/// The toy power model: 1 W active/idle, zero standby, zero-cost
/// transitions, breakeven pinned at 5 s.
pub fn params() -> PowerParams {
    PowerParams::paper_example()
}

/// The Fig. 2 placement: `d1 = {b1,b2,b3,b5}`, `d2 = {b2,b3}`,
/// `d3 = {b4,b6}`, `d4 = {b3,b4,b5,b6}`.
pub fn placement() -> ExplicitPlacement {
    ExplicitPlacement::new(
        vec![
            vec![DiskId(0)],                       // b1: d1
            vec![DiskId(0), DiskId(1)],            // b2: d1, d2
            vec![DiskId(0), DiskId(1), DiskId(3)], // b3: d1, d2, d4
            vec![DiskId(2), DiskId(3)],            // b4: d3, d4
            vec![DiskId(0), DiskId(3)],            // b5: d1, d4
            vec![DiskId(2), DiskId(3)],            // b6: d3, d4
        ],
        4,
    )
}

fn requests(times_s: [u64; 6]) -> Vec<Request> {
    times_s
        .iter()
        .enumerate()
        .map(|(i, &t)| Request {
            index: i as u32,
            at: SimTime::from_secs(t),
            data: DataId(i as u64),
            size: 512 * 1024,
        })
        .collect()
}

/// The batch instance (Fig. 2): all six requests access disks
/// concurrently at `t = 0`.
pub fn batch_requests() -> Vec<Request> {
    requests([0; 6])
}

/// The offline instance (Fig. 3): arrivals at `t = 0, 1, 3, 5, 12, 13`.
pub fn offline_requests() -> Vec<Request> {
    requests([0, 1, 3, 5, 12, 13])
}

/// Schedule A (Fig. 2a): `r1,r5 → d1`, `r2,r3 → d2`, `r4,r6 → d3` —
/// three disks, batch energy 15.
pub fn schedule_a() -> Assignment {
    Assignment {
        disks: vec![
            DiskId(0),
            DiskId(1),
            DiskId(1),
            DiskId(2),
            DiskId(0),
            DiskId(2),
        ],
    }
}

/// Schedule B (Figs. 2b/3a): `r1,r2,r3,r5 → d1`, `r4,r6 → d3` — two
/// disks; batch energy 10 (optimal), offline energy 23 (no longer
/// optimal).
pub fn schedule_b() -> Assignment {
    Assignment {
        disks: vec![
            DiskId(0),
            DiskId(0),
            DiskId(0),
            DiskId(2),
            DiskId(0),
            DiskId(2),
        ],
    }
}

/// Schedule C (Fig. 3b): `r1,r2,r3 → d1`, `r4 → d3`, `r5,r6 → d4` —
/// offline-optimal with energy 19 (the paper's §2.3.2 arithmetic; the
/// figure caption's "21" is inconsistent with its own text).
pub fn schedule_c() -> Assignment {
    Assignment {
        disks: vec![
            DiskId(0),
            DiskId(0),
            DiskId(0),
            DiskId(2),
            DiskId(3),
            DiskId(3),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offline::evaluate_offline;

    fn energy(requests: &[Request], schedule: &Assignment) -> f64 {
        evaluate_offline(requests, schedule, 4, &params(), None, None).energy_j
    }

    #[test]
    fn all_published_energies_hold() {
        let batch = batch_requests();
        let offline = offline_requests();
        assert_eq!(energy(&batch, &schedule_a()), 15.0);
        assert_eq!(energy(&batch, &schedule_b()), 10.0);
        assert_eq!(energy(&offline, &schedule_b()), 23.0);
        assert_eq!(energy(&offline, &schedule_c()), 19.0);
        // Always-on baselines: 20 for the batch window, 72 for offline.
        let m = evaluate_offline(&batch, &schedule_b(), 4, &params(), None, None);
        assert_eq!(m.always_on_j, 20.0);
        let m = evaluate_offline(&offline, &schedule_c(), 4, &params(), None, None);
        assert_eq!(m.always_on_j, 72.0);
    }

    #[test]
    fn schedules_respect_placement() {
        let placement = placement();
        use crate::sched::LocationProvider;
        for schedule in [schedule_a(), schedule_b(), schedule_c()] {
            for (r, req) in offline_requests().iter().enumerate() {
                assert!(placement.locations(req.data).contains(&schedule.disk_of(r)));
            }
        }
    }
}
