//! Command execution: load/generate the workload, run, render the report.
//!
//! Trace files are never slurped into memory: every pass re-opens the
//! file and streams records line by line ([`SpcStream`]/[`SrtStream`]),
//! so ingestion stays constant-memory regardless of trace size.
//! Commands that only need one pass (stats) or two passes (simulate
//! with an event-loop scheduler) never materialize a [`Trace`]; only
//! the offline MWIS plan and `compare` do.

use std::fmt::Write as _;
use std::fs::File;
use std::io::BufReader;
use std::path::PathBuf;

use spindown_core::cost::CostFunction;
use spindown_core::experiment::{
    build_scheduler, data_space, requests_from_trace, run_always_on_baseline,
    run_experiment_with_jobs, scan_stream, ExperimentSpec, SchedulerKind,
};
use spindown_core::metrics::RunMetrics;
use spindown_core::model::Request;
use spindown_core::placement::{PlacementConfig, PlacementMap};
use spindown_core::sched::{MwisPlanner, WindowedPlanner};
use spindown_core::system::{run_system_streamed_with_jobs, PolicyKind, SystemConfig};
use spindown_sim::time::SimDuration;
use spindown_trace::record::{Trace, TraceRecord};
use spindown_trace::spc::SpcStream;
use spindown_trace::srt::SrtStream;
use spindown_trace::stats::TraceStats;
use spindown_trace::stream::{collect_trace, EnsureSorted, SkipCount};
use spindown_disk::power::PowerParams;
use spindown_trace::synth::arrivals::OnOffProcess;
use spindown_trace::synth::{CelloLike, DiurnalLike, FinancialLike, FlashCrowdLike};
use spindown_trace::{ParsePolicy, StreamError};

use crate::args::{Cli, Command, SchedulerArg, SourceArg};

/// Command failures (I/O, parsing, bench regressions).
#[derive(Debug)]
pub enum CommandError {
    /// The trace file could not be read.
    Io(std::path::PathBuf, std::io::Error),
    /// The trace file could not be parsed.
    Parse(String),
    /// The file extension is not recognized.
    UnknownFormat(std::path::PathBuf),
    /// The bench regression gate failed (carries the full gate report).
    BenchRegression(String),
}

impl std::fmt::Display for CommandError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommandError::Io(p, e) => write!(f, "cannot read {}: {e}", p.display()),
            CommandError::Parse(e) => write!(f, "cannot parse trace: {e}"),
            CommandError::UnknownFormat(p) => write!(
                f,
                "unrecognized trace extension on {} (expected .spc/.csv or .srt/.txt)",
                p.display()
            ),
            CommandError::BenchRegression(text) => write!(f, "{text}"),
        }
    }
}

impl std::error::Error for CommandError {}

/// Runs the parsed invocation and returns the textual report.
pub fn execute(cli: &Cli) -> Result<String, CommandError> {
    if cli.command == Command::Bench {
        return bench_report(cli);
    }
    let workload = Workload::from_cli(cli)?;
    match cli.command {
        Command::Stats => stats_report(&workload),
        Command::Simulate => simulate_command(cli, &workload),
        Command::Compare => compare_command(cli, &workload),
        Command::Replan => replan_command(cli, &workload),
        Command::Bench => unreachable!("handled above"),
    }
}

/// Trace file format, sniffed from the extension.
#[derive(Debug, Clone, Copy)]
enum FileFormat {
    Spc,
    Srt,
}

/// A replayable workload: each [`Workload::open`] starts a fresh
/// streaming pass over the same records (re-opens the file, re-seeds
/// the generator).
enum Workload {
    File {
        path: PathBuf,
        format: FileFormat,
        policy: ParsePolicy,
    },
    Cello(CelloLike, u64),
    Financial(FinancialLike, u64),
    Diurnal(DiurnalLike, u64),
    FlashCrowd(FlashCrowdLike, u64),
}

/// One streaming pass over a workload's records.
enum RecordPass {
    Spc(SpcStream<BufReader<File>>),
    Srt(SrtStream<BufReader<File>>),
    Synth(Box<dyn Iterator<Item = TraceRecord> + Send>),
}

impl Iterator for RecordPass {
    type Item = Result<TraceRecord, StreamError>;

    fn next(&mut self) -> Option<Self::Item> {
        match self {
            RecordPass::Spc(s) => s.next().map(|r| r.map_err(StreamError::from)),
            RecordPass::Srt(s) => s.next().map(|r| r.map_err(StreamError::from)),
            RecordPass::Synth(s) => s.next().map(Ok),
        }
    }
}

impl SkipCount for RecordPass {
    fn skipped_lines(&self) -> usize {
        match self {
            RecordPass::Spc(s) => s.skipped_lines(),
            RecordPass::Srt(s) => s.skipped_lines(),
            RecordPass::Synth(_) => 0,
        }
    }
}

impl RecordPass {
    /// Malformed lines skipped so far (lenient parsing only).
    fn skipped(&self) -> usize {
        self.skipped_lines()
    }
}

impl Workload {
    fn from_cli(cli: &Cli) -> Result<Workload, CommandError> {
        let policy = if cli.lenient {
            ParsePolicy::Lenient
        } else {
            ParsePolicy::Strict
        };
        match &cli.source {
            SourceArg::TraceFile(path) => {
                let ext = path
                    .extension()
                    .and_then(|e| e.to_str())
                    .unwrap_or("")
                    .to_ascii_lowercase();
                let format = match ext.as_str() {
                    "spc" | "csv" => FileFormat::Spc,
                    "srt" | "txt" => FileFormat::Srt,
                    _ => return Err(CommandError::UnknownFormat(path.clone())),
                };
                Ok(Workload::File {
                    path: path.clone(),
                    format,
                    policy,
                })
            }
            SourceArg::SyntheticCello => {
                let sources = 24;
                let on_frac = {
                    let e_on = 1.5 * 2.0 / 0.5;
                    let e_off = 1.3 * 30.0 / 0.3;
                    e_on / (e_on + e_off)
                };
                Ok(Workload::Cello(
                    CelloLike {
                        requests: cli.requests,
                        data_items: cli.data_items,
                        arrivals: OnOffProcess {
                            sources,
                            on_shape: 1.5,
                            on_scale_s: 2.0,
                            off_shape: 1.3,
                            off_scale_s: 30.0,
                            burst_rate: cli.rate / (sources as f64 * on_frac),
                        },
                        ..CelloLike::default()
                    },
                    cli.seed,
                ))
            }
            SourceArg::SyntheticFinancial => Ok(Workload::Financial(
                FinancialLike {
                    requests: cli.requests,
                    data_items: cli.data_items,
                    rate: cli.rate,
                    ..FinancialLike::default()
                },
                cli.seed,
            )),
            SourceArg::SyntheticDiurnal => {
                // The sinusoid averages out over whole periods, so the
                // base rate IS the mean rate.
                let mut like = DiurnalLike {
                    requests: cli.requests,
                    data_items: cli.data_items,
                    ..DiurnalLike::default()
                };
                like.arrivals.base_rate = cli.rate;
                Ok(Workload::Diurnal(like, cli.seed))
            }
            SourceArg::SyntheticFlashCrowd => {
                // Scale background and burst intensity together so the
                // quiet/burst contrast (the scenario's point) survives
                // any --rate while the mean matches it.
                let mut like = FlashCrowdLike {
                    requests: cli.requests,
                    data_items: cli.data_items,
                    ..FlashCrowdLike::default()
                };
                let scale = cli.rate / like.arrivals.mean_rate();
                like.arrivals.base_rate *= scale;
                like.arrivals.burst_rate *= scale;
                Ok(Workload::FlashCrowd(like, cli.seed))
            }
        }
    }

    fn open(&self) -> Result<RecordPass, CommandError> {
        match self {
            Workload::File {
                path,
                format,
                policy,
            } => {
                let file = File::open(path).map_err(|e| CommandError::Io(path.clone(), e))?;
                let reader = BufReader::new(file);
                Ok(match format {
                    FileFormat::Spc => RecordPass::Spc(SpcStream::new(reader, *policy)),
                    FileFormat::Srt => RecordPass::Srt(SrtStream::new(reader, *policy)),
                })
            }
            Workload::Cello(gen, seed) => Ok(RecordPass::Synth(Box::new(gen.stream(*seed)))),
            Workload::Financial(gen, seed) => Ok(RecordPass::Synth(Box::new(gen.stream(*seed)))),
            Workload::Diurnal(gen, seed) => Ok(RecordPass::Synth(Box::new(gen.stream(*seed)))),
            Workload::FlashCrowd(gen, seed) => Ok(RecordPass::Synth(Box::new(gen.stream(*seed)))),
        }
    }
}

/// Drains a full pass into an in-memory [`Trace`] — only for commands
/// that genuinely need the whole workload at once (offline MWIS plans,
/// `compare`). Returns the skipped-line count alongside.
fn materialize(workload: &Workload) -> Result<(Trace, usize), CommandError> {
    let mut pass = workload.open()?;
    let trace =
        collect_trace(&mut pass).map_err(|e: StreamError| CommandError::Parse(e.to_string()))?;
    Ok((trace, pass.skipped()))
}

fn simulate_command(cli: &Cli, workload: &Workload) -> Result<String, CommandError> {
    let spec = spec(cli, cli.scheduler);
    match build_scheduler(&spec.scheduler, spec.seed) {
        Some(_) => {
            // Constant-memory path: pass one folds the stream to its
            // scan summary, pass two feeds the event loop(s) directly —
            // one per placement island when --jobs allows.
            let mut pass1 = workload.open()?;
            let scan =
                scan_stream(&mut pass1).map_err(|e| CommandError::Parse(e.to_string()))?;
            let skipped_scan = pass1.skipped();
            let reads = scan.reads();
            let span_s = scan.span_s();
            let placement = PlacementMap::build(scan.data_space(), &spec.placement, spec.seed);
            let config = SystemConfig {
                disks: spec.placement.disks,
                seed: spec.seed,
                ..spec.system.clone()
            };
            let mut pass2 = workload.open()?;
            let mut source = scan.requests(&mut pass2);
            let m = run_system_streamed_with_jobs(
                &mut source,
                &placement,
                &|| {
                    build_scheduler(&spec.scheduler, spec.seed)
                        .expect("checked above: event-loop scheduler")
                },
                &config,
                cli.effective_jobs(),
            )
            .map_err(|e| CommandError::Parse(e.0))?;
            drop(source);
            let skipped = skipped_scan.max(pass2.skipped());
            Ok(simulate_report(cli, reads, span_s, skipped, &m))
        }
        None => {
            // Offline MWIS plans over the whole stream: materialize. The
            // graph build and per-disk evaluation fan out across --jobs
            // workers (bit-identical to serial for any count).
            let (trace, skipped) = materialize(workload)?;
            let requests = requests_from_trace(&trace);
            let m = run_experiment_with_jobs(&requests, &spec, cli.effective_jobs());
            let span_s = requests.last().map(|r| r.at.as_secs_f64()).unwrap_or(0.0);
            Ok(simulate_report(cli, requests.len(), span_s, skipped, &m))
        }
    }
}

fn compare_command(cli: &Cli, workload: &Workload) -> Result<String, CommandError> {
    let (trace, skipped) = materialize(workload)?;
    let requests = requests_from_trace(&trace);
    let mut s = compare_report(cli, &requests);
    if skipped > 0 {
        let _ = write!(s, "\n(skipped {skipped} malformed trace lines)");
    }
    Ok(s)
}

/// Streams the workload through the rolling-horizon incremental
/// re-planner: every `--step-s` seconds of trace time the horizon
/// advances, retiring expired requests and admitting the new arrivals,
/// and the delta-maintained window is re-planned. The report carries a
/// FNV-1a digest over every per-window assignment and claimed-saving
/// bit pattern, so two runs are byte-comparable end to end — the CI
/// determinism job diffs `--jobs 1` against `--jobs 8` outputs.
fn replan_command(cli: &Cli, workload: &Workload) -> Result<String, CommandError> {
    let (trace, skipped) = materialize(workload)?;
    let requests = requests_from_trace(&trace);
    let spec = spec(cli, SchedulerArg::Mwis);
    let placement = PlacementMap::build(data_space(&requests), &spec.placement, spec.seed);
    let SchedulerKind::Mwis {
        solver,
        max_successors,
    } = spec.scheduler
    else {
        unreachable!("replan always builds the MWIS kind");
    };
    let planner = MwisPlanner {
        params: spec.system.power.clone(),
        solver,
        max_successors,
    };
    let jobs = cli.effective_jobs();
    let mut w = WindowedPlanner::new(planner, cli.disks);

    // FNV-1a over (window, position, disk) triples and the claimed
    // saving's bit pattern: any divergence in any window's plan flips
    // the digest.
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut digest = FNV_OFFSET;
    let fold = |digest: &mut u64, v: u64| {
        for byte in v.to_le_bytes() {
            *digest ^= u64::from(byte);
            *digest = digest.wrapping_mul(FNV_PRIME);
        }
    };

    let t0 = requests.first().map(|r| r.at).unwrap_or_default();
    let end = requests.last().map(|r| r.at).unwrap_or_default();
    let span_s = requests.last().map(|r| r.at.as_secs_f64()).unwrap_or(0.0);
    let mut fed = 0usize;
    let mut total_saving = 0.0f64;
    let mut peak_window = 0usize;
    let mut i = 0u64;
    // Slide until every request has been fed AND the horizon has
    // drained the final window.
    while !requests.is_empty() {
        i += 1;
        let elapsed = i * cli.step_s;
        let frontier = t0 + SimDuration::from_secs(elapsed);
        let horizon = t0 + SimDuration::from_secs(elapsed.saturating_sub(cli.window_s));
        let feed_to = requests.partition_point(|r| r.at < frontier);
        let (assignment, saving) =
            w.advance_with_jobs(&requests[fed..feed_to], horizon, &placement, jobs);
        fed = feed_to;
        total_saving += saving;
        peak_window = peak_window.max(w.window().len());
        fold(&mut digest, i);
        fold(&mut digest, saving.to_bits());
        for (pos, d) in assignment.disks.iter().enumerate() {
            fold(&mut digest, (pos as u64) << 32 | u64::from(d.0));
        }
        if fed >= requests.len() && horizon > end {
            break;
        }
    }
    let stats = *w.stats();

    let mut s = String::new();
    let _ = writeln!(s, "rolling-horizon replan report");
    let _ = writeln!(s, "=============================");
    let _ = writeln!(s, "workload : {} reads over {span_s:.0} s", requests.len());
    if skipped > 0 {
        let _ = writeln!(s, "skipped  : {skipped} malformed trace lines");
    }
    let _ = writeln!(
        s,
        "system   : {} disks, replication {}, zipf {}",
        cli.disks, cli.replication, cli.zipf
    );
    let _ = writeln!(
        s,
        "horizon  : {} s window, {} s step",
        cli.window_s, cli.step_s
    );
    let _ = writeln!(s);
    let _ = writeln!(
        s,
        "windows planned     : {} ({} compactions)",
        stats.windows, stats.compactions
    );
    let _ = writeln!(
        s,
        "requests retired    : {} ({} arrived)",
        stats.retired_requests_total, stats.arrived_requests_total
    );
    let _ = writeln!(
        s,
        "graph delta totals  : {} nodes tombstoned, {} appended, {} edges staged",
        stats.retired_nodes_total, stats.appended_nodes_total, stats.staged_edges_total
    );
    let _ = writeln!(s, "peak window         : {peak_window} requests");
    let _ = writeln!(
        s,
        "claimed saving      : {total_saving:.3} J summed over windows"
    );
    let _ = write!(s, "plan digest         : {digest:016x}");
    Ok(s)
}

/// Runs the zero-dependency micro-benchmarks, writes the JSON report to
/// `cli.bench_out`, and returns the human-readable table. With
/// `--bench-baseline`, additionally gates the run against the committed
/// report and fails (nonzero exit) on any >25% median regression.
fn bench_report(cli: &Cli) -> Result<String, CommandError> {
    let config = spindown_bench::BenchConfig {
        warmup: cli.warmup,
        iters: cli.iters,
        jobs: cli.effective_jobs(),
        seed: cli.seed,
        filter: cli.filter.clone(),
    };
    let report = spindown_bench::run_benches(&config);
    std::fs::write(&cli.bench_out, report.to_json())
        .map_err(|e| CommandError::Io(cli.bench_out.clone(), e))?;
    let mut out = format!("{}\nwrote {}", report.to_table(), cli.bench_out.display());
    if let Some(baseline_path) = &cli.bench_baseline {
        let text = std::fs::read_to_string(baseline_path)
            .map_err(|e| CommandError::Io(baseline_path.clone(), e))?;
        let baseline = spindown_bench::parse_baseline(&text).map_err(CommandError::Parse)?;
        let gate =
            spindown_bench::check(&report, &baseline, spindown_bench::regression::DEFAULT_TOLERANCE);
        if !gate.passed() {
            return Err(CommandError::BenchRegression(gate.to_text()));
        }
        let _ = write!(out, "\n{}", gate.to_text().trim_end());
    }
    Ok(out)
}

fn spec(cli: &Cli, scheduler: SchedulerArg) -> ExperimentSpec {
    let cost = CostFunction {
        alpha: cli.alpha,
        beta: cli.beta,
    };
    ExperimentSpec {
        placement: PlacementConfig {
            disks: cli.disks,
            replication: cli.replication,
            zipf_z: cli.zipf,
        },
        scheduler: scheduler.to_kind(cost, cli.interval_ms),
        system: SystemConfig {
            disks: cli.disks,
            policy: match cli.policy.as_str() {
                "always-on" => PolicyKind::AlwaysOn,
                "adaptive" => PolicyKind::Adaptive,
                "quantile" => PolicyKind::Quantile,
                _ => PolicyKind::Breakeven,
            },
            power_overrides: if cli.fleet == "mixed" {
                // Mixed fleet: odd disks run the Ultrastar preset, evens
                // stay on the baseline Barracuda.
                (0..cli.disks)
                    .filter(|d| d % 2 == 1)
                    .map(|d| (d, PowerParams::ultrastar()))
                    .collect()
            } else {
                Vec::new()
            },
            discipline: cli.discipline,
            ..SystemConfig::default()
        },
        seed: cli.seed,
    }
}

/// One-pass streaming statistics; the trace is never materialized.
/// Requires the file to be time-sorted (the batch parsers historically
/// re-sorted; the streaming path reports out-of-order input instead).
fn stats_report(workload: &Workload) -> Result<String, CommandError> {
    let mut pass = workload.open()?;
    let stats = TraceStats::from_stream(EnsureSorted::new(&mut pass))
        .map_err(|e| CommandError::Parse(e.to_string()))?;
    let mut s = format!("trace statistics\n================\n{stats}");
    if pass.skipped() > 0 {
        let _ = write!(s, "\nskipped lines       : {}", pass.skipped());
    }
    Ok(s)
}

fn simulate_report(cli: &Cli, reads: usize, span_s: f64, skipped: usize, m: &RunMetrics) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "spindown simulation report");
    let _ = writeln!(s, "==========================");
    let _ = writeln!(s, "workload : {reads} reads over {span_s:.0} s");
    if skipped > 0 {
        let _ = writeln!(s, "skipped  : {skipped} malformed trace lines");
    }
    let _ = writeln!(
        s,
        "system   : {} disks, replication {}, zipf {}, policy {}, {} queue",
        cli.disks,
        cli.replication,
        cli.zipf,
        cli.policy,
        match cli.discipline {
            spindown_disk::queue::QueueDiscipline::Fcfs => "fcfs",
            spindown_disk::queue::QueueDiscipline::Sstf => "sstf",
            spindown_disk::queue::QueueDiscipline::Elevator => "elevator",
        }
    );
    let _ = writeln!(s, "scheduler: {}", cli.scheduler.label());
    let _ = writeln!(s);
    let _ = writeln!(s, "energy          : {:.1} kJ", m.energy_j / 1000.0);
    let _ = writeln!(s, "vs always-on    : {:.1}%", m.normalized_energy() * 100.0);
    let _ = writeln!(s, "spin-up/downs   : {}", m.spin_cycles());
    let _ = writeln!(
        s,
        "response mean   : {:.1} ms",
        m.response_mean_s() * 1000.0
    );
    let _ = writeln!(s, "response p90    : {:.1} ms", m.response_p90_s() * 1000.0);
    let _ = writeln!(s, "response max    : {:.1} s", m.response.max());
    let _ = write!(
        s,
        "standby share   : {:.1}% (mean across disks)",
        m.mean_standby_fraction() * 100.0
    );
    s
}

fn compare_report(cli: &Cli, requests: &[Request]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<10} {:>12} {:>12} {:>12} {:>12}",
        "scheduler", "vs always-on", "spin cycles", "resp mean", "resp p90"
    );
    let baseline = run_always_on_baseline(requests, &spec(cli, SchedulerArg::Static));
    let _ = writeln!(
        s,
        "{:<10} {:>11.1}% {:>12} {:>9.0} ms {:>9.0} ms",
        "always-on",
        baseline.normalized_energy() * 100.0,
        baseline.spin_cycles(),
        baseline.response_mean_s() * 1000.0,
        baseline.response_p90_s() * 1000.0
    );
    for sched in SchedulerArg::ALL {
        let m = run_experiment_with_jobs(requests, &spec(cli, sched), cli.effective_jobs());
        let _ = writeln!(
            s,
            "{:<10} {:>11.1}% {:>12} {:>9.0} ms {:>9.0} ms",
            sched.label(),
            m.normalized_energy() * 100.0,
            m.spin_cycles(),
            m.response_mean_s() * 1000.0,
            m.response_p90_s() * 1000.0
        );
    }
    let _ = write!(
        s,
        "(mwis/mwis-r run under the offline model: no spin-up or queueing delay)"
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Cli;

    fn small_cli(extra: &str) -> Cli {
        let argv: Vec<String> =
            format!("simulate --requests 600 --data-items 250 --disks 12 --rate 4 {extra}")
                .split_whitespace()
                .map(String::from)
                .collect();
        Cli::parse(&argv).unwrap()
    }

    #[test]
    fn simulate_synthetic_cello() {
        let report = execute(&small_cli("")).unwrap();
        assert!(report.contains("spindown simulation report"));
        assert!(report.contains("vs always-on"));
        assert!(report.contains("scheduler: heuristic"));
    }

    #[test]
    fn simulate_each_scheduler() {
        for sched in ["random", "static", "heuristic", "wsc", "mwis", "mwis-r"] {
            let report = execute(&small_cli(&format!("--scheduler {sched}"))).unwrap();
            assert!(report.contains(&format!("scheduler: {sched}")), "{sched}");
        }
    }

    #[test]
    fn simulate_scenario_policy_matrix() {
        for scenario in ["diurnal", "flash-crowd"] {
            for policy in ["2cpm", "adaptive", "quantile"] {
                let report = execute(&small_cli(&format!(
                    "--synthetic {scenario} --policy {policy} --fleet mixed"
                )))
                .unwrap();
                assert!(
                    report.contains(&format!("policy {policy}")),
                    "{scenario}/{policy}: {report}"
                );
            }
        }
    }

    #[test]
    fn stats_command() {
        let mut cli = small_cli("");
        cli.command = Command::Stats;
        let report = execute(&cli).unwrap();
        assert!(report.contains("requests"));
        assert!(report.contains("Zipf"));
    }

    #[test]
    fn compare_command() {
        let mut cli = small_cli("");
        cli.command = Command::Compare;
        let report = execute(&cli).unwrap();
        for label in [
            "always-on",
            "random",
            "static",
            "heuristic",
            "wsc",
            "mwis-r",
        ] {
            assert!(report.contains(label), "missing {label}");
        }
    }

    #[test]
    fn replan_synthetic_and_trace_file() {
        let mut cli = small_cli("--window-s 30 --step-s 10");
        cli.command = Command::Replan;
        let report = execute(&cli).unwrap();
        assert!(report.contains("rolling-horizon replan report"), "{report}");
        assert!(report.contains("windows planned"), "{report}");
        assert!(report.contains("plan digest"), "{report}");
        // Deterministic: the digest line is identical across runs.
        assert_eq!(report, execute(&cli).unwrap());

        let dir = std::env::temp_dir().join("spindown-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("replan.spc");
        std::fs::write(&path, "0,1024,4096,r,0.5\n0,2048,4096,r,30.0\n").unwrap();
        cli.source = SourceArg::TraceFile(path.clone());
        let report = execute(&cli).unwrap();
        assert!(report.contains("workload : 2 reads"), "{report}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn trace_file_roundtrip() {
        let dir = std::env::temp_dir().join("spindown-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mini.spc");
        std::fs::write(&path, "0,1024,4096,r,0.5\n0,2048,4096,r,30.0\n").unwrap();
        let mut cli = small_cli("--disks 4 --replication 2");
        cli.source = SourceArg::TraceFile(path.clone());
        let report = execute(&cli).unwrap();
        assert!(report.contains("workload : 2 reads"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn lenient_skips_malformed_lines_and_reports_count() {
        let dir = std::env::temp_dir().join("spindown-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dirty.spc");
        std::fs::write(
            &path,
            "# header comment\n0,1024,4096,r,0.5\ngarbage line\n0,2048,4096,r,30.0\n0,bad,4096,r,31.0\n",
        )
        .unwrap();

        // Strict (default): the malformed line fails the run.
        let mut cli = small_cli("--disks 4 --replication 2");
        cli.source = SourceArg::TraceFile(path.clone());
        assert!(matches!(
            execute(&cli).unwrap_err(),
            CommandError::Parse(_)
        ));

        // Lenient: both bad lines are skipped and counted; blank/comment
        // lines are not counted as skipped.
        cli.lenient = true;
        let report = execute(&cli).unwrap();
        assert!(report.contains("workload : 2 reads"), "{report}");
        assert!(
            report.contains("skipped  : 2 malformed trace lines"),
            "{report}"
        );

        // Stats streams one-pass and reports the same count.
        cli.command = Command::Stats;
        let report = execute(&cli).unwrap();
        assert!(report.contains("skipped lines       : 2"), "{report}");

        // Compare materializes the trace and must carry the count into
        // its report rather than dropping it at the adapter boundary.
        cli.command = Command::Compare;
        let report = execute(&cli).unwrap();
        assert!(
            report.contains("(skipped 2 malformed trace lines)"),
            "{report}"
        );
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn mwis_still_runs_from_trace_file() {
        let dir = std::env::temp_dir().join("spindown-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mini-mwis.spc");
        std::fs::write(&path, "0,1024,4096,r,0.5\n0,2048,4096,r,30.0\n").unwrap();
        let mut cli = small_cli("--disks 4 --replication 2 --scheduler mwis");
        cli.source = SourceArg::TraceFile(path.clone());
        let report = execute(&cli).unwrap();
        assert!(report.contains("workload : 2 reads"), "{report}");
        assert!(report.contains("scheduler: mwis"), "{report}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn unknown_extension_is_reported() {
        let mut cli = small_cli("");
        cli.source = SourceArg::TraceFile(std::path::PathBuf::from("/tmp/x.weird"));
        // File doesn't exist — Io error comes first; create it.
        let dir = std::env::temp_dir().join("spindown-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("x.weird");
        std::fs::write(&path, "junk").unwrap();
        cli.source = SourceArg::TraceFile(path.clone());
        let err = execute(&cli).unwrap_err();
        assert!(matches!(err, CommandError::UnknownFormat(_)));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn missing_file_is_reported() {
        let mut cli = small_cli("");
        cli.source = SourceArg::TraceFile(std::path::PathBuf::from("/definitely/not/here.spc"));
        let err = execute(&cli).unwrap_err();
        assert!(matches!(err, CommandError::Io(_, _)));
    }

    #[test]
    fn sstf_discipline_runs() {
        let report = execute(&small_cli("--discipline sstf")).unwrap();
        assert!(report.contains("sstf queue"));
    }

    fn bench_cli(extra: &str) -> Cli {
        let argv: Vec<String> = format!("bench --iters 1 --warmup 0 {extra}")
            .split_whitespace()
            .map(String::from)
            .collect();
        Cli::parse(&argv).unwrap()
    }

    fn fake_baseline(median_ns: u64) -> String {
        format!(
            "{{\n  \"schema\": \"spindown-bench-v1\",\n  \"benches\": {{\n    \
             \"mwis_exact_small\": {{\"median_ns\": {median_ns}, \"p10_ns\": {median_ns}, \
             \"p90_ns\": {median_ns}}}\n  }}\n}}\n"
        )
    }

    #[test]
    fn bench_filter_and_regression_gate() {
        let dir = std::env::temp_dir().join("spindown-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("bench_gate_out.json");
        let base = dir.join("bench_gate_base.json");

        // Generous baseline: the gate must pass and report the ratio.
        std::fs::write(&base, fake_baseline(u64::MAX / 2)).unwrap();
        let mut cli = bench_cli("--filter mwis_exact");
        cli.bench_out = out.clone();
        cli.bench_baseline = Some(base.clone());
        let report = execute(&cli).unwrap();
        assert!(report.contains("mwis_exact_small"));
        assert!(!report.contains("grid_eval"), "filter leaked other benches");
        assert!(report.contains("bench regression gate: PASS"));

        // Impossible baseline (1 ns): the gate must fail with details.
        std::fs::write(&base, fake_baseline(1)).unwrap();
        let err = execute(&cli).unwrap_err();
        match err {
            CommandError::BenchRegression(text) => {
                assert!(text.contains("REGRESSED"));
                assert!(text.contains("mwis_exact_small"));
            }
            other => panic!("expected BenchRegression, got {other:?}"),
        }

        // Corrupt baseline: reported as a parse error, not a pass.
        std::fs::write(&base, "{}").unwrap();
        assert!(matches!(
            execute(&cli).unwrap_err(),
            CommandError::Parse(_)
        ));
        std::fs::remove_file(out).ok();
        std::fs::remove_file(base).ok();
    }
}
