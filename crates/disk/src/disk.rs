//! The disk itself: a passive state machine combining the mechanical model,
//! the power meter and an idle policy.
//!
//! [`Disk`] owns no event queue. Every mutating call returns
//! [`Directive`]s — "deliver this [`DiskEvent`] back to me after this
//! delay" — which the system driver turns into scheduled events. This keeps
//! the disk unit-testable in isolation and the event loop in one place.

use spindown_sim::time::{SimDuration, SimTime};

use crate::energy::EnergyMeter;
use crate::mechanics::Mechanics;
use crate::policy::IdlePolicy;
use crate::power::PowerParams;
use crate::queue::{QueueDiscipline, RequestQueue};
use crate::state::DiskPowerState;

/// A queued unit of disk work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskRequest {
    /// Caller-assigned identifier, echoed back on completion.
    pub id: u64,
    /// Logical block address of the access.
    pub lba: u64,
    /// Transfer size in bytes.
    pub size: u64,
}

/// Events a disk asks to receive back after a delay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskEvent {
    /// The spin-up transition completed.
    SpinUpDone,
    /// The spin-down transition completed.
    SpinDownDone,
    /// The request currently in service finished.
    ServiceDone,
    /// The idle timer expired. The token invalidates timers that were
    /// outrun by a request arrival.
    IdleTimeout(u64),
}

/// An instruction to the event loop: deliver `event` to this disk `after`
/// the current time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Directive {
    /// Delay from "now".
    pub after: SimDuration,
    /// The event to deliver.
    pub event: DiskEvent,
}

/// Result of delivering an event: possibly a completed request, plus at
/// most one follow-up directive.
///
/// Every transition in the disk state machine schedules at most one
/// follow-up event (a service completion, a spin transition end, or an
/// idle timer), so this is an `Option`, not a list — which also keeps
/// the per-event hot path allocation-free.
#[derive(Debug, Default)]
pub struct Outcome {
    /// Request that completed service (only for [`DiskEvent::ServiceDone`]).
    pub completed: Option<DiskRequest>,
    /// Follow-up event to schedule, if any.
    pub directive: Option<Directive>,
}

/// One simulated disk.
pub struct Disk {
    params: PowerParams,
    mechanics: Mechanics,
    policy: Box<dyn IdlePolicy>,
    meter: EnergyMeter,
    queue: RequestQueue,
    in_service: Option<DiskRequest>,
    idle_token: u64,
    /// Time this disk last *received* a request — `T_last` in the paper's
    /// Eq. 5 (used by the scheduler's cost function, not by the disk).
    last_request_at: Option<SimTime>,
}

impl std::fmt::Debug for Disk {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Disk")
            .field("state", &self.state())
            .field("queued", &self.queue.len())
            .field("in_service", &self.in_service.is_some())
            .finish_non_exhaustive()
    }
}

impl Disk {
    /// Creates a disk that starts in `initial` state at time `start`.
    ///
    /// The paper's experiments start all disks in standby (§2.3).
    pub fn new(
        params: PowerParams,
        mechanics: Mechanics,
        policy: Box<dyn IdlePolicy>,
        initial: DiskPowerState,
        start: SimTime,
    ) -> Self {
        Disk::with_discipline(
            params,
            mechanics,
            policy,
            initial,
            start,
            QueueDiscipline::Fcfs,
        )
    }

    /// Like [`Disk::new`] but with an explicit queue discipline (FCFS is
    /// what the paper assumes; SSTF/elevator are DiskSim-style options).
    pub fn with_discipline(
        params: PowerParams,
        mechanics: Mechanics,
        policy: Box<dyn IdlePolicy>,
        initial: DiskPowerState,
        start: SimTime,
        discipline: QueueDiscipline,
    ) -> Self {
        Disk {
            meter: EnergyMeter::new(&params, initial, start),
            params,
            mechanics,
            policy,
            queue: RequestQueue::new(discipline),
            in_service: None,
            idle_token: 0,
            last_request_at: None,
        }
    }

    /// Current power state.
    pub fn state(&self) -> DiskPowerState {
        self.meter.current_state()
    }

    /// Number of requests on the disk (queued + in service) — `P(d_k)` in
    /// the paper's Eq. 7.
    pub fn load(&self) -> usize {
        self.queue.len() + usize::from(self.in_service.is_some())
    }

    /// Time the disk last received a request — `T_last` in Eq. 5.
    pub fn last_request_at(&self) -> Option<SimTime> {
        self.last_request_at
    }

    /// The power parameters this disk runs with.
    pub fn params(&self) -> &PowerParams {
        &self.params
    }

    /// Read access to the energy meter (energy, spin counts, state times).
    pub fn meter(&self) -> &EnergyMeter {
        &self.meter
    }

    /// Total energy consumed as of `now`, joules.
    pub fn energy_j(&self, now: SimTime) -> f64 {
        self.meter.energy_j(now, &self.params)
    }

    /// Instantaneous rate power draw, watts (transitions draw lump
    /// energy, not rate power — see [`crate::energy`]).
    pub fn power_w(&self) -> f64 {
        match self.state() {
            DiskPowerState::Active => self.params.active_w,
            DiskPowerState::Idle => self.params.idle_w,
            DiskPowerState::Standby => self.params.standby_w,
            DiskPowerState::SpinningUp | DiskPowerState::SpinningDown => 0.0,
        }
    }

    /// Accepts a request at `now`. Returns the directive to schedule, if
    /// any.
    pub fn enqueue(&mut self, now: SimTime, req: DiskRequest) -> Option<Directive> {
        self.policy.on_request(now);
        self.last_request_at = Some(now);
        match self.state() {
            DiskPowerState::Idle => {
                // Cancel any pending idle timer and start service at once.
                self.idle_token += 1;
                self.meter.transition(DiskPowerState::Active, now);
                Some(self.start_service(req))
            }
            DiskPowerState::Active | DiskPowerState::SpinningUp | DiskPowerState::SpinningDown => {
                self.queue.push(req);
                None
            }
            DiskPowerState::Standby => {
                self.queue.push(req);
                self.meter.transition(DiskPowerState::SpinningUp, now);
                Some(Directive {
                    after: self.params.spinup(),
                    event: DiskEvent::SpinUpDone,
                })
            }
        }
    }

    /// Delivers a previously scheduled event at `now`.
    pub fn handle(&mut self, now: SimTime, event: DiskEvent) -> Outcome {
        match event {
            DiskEvent::SpinUpDone => self.on_spinup_done(now),
            DiskEvent::SpinDownDone => self.on_spindown_done(now),
            DiskEvent::ServiceDone => self.on_service_done(now),
            DiskEvent::IdleTimeout(token) => self.on_idle_timeout(now, token),
        }
    }

    fn start_service(&mut self, req: DiskRequest) -> Directive {
        debug_assert!(self.in_service.is_none());
        let service = self.mechanics.service_time(req.lba, req.size);
        self.in_service = Some(req);
        Directive {
            after: service,
            event: DiskEvent::ServiceDone,
        }
    }

    fn enter_idle(&mut self, now: SimTime) -> Option<Directive> {
        self.meter.transition(DiskPowerState::Idle, now);
        self.idle_token += 1;
        self.policy.idle_timeout(now).map(|after| Directive {
            after,
            event: DiskEvent::IdleTimeout(self.idle_token),
        })
    }

    fn on_spinup_done(&mut self, now: SimTime) -> Outcome {
        debug_assert_eq!(self.state(), DiskPowerState::SpinningUp);
        if let Some(req) = self.queue.pop_next(self.mechanics.head_lba()) {
            self.meter.transition(DiskPowerState::Active, now);
            Outcome {
                completed: None,
                directive: Some(self.start_service(req)),
            }
        } else {
            Outcome {
                completed: None,
                directive: self.enter_idle(now),
            }
        }
    }

    fn on_service_done(&mut self, now: SimTime) -> Outcome {
        debug_assert_eq!(self.state(), DiskPowerState::Active);
        let done = self.in_service.take();
        debug_assert!(done.is_some(), "ServiceDone with nothing in service");
        let directive = if let Some(next) = self.queue.pop_next(self.mechanics.head_lba()) {
            Some(self.start_service(next))
        } else {
            self.enter_idle(now)
        };
        Outcome {
            completed: done,
            directive,
        }
    }

    fn on_idle_timeout(&mut self, now: SimTime, token: u64) -> Outcome {
        // Stale timer: a request arrived (or another transition happened)
        // after this timer was armed.
        if token != self.idle_token || self.state() != DiskPowerState::Idle {
            return Outcome::default();
        }
        self.meter.transition(DiskPowerState::SpinningDown, now);
        Outcome {
            completed: None,
            directive: Some(Directive {
                after: self.params.spindown(),
                event: DiskEvent::SpinDownDone,
            }),
        }
    }

    fn on_spindown_done(&mut self, now: SimTime) -> Outcome {
        debug_assert_eq!(self.state(), DiskPowerState::SpinningDown);
        self.meter.transition(DiskPowerState::Standby, now);
        if self.queue.is_empty() {
            return Outcome::default();
        }
        // Requests arrived while we were spinning down: wake right back up.
        self.meter.transition(DiskPowerState::SpinningUp, now);
        Outcome {
            completed: None,
            directive: Some(Directive {
                after: self.params.spinup(),
                event: DiskEvent::SpinUpDone,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mechanics::DiskGeometry;
    use crate::policy::{AlwaysOn, FixedThreshold};
    use spindown_sim::rng::SimRng;

    fn disk(policy: Box<dyn IdlePolicy>, initial: DiskPowerState) -> Disk {
        Disk::new(
            PowerParams::barracuda(),
            Mechanics::new(DiskGeometry::cheetah_15k5(), SimRng::seed_from_u64(1)),
            policy,
            initial,
            SimTime::ZERO,
        )
    }

    fn req(id: u64) -> DiskRequest {
        DiskRequest {
            id,
            lba: id * 1_000_000,
            size: 512 * 1024,
        }
    }

    /// Minimal in-test event loop so disk behaviour can be exercised
    /// without the full system simulator.
    fn drain(disk: &mut Disk, mut pending: Vec<(SimTime, DiskEvent)>) -> Vec<(SimTime, u64)> {
        let mut completed = Vec::new();
        while !pending.is_empty() {
            pending.sort_by_key(|(t, _)| *t);
            let (now, ev) = pending.remove(0);
            let out = disk.handle(now, ev);
            if let Some(r) = out.completed {
                completed.push((now, r.id));
            }
            if let Some(d) = out.directive {
                pending.push((now + d.after, d.event));
            }
        }
        completed
    }

    #[test]
    fn standby_disk_spins_up_then_services() {
        let params = PowerParams::barracuda();
        let mut d = disk(
            Box::new(FixedThreshold::breakeven(&params)),
            DiskPowerState::Standby,
        );
        let dir = d.enqueue(SimTime::ZERO, req(1)).expect("spin-up directive");
        assert_eq!(d.state(), DiskPowerState::SpinningUp);
        assert_eq!(dir.event, DiskEvent::SpinUpDone);
        assert_eq!(dir.after, params.spinup());

        let pending = vec![(SimTime::ZERO + dir.after, dir.event)];
        let completed = drain(&mut d, pending);
        assert_eq!(completed.len(), 1);
        assert_eq!(completed[0].1, 1);
        // Response: spin-up (10 s) + service (ms) — well above 10 s.
        assert!(completed[0].0 >= SimTime::from_secs(10));
        // After service the disk armed an idle timer, drained it, spun
        // down and ended in standby.
        assert_eq!(d.state(), DiskPowerState::Standby);
        assert_eq!(d.meter().spinups(), 1);
        assert_eq!(d.meter().spindowns(), 1);
    }

    #[test]
    fn idle_disk_services_immediately() {
        let mut d = disk(Box::new(AlwaysOn), DiskPowerState::Idle);
        let dir = d.enqueue(SimTime::ZERO, req(7)).expect("service directive");
        assert_eq!(d.state(), DiskPowerState::Active);
        assert_eq!(dir.event, DiskEvent::ServiceDone);
        assert!(dir.after.as_secs_f64() < 0.020);
    }

    #[test]
    fn always_on_never_spins_down() {
        let mut d = disk(Box::new(AlwaysOn), DiskPowerState::Idle);
        let dir = d.enqueue(SimTime::ZERO, req(1)).expect("service directive");
        let completed = drain(&mut d, vec![(SimTime::ZERO + dir.after, dir.event)]);
        assert_eq!(completed.len(), 1);
        assert_eq!(d.state(), DiskPowerState::Idle);
        assert_eq!(d.meter().spindowns(), 0);
    }

    #[test]
    fn fifo_service_order() {
        let mut d = disk(Box::new(AlwaysOn), DiskPowerState::Idle);
        let mut pending: Vec<(SimTime, DiskEvent)> = d
            .enqueue(SimTime::ZERO, req(1))
            .into_iter()
            .map(|x| (SimTime::ZERO + x.after, x.event))
            .collect();
        // Two more arrive while the first is in service.
        for id in [2, 3] {
            if let Some(x) = d.enqueue(SimTime::from_micros(1), req(id)) {
                pending.push((SimTime::from_micros(1) + x.after, x.event));
            }
        }
        assert_eq!(d.load(), 3);
        let completed = drain(&mut d, pending);
        let ids: Vec<u64> = completed.iter().map(|&(_, id)| id).collect();
        assert_eq!(ids, vec![1, 2, 3]);
    }

    #[test]
    fn request_arrival_cancels_idle_timer() {
        let params = PowerParams::barracuda();
        let mut d = disk(
            Box::new(FixedThreshold::breakeven(&params)),
            DiskPowerState::Idle,
        );
        // Send a request; after completion an idle timer is armed. Deliver
        // a *new* request before the timer and verify the stale timer does
        // not spin the disk down mid-service.
        let mut pending: Vec<(SimTime, DiskEvent)> = d
            .enqueue(SimTime::ZERO, req(1))
            .into_iter()
            .map(|x| (SimTime::ZERO + x.after, x.event))
            .collect();
        // Drain only the ServiceDone.
        pending.sort_by_key(|(t, _)| *t);
        let (t1, ev1) = pending.remove(0);
        let out = d.handle(t1, ev1);
        assert!(out.completed.is_some());
        let idle_timer = out.directive.expect("idle timer armed");
        assert!(matches!(idle_timer.event, DiskEvent::IdleTimeout(_)));

        // New request arrives before the timer fires.
        let t2 = t1 + SimDuration::from_secs(1);
        let dir2 = d.enqueue(t2, req(2)).expect("service directive");
        assert_eq!(d.state(), DiskPowerState::Active);

        // The stale timer fires mid-service: must be ignored.
        let out = d.handle(t1 + idle_timer.after, idle_timer.event);
        assert!(out.directive.is_none());
        assert_eq!(d.state(), DiskPowerState::Active);

        // Finish the second request.
        let completed = drain(&mut d, vec![(t2 + dir2.after, dir2.event)]);
        assert_eq!(completed.len(), 1);
    }

    #[test]
    fn request_during_spindown_bounces_back_up() {
        let params = PowerParams::barracuda();
        let mut d = disk(
            Box::new(FixedThreshold::breakeven(&params)),
            DiskPowerState::Idle,
        );
        // Arm and fire the idle timer directly.
        let dir = d.enter_idle_for_test(SimTime::ZERO).expect("idle timer");
        let (after, token) = match dir.event {
            DiskEvent::IdleTimeout(tok) => (dir.after, tok),
            _ => panic!("expected idle timeout"),
        };
        let t_down = SimTime::ZERO + after;
        let out = d.handle(t_down, DiskEvent::IdleTimeout(token));
        assert_eq!(d.state(), DiskPowerState::SpinningDown);

        // Request arrives mid-spin-down.
        let t_req = t_down + SimDuration::from_millis(500);
        let dir = d.enqueue(t_req, req(9));
        assert!(dir.is_none(), "must wait for spin-down completion");
        assert_eq!(d.state(), DiskPowerState::SpinningDown);

        // Spin-down completes: disk must bounce straight into spin-up.
        let t_sd = t_down + out.directive.expect("spin-down directive").after;
        let out2 = d.handle(t_sd, DiskEvent::SpinDownDone);
        assert_eq!(d.state(), DiskPowerState::SpinningUp);
        let up = out2.directive.expect("spin-up directive");
        assert_eq!(up.event, DiskEvent::SpinUpDone);

        let completed = drain(&mut d, vec![(t_sd + up.after, up.event)]);
        assert_eq!(completed.len(), 1);
        assert_eq!(completed[0].1, 9);
    }

    #[test]
    fn load_counts_queue_and_service() {
        let mut d = disk(Box::new(AlwaysOn), DiskPowerState::Idle);
        assert_eq!(d.load(), 0);
        d.enqueue(SimTime::ZERO, req(1));
        assert_eq!(d.load(), 1);
        d.enqueue(SimTime::ZERO, req(2));
        assert_eq!(d.load(), 2);
    }

    #[test]
    fn last_request_time_tracks_arrivals() {
        let mut d = disk(Box::new(AlwaysOn), DiskPowerState::Idle);
        assert_eq!(d.last_request_at(), None);
        d.enqueue(SimTime::from_secs(3), req(1));
        assert_eq!(d.last_request_at(), Some(SimTime::from_secs(3)));
    }

    #[test]
    fn energy_accumulates_across_cycle() {
        let params = PowerParams::barracuda();
        let mut d = disk(
            Box::new(FixedThreshold::breakeven(&params)),
            DiskPowerState::Standby,
        );
        let dir = d.enqueue(SimTime::ZERO, req(1)).expect("spin-up directive");
        drain(&mut d, vec![(SimTime::ZERO + dir.after, dir.event)]);
        // Full cycle: 135 J up + ~TB idle at 9.3 W + 13 J down + service.
        let horizon = SimTime::from_secs(60);
        let e = d.energy_j(horizon);
        let floor = 135.0 + 13.0 + params.breakeven_secs() * 9.3 * 0.99;
        assert!(e > floor, "energy {e} < floor {floor}");
        // And far less than always-on over the same horizon.
        assert!(e < 60.0 * 9.3 + 148.0);
    }

    impl Disk {
        /// Test-only helper to arm the idle timer from the idle state.
        fn enter_idle_for_test(&mut self, now: SimTime) -> Option<Directive> {
            self.idle_token += 1;
            self.policy.idle_timeout(now).map(|after| Directive {
                after,
                event: DiskEvent::IdleTimeout(self.idle_token),
            })
        }
    }
}
