//! Differential suite for island-parallel event replay.
//!
//! [`run_system_with_jobs`] shards the event loop by replica-sharing
//! islands and merges per-island metrics; its contract is that `--jobs`
//! changes wall-clock, never bytes. This suite pins that contract the
//! same way the MWIS/offline suites do: the serial engine
//! ([`run_system`]) is the oracle, and every parallel run is compared
//! with exact `RunMetrics` equality — energies, spin counts, per-disk
//! summaries, the response histogram bucket by bucket, and the power
//! timeline — after zeroing the documented operational exceptions
//! (`peak_events` / `peak_in_flight` are per-island maxima under
//! sharding, `splitter_high_water` is timing-dependent). Parallel runs
//! must additionally agree with each other *including* those fields for
//! equal worker counts, and the degenerate placements (everything one
//! island; every disk its own island) exercise the fallback and the
//! maximal-sharding extremes.

use spindown_core::cost::CostFunction;
use spindown_core::experiment::{build_scheduler, data_space, requests_from_trace, SchedulerKind};
use spindown_core::model::{DiskId, Request};
use spindown_core::placement::{IslandPartition, PlacementConfig, PlacementMap};
use spindown_core::sched::{ExplicitPlacement, LocationProvider, Scheduler};
use spindown_core::system::{
    run_system, run_system_streamed_hash_oracle, run_system_with_jobs, DiskFailure, PolicyKind,
    SourceError, SystemConfig,
};
use spindown_core::RunMetrics;
use spindown_disk::power::PowerParams;
use spindown_sim::time::{SimDuration, SimTime};
use spindown_trace::synth::arrivals::OnOffProcess;
use spindown_trace::synth::{CelloLike, FlashCrowdLike, FlashCrowdProcess, TraceGenerator};

const JOBS: [usize; 3] = [1, 2, 8];

fn workload(requests: usize, data_items: usize, burst_rate: f64, seed: u64) -> Vec<Request> {
    let trace = CelloLike {
        requests,
        data_items,
        arrivals: OnOffProcess {
            sources: 8,
            on_shape: 1.5,
            on_scale_s: 2.0,
            off_shape: 1.3,
            off_scale_s: 30.0,
            burst_rate,
        },
        ..CelloLike::default()
    }
    .generate(seed);
    requests_from_trace(&trace)
}

/// Grouped replica placement: `islands` groups of `group_size` disks;
/// data item `d` lives on `replicas` distinct disks of group
/// `d % islands`. Every group is one island by construction.
fn grouped_placement(
    data_space: usize,
    islands: usize,
    group_size: usize,
    replicas: usize,
) -> ExplicitPlacement {
    assert!(replicas <= group_size);
    let locations: Vec<Vec<DiskId>> = (0..data_space)
        .map(|d| {
            let g = d % islands;
            (0..replicas)
                .map(|r| DiskId((g * group_size + (d / islands + r) % group_size) as u32))
                .collect()
        })
        .collect();
    ExplicitPlacement::new(locations, (islands * group_size) as u32)
}

/// Chain placement: data `i` on disks `{i mod n, (i+1) mod n}` — the
/// replica graph is one cycle, so ALL disks form a single island.
fn chain_placement(data_space: usize, disks: u32) -> ExplicitPlacement {
    let locations: Vec<Vec<DiskId>> = (0..data_space)
        .map(|d| {
            let a = (d % disks as usize) as u32;
            let b = ((d + 1) % disks as usize) as u32;
            if a == b {
                vec![DiskId(a)]
            } else {
                vec![DiskId(a), DiskId(b)]
            }
        })
        .collect();
    ExplicitPlacement::new(locations, disks)
}

fn scheduler_kinds() -> Vec<SchedulerKind> {
    vec![
        SchedulerKind::Random,
        SchedulerKind::Static,
        SchedulerKind::Heuristic(CostFunction::default()),
        SchedulerKind::LoadAware,
        SchedulerKind::Wsc {
            cost: CostFunction::default(),
            interval: SimDuration::from_millis(100),
        },
    ]
}

/// Zeroes the documented jobs-variant operational fields.
fn normalized(m: &RunMetrics) -> RunMetrics {
    let mut m = m.clone();
    m.peak_events = 0;
    m.peak_in_flight = 0;
    m.splitter_high_water = 0;
    m
}

fn config(disks: u32, seed: u64, sample: bool) -> SystemConfig {
    SystemConfig {
        disks,
        seed,
        power_sample: sample.then(|| SimDuration::from_secs(5)),
        ..SystemConfig::default()
    }
}

/// Runs the full scheduler × jobs matrix on one placement and pins every
/// parallel result to the serial oracle.
fn assert_matrix(
    name: &str,
    requests: &[Request],
    placement: &(dyn LocationProvider + Sync),
    config: &SystemConfig,
    seed: u64,
) {
    for kind in scheduler_kinds() {
        let factory = || {
            build_scheduler(&kind, seed).expect("event-loop scheduler") as Box<dyn Scheduler>
        };
        let mut oracle = factory();
        let serial = run_system(requests, placement, oracle.as_mut(), config);
        let mut first_parallel: Option<RunMetrics> = None;
        for jobs in JOBS {
            let par = run_system_with_jobs(requests, placement, &factory, config, jobs);
            assert_eq!(
                normalized(&par),
                normalized(&serial),
                "{name} {} jobs {jobs}: parallel differs from serial oracle",
                kind.label()
            );
            // Jobs variants must agree with each other on everything
            // except the timing-dependent splitter diagnostic.
            let mut stable = par;
            stable.splitter_high_water = 0;
            match &first_parallel {
                None => first_parallel = Some(stable),
                Some(first) => assert_eq!(
                    &stable,
                    first,
                    "{name} {} jobs {jobs}: jobs variants disagree",
                    kind.label()
                ),
            }
        }
    }
}

/// Two multi-island grouped placements (online + batch schedulers, power
/// sampling on the first) replay bit-identically for jobs ∈ {1, 2, 8}.
#[test]
fn grouped_islands_match_serial_oracle() {
    // 8 islands × 3 disks, 2 replicas inside the group, sampled.
    let requests = workload(1_000, 320, 6.0, 17);
    let placement = grouped_placement(data_space(&requests), 8, 3, 2);
    let partition = IslandPartition::from_provider(&placement);
    assert_eq!(partition.n_islands(), 8, "placement must shard");
    assert_matrix(
        "grouped-8x3",
        &requests,
        &placement,
        &config(24, 17, true),
        17,
    );

    // 5 islands × 4 disks, 3 replicas, denser load, no sampling.
    let requests = workload(1_400, 200, 12.0, 29);
    let placement = grouped_placement(data_space(&requests), 5, 4, 3);
    let partition = IslandPartition::from_provider(&placement);
    assert_eq!(partition.n_islands(), 5, "placement must shard");
    assert_matrix(
        "grouped-5x4",
        &requests,
        &placement,
        &config(20, 29, false),
        29,
    );
}

/// Replication ≥ 2 over a random placement usually connects every disk:
/// the partition must degenerate to one island and the parallel entry
/// point must equal the serial engine exactly — operational fields
/// included, because it *is* the serial engine then.
#[test]
fn replicated_placement_falls_back_to_single_island()  {
    let requests = workload(900, 300, 6.0, 41);
    let placement = PlacementMap::build(
        data_space(&requests),
        &PlacementConfig {
            disks: 16,
            replication: 3,
            zipf_z: 1.0,
        },
        41,
    );
    let partition = IslandPartition::from_provider(&placement);
    assert!(
        partition.is_single(),
        "rf3 random placement should connect all disks"
    );
    let cfg = config(16, 41, true);
    for kind in scheduler_kinds() {
        let factory =
            || build_scheduler(&kind, 41).expect("event-loop scheduler") as Box<dyn Scheduler>;
        let mut oracle = factory();
        let serial = run_system(&requests, &placement, oracle.as_mut(), &cfg);
        for jobs in JOBS {
            let par = run_system_with_jobs(&requests, &placement, &factory, &cfg, jobs);
            assert_eq!(par, serial, "{} jobs {jobs}", kind.label());
        }
    }
}

/// Replication 1 makes every disk its own island — maximal sharding (64
/// islands over 8 workers) must still replay bit-identically.
#[test]
fn unreplicated_placement_shards_per_disk() {
    let requests = workload(1_200, 500, 8.0, 53);
    let placement = PlacementMap::build(
        data_space(&requests),
        &PlacementConfig {
            disks: 64,
            replication: 1,
            zipf_z: 1.0,
        },
        53,
    );
    let partition = IslandPartition::from_provider(&placement);
    assert_eq!(
        partition.n_islands(),
        64,
        "rf1 must leave every disk isolated"
    );
    assert_matrix("rf1-64", &requests, &placement, &config(64, 53, false), 53);
}

/// A replica chain linking every disk into ONE island: the partition is
/// connected despite explicit placement, so the fallback serial path
/// must engage and match exactly.
#[test]
fn chain_placement_is_one_island() {
    let requests = workload(600, 240, 6.0, 67);
    let placement = chain_placement(data_space(&requests), 12);
    let partition = IslandPartition::from_provider(&placement);
    assert!(partition.is_single(), "chain must connect all disks");
    let cfg = config(12, 67, false);
    let factory = || {
        build_scheduler(&SchedulerKind::Heuristic(CostFunction::default()), 67)
            .expect("event-loop scheduler") as Box<dyn Scheduler>
    };
    let mut oracle = factory();
    let serial = run_system(&requests, &placement, oracle.as_mut(), &cfg);
    for jobs in JOBS {
        let par = run_system_with_jobs(&requests, &placement, &factory, &cfg, jobs);
        assert_eq!(par, serial, "jobs {jobs}");
    }
}

/// The per-disk in-flight slab is observationally identical to the
/// historical `HashMap` accounting on a full multi-scheduler replay
/// (wire ids differ; simulation, latencies and energies must not).
#[test]
fn slab_in_flight_matches_hash_oracle() {
    let requests = workload(1_000, 320, 8.0, 71);
    let placement = grouped_placement(data_space(&requests), 8, 3, 2);
    let cfg = config(24, 71, true);
    for kind in scheduler_kinds() {
        let mut slab_sched = build_scheduler(&kind, 71).expect("event-loop scheduler");
        let slab = run_system(&requests, &placement, slab_sched.as_mut(), &cfg);
        let mut hash_sched = build_scheduler(&kind, 71).expect("event-loop scheduler");
        let mut source = requests.iter().map(|r| Ok::<Request, SourceError>(*r));
        let hash = run_system_streamed_hash_oracle(
            &mut source,
            &placement,
            hash_sched.as_mut(),
            &cfg,
        )
        .expect("in-memory source");
        assert_eq!(slab, hash, "{}", kind.label());
    }
}

/// Zero requests: every island stays inert, and the merged metrics are
/// identical to the serial engine's empty run for any worker count.
#[test]
fn empty_stream_is_jobs_invariant() {
    let placement = grouped_placement(64, 4, 2, 2);
    let cfg = config(8, 5, true);
    let factory =
        || build_scheduler(&SchedulerKind::Static, 5).expect("event-loop scheduler")
            as Box<dyn Scheduler>;
    let mut oracle = factory();
    let serial = run_system(&[], &placement, oracle.as_mut(), &cfg);
    assert_eq!(serial.requests, 0);
    for jobs in JOBS {
        let par = run_system_with_jobs(&[], &placement, &factory, &cfg, jobs);
        assert_eq!(normalized(&par), normalized(&serial), "jobs {jobs}");
    }
}

/// The full adversarial stack at once: a heterogeneous fleet (every odd
/// disk on the Ultrastar preset), the quantile policy with per-disk
/// learned state and storm damping, mid-run disk failures, and a
/// flash-crowd workload — replayed through the whole scheduler × jobs
/// matrix against the serial oracle. Per-disk policy state, per-disk
/// effective power, and config-driven failure rerouting are all pure
/// functions of a disk's own history, so `--jobs` must still change
/// wall-clock, never bytes.
#[test]
fn heterogeneous_quantile_fleet_with_failures_is_jobs_invariant() {
    let trace = FlashCrowdLike {
        requests: 1_200,
        data_items: 320,
        arrivals: FlashCrowdProcess {
            base_rate: 1.0,
            burst_rate: 60.0,
            burst_every_s: 90.0,
            burst_duration_s: 8.0,
        },
        ..FlashCrowdLike::default()
    }
    .generate(97);
    let requests = requests_from_trace(&trace);
    // 8 islands × 3 disks, 2 replicas inside each group: failing one
    // replica reroutes island-locally, never across islands.
    let placement = grouped_placement(data_space(&requests), 8, 3, 2);
    let partition = IslandPartition::from_provider(&placement);
    assert_eq!(partition.n_islands(), 8, "placement must shard");
    let mut cfg = config(24, 97, true);
    cfg.policy = PolicyKind::Quantile;
    cfg.power_overrides = (0..24)
        .filter(|d| d % 2 == 1)
        .map(|d| (d, PowerParams::ultrastar()))
        .collect();
    cfg.failures = vec![
        DiskFailure {
            disk: 2,
            at: SimTime::from_secs(60),
        },
        DiskFailure {
            disk: 11,
            at: SimTime::from_secs(150),
        },
        DiskFailure {
            disk: 19,
            at: SimTime::from_secs(300),
        },
    ];
    assert_matrix("hetero-quantile-failures", &requests, &placement, &cfg, 97);
}

/// AlwaysOn policy (the normalization baseline) also replays
/// island-parallel bit-identically — the merge handles the no-spindown
/// power profile and its flat timeline.
#[test]
fn always_on_policy_is_jobs_invariant() {
    let requests = workload(700, 280, 6.0, 83);
    let placement = grouped_placement(data_space(&requests), 7, 2, 2);
    let mut cfg = config(14, 83, true);
    cfg.policy = PolicyKind::AlwaysOn;
    let factory =
        || build_scheduler(&SchedulerKind::Static, 83).expect("event-loop scheduler")
            as Box<dyn Scheduler>;
    let mut oracle = factory();
    let serial = run_system(&requests, &placement, oracle.as_mut(), &cfg);
    for jobs in JOBS {
        let par = run_system_with_jobs(&requests, &placement, &factory, &cfg, jobs);
        assert_eq!(normalized(&par), normalized(&serial), "jobs {jobs}");
    }
}
