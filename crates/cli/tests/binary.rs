//! End-to-end tests of the actual `spindown-cli` binary (spawned as a
//! subprocess via the path Cargo exports for integration tests).

use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_spindown-cli"))
}

#[test]
fn help_exits_zero_and_prints_usage() {
    let out = bin().arg("--help").output().expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("USAGE"));
    assert!(text.contains("--scheduler"));
}

#[test]
fn missing_command_exits_nonzero_with_usage() {
    let out = bin().output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("missing subcommand"));
    assert!(text.contains("USAGE"));
}

#[test]
fn simulate_small_synthetic_workload() {
    let out = bin()
        .args([
            "simulate",
            "--requests",
            "400",
            "--data-items",
            "150",
            "--disks",
            "8",
            "--rate",
            "4",
            "--scheduler",
            "wsc",
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stdout));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("scheduler: wsc"));
    assert!(text.contains("vs always-on"));
}

#[test]
fn stats_on_a_trace_file() {
    let dir = std::env::temp_dir().join("spindown-cli-bin-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("t.srt");
    std::fs::write(&path, "0.5 1 100 4096 R\n2.5 1 200 4096 W\n").unwrap();
    let out = bin()
        .args(["stats", "--trace", path.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("requests            : 2"));
    std::fs::remove_file(path).ok();
}

#[test]
fn bad_trace_file_exits_one() {
    let out = bin()
        .args(["stats", "--trace", "/nope/missing.spc"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("error: cannot read"));
}

#[test]
fn replan_synthetic_workload() {
    let out = bin()
        .args([
            "replan",
            "--requests",
            "500",
            "--data-items",
            "200",
            "--disks",
            "8",
            "--rate",
            "4",
            "--window-s",
            "30",
            "--step-s",
            "10",
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stdout));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("rolling-horizon replan report"), "{text}");
    assert!(text.contains("windows planned"), "{text}");
    assert!(text.contains("plan digest"), "{text}");
}

#[test]
fn replan_output_is_jobs_invariant() {
    // The CI determinism job byte-diffs larger runs; this pins the same
    // contract in-tree on a small one.
    let run = |jobs: &str| {
        let out = bin()
            .args([
                "replan", "--requests", "400", "--data-items", "150", "--disks", "8", "--rate",
                "5", "--seed", "7", "--jobs", jobs,
            ])
            .output()
            .expect("binary runs");
        assert!(out.status.success());
        String::from_utf8_lossy(&out.stdout).to_string()
    };
    assert_eq!(run("1"), run("8"));
}

#[test]
fn determinism_across_invocations() {
    let run = || {
        let out = bin()
            .args([
                "simulate",
                "--requests",
                "300",
                "--data-items",
                "100",
                "--disks",
                "6",
                "--rate",
                "3",
                "--seed",
                "77",
            ])
            .output()
            .expect("binary runs");
        assert!(out.status.success());
        String::from_utf8_lossy(&out.stdout).to_string()
    };
    assert_eq!(run(), run());
}
