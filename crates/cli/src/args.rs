//! Argument parsing for the `spindown-cli` binary (dependency-free).

use std::fmt;
use std::path::PathBuf;

use spindown_core::cost::CostFunction;
use spindown_core::sched::MwisSolver;
use spindown_disk::queue::QueueDiscipline;

/// Usage text printed for `--help` and on parse errors.
pub const USAGE: &str = "\
spindown-cli — energy-aware disk scheduling simulator

USAGE:
    spindown-cli <simulate|compare|stats|replan|bench> [options]

SOURCE (choose one):
    --trace <path>           SPC (.spc/.csv) or SRT (.srt/.txt) trace file,
                             streamed line by line (constant memory)
    --lenient                skip malformed trace lines instead of failing;
                             the report shows the skipped-line count
    --synthetic <cello|financial|diurnal|flash-crowd>
                             generate a workload (default: cello);
                             diurnal = sinusoid-modulated arrivals,
                             flash-crowd = sparse background + bursts

WORKLOAD (synthetic only):
    --requests <n>           number of requests      [default: 8000]
    --data-items <n>         distinct blocks         [default: 3500]
    --rate <req/s>           aggregate arrival rate  [default: 15]

SYSTEM:
    --disks <n>              number of disks         [default: 60]
    --replication <n>        copies per block (1-..) [default: 3]
    --zipf <z>               placement skew 0..1     [default: 1.0]
    --policy <always-on|2cpm|adaptive|quantile>      [default: 2cpm]
    --fleet <uniform|mixed>  power presets: uniform = all Barracuda,
                             mixed = odd disks Ultrastar [default: uniform]
    --discipline <fcfs|sstf|elevator>                [default: fcfs]

SCHEDULER (simulate):
    --scheduler <random|static|heuristic|wsc|mwis|mwis-r>  [default: heuristic]
    --alpha <a>              Eq. 6 energy weight     [default: 0.2]
    --beta <b>               Eq. 6 unit factor       [default: 100]
    --interval-ms <ms>       WSC batch interval      [default: 100]

REPLAN (rolling-horizon incremental re-planning):
    --window-s <s>           planning-window length in seconds   [default: 60]
    --step-s <s>             horizon advance per window, seconds [default: 10]

BENCH:
    --iters <n>              timed iterations        [default: 5]
    --warmup <n>             untimed warmup rounds   [default: 1]
    --filter <substr>        run only benchmarks whose name contains this
    --bench-out <path>       JSON output file        [default: BENCH_core.json]
    --bench-baseline <path>  gate against a committed report; exit nonzero
                             if any median regresses >25%

MISC:
    --jobs, -j <n>           worker threads for parallel work: grid cells,
                             MWIS conflict-graph build, per-disk offline
                             evaluation, and island-parallel event replay
                             (one event loop per replica-sharing island).
                             Results are bit-identical for any value.
                             Precedence: this flag > SPINDOWN_JOBS env
                             var > 1
    --seed <n>               master seed             [default: 42]
    --help                   show this text";

/// Which scheduler to run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SchedulerArg {
    /// Uniform over replicas.
    Random,
    /// Original location only.
    Static,
    /// Online Eq. 6 heuristic.
    Heuristic,
    /// Batch weighted set cover.
    Wsc,
    /// Offline MWIS (GMIN).
    Mwis,
    /// Offline MWIS + assignment refinement.
    MwisRefined,
}

impl SchedulerArg {
    /// All variants, for `compare`.
    pub const ALL: [SchedulerArg; 6] = [
        SchedulerArg::Random,
        SchedulerArg::Static,
        SchedulerArg::Heuristic,
        SchedulerArg::Wsc,
        SchedulerArg::Mwis,
        SchedulerArg::MwisRefined,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            SchedulerArg::Random => "random",
            SchedulerArg::Static => "static",
            SchedulerArg::Heuristic => "heuristic",
            SchedulerArg::Wsc => "wsc",
            SchedulerArg::Mwis => "mwis",
            SchedulerArg::MwisRefined => "mwis-r",
        }
    }

    /// Converts to the experiment layer's scheduler kind.
    pub fn to_kind(
        self,
        cost: CostFunction,
        interval_ms: u64,
    ) -> spindown_core::experiment::SchedulerKind {
        use spindown_core::experiment::SchedulerKind as K;
        match self {
            SchedulerArg::Random => K::Random,
            SchedulerArg::Static => K::Static,
            SchedulerArg::Heuristic => K::Heuristic(cost),
            SchedulerArg::Wsc => K::Wsc {
                cost,
                interval: spindown_sim::time::SimDuration::from_millis(interval_ms),
            },
            SchedulerArg::Mwis => K::Mwis {
                solver: MwisSolver::GwMin,
                max_successors: 3,
            },
            SchedulerArg::MwisRefined => K::Mwis {
                solver: MwisSolver::GwMinRefined { passes: 4 },
                max_successors: 3,
            },
        }
    }
}

/// Where the workload comes from.
#[derive(Debug, Clone, PartialEq)]
pub enum SourceArg {
    /// Parse a trace file (format from extension).
    TraceFile(PathBuf),
    /// Cello-like synthetic workload.
    SyntheticCello,
    /// Financial1-like synthetic workload.
    SyntheticFinancial,
    /// Diurnal (sinusoid-modulated) synthetic workload.
    SyntheticDiurnal,
    /// Flash-crowd (background + bursts) synthetic workload.
    SyntheticFlashCrowd,
}

/// Subcommand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// Run one scheduler and report.
    Simulate,
    /// Run every scheduler and tabulate.
    Compare,
    /// Print trace statistics only.
    Stats,
    /// Stream the workload through the rolling-horizon incremental
    /// re-planner and report per-window plan aggregates.
    Replan,
    /// Run the zero-dependency micro-benchmarks and write JSON.
    Bench,
}

/// Fully parsed invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct Cli {
    /// Subcommand.
    pub command: Command,
    /// Workload source.
    pub source: SourceArg,
    /// Skip malformed trace lines instead of failing the run.
    pub lenient: bool,
    /// Synthetic request count.
    pub requests: usize,
    /// Synthetic distinct blocks.
    pub data_items: usize,
    /// Synthetic aggregate rate, req/s.
    pub rate: f64,
    /// Disks in the system.
    pub disks: u32,
    /// Replication factor.
    pub replication: u32,
    /// Placement skew.
    pub zipf: f64,
    /// Power policy name.
    pub policy: String,
    /// Fleet power-preset mix (`uniform` or `mixed`).
    pub fleet: String,
    /// Queue discipline.
    pub discipline: QueueDiscipline,
    /// Scheduler for `simulate`.
    pub scheduler: SchedulerArg,
    /// Eq. 6 α.
    pub alpha: f64,
    /// Eq. 6 β.
    pub beta: f64,
    /// WSC interval, ms.
    pub interval_ms: u64,
    /// Master seed.
    pub seed: u64,
    /// `replan` planning-window length, seconds.
    pub window_s: u64,
    /// `replan` horizon advance per window, seconds.
    pub step_s: u64,
    /// Worker threads for parallel work (grids, benches, the intra-run
    /// MWIS/offline substrates, and island-parallel event replay).
    /// `None` defers to the `SPINDOWN_JOBS` environment variable (see
    /// [`Cli::effective_jobs`]).
    pub jobs: Option<usize>,
    /// Timed iterations for `bench`.
    pub iters: usize,
    /// Warmup rounds for `bench`.
    pub warmup: usize,
    /// Substring filter for `bench`: run only matching benchmarks.
    pub filter: Option<String>,
    /// Output path for the `bench` JSON report.
    pub bench_out: PathBuf,
    /// Baseline report to gate `bench` against (exit nonzero on
    /// regression); `None` skips the gate.
    pub bench_baseline: Option<PathBuf>,
}

impl Default for Cli {
    fn default() -> Self {
        Cli {
            command: Command::Simulate,
            source: SourceArg::SyntheticCello,
            lenient: false,
            requests: 8_000,
            data_items: 3_500,
            rate: 15.0,
            disks: 60,
            replication: 3,
            zipf: 1.0,
            policy: "2cpm".into(),
            fleet: "uniform".into(),
            discipline: QueueDiscipline::Fcfs,
            scheduler: SchedulerArg::Heuristic,
            alpha: 0.2,
            beta: 100.0,
            interval_ms: 100,
            seed: 42,
            window_s: 60,
            step_s: 10,
            jobs: None,
            iters: 5,
            warmup: 1,
            filter: None,
            bench_out: PathBuf::from("BENCH_core.json"),
            bench_baseline: None,
        }
    }
}

/// Parse failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// `--help` was requested.
    HelpRequested,
    /// No subcommand given.
    MissingCommand,
    /// Unknown subcommand.
    UnknownCommand(String),
    /// Unknown flag.
    UnknownFlag(String),
    /// A flag's value is missing or invalid.
    BadValue(String),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::HelpRequested => write!(f, "help requested"),
            ParseError::MissingCommand => write!(f, "missing subcommand"),
            ParseError::UnknownCommand(c) => write!(f, "unknown subcommand {c:?}"),
            ParseError::UnknownFlag(x) => write!(f, "unknown flag {x:?}"),
            ParseError::BadValue(x) => write!(f, "missing or invalid value for {x}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl Cli {
    /// Parses an argument list (without the program name).
    pub fn parse(argv: &[String]) -> Result<Cli, ParseError> {
        if argv.iter().any(|a| a == "--help" || a == "-h") {
            return Err(ParseError::HelpRequested);
        }
        let mut cli = Cli::default();
        let mut it = argv.iter();
        cli.command = match it.next().map(String::as_str) {
            Some("simulate") => Command::Simulate,
            Some("compare") => Command::Compare,
            Some("stats") => Command::Stats,
            Some("replan") => Command::Replan,
            Some("bench") => Command::Bench,
            Some(other) => return Err(ParseError::UnknownCommand(other.into())),
            None => return Err(ParseError::MissingCommand),
        };

        while let Some(flag) = it.next() {
            let mut value = |name: &str| {
                it.next()
                    .cloned()
                    .ok_or_else(|| ParseError::BadValue(name.into()))
            };
            match flag.as_str() {
                "--trace" => cli.source = SourceArg::TraceFile(PathBuf::from(value("--trace")?)),
                "--lenient" => cli.lenient = true,
                "--synthetic" => {
                    cli.source = match value("--synthetic")?.as_str() {
                        "cello" => SourceArg::SyntheticCello,
                        "financial" => SourceArg::SyntheticFinancial,
                        "diurnal" => SourceArg::SyntheticDiurnal,
                        "flash-crowd" => SourceArg::SyntheticFlashCrowd,
                        _ => return Err(ParseError::BadValue("--synthetic".into())),
                    }
                }
                "--requests" => cli.requests = parse_num(&value("--requests")?, "--requests")?,
                "--data-items" => {
                    cli.data_items = parse_num(&value("--data-items")?, "--data-items")?
                }
                "--rate" => cli.rate = parse_float(&value("--rate")?, "--rate")?,
                "--disks" => cli.disks = parse_num(&value("--disks")?, "--disks")?,
                "--replication" => {
                    cli.replication = parse_num(&value("--replication")?, "--replication")?
                }
                "--zipf" => cli.zipf = parse_float(&value("--zipf")?, "--zipf")?,
                "--policy" => {
                    let v = value("--policy")?;
                    if !matches!(v.as_str(), "always-on" | "2cpm" | "adaptive" | "quantile") {
                        return Err(ParseError::BadValue("--policy".into()));
                    }
                    cli.policy = v;
                }
                "--fleet" => {
                    let v = value("--fleet")?;
                    if !matches!(v.as_str(), "uniform" | "mixed") {
                        return Err(ParseError::BadValue("--fleet".into()));
                    }
                    cli.fleet = v;
                }
                "--discipline" => {
                    cli.discipline = match value("--discipline")?.as_str() {
                        "fcfs" => QueueDiscipline::Fcfs,
                        "sstf" => QueueDiscipline::Sstf,
                        "elevator" => QueueDiscipline::Elevator,
                        _ => return Err(ParseError::BadValue("--discipline".into())),
                    }
                }
                "--scheduler" => {
                    cli.scheduler = match value("--scheduler")?.as_str() {
                        "random" => SchedulerArg::Random,
                        "static" => SchedulerArg::Static,
                        "heuristic" => SchedulerArg::Heuristic,
                        "wsc" => SchedulerArg::Wsc,
                        "mwis" => SchedulerArg::Mwis,
                        "mwis-r" => SchedulerArg::MwisRefined,
                        _ => return Err(ParseError::BadValue("--scheduler".into())),
                    }
                }
                "--alpha" => cli.alpha = parse_float(&value("--alpha")?, "--alpha")?,
                "--beta" => cli.beta = parse_float(&value("--beta")?, "--beta")?,
                "--interval-ms" => {
                    cli.interval_ms = parse_num(&value("--interval-ms")?, "--interval-ms")?
                }
                "--seed" => cli.seed = parse_num(&value("--seed")?, "--seed")?,
                "--window-s" => {
                    cli.window_s = parse_num(&value("--window-s")?, "--window-s")?;
                    if cli.window_s == 0 {
                        return Err(ParseError::BadValue("--window-s".into()));
                    }
                }
                "--step-s" => {
                    cli.step_s = parse_num(&value("--step-s")?, "--step-s")?;
                    if cli.step_s == 0 {
                        return Err(ParseError::BadValue("--step-s".into()));
                    }
                }
                "--jobs" | "-j" => {
                    let jobs: usize = parse_num(&value("--jobs")?, "--jobs")?;
                    if jobs == 0 {
                        return Err(ParseError::BadValue("--jobs".into()));
                    }
                    cli.jobs = Some(jobs);
                }
                "--iters" => {
                    cli.iters = parse_num(&value("--iters")?, "--iters")?;
                    if cli.iters == 0 {
                        return Err(ParseError::BadValue("--iters".into()));
                    }
                }
                "--warmup" => cli.warmup = parse_num(&value("--warmup")?, "--warmup")?,
                "--filter" => cli.filter = Some(value("--filter")?),
                "--bench-out" => cli.bench_out = PathBuf::from(value("--bench-out")?),
                "--bench-baseline" => {
                    cli.bench_baseline = Some(PathBuf::from(value("--bench-baseline")?))
                }
                other => return Err(ParseError::UnknownFlag(other.into())),
            }
        }
        Ok(cli)
    }

    /// Resolves the worker count with the documented precedence:
    /// `--jobs`/`-j` flag > `SPINDOWN_JOBS` environment variable > 1.
    pub fn effective_jobs(&self) -> usize {
        spindown_sim::Parallelism::resolve(self.jobs).get()
    }
}

fn parse_num<T: std::str::FromStr>(s: &str, flag: &str) -> Result<T, ParseError> {
    s.parse().map_err(|_| ParseError::BadValue(flag.into()))
}

fn parse_float(s: &str, flag: &str) -> Result<f64, ParseError> {
    let v: f64 = s.parse().map_err(|_| ParseError::BadValue(flag.into()))?;
    if v.is_finite() {
        Ok(v)
    } else {
        Err(ParseError::BadValue(flag.into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_defaults() {
        let cli = Cli::parse(&argv("simulate")).unwrap();
        assert_eq!(cli.command, Command::Simulate);
        assert_eq!(cli.scheduler, SchedulerArg::Heuristic);
        assert_eq!(cli.disks, 60);
    }

    #[test]
    fn parses_full_invocation() {
        let cli = Cli::parse(&argv(
            "simulate --synthetic financial --requests 1000 --data-items 400 \
             --rate 7.5 --disks 24 --replication 4 --zipf 0.5 --policy adaptive \
             --discipline sstf --scheduler wsc --alpha 0.3 --beta 10 \
             --interval-ms 250 --seed 9",
        ))
        .unwrap();
        assert_eq!(cli.source, SourceArg::SyntheticFinancial);
        assert_eq!(cli.requests, 1000);
        assert_eq!(cli.data_items, 400);
        assert_eq!(cli.rate, 7.5);
        assert_eq!(cli.disks, 24);
        assert_eq!(cli.replication, 4);
        assert_eq!(cli.zipf, 0.5);
        assert_eq!(cli.policy, "adaptive");
        assert_eq!(cli.discipline, QueueDiscipline::Sstf);
        assert_eq!(cli.scheduler, SchedulerArg::Wsc);
        assert_eq!(cli.alpha, 0.3);
        assert_eq!(cli.interval_ms, 250);
        assert_eq!(cli.seed, 9);
    }

    #[test]
    fn trace_file_source() {
        let cli = Cli::parse(&argv("stats --trace /tmp/foo.spc")).unwrap();
        assert_eq!(cli.command, Command::Stats);
        assert_eq!(
            cli.source,
            SourceArg::TraceFile(PathBuf::from("/tmp/foo.spc"))
        );
        assert!(!cli.lenient);
        let cli = Cli::parse(&argv("stats --trace /tmp/foo.spc --lenient")).unwrap();
        assert!(cli.lenient);
    }

    #[test]
    fn errors() {
        assert_eq!(Cli::parse(&argv("")), Err(ParseError::MissingCommand));
        assert_eq!(
            Cli::parse(&argv("explode")),
            Err(ParseError::UnknownCommand("explode".into()))
        );
        assert_eq!(
            Cli::parse(&argv("simulate --what")),
            Err(ParseError::UnknownFlag("--what".into()))
        );
        assert_eq!(
            Cli::parse(&argv("simulate --disks")),
            Err(ParseError::BadValue("--disks".into()))
        );
        assert_eq!(
            Cli::parse(&argv("simulate --disks banana")),
            Err(ParseError::BadValue("--disks".into()))
        );
        assert_eq!(
            Cli::parse(&argv("simulate --scheduler quantum")),
            Err(ParseError::BadValue("--scheduler".into()))
        );
        assert_eq!(Cli::parse(&argv("--help")), Err(ParseError::HelpRequested));
        assert_eq!(
            Cli::parse(&argv("simulate --zipf inf")),
            Err(ParseError::BadValue("--zipf".into()))
        );
    }

    #[test]
    fn parses_bench_flags() {
        let cli = Cli::parse(&argv(
            "bench --iters 9 --warmup 2 -j 4 --filter mwis_gwmin \
             --bench-out /tmp/b.json --bench-baseline BENCH_core.json",
        ))
        .unwrap();
        assert_eq!(cli.command, Command::Bench);
        assert_eq!(cli.iters, 9);
        assert_eq!(cli.warmup, 2);
        assert_eq!(cli.jobs, Some(4));
        assert_eq!(cli.effective_jobs(), 4, "explicit flag wins");
        assert_eq!(cli.filter.as_deref(), Some("mwis_gwmin"));
        assert_eq!(cli.bench_out, PathBuf::from("/tmp/b.json"));
        assert_eq!(
            cli.bench_baseline,
            Some(PathBuf::from("BENCH_core.json"))
        );
        let defaults = Cli::parse(&argv("bench")).unwrap();
        assert_eq!(defaults.iters, 5);
        assert_eq!(defaults.warmup, 1);
        assert_eq!(defaults.jobs, None);
        assert_eq!(defaults.filter, None);
        assert_eq!(defaults.bench_out, PathBuf::from("BENCH_core.json"));
        assert_eq!(defaults.bench_baseline, None);
        assert_eq!(
            Cli::parse(&argv("bench --filter")),
            Err(ParseError::BadValue("--filter".into()))
        );
        assert_eq!(
            Cli::parse(&argv("bench --jobs 0")),
            Err(ParseError::BadValue("--jobs".into()))
        );
        assert_eq!(
            Cli::parse(&argv("bench --iters 0")),
            Err(ParseError::BadValue("--iters".into()))
        );
    }

    #[test]
    fn parses_scenario_and_fleet_flags() {
        let cli = Cli::parse(&argv(
            "simulate --synthetic flash-crowd --policy quantile --fleet mixed",
        ))
        .unwrap();
        assert_eq!(cli.source, SourceArg::SyntheticFlashCrowd);
        assert_eq!(cli.policy, "quantile");
        assert_eq!(cli.fleet, "mixed");
        let cli = Cli::parse(&argv("simulate --synthetic diurnal")).unwrap();
        assert_eq!(cli.source, SourceArg::SyntheticDiurnal);
        assert_eq!(cli.fleet, "uniform", "default fleet is uniform");
        assert_eq!(
            Cli::parse(&argv("simulate --fleet exotic")),
            Err(ParseError::BadValue("--fleet".into()))
        );
        assert_eq!(
            Cli::parse(&argv("simulate --synthetic tsunami")),
            Err(ParseError::BadValue("--synthetic".into()))
        );
    }

    #[test]
    fn parses_replan_flags() {
        let cli = Cli::parse(&argv("replan --window-s 120 --step-s 15 -j 4")).unwrap();
        assert_eq!(cli.command, Command::Replan);
        assert_eq!(cli.window_s, 120);
        assert_eq!(cli.step_s, 15);
        assert_eq!(cli.jobs, Some(4));
        let defaults = Cli::parse(&argv("replan")).unwrap();
        assert_eq!(defaults.window_s, 60);
        assert_eq!(defaults.step_s, 10);
        assert_eq!(
            Cli::parse(&argv("replan --window-s 0")),
            Err(ParseError::BadValue("--window-s".into()))
        );
        assert_eq!(
            Cli::parse(&argv("replan --step-s 0")),
            Err(ParseError::BadValue("--step-s".into()))
        );
    }

    #[test]
    fn jobs_flag_on_other_commands() {
        let cli = Cli::parse(&argv("simulate --jobs 3")).unwrap();
        assert_eq!(cli.jobs, Some(3));
        assert_eq!(cli.effective_jobs(), 3);
    }

    #[test]
    fn scheduler_kinds_map() {
        let cost = CostFunction::default();
        for s in SchedulerArg::ALL {
            let k = s.to_kind(cost, 100);
            assert_eq!(
                k.label(),
                if s == SchedulerArg::MwisRefined {
                    "mwis"
                } else {
                    s.label()
                }
            );
        }
    }
}
