//! Maximum-weight-independent-set solvers.
//!
//! The paper's offline scheduler (§3.1) reduces energy-aware scheduling to
//! MWIS on the `X(i,j,k)` conflict graph and solves it with the **GMIN**
//! greedy of Sakai, Togasaki & Yamazaki \[22\]. This module provides:
//!
//! * [`gwmin`] — the degree-ratio greedy the paper uses
//!   (pick `argmax w(v) / (deg(v)+1)`), with the
//!   `Σ w(IS) ≥ Σ_v w(v)/(deg(v)+1)` guarantee of \[22\];
//! * [`gwmin2`] — the weight-ratio variant
//!   (pick `argmax w(v) / w(N(v) ∪ {v})`), often stronger on weighted
//!   instances;
//! * [`local_search`] — add-moves plus (1,2)-swap improvement on top of any
//!   starting set;
//! * [`exact`] — branch-and-bound, the optimality oracle for tests and for
//!   the paper's toy instances (Fig. 4).
//!
//! Every solver is generic over [`GraphView`], so it runs unchanged on the
//! mutable adjacency-list [`Graph`](crate::graph::Graph) and on the frozen
//! [`CsrGraph`](crate::csr::CsrGraph); the CSR layout is the fast path for
//! build-once-solve-many conflict graphs (contiguous neighbor scans).
//!
//! The reference greedies use a **version-counter lazy heap**: each node
//! carries an epoch that is bumped whenever its remaining-graph degree or
//! neighbor weight changes, and a popped heap entry is acted on only if
//! its recorded epoch still matches. A deletion cascade coalesces its
//! updates — it marks every touched survivor dirty while applying the
//! degree/weight decrements and pushes **one** refreshed entry per
//! survivor at the end — instead of pushing per neighbor-of-neighbor
//! decrement as the eager reference engine does.
//!
//! The production engine replaces the lazy heap outright with a
//! **monotone tournament tree** in a flat index-addressed layout: one
//! `u128` slot per node packs an order-preserving integer score key and
//! the complemented node id, the implicit segment tree above the slots
//! holds each subtree's winner, the current maximum is a single root
//! read, and an update is a bottom-up walk that stops at the first
//! ancestor whose stored winner did not change. There are no stale
//! entries, no epochs, and no pop/sift churn — instrumenting the lazy
//! heap on dense conflict graphs showed ~98 % of pops stale, with the
//! sift traffic those garbage entries drag along dominating the whole
//! solve. Around the tree, the cascade state is SoA: one hot record per
//! node holding only the statistic the score family reads (GWMIN a
//! degree, GWMIN2 a neighbor-weight — never both) plus the cascade
//! stamp, and liveness as a word-packed bitset from [`crate::bitset`].
//! All of it lives in a caller-owned [`GreedyScratch`], so a warm
//! repeated solve performs zero allocations. [`baseline`] retains both
//! predecessors — the eager-heap engine and the coalesced `BinaryHeap`
//! engine — as differential oracles; all three select the exact same
//! sets.
//!
//! All solvers return node lists sorted ascending, so results are
//! deterministic and directly comparable.

use crate::bitset;
use crate::graph::{GraphView, NodeId};

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Default node budget for [`exact`] when callers have no tighter
/// requirement — offline ablations and NPC harnesses fall back to GWMIN
/// above this. The iterative bitset solver raised this from the historical
/// 64 (where the recursive solver's per-branch `Vec<bool>` clones and `n`
/// stack frames became prohibitive) to 128.
pub const DEFAULT_NODE_LIMIT: usize = 128;

/// GWMIN greedy of Sakai et al.: repeatedly select the alive vertex
/// maximizing `w(v) / (deg(v)+1)` (degree in the *remaining* graph), add it
/// to the independent set, and delete it and its neighbors.
///
/// Runs in `O((n + m) log n)` using a lazy max-heap keyed by the ratio.
/// Ties break toward the smaller node id, making the result deterministic.
///
/// # Examples
///
/// ```
/// use spindown_graph::graph::Graph;
/// use spindown_graph::mwis::gwmin;
///
/// // Path 0-1-2 with a heavy middle: greedy takes the middle alone.
/// let mut g = Graph::with_weights(vec![1.0, 10.0, 1.0]);
/// g.add_edge(0, 1);
/// g.add_edge(1, 2);
/// assert_eq!(gwmin(&g), vec![1]);
/// ```
pub fn gwmin<G: GraphView + ?Sized>(g: &G) -> Vec<NodeId> {
    let mut scratch = GreedyScratch::new();
    let mut out = Vec::new();
    gwmin_into(g, &mut scratch, &mut out);
    out
}

/// GWMIN2 greedy of Sakai et al.: select the alive vertex maximizing
/// `w(v) / Σ_{u ∈ N(v) ∪ {v}} w(u)`. Carries the guarantee
/// `Σ w(IS) ≥ Σ_v w(v)² / w(N(v) ∪ {v})`.
pub fn gwmin2<G: GraphView + ?Sized>(g: &G) -> Vec<NodeId> {
    let mut scratch = GreedyScratch::new();
    let mut out = Vec::new();
    gwmin2_into(g, &mut scratch, &mut out);
    out
}

/// [`gwmin`] with caller-owned buffers: the selection lands in `out`
/// (cleared first, sorted ascending) and every working set lives in
/// `scratch`. A warm pair — reused across solves of similar size —
/// makes the whole solve allocation-free, which is what the
/// rolling-window planner and the bench harness's `allocs_per_solve`
/// gauge rely on.
pub fn gwmin_into<G: GraphView + ?Sized>(
    g: &G,
    scratch: &mut GreedyScratch,
    out: &mut Vec<NodeId>,
) {
    greedy_tree::<DegStat, G>(g, scratch, out);
}

/// [`gwmin2`] with caller-owned buffers (see [`gwmin_into`]).
pub fn gwmin2_into<G: GraphView + ?Sized>(
    g: &G,
    scratch: &mut GreedyScratch,
    out: &mut Vec<NodeId>,
) {
    greedy_tree::<NbrWStat, G>(g, scratch, out);
}

fn gwmin2_score(w: f64, _deg: usize, nbr_w: f64) -> f64 {
    let denom = w + nbr_w;
    if denom <= 0.0 {
        f64::INFINITY
    } else {
        w / denom
    }
}

/// Reusable working memory of the tournament-tree greedy engine: the
/// word-packed alive set, the cascade's touched-survivor staging list,
/// the flat `u128` tournament tree, and one hot-record lane per score
/// family (only the lane the solver uses is ever populated; the other
/// stays empty).
///
/// Buffers are grown on first use and retained across solves, so a
/// scratch that has been warmed on an instance performs **zero
/// allocations** on every subsequent solve of instances no larger than
/// the warm one. The scratch carries no results — consecutive solves
/// through one scratch return exactly what fresh scratches would.
#[derive(Default)]
pub struct GreedyScratch {
    alive: Vec<u64>,
    touched: Vec<NodeId>,
    tree: Vec<u128>,
    deg_lane: Vec<Hot<DegStat>>,
    nbr_lane: Vec<Hot<NbrWStat>>,
}

impl GreedyScratch {
    /// An empty scratch; buffers are sized lazily by the first solve.
    pub fn new() -> Self {
        GreedyScratch::default()
    }
}

/// Per-node hot record of the tournament engine: the score-specific
/// statistic and the cascade stamp that dedups touched-survivor staging.
/// One 8-byte (GWMIN) or 16-byte (GWMIN2) record per node, so the
/// cascade's random access to a survivor touches a single cache line
/// instead of the three parallel arrays the predecessor engine
/// dereferenced. The tournament tree needs no staleness epoch: each node
/// owns exactly one priority slot, so there is nothing to go stale.
#[derive(Copy, Clone)]
struct Hot<S> {
    stat: S,
    stamp: u32,
}

/// The per-node statistic a greedy score family maintains. Specializing
/// the engine over this trait halves the cascade's memory traffic: GWMIN
/// updates only degrees and never gathers the dying neighbor's weight,
/// GWMIN2 only the neighbor-weight sum.
trait GreedyStat: Copy {
    /// Whether the kill loop must gather the dying neighbor's weight.
    const NEEDS_DEAD_WEIGHT: bool;

    fn init<G: GraphView + ?Sized>(g: &G, v: NodeId) -> Self;

    fn on_neighbor_death(&mut self, dead_w: f64);

    fn score(&self, w: f64) -> f64;

    /// Selects this stat's hot-record lane out of the shared scratch,
    /// handing back the engine's other buffers in the same borrow.
    fn lanes(scratch: &mut GreedyScratch) -> EngineLanes<'_, Self>
    where
        Self: Sized;
}

/// The field borrows one engine run works on (see [`GreedyStat::lanes`]).
struct EngineLanes<'a, S> {
    hot: &'a mut Vec<Hot<S>>,
    alive: &'a mut Vec<u64>,
    touched: &'a mut Vec<NodeId>,
    tree: &'a mut Vec<u128>,
}

/// GWMIN's statistic: the remaining-graph degree (`w / (deg + 1)`).
#[derive(Copy, Clone)]
struct DegStat {
    deg: u32,
}

impl GreedyStat for DegStat {
    const NEEDS_DEAD_WEIGHT: bool = false;

    fn init<G: GraphView + ?Sized>(g: &G, v: NodeId) -> Self {
        DegStat {
            deg: g.degree(v) as u32,
        }
    }

    fn on_neighbor_death(&mut self, _dead_w: f64) {
        self.deg -= 1;
    }

    fn score(&self, w: f64) -> f64 {
        w / (self.deg as f64 + 1.0)
    }

    fn lanes(scratch: &mut GreedyScratch) -> EngineLanes<'_, Self> {
        EngineLanes {
            hot: &mut scratch.deg_lane,
            alive: &mut scratch.alive,
            touched: &mut scratch.touched,
            tree: &mut scratch.tree,
        }
    }
}

/// GWMIN2's statistic: the alive neighbor-weight sum
/// (`w / (w + nbr_w)`, `+∞` when the denominator is non-positive).
#[derive(Copy, Clone)]
struct NbrWStat {
    nbr_w: f64,
}

impl GreedyStat for NbrWStat {
    const NEEDS_DEAD_WEIGHT: bool = true;

    fn init<G: GraphView + ?Sized>(g: &G, v: NodeId) -> Self {
        NbrWStat {
            nbr_w: g.neighbors(v).iter().map(|&u| g.weight(u)).sum::<f64>(),
        }
    }

    fn on_neighbor_death(&mut self, dead_w: f64) {
        self.nbr_w -= dead_w;
    }

    fn score(&self, w: f64) -> f64 {
        gwmin2_score(w, 0, self.nbr_w)
    }

    fn lanes(scratch: &mut GreedyScratch) -> EngineLanes<'_, Self> {
        EngineLanes {
            hot: &mut scratch.nbr_lane,
            alive: &mut scratch.alive,
            touched: &mut scratch.touched,
            tree: &mut scratch.tree,
        }
    }
}

/// Maps an `f64` score to a `u64` that compares like IEEE-754 totalOrder:
/// flip all bits of negatives, just the sign bit of non-negatives. For
/// any two non-NaN scores this agrees with `partial_cmp`, except that it
/// distinguishes `-0.0 < +0.0` (which `partial_cmp` ties) — a divergence
/// only reachable when node scores mix the two zero signs. Tournament
/// matches become integer compares, free of `f64` ordering branches.
#[inline]
fn ord_key(score: f64) -> u64 {
    let bits = score.to_bits();
    bits ^ (((bits as i64 >> 63) as u64) | (1u64 << 63))
}

/// The tournament slot of a dead node: `0`, strictly below every live
/// priority — a live pack carries `!node` in its low word, nonzero for
/// every node id a real graph can hold, and a nonzero key for every
/// non-NaN score.
const DEAD: u128 = 0;

/// Packs a score key and node id into one tournament priority: the key
/// in the high word so the larger score wins, the complemented node id
/// in the low word so equal scores resolve toward the **smaller** node
/// id — the oracle's tie-break — all in a single `u128` compare.
#[inline]
fn pack(key: u64, node: u32) -> u128 {
    ((key as u128) << 64) | (!node) as u128
}

/// Point update of the tournament tree with change-propagation early
/// exit: write the leaf slot, then recompute each ancestor's winner
/// bottom-up, stopping at the first ancestor whose stored winner is
/// unchanged (nothing above it can change either). A killed node that
/// was not winning any match and a refreshed score that loses its first
/// match both stop after O(1) levels; only the reigning maximum pays the
/// full `log n` walk. That early exit is what keeps the tree's total
/// maintenance traffic an order of magnitude below the lazy heap's
/// stale-entry sift churn.
///
/// The tree is the standard implicit layout for arbitrary `n`: leaves at
/// `n + v`, parent of `i` at `i >> 1`, winners in `1..n`, the overall
/// maximum at the root `tree[1]` (slot 0 is unused).
#[inline]
fn tree_update(tree: &mut [u128], n: usize, v: usize, val: u128) {
    let mut i = n + v;
    if tree[i] == val {
        return;
    }
    tree[i] = val;
    i >>= 1;
    while i >= 1 {
        let winner = tree[2 * i].max(tree[2 * i + 1]);
        if tree[i] == winner {
            break;
        }
        tree[i] = winner;
        i >>= 1;
    }
}

/// The production greedy engine, monomorphized per score family. Same
/// cascade semantics as the coalesced predecessor retained in
/// [`baseline`] — select the maximum-priority node, kill its
/// neighborhood, decrement each survivor once per dead neighbor, refresh
/// each touched survivor's priority once per cascade — but the priority
/// structure is a monotone tournament tree instead of a lazy heap:
/// selection is one root read (never a stale pop), a kill writes [`DEAD`]
/// into the node's slot, and a refresh overwrites the slot in place, each
/// propagating upward only as far as winners actually change.
fn greedy_tree<S: GreedyStat, G: GraphView + ?Sized>(
    g: &G,
    scratch: &mut GreedyScratch,
    out: &mut Vec<NodeId>,
) {
    let n = g.len();
    out.clear();
    if n == 0 {
        return;
    }
    let EngineLanes {
        hot,
        alive,
        touched,
        tree,
    } = S::lanes(scratch);

    hot.clear();
    hot.extend((0..n).map(|v| Hot {
        stat: S::init(g, v as NodeId),
        stamp: 0,
    }));
    alive.clear();
    alive.resize(bitset::words_for(n), u64::MAX);

    // Initial tree: every node's slot from its starting score, winners
    // filled bottom-up in O(n).
    tree.clear();
    tree.resize(2 * n, DEAD);
    for v in 0..n {
        tree[n + v] = pack(ord_key(hot[v].stat.score(g.weight(v as NodeId))), v as u32);
    }
    for i in (1..n).rev() {
        tree[i] = tree[2 * i].max(tree[2 * i + 1]);
    }

    let mut cascade: u32 = 0;
    loop {
        let top = tree[1];
        if top == DEAD {
            break;
        }
        let v = !(top as u32) as usize;
        out.push(v as NodeId);
        bitset::clear(alive, v);
        tree_update(tree, n, v, DEAD);
        cascade += 1;
        touched.clear();
        // Kill neighbors; decrement the stat of *their* survivors.
        for &u in g.neighbors(v as NodeId) {
            if !bitset::take(alive, u as usize) {
                continue;
            }
            tree_update(tree, n, u as usize, DEAD);
            let uw = if S::NEEDS_DEAD_WEIGHT { g.weight(u) } else { 0.0 };
            for &w2 in g.neighbors(u) {
                let wi = w2 as usize;
                if !bitset::test(alive, wi) {
                    continue;
                }
                let h = &mut hot[wi];
                h.stat.on_neighbor_death(uw);
                if h.stamp != cascade {
                    h.stamp = cascade;
                    touched.push(w2);
                }
            }
        }
        // One priority refresh per surviving touched node, now that every
        // decrement of this cascade has landed.
        for &t in touched.iter() {
            let ti = t as usize;
            if !bitset::test(alive, ti) {
                continue;
            }
            let key = ord_key(hot[ti].stat.score(g.weight(t)));
            tree_update(tree, n, ti, pack(key, t));
        }
    }
    out.sort_unstable();
}

/// The reference engines kept as differential oracles and benchmark
/// baselines: the eager-heap greedies, the coalesced `BinaryHeap` engine
/// the tournament tree replaced (identical selection to the production
/// cascades), and the recursive clone-per-branch exact solver.
pub mod baseline {
    use super::*;

    /// [`gwmin`](super::gwmin) driven by the eager cascade — one heap push
    /// per neighbor-of-neighbor decrement, the pre-CSR implementation.
    pub fn gwmin<G: GraphView + ?Sized>(g: &G) -> Vec<NodeId> {
        greedy_by_eager(g, |w, deg, _nbr_w| w / (deg as f64 + 1.0))
    }

    /// [`gwmin2`](super::gwmin2) driven by the eager cascade.
    pub fn gwmin2<G: GraphView + ?Sized>(g: &G) -> Vec<NodeId> {
        greedy_by_eager(g, gwmin2_score)
    }

    /// [`gwmin`](super::gwmin) on the coalesced `BinaryHeap` engine — the
    /// direct predecessor of the tournament-tree production engine, kept
    /// verbatim as its differential oracle.
    pub fn gwmin_coalesced<G: GraphView + ?Sized>(g: &G) -> Vec<NodeId> {
        greedy_by_coalesced(g, |w, deg, _nbr_w| w / (deg as f64 + 1.0))
    }

    /// [`gwmin2`](super::gwmin2) on the coalesced `BinaryHeap` engine
    /// (see [`gwmin_coalesced`]).
    pub fn gwmin2_coalesced<G: GraphView + ?Sized>(g: &G) -> Vec<NodeId> {
        greedy_by_coalesced(g, gwmin2_score)
    }

    /// Max-heap entry of the reference engines: a node's score at the
    /// epoch it was (re)computed. An entry is valid only while `epoch`
    /// matches the node's current epoch — any cascade that touches the
    /// node bumps the epoch, so staleness is an integer comparison,
    /// immune to `f64` drift (and to `NaN` weights, which made the old
    /// `nbr_w` equality test reject *every* entry).
    #[derive(PartialEq)]
    struct Entry {
        score: f64,
        node: NodeId,
        epoch: u32,
    }
    impl Eq for Entry {}
    impl PartialOrd for Entry {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Entry {
        fn cmp(&self, other: &Self) -> Ordering {
            // Max-heap on score; tie-break toward smaller node id.
            self.score
                .partial_cmp(&other.score)
                .unwrap_or(Ordering::Equal)
                .then_with(|| other.node.cmp(&self.node))
        }
    }

    /// Shared state of the reference engines: the remaining-graph degree
    /// and neighbor-weight per node, plus the epoch counters backing
    /// staleness. (The production engine replaced this parallel-`Vec`s
    /// layout with one hot record per node carrying only the statistic
    /// its score family reads, and dropped the epochs entirely — a
    /// tournament slot cannot go stale.)
    struct GreedyState {
        alive: Vec<bool>,
        deg: Vec<u32>,
        nbr_w: Vec<f64>,
        epoch: Vec<u32>,
    }

    impl GreedyState {
        fn init<G: GraphView + ?Sized>(g: &G) -> GreedyState {
            let n = g.len();
            GreedyState {
                alive: vec![true; n],
                deg: (0..n).map(|v| g.degree(v as NodeId) as u32).collect(),
                nbr_w: (0..n)
                    .map(|v| {
                        g.neighbors(v as NodeId)
                            .iter()
                            .map(|&u| g.weight(u))
                            .sum::<f64>()
                    })
                    .collect(),
                epoch: vec![0u32; n],
            }
        }

        fn initial_heap(
            &self,
            g: &(impl GraphView + ?Sized),
            score: &impl Fn(f64, usize, f64) -> f64,
        ) -> BinaryHeap<Entry> {
            let mut heap = BinaryHeap::with_capacity(self.alive.len());
            for v in 0..self.alive.len() {
                heap.push(Entry {
                    score: score(g.weight(v as NodeId), self.deg[v] as usize, self.nbr_w[v]),
                    node: v as NodeId,
                    epoch: 0,
                });
            }
            heap
        }
    }

    /// The coalesced engine the tournament tree replaced. `score(weight,
    /// alive_degree, alive_neighbor_weight)` must be non-decreasing as
    /// neighbors die, which both ratios satisfy — that monotonicity is
    /// what makes the lazy heap correct (a stale entry never over-states
    /// a node's current score, so the refreshed entry pushed at the
    /// cascade that invalidated it is the one that competes at the node's
    /// true score).
    ///
    /// Deletion cascade: killing the selected node's neighbors decrements
    /// the degree/neighbor-weight of each *survivor* exactly once per
    /// dead neighbor, but the heap hears about a survivor only **once per
    /// cascade** — the survivor is stamped on first touch, its epoch
    /// bumped, and a single refreshed entry pushed after all decrements
    /// have landed. The eager engine above instead pushes on every
    /// decrement; on a graph of mean degree `d̄` that is ~`d̄` times the
    /// heap traffic for identical results.
    fn greedy_by_coalesced<G: GraphView + ?Sized>(
        g: &G,
        score: impl Fn(f64, usize, f64) -> f64,
    ) -> Vec<NodeId> {
        let n = g.len();
        let mut st = GreedyState::init(g);
        let mut heap = st.initial_heap(g, &score);

        // Cascade-local scratch: which survivors were already recorded
        // this cascade (stamp = cascade id; 0 = never, counting from 1).
        let mut touch_stamp = vec![0u32; n];
        let mut touched: Vec<NodeId> = Vec::new();
        let mut cascade: u32 = 0;

        let mut result = Vec::new();
        while let Some(e) = heap.pop() {
            let v = e.node as usize;
            if !st.alive[v] || e.epoch != st.epoch[v] {
                continue;
            }
            result.push(e.node);
            st.alive[v] = false;
            cascade += 1;
            touched.clear();
            // Kill neighbors; decrement degrees/weights of *their*
            // neighbors.
            for &u in g.neighbors(e.node) {
                let ui = u as usize;
                if !st.alive[ui] {
                    continue;
                }
                st.alive[ui] = false;
                let uw = g.weight(u);
                for &w2 in g.neighbors(u) {
                    let wi = w2 as usize;
                    if !st.alive[wi] {
                        continue;
                    }
                    st.deg[wi] -= 1;
                    st.nbr_w[wi] -= uw;
                    if touch_stamp[wi] != cascade {
                        touch_stamp[wi] = cascade;
                        touched.push(w2);
                    }
                }
            }
            // One refreshed entry per surviving touched node, now that
            // every decrement of this cascade has been applied. Nodes
            // touched first and killed later in the same cascade are
            // skipped here.
            for &t in &touched {
                let ti = t as usize;
                if !st.alive[ti] {
                    continue;
                }
                st.epoch[ti] += 1;
                heap.push(Entry {
                    score: score(g.weight(t), st.deg[ti] as usize, st.nbr_w[ti]),
                    node: t,
                    epoch: st.epoch[ti],
                });
            }
        }
        result.sort_unstable();
        result
    }

    /// The original cascade: every degree decrement immediately pushes a
    /// refreshed entry. Each intermediate push is invalidated by the next
    /// decrement's epoch bump, so per alive node only the latest entry is
    /// ever acted on — exactly the valid-entry multiset of the coalesced
    /// engine in [`gwmin_coalesced`], hence bit-identical outputs, at
    /// `O(d̄)`-fold the heap traffic. (Staleness here also uses the epoch
    /// counter: the historical `f64` equality test on the accumulated
    /// neighbor weight was exact-by-accident and fell apart on `NaN`.)
    fn greedy_by_eager<G: GraphView + ?Sized>(
        g: &G,
        score: impl Fn(f64, usize, f64) -> f64,
    ) -> Vec<NodeId> {
        let mut st = GreedyState::init(g);
        let mut heap = st.initial_heap(g, &score);

        let mut result = Vec::new();
        while let Some(e) = heap.pop() {
            let v = e.node as usize;
            if !st.alive[v] || e.epoch != st.epoch[v] {
                continue;
            }
            result.push(e.node);
            st.alive[v] = false;
            for &u in g.neighbors(e.node) {
                let ui = u as usize;
                if !st.alive[ui] {
                    continue;
                }
                st.alive[ui] = false;
                let uw = g.weight(u);
                for &w2 in g.neighbors(u) {
                    let wi = w2 as usize;
                    if !st.alive[wi] {
                        continue;
                    }
                    st.deg[wi] -= 1;
                    st.nbr_w[wi] -= uw;
                    st.epoch[wi] += 1;
                    heap.push(Entry {
                        score: score(g.weight(w2), st.deg[wi] as usize, st.nbr_w[wi]),
                        node: w2,
                        epoch: st.epoch[wi],
                    });
                }
            }
        }
        result.sort_unstable();
        result
    }

    /// The pre-bitset exact solver: recursive branch-and-bound that clones
    /// a `Vec<bool>` alive bitmap per branch and bounds with the plain
    /// positive-weight sum. Kept verbatim as the differential oracle for
    /// [`super::exact`] — it recurses one stack frame per branch vertex,
    /// so keep it away from instances anywhere near the production
    /// [`DEFAULT_NODE_LIMIT`](super::DEFAULT_NODE_LIMIT).
    pub fn exact<G: GraphView + ?Sized>(g: &G, node_limit: usize) -> Option<Vec<NodeId>> {
        if g.len() > node_limit {
            return None;
        }
        let n = g.len();
        let mut best: Vec<NodeId> = Vec::new();
        let mut best_w = f64::NEG_INFINITY;
        let mut current: Vec<NodeId> = Vec::new();
        let alive: Vec<bool> = vec![true; n];

        fn recurse<G: GraphView + ?Sized>(
            g: &G,
            alive: Vec<bool>,
            current: &mut Vec<NodeId>,
            cur_w: f64,
            best: &mut Vec<NodeId>,
            best_w: &mut f64,
        ) {
            // Remaining positive weight as an (admissible) upper bound.
            let rem: f64 = alive
                .iter()
                .enumerate()
                .filter(|&(_, &a)| a)
                .map(|(v, _)| g.weight(v as NodeId).max(0.0))
                .sum();
            if cur_w + rem <= *best_w {
                return;
            }
            // Pick the alive vertex of maximum alive-degree.
            let pick = alive
                .iter()
                .enumerate()
                .filter(|&(_, &a)| a)
                .map(|(v, _)| {
                    let d = g
                        .neighbors(v as NodeId)
                        .iter()
                        .filter(|&&u| alive[u as usize])
                        .count();
                    (d, v)
                })
                .max();
            let Some((deg, v)) = pick else {
                if cur_w > *best_w {
                    *best_w = cur_w;
                    *best = current.clone();
                }
                return;
            };
            if deg == 0 {
                // All remaining vertices are isolated: take every positive one.
                let mut w = cur_w;
                let mut taken = Vec::new();
                for (u, &a) in alive.iter().enumerate() {
                    if a && g.weight(u as NodeId) > 0.0 {
                        w += g.weight(u as NodeId);
                        taken.push(u as NodeId);
                    }
                }
                if w > *best_w {
                    *best_w = w;
                    let mut sol = current.clone();
                    sol.extend(taken);
                    *best = sol;
                }
                return;
            }
            // Branch 1: include v.
            let mut incl = alive.clone();
            incl[v] = false;
            for &u in g.neighbors(v as NodeId) {
                incl[u as usize] = false;
            }
            current.push(v as NodeId);
            recurse(
                g,
                incl,
                current,
                cur_w + g.weight(v as NodeId),
                best,
                best_w,
            );
            current.pop();
            // Branch 2: exclude v.
            let mut excl = alive;
            excl[v] = false;
            recurse(g, excl, current, cur_w, best, best_w);
        }

        recurse(g, alive, &mut current, 0.0, &mut best, &mut best_w);
        best.sort_unstable();
        Some(best)
    }
}

/// Improves `initial` with two move types until a local optimum:
///
/// 1. **add** — insert any vertex with no neighbor in the set;
/// 2. **(1,2)-swap** — remove one vertex and insert two non-adjacent
///    vertices from its neighborhood whose combined weight is larger.
///
/// Returns a set at least as heavy as `initial`.
///
/// Swap candidates are scanned in ascending node order (not adjacency
/// order), so the result is identical across graph backends regardless of
/// how their neighbor lists are ordered; the pairwise non-adjacency test
/// rides each backend's `has_edge` (binary search on sorted adjacency).
///
/// # Panics
///
/// Panics if `initial` is not an independent set of `g`.
pub fn local_search<G: GraphView + ?Sized>(g: &G, initial: &[NodeId]) -> Vec<NodeId> {
    assert!(
        g.is_independent_set(initial),
        "local_search requires an independent starting set"
    );
    let n = g.len();
    let mut in_set = vec![false; n];
    for &v in initial {
        in_set[v as usize] = true;
    }
    // conflicts[v] = number of set members adjacent to v.
    let mut conflicts = vec![0u32; n];
    for &v in initial {
        for &u in g.neighbors(v) {
            conflicts[u as usize] += 1;
        }
    }

    let add = |v: usize, in_set: &mut Vec<bool>, conflicts: &mut Vec<u32>| {
        in_set[v] = true;
        for &u in g.neighbors(v as NodeId) {
            conflicts[u as usize] += 1;
        }
    };
    let remove = |v: usize, in_set: &mut Vec<bool>, conflicts: &mut Vec<u32>| {
        in_set[v] = false;
        for &u in g.neighbors(v as NodeId) {
            conflicts[u as usize] -= 1;
        }
    };

    let mut improved = true;
    while improved {
        improved = false;
        // Add moves.
        for v in 0..n {
            if !in_set[v] && conflicts[v] == 0 && g.weight(v as NodeId) > 0.0 {
                add(v, &mut in_set, &mut conflicts);
                improved = true;
            }
        }
        // (1,2)-swaps.
        for v in 0..n {
            if !in_set[v] {
                continue;
            }
            // Candidates: non-members whose only set-conflict is v.
            let mut cands: Vec<NodeId> = g
                .neighbors(v as NodeId)
                .iter()
                .copied()
                .filter(|&u| !in_set[u as usize] && conflicts[u as usize] == 1)
                .collect();
            cands.sort_unstable();
            let mut done = false;
            for (i, &a) in cands.iter().enumerate() {
                for &b in &cands[i + 1..] {
                    if !g.has_edge(a, b) && g.weight(a) + g.weight(b) > g.weight(v as NodeId) {
                        remove(v, &mut in_set, &mut conflicts);
                        add(a as usize, &mut in_set, &mut conflicts);
                        add(b as usize, &mut in_set, &mut conflicts);
                        improved = true;
                        done = true;
                        break;
                    }
                }
                if done {
                    break;
                }
            }
        }
    }
    let mut out: Vec<NodeId> = (0..n as u32).filter(|&v| in_set[v as usize]).collect();
    out.sort_unstable();
    out
}

/// Relative slack applied to the branch-and-bound pruning tests so a
/// mathematically admissible bound can never discard the true optimum over
/// a last-ulp summation-order difference: the MWIS upper bound is inflated
/// by `(cur_w + ub) * EPS` before comparing against the incumbent (and the
/// set-cover lower bound deflated likewise). The cost is exploring a
/// measure-zero shell of extra nodes around the incumbent weight.
pub(crate) const BOUND_SLACK: f64 = 1e-12;

/// A suspended branching decision on the iterative solver's explicit
/// stack. `stage` walks Include(0) → Exclude(1) → Done(2); the vertices
/// removed by the currently applied stage live in the undo arena slot at
/// this frame's depth, so backtracking is `alive |= slot` — no per-branch
/// clone.
struct ExactFrame {
    v: u32,
    saved_w: f64,
    stage: u8,
}

/// What [`exact_eval_node`] decided about the current subproblem.
enum NodeStep {
    /// Subtree exhausted or pruned; backtrack.
    Backtrack,
    /// Branch on this vertex (its alive degree is ≥ 1).
    Branch(u32),
}

/// Exact MWIS by iterative branch-and-bound over word-packed `u64`
/// bitsets. The optimality oracle for tests, the paper's Fig. 4 instance
/// and the optimality-gap ablations; returns `None` if `g` has more than
/// `node_limit` nodes (callers fall back to the greedy —
/// [`DEFAULT_NODE_LIMIT`] is the stock budget).
///
/// Layout: one `words = ⌈n/64⌉`-word alive set, a flat `n × words` table
/// of closed neighborhoods `{v} ∪ N(v)`, and an undo arena with one
/// `words`-word slot per search depth. Including the branch vertex stores
/// `alive ∩ closed(v)` in the depth's slot and masks it out of `alive`;
/// backtracking ORs the slot back — no clone, no recursion, bounded
/// `O(n·words)` memory regardless of branching depth.
///
/// Bounds: the incumbent is seeded with the positive-weight part of the
/// [`gwmin2`] solution instead of starting empty, and each node is pruned
/// against a greedy clique-cover bound — partition the alive vertices into
/// cliques by intersecting closed neighborhoods and sum each clique's
/// maximum weight (an independent set takes at most one vertex per
/// clique). Both strictly dominate the recursive baseline's
/// sum-of-positive-weights bound; [`baseline::exact`] retains that solver
/// as the differential oracle.
pub fn exact<G: GraphView + ?Sized>(g: &G, node_limit: usize) -> Option<Vec<NodeId>> {
    if g.len() > node_limit {
        return None;
    }
    let n = g.len();
    let words = bitset::words_for(n);

    // Flat closed-neighborhood table: row v = {v} ∪ N(v).
    let mut closed = vec![0u64; n * words];
    let mut weights = vec![0.0f64; n];
    for v in 0..n {
        weights[v] = g.weight(v as NodeId);
        let row = &mut closed[v * words..(v + 1) * words];
        bitset::set(row, v);
        for &u in g.neighbors(v as NodeId) {
            bitset::set(row, u as usize);
        }
    }

    // Only strictly positive vertices can improve an independent set, so
    // the search space is the positive-weight induced subgraph.
    let mut alive = vec![0u64; words];
    for (v, &w) in weights.iter().enumerate() {
        if w > 0.0 {
            bitset::set(&mut alive, v);
        }
    }

    // Seed the incumbent with the GWMIN2 solution (restricted to positive
    // vertices) so early subtrees prune against a real set instead of -∞.
    let mut best: Vec<NodeId> = gwmin2(g)
        .into_iter()
        .filter(|&v| weights[v as usize] > 0.0)
        .collect();
    let mut best_w: f64 = best.iter().map(|&v| weights[v as usize]).sum();

    let mut stack: Vec<ExactFrame> = Vec::with_capacity(n);
    let mut arena = vec![0u64; n * words]; // one undo slot per depth
    let mut current: Vec<NodeId> = Vec::with_capacity(n);
    let mut cur_w = 0.0f64;
    let mut scratch_unassigned = vec![0u64; words];
    let mut scratch_cand = vec![0u64; words];

    let root = exact_eval_node(
        &alive,
        &closed,
        &weights,
        words,
        cur_w,
        &current,
        &mut best,
        &mut best_w,
        &mut scratch_unassigned,
        &mut scratch_cand,
    );
    if let NodeStep::Branch(v) = root {
        stack.push(ExactFrame {
            v,
            saved_w: cur_w,
            stage: 0,
        });
    }

    while let Some(top) = stack.last() {
        let depth = stack.len() - 1;
        let (v, saved_w, stage) = (top.v as usize, top.saved_w, top.stage);
        let slot_at = depth * words;
        if stage > 0 {
            // Undo the previously applied branch: everything it removed is
            // recorded in this depth's slot.
            bitset::or_assign(&mut alive, &arena[slot_at..slot_at + words]);
            if stage == 1 {
                current.pop();
            }
            // cur_w is rebuilt from saved_w by whichever branch applies
            // next, so the undo leaves it alone.
        }
        if stage == 2 {
            stack.pop();
            continue;
        }
        if stage == 0 {
            // Include v: drop its closed neighborhood from the alive set,
            // recording the removed vertices in this depth's undo slot —
            // one fused word pass instead of an and-into plus an
            // and-not-assign.
            bitset::extract_and_clear(
                &mut alive,
                &closed[v * words..(v + 1) * words],
                &mut arena[slot_at..slot_at + words],
            );
            current.push(v as NodeId);
            cur_w = saved_w + weights[v];
        } else {
            // Exclude v: drop just v.
            arena[slot_at..slot_at + words].fill(0);
            bitset::set(&mut arena[slot_at..slot_at + words], v);
            bitset::clear(&mut alive, v);
            cur_w = saved_w;
        }
        stack.last_mut().expect("frame just inspected").stage = stage + 1;
        let step = exact_eval_node(
            &alive,
            &closed,
            &weights,
            words,
            cur_w,
            &current,
            &mut best,
            &mut best_w,
            &mut scratch_unassigned,
            &mut scratch_cand,
        );
        if let NodeStep::Branch(v2) = step {
            stack.push(ExactFrame {
                v: v2,
                saved_w: cur_w,
                stage: 0,
            });
        }
    }

    best.sort_unstable();
    Some(best)
}

/// One node of the MWIS search: prune against the clique-cover bound,
/// harvest leaf candidates (empty or edgeless remainders), or name the
/// branch vertex (maximum alive degree, ties to the larger id — the
/// recursive baseline's rule).
#[allow(clippy::too_many_arguments)]
fn exact_eval_node(
    alive: &[u64],
    closed: &[u64],
    weights: &[f64],
    words: usize,
    cur_w: f64,
    current: &[NodeId],
    best: &mut Vec<NodeId>,
    best_w: &mut f64,
    scratch_unassigned: &mut [u64],
    scratch_cand: &mut [u64],
) -> NodeStep {
    let ub = clique_cover_bound(alive, closed, weights, words, scratch_unassigned, scratch_cand);
    // Inflate by the relative slack so summation-order rounding can never
    // prune the float-achievable optimum (cur_w and ub are both ≥ 0 here).
    if cur_w + ub + (cur_w + ub) * BOUND_SLACK <= *best_w {
        return NodeStep::Backtrack;
    }
    let mut pick: Option<(usize, usize)> = None;
    for v in bitset::ones(alive) {
        let deg = bitset::intersection_count(alive, &closed[v * words..(v + 1) * words]) - 1;
        if pick.is_none_or(|p| (deg, v) > p) {
            pick = Some((deg, v));
        }
    }
    let Some((deg, pick_v)) = pick else {
        if cur_w > *best_w {
            *best_w = cur_w;
            best.clear();
            best.extend_from_slice(current);
        }
        return NodeStep::Backtrack;
    };
    if deg == 0 {
        // Edgeless remainder: take every alive vertex (all positive) —
        // the weight gather walks each word's set bits directly.
        let w = cur_w + bitset::weight_sum(alive, weights);
        if w > *best_w {
            *best_w = w;
            best.clear();
            best.extend_from_slice(current);
            best.extend(bitset::ones(alive).map(|u| u as NodeId));
        }
        return NodeStep::Backtrack;
    }
    NodeStep::Branch(pick_v as u32)
}

/// Greedy clique-cover upper bound on the weight any independent set can
/// collect from `alive`: partition the alive vertices into cliques (grow
/// each from its lowest unassigned vertex, keeping candidates that are
/// adjacent to every member via closed-neighborhood intersections) and sum
/// the maximum weight per clique. Admissible because an independent set
/// contains at most one vertex of each clique; equals the plain
/// positive-weight sum only when every clique is a singleton.
fn clique_cover_bound(
    alive: &[u64],
    closed: &[u64],
    weights: &[f64],
    words: usize,
    unassigned: &mut [u64],
    cand: &mut [u64],
) -> f64 {
    unassigned.copy_from_slice(alive);
    let mut bound = 0.0f64;
    while let Some(v) = bitset::first_set(unassigned) {
        bitset::clear(unassigned, v);
        let mut clique_max = weights[v];
        bitset::and_into(cand, unassigned, &closed[v * words..(v + 1) * words]);
        while let Some(u) = bitset::first_set(cand) {
            bitset::clear(unassigned, u);
            bitset::clear(cand, u);
            if weights[u] > clique_max {
                clique_max = weights[u];
            }
            bitset::and_assign(cand, &closed[u * words..(u + 1) * words]);
        }
        bound += clique_max;
    }
    bound
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Graph, GraphBuilder};

    fn path(weights: &[f64]) -> Graph {
        let mut g = Graph::with_weights(weights.to_vec());
        for i in 1..weights.len() {
            g.add_edge((i - 1) as NodeId, i as NodeId);
        }
        g
    }

    fn clique(weights: &[f64]) -> Graph {
        let mut g = Graph::with_weights(weights.to_vec());
        for i in 0..weights.len() {
            for j in (i + 1)..weights.len() {
                g.add_edge(i as NodeId, j as NodeId);
            }
        }
        g
    }

    #[test]
    fn gwmin_on_empty_graph() {
        assert!(gwmin(&Graph::new(0)).is_empty());
        assert_eq!(gwmin(&Graph::new(3)), vec![0, 1, 2]);
    }

    #[test]
    fn clique_yields_heaviest_node() {
        let g = clique(&[1.0, 5.0, 2.0, 4.0]);
        assert_eq!(gwmin(&g), vec![1]);
        assert_eq!(gwmin2(&g), vec![1]);
        assert_eq!(exact(&g, 64).unwrap(), vec![1]);
    }

    #[test]
    fn path_alternation() {
        // Uniform path of 5: optimum is the 3 even vertices.
        let g = path(&[1.0; 5]);
        let ex = exact(&g, 64).unwrap();
        assert_eq!(ex, vec![0, 2, 4]);
        let gr = gwmin(&g);
        assert!(g.is_independent_set(&gr));
        assert_eq!(g.set_weight_sum(&gr), 3.0, "greedy is optimal on paths");
    }

    #[test]
    fn exact_beats_or_ties_greedy_on_crafted_instance() {
        // Star where the center is moderately heavy: greedy w/(d+1) picks
        // leaves; exact confirms leaves win.
        let mut g = Graph::with_weights(vec![3.0, 2.0, 2.0, 2.0]);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(0, 3);
        let ex = exact(&g, 64).unwrap();
        assert_eq!(ex, vec![1, 2, 3]);
        let gr = gwmin(&g);
        assert!(g.set_weight_sum(&gr) <= g.set_weight_sum(&ex) + 1e-12);
    }

    #[test]
    fn gwmin_guarantee_holds() {
        // Sakai et al.: weight(IS) >= sum_v w(v)/(deg(v)+1).
        let mut g = Graph::with_weights(vec![4.0, 1.0, 3.0, 2.0, 5.0, 1.0]);
        for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (0, 3)] {
            g.add_edge(u, v);
        }
        let is = gwmin(&g);
        assert!(g.is_independent_set(&is));
        let bound: f64 = (0..g.len())
            .map(|v| g.weight(v as NodeId) / (g.degree(v as NodeId) as f64 + 1.0))
            .sum();
        assert!(g.set_weight_sum(&is) >= bound - 1e-9);
    }

    #[test]
    fn local_search_adds_free_vertices() {
        let g = path(&[1.0; 5]);
        let improved = local_search(&g, &[]);
        assert!(g.is_independent_set(&improved));
        assert_eq!(g.set_weight_sum(&improved), 3.0);
    }

    #[test]
    fn local_search_swaps_one_for_two() {
        // Star: start from {center}, swap should reach the three leaves.
        let mut g = Graph::with_weights(vec![3.0, 2.0, 2.0, 2.0]);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(0, 3);
        let improved = local_search(&g, &[0]);
        assert_eq!(improved, vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "independent starting set")]
    fn local_search_rejects_dependent_input() {
        let g = path(&[1.0; 3]);
        local_search(&g, &[0, 1]);
    }

    #[test]
    fn exact_respects_node_limit() {
        let g = Graph::new(100);
        assert!(exact(&g, 50).is_none());
        assert!(exact(&g, 100).is_some());
    }

    #[test]
    fn exact_skips_nonpositive_weights() {
        let mut g = Graph::with_weights(vec![5.0, -2.0, 0.0]);
        g.add_edge(0, 1);
        let ex = exact(&g, 64).unwrap();
        assert_eq!(ex, vec![0], "zero/negative-weight isolated nodes skipped");
    }

    #[test]
    fn gwmin2_handles_zero_weights() {
        let mut g = Graph::with_weights(vec![0.0, 0.0, 1.0]);
        g.add_edge(0, 1);
        let is = gwmin2(&g);
        assert!(g.is_independent_set(&is));
        assert!(g.set_weight_sum(&is) >= 1.0);
    }

    #[test]
    fn solvers_run_identically_on_csr() {
        // Same instance through both backends and both greedy engines.
        let weights = vec![4.0, 1.0, 3.0, 2.0, 5.0, 1.0];
        let edges = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (0, 3)];
        let mut g = Graph::with_weights(weights.clone());
        let mut b = GraphBuilder::with_weights(weights);
        for &(u, v) in &edges {
            g.add_edge(u, v);
            b.add_edge(u, v);
        }
        let c = b.finalize_csr();
        assert_eq!(gwmin(&g), gwmin(&c));
        assert_eq!(gwmin2(&g), gwmin2(&c));
        assert_eq!(gwmin(&g), baseline::gwmin(&g));
        assert_eq!(gwmin2(&c), baseline::gwmin2(&c));
        assert_eq!(exact(&g, 64), exact(&c, 64));
        let start = gwmin(&g);
        assert_eq!(local_search(&g, &start), local_search(&c, &start));
    }

    #[test]
    fn nan_weight_no_longer_wedges_staleness() {
        // With the old `f64`-equality staleness test, a NaN neighbor
        // weight marked every entry of its neighbors stale forever and
        // the greedy silently dropped them. Epochs are NaN-proof: the
        // result must still be a maximal independent set.
        let mut g = Graph::with_weights(vec![1.0, f64::NAN, 1.0, 1.0]);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        let is = gwmin(&g);
        assert!(g.is_independent_set(&is));
        for v in 0..g.len() as NodeId {
            assert!(
                is.contains(&v) || g.neighbors(v).iter().any(|u| is.contains(u)),
                "node {v} neither selected nor dominated"
            );
        }
    }

    #[test]
    fn solvers_agree_on_paper_fig4_instance() {
        // The Fig. 4 conflict graph: nodes X(1,2,1)=4, X(1,3,1)=2,
        // X(2,3,1)=3, X(2,3,2)=3, X(4,6,4)... — see spindown-core's
        // paper_example tests for the full construction; here we encode
        // just the conflict structure from the figure:
        //   X(1,3,1) -- X(2,3,1)   (energy-constraint on r3)
        //   X(1,3,1) -- X(2,3,2)   (energy-constraint on r3)
        //   X(2,3,1) -- X(2,3,2)   (energy-constraint on r3 / r2)
        //   X(1,2,1) -- X(2,3,2)   (schedule-constraint on r2)
        // Weights per Eq. 3 with TB=5, PI=1:
        //   X(1,2,1)=5-(2-1)=4, X(1,3,1)=5-(3-1)=3... (paper's weights)
        let mut g = Graph::with_weights(vec![
            4.0, // 0: X(1,2,1)
            2.0, // 1: X(1,3,1)
            3.0, // 2: X(2,3,1)
            3.0, // 3: X(2,3,2)
            4.0, // 4: X(4,6,4) — isolated in the figure
        ]);
        g.add_edge(1, 2);
        g.add_edge(1, 3);
        g.add_edge(2, 3);
        g.add_edge(0, 3);
        let ex = exact(&g, 64).unwrap();
        // Paper's Step 3 selects {X(2,3,1), X(1,2,1), X(4,6,4)} = {2,0,4}.
        assert_eq!(ex, vec![0, 2, 4]);
        assert_eq!(g.set_weight_sum(&ex), 11.0);
        let gr = gwmin(&g);
        assert_eq!(gr, vec![0, 2, 4], "greedy finds the optimum here too");
    }
}
