//! Power-management policies: when does an idle disk spin down?
//!
//! The paper's storage system uses **2CPM** — spin down after a fixed
//! idleness threshold equal to the breakeven time `TB` — which is
//! 2-competitive against the offline optimum (Irani et al. \[11\]). This
//! module also ships an always-on policy (the normalization baseline of
//! Fig. 6) and an adaptive-threshold policy used by the ablation benches.

use spindown_sim::stats::LatencyHistogram;
use spindown_sim::time::{SimDuration, SimTime};

use crate::power::PowerParams;

/// Decides how long a disk may sit idle before being spun down.
///
/// Policies are stateful so that adaptive implementations can learn from
/// the arrival process; [`IdlePolicy::on_request`] is invoked on every
/// request the disk receives.
pub trait IdlePolicy: std::fmt::Debug + Send {
    /// Called when the disk enters the idle state at `now`. Returns the
    /// idle duration after which the disk should spin down, or `None` to
    /// keep it spinning indefinitely.
    fn idle_timeout(&mut self, now: SimTime) -> Option<SimDuration>;

    /// Called whenever the disk receives a request (idle period ended).
    fn on_request(&mut self, _now: SimTime) {}

    /// Short policy name for reports.
    fn name(&self) -> &'static str;
}

/// Never spin down — the paper's "always-on" baseline configuration.
#[derive(Debug, Clone, Default)]
pub struct AlwaysOn;

impl IdlePolicy for AlwaysOn {
    fn idle_timeout(&mut self, _now: SimTime) -> Option<SimDuration> {
        None
    }

    fn name(&self) -> &'static str {
        "always-on"
    }
}

/// 2CPM: spin down after a fixed threshold (the breakeven time by default).
#[derive(Debug, Clone)]
pub struct FixedThreshold {
    threshold: SimDuration,
}

impl FixedThreshold {
    /// Fixed threshold of exactly `threshold`.
    pub fn new(threshold: SimDuration) -> Self {
        FixedThreshold { threshold }
    }

    /// The canonical 2CPM configuration: threshold = breakeven time
    /// `TB = E_up/down / P_I` derived from `params`.
    pub fn breakeven(params: &PowerParams) -> Self {
        FixedThreshold {
            threshold: params.breakeven(),
        }
    }

    /// The configured threshold.
    pub fn threshold(&self) -> SimDuration {
        self.threshold
    }
}

impl IdlePolicy for FixedThreshold {
    fn idle_timeout(&mut self, _now: SimTime) -> Option<SimDuration> {
        Some(self.threshold)
    }

    fn name(&self) -> &'static str {
        "2cpm"
    }
}

/// Adaptive threshold (ablation, not in the paper): keeps an exponentially
/// weighted average of observed idle-period lengths and spins down after
/// `scale ×` that average, clamped to `[min, max]`.
///
/// Intuition: if recent idle periods were short, waiting longer avoids
/// wasted spin cycles; if they were long, spinning down sooner saves idle
/// energy.
#[derive(Debug, Clone)]
pub struct AdaptiveThreshold {
    avg_idle_s: f64,
    alpha: f64,
    scale: f64,
    min: SimDuration,
    max: SimDuration,
    /// Idle-entry time and the timeout issued for that idle period. The
    /// timeout caps the EWMA sample: once it fires the disk is in standby,
    /// so the remainder of the gap is standby time, not idle time.
    idle_since: Option<(SimTime, SimDuration)>,
}

impl AdaptiveThreshold {
    /// Creates the policy with smoothing factor `alpha ∈ (0,1]`, threshold
    /// multiplier `scale`, and clamping bounds. The initial average is the
    /// midpoint of the bounds.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]`, `scale` is not positive, or
    /// `min > max`.
    pub fn new(alpha: f64, scale: f64, min: SimDuration, max: SimDuration) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0,1]");
        assert!(scale > 0.0, "scale must be positive");
        assert!(min <= max, "min must not exceed max");
        AdaptiveThreshold {
            avg_idle_s: (min.as_secs_f64() + max.as_secs_f64()) / 2.0,
            alpha,
            scale,
            min,
            max,
            idle_since: None,
        }
    }

    /// Current smoothed idle-period estimate, seconds.
    pub fn estimate_s(&self) -> f64 {
        self.avg_idle_s
    }
}

impl IdlePolicy for AdaptiveThreshold {
    fn idle_timeout(&mut self, now: SimTime) -> Option<SimDuration> {
        let t = SimDuration::from_secs_f64(self.avg_idle_s * self.scale).clamp(self.min, self.max);
        self.idle_since = Some((now, t));
        Some(t)
    }

    fn on_request(&mut self, now: SimTime) {
        if let Some((since, issued)) = self.idle_since.take() {
            // The idle period ends when the issued timeout fires (the disk
            // spins down); anything past that is standby time. Feeding the
            // raw gap would drift the estimate toward `max` on sparse
            // loads and effectively disable spin-down.
            let observed = now.saturating_since(since).min(issued).as_secs_f64();
            self.avg_idle_s = self.alpha * observed + (1.0 - self.alpha) * self.avg_idle_s;
        }
    }

    fn name(&self) -> &'static str {
        "adaptive"
    }
}

/// Fleet-level spin-up-storm damper: rations *early* (pre-breakeven)
/// spin-downs so a correlated lull can't put the whole fleet into standby
/// at once — the flash crowd that follows would then stampede every disk
/// through a simultaneous spin-up transition.
///
/// The fleet budget is apportioned per disk at build time: each disk may
/// take at most one early spin-down per `period`, and the period
/// boundaries are phase-staggered across the fleet
/// ([`StormDamper::for_disk`]), so at most `fleet / period` early standby
/// entries can align in any window. Each grant is a pure function of the
/// requesting disk's own clock and state — no cross-disk mutation — so
/// the decision is identical whether islands replay serially or in
/// parallel.
#[derive(Debug, Clone)]
pub struct StormDamper {
    period: SimDuration,
    phase_s: f64,
    last_grant: Option<u64>,
}

impl StormDamper {
    /// Damper with refill `period` and a fixed boundary `phase` offset.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn new(period: SimDuration, phase: SimDuration) -> Self {
        assert!(period > SimDuration::ZERO, "damper period must be positive");
        StormDamper {
            period,
            phase_s: phase.as_secs_f64(),
            last_grant: None,
        }
    }

    /// The damper for disk `disk` of a fleet of `fleet` disks: period
    /// boundaries staggered by `disk / fleet` of a period so the fleet's
    /// early spin-downs spread over time instead of aligning.
    pub fn for_disk(period: SimDuration, disk: u32, fleet: u32) -> Self {
        let fleet = fleet.max(1);
        let phase = SimDuration::from_secs_f64(
            period.as_secs_f64() * (disk % fleet) as f64 / fleet as f64,
        );
        StormDamper::new(period, phase)
    }

    /// Requests an early-spin-down token at `now`. Grants at most once per
    /// (phase-shifted) period.
    pub fn try_acquire(&mut self, now: SimTime) -> bool {
        let idx = ((now.as_secs_f64() + self.phase_s) / self.period.as_secs_f64()) as u64;
        if self.last_grant == Some(idx) {
            return false;
        }
        self.last_grant = Some(idx);
        true
    }
}

/// Candidate-threshold grid growth for [`QuantileThreshold`]: idle-entry
/// scans thresholds `guard, guard·1.25, guard·1.25², …` up to breakeven —
/// the same geometric growth as the histogram buckets, so candidates and
/// bucket edges stay roughly aligned.
const QUANTILE_GRID_GROWTH: f64 = 1.25;

/// Predictive spin-down (Behzadnia et al.-style online prediction): learns
/// this disk's idle-period length distribution in a fixed-bucket geometric
/// histogram (the [`LatencyHistogram`] bucket geometry) and spins down
/// *before* the breakeven time only when the learned tail says the idle
/// period that just began will outlast breakeven with high confidence.
///
/// At idle entry the policy scans candidate thresholds `t` on a geometric
/// grid below breakeven and picks the smallest with
/// `P(idle > t + TB | idle > t) ≥ confidence` — i.e. once the disk has
/// been idle for `t`, the *remaining* idle is confidently longer than the
/// breakeven time `TB`, so spinning down at `t` pays for the transition.
/// When no candidate is confident, too few idle periods have been
/// observed, or the fleet-level [`StormDamper`] refuses a token, it falls
/// back to the plain 2CPM breakeven threshold — the worst case stays
/// 2-competitive.
///
/// The histogram records the **full** gap from idle entry to the next
/// request (standby time included): that is the honest sample of the
/// idle-period *length* the tail estimate needs, unlike the EWMA
/// threshold in [`AdaptiveThreshold`], which must cap at the issued
/// timeout because its estimate is itself the next timeout.
#[derive(Debug)]
pub struct QuantileThreshold {
    hist: LatencyHistogram,
    breakeven: SimDuration,
    confidence: f64,
    min_samples: u64,
    guard_s: f64,
    damper: Option<StormDamper>,
    idle_since: Option<SimTime>,
}

impl QuantileThreshold {
    /// Number of observed idle periods required before the tail estimate
    /// is trusted; below this the policy behaves exactly like 2CPM.
    pub const MIN_SAMPLES: u64 = 12;

    /// Creates the policy for a disk with power model `params`, spinning
    /// down early only at `confidence ∈ (0, 1]` in the conditional tail.
    /// The earliest considered threshold (`guard`) is `TB / 16`, clamped
    /// to at least the spin-down transition time — spinning down faster
    /// than the platter can stop is meaningless.
    ///
    /// # Panics
    ///
    /// Panics if `confidence` is outside `(0, 1]`.
    pub fn new(params: &PowerParams, confidence: f64) -> Self {
        assert!(
            confidence > 0.0 && confidence <= 1.0,
            "confidence must be in (0,1]"
        );
        let tb = params.breakeven_secs();
        QuantileThreshold {
            // Idle periods run milliseconds to hours: 1 ms × 1.25⁹⁶ ≈ 2×10⁶ s.
            hist: LatencyHistogram::new(1e-3, 1.25, 96),
            breakeven: params.breakeven(),
            confidence,
            min_samples: Self::MIN_SAMPLES,
            guard_s: (tb / 16.0).max(params.spindown_s),
            damper: None,
            idle_since: None,
        }
    }

    /// Attaches the fleet-level spin-up-storm damper consulted before
    /// every early (pre-breakeven) spin-down.
    pub fn with_damper(mut self, damper: StormDamper) -> Self {
        self.damper = Some(damper);
        self
    }

    /// Observed idle periods so far.
    pub fn samples(&self) -> u64 {
        self.hist.count()
    }

    /// The smallest confident early threshold right now, if any — the
    /// value [`IdlePolicy::idle_timeout`] would return before damping.
    pub fn early_threshold_s(&self) -> Option<f64> {
        if self.hist.count() < self.min_samples {
            return None;
        }
        let tb = self.breakeven.as_secs_f64();
        let mut t = self.guard_s;
        while t < tb {
            let s_t = self.hist.fraction_above(t);
            if s_t <= 0.0 {
                return None;
            }
            if self.hist.fraction_above(t + tb) / s_t >= self.confidence {
                return Some(t);
            }
            t *= QUANTILE_GRID_GROWTH;
        }
        None
    }
}

impl IdlePolicy for QuantileThreshold {
    fn idle_timeout(&mut self, now: SimTime) -> Option<SimDuration> {
        self.idle_since = Some(now);
        if let Some(t) = self.early_threshold_s() {
            let granted = match self.damper.as_mut() {
                Some(d) => d.try_acquire(now),
                None => true,
            };
            if granted {
                return Some(SimDuration::from_secs_f64(t));
            }
        }
        Some(self.breakeven)
    }

    fn on_request(&mut self, now: SimTime) {
        if let Some(since) = self.idle_since.take() {
            self.hist.record(now.saturating_since(since));
        }
    }

    fn name(&self) -> &'static str {
        "quantile"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_on_never_times_out() {
        let mut p = AlwaysOn;
        assert_eq!(p.idle_timeout(SimTime::ZERO), None);
        assert_eq!(p.name(), "always-on");
    }

    #[test]
    fn fixed_threshold_is_constant() {
        let mut p = FixedThreshold::new(SimDuration::from_secs(7));
        assert_eq!(
            p.idle_timeout(SimTime::ZERO),
            Some(SimDuration::from_secs(7))
        );
        assert_eq!(
            p.idle_timeout(SimTime::from_secs(1000)),
            Some(SimDuration::from_secs(7))
        );
        assert_eq!(p.threshold(), SimDuration::from_secs(7));
    }

    #[test]
    fn breakeven_threshold_matches_params() {
        let params = PowerParams::barracuda();
        let mut p = FixedThreshold::breakeven(&params);
        assert_eq!(p.idle_timeout(SimTime::ZERO), Some(params.breakeven()));
        assert_eq!(p.name(), "2cpm");
    }

    #[test]
    fn adaptive_learns_short_idle_periods() {
        let mut p = AdaptiveThreshold::new(
            0.5,
            1.0,
            SimDuration::from_secs(1),
            SimDuration::from_secs(100),
        );
        let initial = p.estimate_s();
        // Repeatedly observe 2-second idle periods.
        let mut now = SimTime::ZERO;
        for _ in 0..20 {
            p.idle_timeout(now);
            now += SimDuration::from_secs(2);
            p.on_request(now);
        }
        assert!(p.estimate_s() < initial);
        assert!((p.estimate_s() - 2.0).abs() < 0.1, "est {}", p.estimate_s());
    }

    #[test]
    fn adaptive_clamps_to_bounds() {
        let mut p = AdaptiveThreshold::new(
            1.0,
            1.0,
            SimDuration::from_secs(5),
            SimDuration::from_secs(10),
        );
        // Force the average very low.
        p.idle_timeout(SimTime::ZERO);
        p.on_request(SimTime::from_millis(1));
        let t = p.idle_timeout(SimTime::from_secs(1)).unwrap();
        assert_eq!(t, SimDuration::from_secs(5));
        // Max clamp: scale 2× pushes the midpoint estimate (7.5 s) to 15 s,
        // above the 10 s cap.
        let mut q = AdaptiveThreshold::new(
            1.0,
            2.0,
            SimDuration::from_secs(5),
            SimDuration::from_secs(10),
        );
        let t = q.idle_timeout(SimTime::ZERO).unwrap();
        assert_eq!(t, SimDuration::from_secs(10));
    }

    #[test]
    fn adaptive_caps_sample_at_issued_timeout() {
        // A disk that spins down and then sleeps for hours must not feed the
        // whole gap into the EWMA: everything past the issued timeout was
        // standby time. The estimate may rise to the issued timeout but not
        // chase the raw gap toward `max`.
        let mut p = AdaptiveThreshold::new(
            1.0,
            1.0,
            SimDuration::from_secs(1),
            SimDuration::from_secs(100),
        );
        let issued = p.idle_timeout(SimTime::ZERO).unwrap();
        assert!(issued < SimDuration::from_secs(100));
        // Next request arrives hours later; the disk spent almost all of the
        // gap in standby.
        p.on_request(SimTime::from_secs(10_000));
        assert!(
            (p.estimate_s() - issued.as_secs_f64()).abs() < 1e-9,
            "estimate {} should equal issued timeout {}",
            p.estimate_s(),
            issued.as_secs_f64()
        );
        // Spin-down therefore stays enabled instead of saturating at `max`.
        let next = p.idle_timeout(SimTime::from_secs(10_000)).unwrap();
        assert!(next < SimDuration::from_secs(100), "next {next:?}");
    }

    #[test]
    fn adaptive_ignores_request_without_idle() {
        let mut p = AdaptiveThreshold::new(
            0.5,
            1.0,
            SimDuration::from_secs(1),
            SimDuration::from_secs(100),
        );
        let before = p.estimate_s();
        p.on_request(SimTime::from_secs(50));
        assert_eq!(p.estimate_s(), before);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn adaptive_rejects_bad_alpha() {
        AdaptiveThreshold::new(0.0, 1.0, SimDuration::ZERO, SimDuration::MAX);
    }

    /// Trains a quantile policy on a bimodal idle distribution: alternating
    /// 200 s (far beyond breakeven) and 0.5 s (far below) idle periods.
    fn train_bimodal(p: &mut QuantileThreshold, mut now: SimTime) -> SimTime {
        for _ in 0..20 {
            p.idle_timeout(now);
            now += SimDuration::from_secs(200);
            p.on_request(now);
            p.idle_timeout(now);
            now += SimDuration::from_millis(500);
            p.on_request(now);
        }
        now
    }

    #[test]
    fn quantile_falls_back_to_breakeven_without_samples() {
        let params = PowerParams::barracuda();
        let mut p = QuantileThreshold::new(&params, 0.8);
        assert_eq!(p.idle_timeout(SimTime::ZERO), Some(params.breakeven()));
        assert_eq!(p.early_threshold_s(), None);
        assert_eq!(p.name(), "quantile");
    }

    #[test]
    fn quantile_spins_down_early_on_long_tailed_idles() {
        let params = PowerParams::barracuda();
        let mut p = QuantileThreshold::new(&params, 0.8);
        let now = train_bimodal(&mut p, SimTime::ZERO);
        assert_eq!(p.samples(), 40);
        // Half the mass sits at 200 s: once an idle period survives the
        // short mode, it confidently outlasts breakeven, so the policy
        // spins down near the guard threshold instead of waiting ~15.9 s.
        let t = p.idle_timeout(now).unwrap();
        assert!(t < params.breakeven(), "early threshold {t:?}");
        assert!(
            (t.as_secs_f64() - params.spindown_s).abs() < 1.0,
            "expected ~guard ({} s), got {} s",
            params.spindown_s,
            t.as_secs_f64()
        );
    }

    #[test]
    fn quantile_stays_at_breakeven_on_short_idles() {
        // Every observed idle period is 2 s — nothing ever outlasts
        // breakeven, so early spin-down would always be wasted.
        let params = PowerParams::barracuda();
        let mut p = QuantileThreshold::new(&params, 0.8);
        let mut now = SimTime::ZERO;
        for _ in 0..30 {
            p.idle_timeout(now);
            now += SimDuration::from_secs(2);
            p.on_request(now);
        }
        assert_eq!(p.early_threshold_s(), None);
        assert_eq!(p.idle_timeout(now), Some(params.breakeven()));
    }

    #[test]
    fn storm_damper_rations_grants_per_period() {
        let mut d = StormDamper::new(SimDuration::from_secs(10), SimDuration::ZERO);
        assert!(d.try_acquire(SimTime::ZERO));
        assert!(!d.try_acquire(SimTime::from_secs(5)));
        assert!(d.try_acquire(SimTime::from_secs(12)));
        assert!(!d.try_acquire(SimTime::from_secs(19)));
        // Phase staggering shifts the boundary per disk.
        let a = StormDamper::for_disk(SimDuration::from_secs(10), 0, 2);
        let b = StormDamper::for_disk(SimDuration::from_secs(10), 1, 2);
        assert_eq!(a.phase_s, 0.0);
        assert_eq!(b.phase_s, 5.0);
    }

    #[test]
    fn quantile_damper_blocks_repeat_early_spindowns() {
        let params = PowerParams::barracuda();
        let mut p = QuantileThreshold::new(&params, 0.8).with_damper(StormDamper::new(
            SimDuration::from_secs(100_000),
            SimDuration::ZERO,
        ));
        // Training crosses the min-sample threshold inside period 0 and
        // consumes that period's early-spin-down token.
        let now = train_bimodal(&mut p, SimTime::ZERO);
        let t = p.idle_timeout(now).unwrap();
        assert_eq!(t, params.breakeven(), "token already spent this period");
        p.on_request(now + SimDuration::from_secs(200));
        // A fresh period refills the token.
        let later = SimTime::from_secs(250_000);
        let t = p.idle_timeout(later).unwrap();
        assert!(t < params.breakeven(), "fresh period should grant: {t:?}");
    }
}
