//! Differential pinning of the tournament-tree greedy engine and the
//! word-at-a-time bitset kernels against their retained predecessors.
//!
//! The production greedy engine (`gwmin`/`gwmin2`) is a monotone
//! tournament tree; its oracles are the eager rescan baseline and the
//! coalesced lazy engine in `mwis::baseline`. Weights are continuous
//! draws from the seeded `spindown_sim` RNG, so score ties are absent
//! (almost surely, deterministically for these fixed seeds) apart from
//! the engineered tie cases — the engines must return **bit-identical**
//! selections on both storage backends, not merely equal weights.

use spindown_graph::bitset;
use spindown_graph::csr::CsrGraph;
use spindown_graph::graph::{Graph, NodeId};
use spindown_graph::mwis::{self, baseline, GreedyScratch};
use spindown_sim::rng::SimRng;

/// A random graph with tunable density: `2..=max_n` nodes, continuous
/// weights in (0, 10], up to `n * edge_factor` edge draws.
fn random_graph(rng: &mut SimRng, max_n: usize, edge_factor: usize) -> Graph {
    let n = 2 + rng.index(max_n - 1);
    let weights: Vec<f64> = (0..n).map(|_| 0.01 + rng.next_f64() * 9.99).collect();
    let mut g = Graph::with_weights(weights);
    for _ in 0..rng.index(n * edge_factor) {
        let u = rng.index(n) as NodeId;
        let v = rng.index(n) as NodeId;
        if u != v {
            g.add_edge(u, v);
        }
    }
    g
}

/// 150 seeded graphs, sparse to near-complete: the tournament engine
/// must reproduce both retained oracles exactly, on the adjacency-list
/// and the CSR backend.
#[test]
fn greedy_tree_bit_identical_to_oracles_sparse_to_dense() {
    let mut rng = SimRng::seed_from_u64(0x9a11e0);
    for case in 0..150 {
        let g = random_graph(&mut rng, 48, [1, 2, 4, 8, 16, 32][case % 6]);
        let c = CsrGraph::from_graph(&g);

        let tree = mwis::gwmin(&g);
        assert_eq!(tree, baseline::gwmin(&g), "case {case}: gwmin vs eager");
        assert_eq!(
            tree,
            baseline::gwmin_coalesced(&g),
            "case {case}: gwmin vs coalesced"
        );
        assert_eq!(tree, mwis::gwmin(&c), "case {case}: gwmin CSR diverged");
        assert!(g.is_independent_set(&tree), "case {case}: infeasible");

        let tree2 = mwis::gwmin2(&g);
        assert_eq!(tree2, baseline::gwmin2(&g), "case {case}: gwmin2 vs eager");
        assert_eq!(
            tree2,
            baseline::gwmin2_coalesced(&g),
            "case {case}: gwmin2 vs coalesced"
        );
        assert_eq!(tree2, mwis::gwmin2(&c), "case {case}: gwmin2 CSR diverged");
        assert!(g.is_independent_set(&tree2), "case {case}: infeasible");
    }
}

/// Uniform weights force a score tie at every step; the engines must
/// agree on the smallest-node-id tie-break rather than merely matching
/// total weight.
#[test]
fn greedy_tree_matches_oracles_under_total_ties() {
    let mut rng = SimRng::seed_from_u64(0x9a11e1);
    for case in 0..40 {
        let n = 2 + rng.index(31);
        let mut g = Graph::with_weights(vec![1.0; n]);
        for _ in 0..rng.index(n * 4) {
            let u = rng.index(n) as NodeId;
            let v = rng.index(n) as NodeId;
            if u != v {
                g.add_edge(u, v);
            }
        }
        let c = CsrGraph::from_graph(&g);
        for (tree, eager, coal) in [
            (mwis::gwmin(&c), baseline::gwmin(&g), baseline::gwmin_coalesced(&c)),
            (mwis::gwmin2(&c), baseline::gwmin2(&g), baseline::gwmin2_coalesced(&c)),
        ] {
            assert_eq!(tree, eager, "case {case}: tie-break vs eager");
            assert_eq!(tree, coal, "case {case}: tie-break vs coalesced");
        }
    }
}

/// One scratch threaded through an interleaved gwmin/gwmin2 sequence of
/// shrinking and growing instances returns exactly what fresh scratches
/// return — the zero-residue guarantee `PlanScratch` reuse depends on.
#[test]
fn scratch_reuse_matches_fresh_across_instances() {
    let mut rng = SimRng::seed_from_u64(0x9a11e2);
    let graphs: Vec<CsrGraph> = (0..12)
        .map(|i| CsrGraph::from_graph(&random_graph(&mut rng, [64, 6, 40, 3][i % 4], 6)))
        .collect();
    let mut warm = GreedyScratch::new();
    let mut out = Vec::new();
    for (i, g) in graphs.iter().enumerate() {
        if i % 2 == 0 {
            mwis::gwmin_into(g, &mut warm, &mut out);
            assert_eq!(out, mwis::gwmin(g), "graph {i}: warm gwmin diverged");
        } else {
            mwis::gwmin2_into(g, &mut warm, &mut out);
            assert_eq!(out, mwis::gwmin2(g), "graph {i}: warm gwmin2 diverged");
        }
    }
}

/// Scalar reference for the fused word kernels, built from single-bit
/// primitives only.
fn bits_of(words: &[u64]) -> Vec<bool> {
    (0..words.len() * 64).map(|i| bitset::test(words, i)).collect()
}

fn random_words(rng: &mut SimRng, len: usize, density_num: u64) -> Vec<u64> {
    let mut w = vec![0u64; len];
    for i in 0..len * 64 {
        if rng.next_u64() % 8 < density_num {
            bitset::set(&mut w, i);
        }
    }
    w
}

/// The fused word-at-a-time kernels against bit-by-bit recomputation,
/// across empty, sparse, dense, and full operands.
#[test]
fn bitset_kernels_match_bitwise_reference() {
    let mut rng = SimRng::seed_from_u64(0x9a11e3);
    for case in 0..60 {
        let len = 1 + rng.index(6);
        let density = [0, 1, 4, 7, 8][case % 5] as u64;
        let a = random_words(&mut rng, len, density);
        let b = random_words(&mut rng, len, 4);
        let weights: Vec<f64> = (0..len * 64).map(|_| rng.next_f64() * 5.0).collect();
        let (abits, bbits) = (bits_of(&a), bits_of(&b));

        // and_not_assign: dst &= !mask.
        let mut dst = a.clone();
        bitset::and_not_assign(&mut dst, &b);
        for i in 0..len * 64 {
            assert_eq!(bitset::test(&dst, i), abits[i] && !bbits[i], "case {case} andnot {i}");
        }

        // or_assign / and_assign / and_into.
        let mut dst = a.clone();
        bitset::or_assign(&mut dst, &b);
        for i in 0..len * 64 {
            assert_eq!(bitset::test(&dst, i), abits[i] || bbits[i], "case {case} or {i}");
        }
        let mut dst = a.clone();
        bitset::and_assign(&mut dst, &b);
        let mut into = vec![0u64; len];
        bitset::and_into(&mut into, &a, &b);
        assert_eq!(dst, into, "case {case}: and_assign vs and_into");
        for i in 0..len * 64 {
            assert_eq!(bitset::test(&dst, i), abits[i] && bbits[i], "case {case} and {i}");
        }

        // extract_and_clear: slot = set & mask, set &= !mask.
        let mut set = a.clone();
        let mut slot = vec![0u64; len];
        bitset::extract_and_clear(&mut set, &b, &mut slot);
        for i in 0..len * 64 {
            assert_eq!(bitset::test(&slot, i), abits[i] && bbits[i], "case {case} slot {i}");
            assert_eq!(bitset::test(&set, i), abits[i] && !bbits[i], "case {case} set {i}");
        }

        // Popcount-accumulate reductions.
        let expect_count = (0..len * 64).filter(|&i| abits[i] && bbits[i]).count();
        assert_eq!(bitset::intersection_count(&a, &b), expect_count, "case {case}");
        let expect_wsum: f64 = (0..len * 64).filter(|&i| abits[i]).map(|i| weights[i]).sum();
        assert!((bitset::weight_sum(&a, &weights) - expect_wsum).abs() < 1e-9, "case {case}");
        let expect_iw: f64 = (0..len * 64)
            .filter(|&i| abits[i] && bbits[i])
            .map(|i| weights[i])
            .sum();
        assert!(
            (bitset::intersection_weight(&a, &b, &weights) - expect_iw).abs() < 1e-9,
            "case {case}"
        );

        // Masked first-set and masked iteration.
        let expect_first = (0..len * 64).find(|&i| abits[i] && bbits[i]);
        assert_eq!(bitset::first_set_masked(&a, &b), expect_first, "case {case}");
        let got: Vec<usize> = bitset::ones_masked(&a, &b).collect();
        let expect: Vec<usize> = (0..len * 64).filter(|&i| abits[i] && bbits[i]).collect();
        assert_eq!(got, expect, "case {case}: ones_masked order");
    }
}
