//! # spindown-cli
//!
//! Command-line driver for the `spindown` storage-system simulator: load a
//! block trace (SPC/SRT) or generate a synthetic one, run it through an
//! energy-aware scheduler, and report energy and response-time metrics.
//!
//! ```text
//! spindown-cli simulate --synthetic cello --requests 8000 --disks 60 \
//!     --replication 3 --scheduler wsc
//! spindown-cli simulate --trace financial1.spc --scheduler heuristic --alpha 0.2
//! spindown-cli compare --synthetic cello --requests 8000 --disks 60
//! spindown-cli stats --trace cello.srt
//! spindown-cli bench --iters 5 --jobs 4        # micro-benchmarks -> BENCH_core.json
//! ```
//!
//! The binary is a thin wrapper over [`run`]; everything is testable as a
//! library.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;

pub use args::{Cli, Command, ParseError, SchedulerArg, SourceArg};

/// Parses `argv` and executes the selected command, writing the report to
/// `out`. Returns the process exit code.
pub fn run(argv: &[String], out: &mut dyn std::io::Write) -> i32 {
    match args::Cli::parse(argv) {
        Ok(cli) => match commands::execute(&cli) {
            Ok(report) => {
                let _ = writeln!(out, "{report}");
                0
            }
            Err(e) => {
                let _ = writeln!(out, "error: {e}");
                1
            }
        },
        Err(ParseError::HelpRequested) => {
            let _ = writeln!(out, "{}", args::USAGE);
            0
        }
        Err(e) => {
            let _ = writeln!(out, "error: {e}\n\n{}", args::USAGE);
            2
        }
    }
}
