//! Synthetic workload generators.
//!
//! The paper evaluates on two real traces (Cello, Financial1) that are not
//! redistributable. Per the reproduction's substitution rule, this module
//! generates statistical stand-ins that match the three trace properties
//! the paper's results actually depend on:
//!
//! 1. **arrival burstiness** — Cello is highly bursty (the paper attributes
//!    its higher response times to this, §A.4); Financial1 is a smoother
//!    OLTP stream. [`arrivals`] provides Poisson and multi-source
//!    Pareto-ON/OFF (self-similar) processes.
//! 2. **block-popularity skew** — both traces exhibit Zipf-like popularity
//!    (§4.2, citing \[2\]). [`popularity`] draws data ids from a Zipf law
//!    over a shuffled rank assignment.
//! 3. **scale** — 70 000 requests over ~30 000 distinct data items
//!    (§4.1), which the presets reproduce.
//!
//! Real traces in SPC or SRT format drop in via the sibling parsers.

pub mod arrivals;
pub mod cello;
pub mod financial;
pub mod popularity;
pub mod scenario;

use crate::record::Trace;

/// A deterministic trace generator: same seed, same trace.
pub trait TraceGenerator {
    /// Generates the trace for `seed`.
    fn generate(&self, seed: u64) -> Trace;

    /// Short name for reports.
    fn name(&self) -> &'static str;
}

pub use cello::{CelloLike, CelloStream};
pub use financial::{FinancialLike, FinancialStream};
pub use scenario::{
    DiurnalLike, DiurnalProcess, FlashCrowdLike, FlashCrowdProcess, ScenarioStream,
};
