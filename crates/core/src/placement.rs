//! Data-placement manager (paper §2.1, §4.2).
//!
//! The scheduler never moves data; it only exploits where the placement
//! manager already put it. The paper's experimental placement is:
//!
//! * the **original** copy of each data item lands on a disk drawn from a
//!   Zipf(`z`) distribution over disks (`z = 1` in the main experiments,
//!   swept over `[0, 1]` in Fig. 10) — modelling observed hot/cold disk
//!   skew;
//! * the **replica** copies land on distinct disks drawn uniformly —
//!   modelling fault-tolerance-oriented replica spreading.

use spindown_sim::rng::{SimRng, Zipf};

use crate::model::{DataId, DiskId};

/// Configuration of the experimental placement.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementConfig {
    /// Number of disks in the system (the paper uses 180).
    pub disks: u32,
    /// Replication factor: total copies per data item, original included
    /// (the paper sweeps 1–5).
    pub replication: u32,
    /// Zipf exponent of the original-copy distribution over disks
    /// (`z = 0` uniform … `z = 1` classic Zipf).
    pub zipf_z: f64,
}

impl Default for PlacementConfig {
    fn default() -> Self {
        PlacementConfig {
            disks: 180,
            replication: 3,
            zipf_z: 1.0,
        }
    }
}

/// Immutable map from data item to its replica locations.
///
/// `locations(data)[0]` is the original copy (the target of the `Static`
/// scheduler); the rest are replicas. All locations of one item are
/// distinct disks.
///
/// # Examples
///
/// ```
/// use spindown_core::placement::{PlacementConfig, PlacementMap};
/// use spindown_core::model::DataId;
///
/// let map = PlacementMap::build(100, &PlacementConfig { disks: 10, replication: 3, zipf_z: 1.0 }, 42);
/// let locs = map.locations(DataId(5));
/// assert_eq!(locs.len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct PlacementMap {
    replication: u32,
    disks: u32,
    /// Flat `n_data × replication` matrix of disk ids.
    table: Vec<DiskId>,
}

impl PlacementMap {
    /// Builds the placement for `n_data` dense data ids (`0..n_data`).
    ///
    /// Deterministic in `seed`. The Zipf rank→disk assignment is itself a
    /// random permutation so "hot" disks are not always the low ids.
    ///
    /// # Panics
    ///
    /// Panics if `disks == 0`, `replication == 0`, or `zipf_z` is
    /// negative/non-finite. A replication factor larger than the disk
    /// count is clamped to the disk count.
    pub fn build(n_data: usize, config: &PlacementConfig, seed: u64) -> Self {
        assert!(config.disks > 0, "need at least one disk");
        assert!(config.replication > 0, "replication factor must be >= 1");
        let replication = config.replication.min(config.disks);
        // Originals and replicas draw from *independent* streams so the
        // original locations are identical for every replication factor —
        // the paper relies on this ("the results of Static remain the
        // same" across the rf sweep, §5.2).
        let mut root = SimRng::seed_from_u64(seed ^ 0x9_1ACE);
        let mut orig_rng = root.fork(0);
        let mut repl_rng = root.fork(1);
        let zipf = Zipf::new(config.disks as usize, config.zipf_z).expect("valid zipf parameters");
        // Rank → disk permutation.
        let mut rank_to_disk: Vec<u32> = (0..config.disks).collect();
        orig_rng.shuffle(&mut rank_to_disk);

        let mut table = Vec::with_capacity(n_data * replication as usize);
        for _ in 0..n_data {
            let original = rank_to_disk[zipf.sample(&mut orig_rng) - 1];
            table.push(DiskId(original));
            // Replicas: uniform over the remaining disks, distinct.
            let mut chosen = vec![original];
            for _ in 1..replication {
                loop {
                    let d = repl_rng.next_below(config.disks as u64) as u32;
                    if !chosen.contains(&d) {
                        chosen.push(d);
                        table.push(DiskId(d));
                        break;
                    }
                }
            }
        }
        PlacementMap {
            replication,
            disks: config.disks,
            table,
        }
    }

    /// Number of copies per data item.
    pub fn replication(&self) -> u32 {
        self.replication
    }

    /// Number of disks in the system.
    pub fn disks(&self) -> u32 {
        self.disks
    }

    /// Number of data items mapped.
    pub fn n_data(&self) -> usize {
        self.table.len() / self.replication as usize
    }

    /// All copies of `data` (original first).
    ///
    /// # Panics
    ///
    /// Panics if `data` is out of range.
    pub fn locations(&self, data: DataId) -> &[DiskId] {
        let r = self.replication as usize;
        let start = data.0 as usize * r;
        &self.table[start..start + r]
    }

    /// The original copy's disk.
    pub fn original(&self, data: DataId) -> DiskId {
        self.locations(data)[0]
    }

    /// Per-disk count of original copies — used by tests to verify the
    /// Zipf skew and by the trace explorer example.
    pub fn original_histogram(&self) -> Vec<usize> {
        let mut h = vec![0usize; self.disks as usize];
        let r = self.replication as usize;
        for chunk in self.table.chunks(r) {
            h[chunk[0].index()] += 1;
        }
        h
    }
}

/// Partition of the disk fleet into **islands**: connected components of
/// the replica-sharing relation. Two disks are in the same island iff some
/// data item has copies on both (transitively). Requests for one data item
/// only ever touch disks of one island, so per-island event loops are
/// fully independent — the foundation of island-parallel replay.
///
/// Islands are numbered canonically by their smallest member disk id, and
/// each island lists its disks in ascending global order, so the partition
/// (and everything derived from it) is independent of traversal order.
#[derive(Debug, Clone)]
pub struct IslandPartition {
    /// Global disk id → island id.
    disk_island: Vec<u32>,
    /// Global disk id → index of the disk within its island's disk list.
    disk_local: Vec<u32>,
    /// CSR offsets into `island_disks`, length `n_islands + 1`.
    island_offsets: Vec<usize>,
    /// Global disk ids grouped by island, ascending within each island.
    island_disks: Vec<DiskId>,
    /// Data id → island id (`None` when the data universe is unknown).
    data_island: DataIslandTable,
}

/// Data → island routing table. Both the stream splitter and the inline
/// island loop hit this once per record with data-uniform (i.e. cache
/// hostile) indices, so the entries are stored at the narrowest width
/// that fits the island count — island ids are bounded by disk count,
/// so `u16` covers every realistic fleet and halves the footprint those
/// per-record misses walk.
#[derive(Debug, Clone)]
enum DataIslandTable {
    /// Data universe unknown: every data id routes to island 0.
    Unknown,
    /// Island ids fit in `u16` (the practical case).
    Narrow(Vec<u16>),
    /// Degenerate fleets with more than 65536 islands.
    Wide(Vec<u32>),
}

impl IslandPartition {
    /// Derives the partition from a placement by unioning every data
    /// item's replica set. Falls back to [`IslandPartition::single_island`]
    /// when the provider cannot enumerate its data items
    /// ([`LocationProvider::data_items`] is `None`).
    pub fn from_provider(provider: &(dyn crate::sched::LocationProvider + '_)) -> Self {
        let disks = provider.disks();
        let Some(n_data) = provider.data_items() else {
            return Self::single_island(disks);
        };
        let n = disks as usize;
        // Union-find with path halving; union by smaller root id so the
        // representative is always the component's minimum disk.
        let mut parent: Vec<u32> = (0..disks).collect();
        fn find(parent: &mut [u32], mut x: u32) -> u32 {
            while parent[x as usize] != x {
                parent[x as usize] = parent[parent[x as usize] as usize];
                x = parent[x as usize];
            }
            x
        }
        // One provider round-trip per data item: remember each item's
        // first replica so the canonicalization pass below can map it to
        // an island without a second `locations` call.
        let mut first_loc = vec![0u32; n_data];
        for (d, first_slot) in first_loc.iter_mut().enumerate() {
            let locs = provider.locations(DataId(d as u64));
            let first = locs[0].0;
            *first_slot = first;
            let mut a = find(&mut parent, first);
            for &l in &locs[1..] {
                let b = find(&mut parent, l.0);
                if a != b {
                    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                    parent[hi as usize] = lo;
                    a = lo;
                }
            }
        }
        // Canonical island ids: scan disks in ascending order; a disk that
        // is its own root opens the next island. Roots are component
        // minima, so island order == order of smallest member.
        let mut disk_island = vec![u32::MAX; n];
        let mut n_islands = 0u32;
        for d in 0..disks {
            let root = find(&mut parent, d);
            if root == d {
                disk_island[d as usize] = n_islands;
                n_islands += 1;
            } else {
                disk_island[d as usize] = disk_island[root as usize];
            }
        }
        // CSR of member disks per island (counting pass → exact offsets →
        // ordered scatter keeps members ascending).
        let mut counts = vec![0usize; n_islands as usize];
        for &i in &disk_island {
            counts[i as usize] += 1;
        }
        let mut island_offsets = Vec::with_capacity(n_islands as usize + 1);
        let mut acc = 0usize;
        island_offsets.push(0);
        for &c in &counts {
            acc += c;
            island_offsets.push(acc);
        }
        let mut cursor = island_offsets.clone();
        let mut island_disks = vec![DiskId(0); n];
        let mut disk_local = vec![0u32; n];
        for d in 0..disks {
            let island = disk_island[d as usize] as usize;
            let slot = cursor[island];
            cursor[island] += 1;
            island_disks[slot] = DiskId(d);
            disk_local[d as usize] = (slot - island_offsets[island]) as u32;
        }
        let data_island = if n_islands <= u16::MAX as u32 + 1 {
            DataIslandTable::Narrow(
                first_loc
                    .iter()
                    .map(|&first| disk_island[first as usize] as u16)
                    .collect(),
            )
        } else {
            DataIslandTable::Wide(
                first_loc
                    .iter()
                    .map(|&first| disk_island[first as usize])
                    .collect(),
            )
        };
        IslandPartition {
            disk_island,
            disk_local,
            island_offsets,
            island_disks,
            data_island,
        }
    }

    /// The degenerate partition: every disk in one island. Used when the
    /// data universe is unknown or when replicas connect the whole fleet.
    pub fn single_island(disks: u32) -> Self {
        let n = disks as usize;
        IslandPartition {
            disk_island: vec![0; n],
            disk_local: (0..disks).collect(),
            island_offsets: vec![0, n],
            island_disks: (0..disks).map(DiskId).collect(),
            data_island: DataIslandTable::Unknown,
        }
    }

    /// Number of islands.
    pub fn n_islands(&self) -> usize {
        self.island_offsets.len() - 1
    }

    /// `true` when the partition is one island (parallel replay degrades
    /// to the serial engine).
    pub fn is_single(&self) -> bool {
        self.n_islands() == 1
    }

    /// Global disk ids of island `i`, ascending.
    pub fn island_disks(&self, i: usize) -> &[DiskId] {
        &self.island_disks[self.island_offsets[i]..self.island_offsets[i + 1]]
    }

    /// Island of a disk.
    pub fn disk_island(&self, d: DiskId) -> usize {
        self.disk_island[d.index()] as usize
    }

    /// Index of `d` within [`IslandPartition::island_disks`] of its island.
    pub fn disk_local(&self, d: DiskId) -> usize {
        self.disk_local[d.index()] as usize
    }

    /// Island of a data item. For the single-island fallback every data id
    /// maps to island 0.
    pub fn data_island(&self, data: DataId) -> usize {
        match &self.data_island {
            DataIslandTable::Unknown => 0,
            DataIslandTable::Narrow(t) => t[data.0 as usize] as usize,
            DataIslandTable::Wide(t) => t[data.0 as usize] as usize,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(disks: u32, replication: u32, z: f64) -> PlacementConfig {
        PlacementConfig {
            disks,
            replication,
            zipf_z: z,
        }
    }

    #[test]
    fn locations_are_distinct_and_in_range() {
        let map = PlacementMap::build(500, &cfg(20, 4, 1.0), 1);
        for d in 0..500 {
            let locs = map.locations(DataId(d));
            assert_eq!(locs.len(), 4);
            let mut seen = locs.to_vec();
            seen.sort();
            seen.dedup();
            assert_eq!(seen.len(), 4, "duplicate replica for data {d}");
            assert!(locs.iter().all(|l| l.0 < 20));
        }
    }

    #[test]
    fn replication_one_has_single_copy() {
        let map = PlacementMap::build(100, &cfg(10, 1, 1.0), 2);
        assert_eq!(map.replication(), 1);
        for d in 0..100 {
            assert_eq!(map.locations(DataId(d)).len(), 1);
            assert_eq!(map.original(DataId(d)), map.locations(DataId(d))[0]);
        }
    }

    #[test]
    fn replication_clamped_to_disk_count() {
        let map = PlacementMap::build(10, &cfg(3, 10, 0.0), 3);
        assert_eq!(map.replication(), 3);
    }

    #[test]
    fn zipf_originals_are_skewed_uniform_is_not() {
        let skewed = PlacementMap::build(20_000, &cfg(100, 1, 1.0), 7);
        let uniform = PlacementMap::build(20_000, &cfg(100, 1, 0.0), 7);
        let top = |h: &[usize]| *h.iter().max().unwrap() as f64;
        let hs = skewed.original_histogram();
        let hu = uniform.original_histogram();
        // Zipf z=1 over 100 disks: hottest ~1/H_100 ≈ 19%; uniform: 1%.
        assert!(top(&hs) > 20_000.0 * 0.10, "skewed max {}", top(&hs));
        assert!(top(&hu) < 20_000.0 * 0.03, "uniform max {}", top(&hu));
        assert_eq!(hs.iter().sum::<usize>(), 20_000);
    }

    #[test]
    fn originals_invariant_to_replication_factor() {
        // The paper's Static scheduler must see the same original
        // placement at every rf (its Fig. 6 line is flat by construction).
        let rf1 = PlacementMap::build(500, &cfg(20, 1, 1.0), 9);
        let rf5 = PlacementMap::build(500, &cfg(20, 5, 1.0), 9);
        for d in 0..500 {
            assert_eq!(rf1.original(DataId(d)), rf5.original(DataId(d)));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = PlacementMap::build(200, &cfg(16, 3, 1.0), 11);
        let b = PlacementMap::build(200, &cfg(16, 3, 1.0), 11);
        let c = PlacementMap::build(200, &cfg(16, 3, 1.0), 12);
        assert_eq!(a.table, b.table);
        assert_ne!(a.table, c.table);
    }

    #[test]
    fn n_data_reported() {
        let map = PlacementMap::build(123, &cfg(8, 2, 0.5), 0);
        assert_eq!(map.n_data(), 123);
        assert_eq!(map.disks(), 8);
    }

    #[test]
    #[should_panic(expected = "at least one disk")]
    fn zero_disks_rejected() {
        PlacementMap::build(1, &cfg(0, 1, 1.0), 0);
    }

    #[test]
    #[should_panic(expected = "replication factor")]
    fn zero_replication_rejected() {
        PlacementMap::build(1, &cfg(5, 0, 1.0), 0);
    }

    #[test]
    fn islands_from_explicit_groups() {
        use crate::sched::ExplicitPlacement;
        // Disks {0,2} share data 0, {1,3} share data 1, disk 4 is isolated.
        let p = ExplicitPlacement::new(
            vec![
                vec![DiskId(2), DiskId(0)],
                vec![DiskId(1), DiskId(3)],
                vec![DiskId(0)],
            ],
            5,
        );
        let part = IslandPartition::from_provider(&p);
        assert_eq!(part.n_islands(), 3);
        assert!(!part.is_single());
        assert_eq!(part.island_disks(0), &[DiskId(0), DiskId(2)]);
        assert_eq!(part.island_disks(1), &[DiskId(1), DiskId(3)]);
        assert_eq!(part.island_disks(2), &[DiskId(4)]);
        assert_eq!(part.disk_island(DiskId(2)), 0);
        assert_eq!(part.disk_local(DiskId(2)), 1);
        assert_eq!(part.disk_local(DiskId(3)), 1);
        assert_eq!(part.data_island(DataId(0)), 0);
        assert_eq!(part.data_island(DataId(1)), 1);
        assert_eq!(part.data_island(DataId(2)), 0);
    }

    #[test]
    fn islands_transitive_chain_collapses_to_one() {
        use crate::sched::ExplicitPlacement;
        // data i on {i, i+1}: a chain connecting all disks into one island.
        let locs: Vec<Vec<DiskId>> = (0..9).map(|i| vec![DiskId(i), DiskId(i + 1)]).collect();
        let p = ExplicitPlacement::new(locs, 10);
        let part = IslandPartition::from_provider(&p);
        assert!(part.is_single());
        assert_eq!(part.island_disks(0).len(), 10);
        for d in 0..10 {
            assert_eq!(part.disk_island(DiskId(d)), 0);
            assert_eq!(part.disk_local(DiskId(d)), d as usize);
        }
    }

    #[test]
    fn islands_replication_one_is_per_disk() {
        let map = PlacementMap::build(400, &cfg(16, 1, 1.0), 3);
        let part = IslandPartition::from_provider(&map);
        // Unreplicated data never connects disks: 16 singleton islands.
        assert_eq!(part.n_islands(), 16);
        for d in 0..16 {
            assert_eq!(part.island_disks(d as usize), &[DiskId(d)]);
            assert_eq!(part.disk_local(DiskId(d)), 0);
        }
        for i in 0..400 {
            let island = part.data_island(DataId(i));
            assert_eq!(island, map.original(DataId(i)).index());
        }
    }

    #[test]
    fn islands_partition_invariants_hold() {
        // Whatever the shape, the partition must cover every disk exactly
        // once, keep members ascending, order islands by minimum disk, and
        // put every data item's locations in that item's island.
        let map = PlacementMap::build(800, &cfg(40, 2, 1.0), 21);
        let part = IslandPartition::from_provider(&map);
        let mut seen = [false; 40];
        let mut prev_min = None;
        for i in 0..part.n_islands() {
            let members = part.island_disks(i);
            assert!(!members.is_empty());
            assert!(members.windows(2).all(|w| w[0] < w[1]));
            assert!(prev_min < Some(members[0]));
            prev_min = Some(members[0]);
            for (local, &d) in members.iter().enumerate() {
                assert!(!seen[d.index()]);
                seen[d.index()] = true;
                assert_eq!(part.disk_island(d), i);
                assert_eq!(part.disk_local(d), local);
            }
        }
        assert!(seen.iter().all(|&s| s));
        for data in 0..800 {
            let island = part.data_island(DataId(data));
            for &l in map.locations(DataId(data)) {
                assert_eq!(part.disk_island(l), island, "data {data} split");
            }
        }
    }

    #[test]
    fn single_island_fallback_shape() {
        let part = IslandPartition::single_island(7);
        assert!(part.is_single());
        assert_eq!(part.island_disks(0).len(), 7);
        assert_eq!(part.data_island(DataId(123)), 0);
        assert_eq!(part.disk_local(DiskId(6)), 6);
    }

    #[test]
    fn replicas_roughly_uniform() {
        // With z=1 originals but uniform replicas, replica copies (index
        // >= 1) should spread evenly.
        let map = PlacementMap::build(30_000, &cfg(50, 3, 1.0), 5);
        let mut replica_h = vec![0usize; 50];
        for d in 0..30_000 {
            for loc in &map.locations(DataId(d))[1..] {
                replica_h[loc.index()] += 1;
            }
        }
        let total: usize = replica_h.iter().sum();
        let mean = total as f64 / 50.0;
        for (i, &c) in replica_h.iter().enumerate() {
            assert!(
                (c as f64) < mean * 1.3 && (c as f64) > mean * 0.7,
                "disk {i} replica count {c} vs mean {mean}"
            );
        }
    }
}
