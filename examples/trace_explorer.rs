//! Compares the two synthetic workload families against the trace
//! properties the paper relies on: Cello is bursty, Financial1 is smooth,
//! both are Zipf-skewed. Also demonstrates the SPC parser round-trip so
//! real traces can drop in.
//!
//! ```text
//! cargo run --release --example trace_explorer
//! ```

use spindown::prelude::*;
use spindown::trace::spc;
use spindown::trace::stats::TraceStats;

fn main() {
    let n = 30_000;
    let cello = CelloLike {
        requests: n,
        data_items: 10_000,
        ..CelloLike::default()
    }
    .generate(1);
    let financial = FinancialLike {
        requests: n,
        data_items: 10_000,
        ..FinancialLike::default()
    }
    .generate(1);

    println!("== Cello-like (bursty timesharing workload) ==");
    println!("{}\n", TraceStats::compute(&cello));
    println!("== Financial1-like (smooth OLTP workload) ==");
    println!("{}\n", TraceStats::compute(&financial));

    let cs = TraceStats::compute(&cello);
    let fs = TraceStats::compute(&financial);
    println!(
        "burstiness check: Cello inter-arrival CV {:.2} > Financial {:.2}  (paper §A.4)",
        cs.interarrival_cv, fs.interarrival_cv
    );
    println!(
        "skew check:       both fit Zipf z ≈ 1 ({:.2}, {:.2})  (paper §4.2)\n",
        cs.fitted_zipf_z, fs.fitted_zipf_z
    );

    // Real traces drop in through the SPC parser (Financial1's format).
    let sample = "\
0,20941264,8192,R,0.551706
0,20939840,8192,W,0.554041
1,3436288,15872,r,1.011732
";
    let parsed = spc::parse(sample).expect("valid SPC text");
    println!(
        "SPC parser: {} records ({} reads) from an embedded Financial1-format sample;",
        parsed.len(),
        parsed.reads_only().len()
    );
    println!("point spindown at a real trace file to reproduce the paper on the original data.");

    // Show that the scheduler-facing pipeline accepts either source.
    let reqs = requests_from_trace(&parsed);
    println!(
        "pipeline check: {} schedulable read requests, densified data space {}",
        reqs.len(),
        reqs.iter().map(|r| r.data.0 + 1).max().unwrap_or(0)
    );
}
