//! Full-stack integration tests: traces → placement → schedulers →
//! simulator → metrics, across crate boundaries.

use spindown::prelude::*;
use spindown::trace::synth::arrivals::OnOffProcess;

fn sparse_cello(requests: usize, data_items: usize, seed: u64) -> Vec<Request> {
    let trace = CelloLike {
        requests,
        data_items,
        arrivals: OnOffProcess {
            sources: 8,
            on_shape: 1.5,
            on_scale_s: 2.0,
            off_shape: 1.3,
            off_scale_s: 30.0,
            burst_rate: 10.0,
        },
        ..CelloLike::default()
    }
    .generate(seed);
    requests_from_trace(&trace)
}

fn spec(scheduler: SchedulerKind, disks: u32, rf: u32) -> ExperimentSpec {
    ExperimentSpec {
        placement: PlacementConfig {
            disks,
            replication: rf,
            zipf_z: 1.0,
        },
        scheduler,
        system: SystemConfig {
            disks,
            ..SystemConfig::default()
        },
        seed: 9,
    }
}

fn paper_schedulers() -> Vec<SchedulerKind> {
    SchedulerKind::paper_set()
}

#[test]
fn every_scheduler_completes_every_request() {
    let reqs = sparse_cello(3_000, 1_000, 1);
    for kind in paper_schedulers() {
        let label = kind.label();
        let m = run_experiment(&reqs, &spec(kind, 20, 3));
        assert_eq!(m.requests, 3_000, "{label}");
        assert_eq!(m.response.count(), 3_000, "{label} lost completions");
        assert!(m.energy_j > 0.0, "{label}");
        assert!(m.normalized_energy() <= 1.1, "{label}");
    }
}

#[test]
fn energy_ordering_matches_the_paper() {
    let reqs = sparse_cello(4_000, 1_200, 2);
    let run = |k| run_experiment(&reqs, &spec(k, 20, 3)).normalized_energy();
    let random = run(SchedulerKind::Random);
    let static_ = run(SchedulerKind::Static);
    let heuristic = run(SchedulerKind::Heuristic(CostFunction::energy_only()));
    let wsc = run(SchedulerKind::Wsc {
        cost: CostFunction::energy_only(),
        interval: SimDuration::from_millis(100),
    });
    // The paper's Fig. 6 ordering at rf = 3: energy-aware < baselines.
    assert!(
        heuristic < static_,
        "heuristic {heuristic} vs static {static_}"
    );
    assert!(
        heuristic < random,
        "heuristic {heuristic} vs random {random}"
    );
    assert!(wsc < static_, "wsc {wsc} vs static {static_}");
}

#[test]
fn replication_monotonically_helps_energy_aware_schedulers() {
    let reqs = sparse_cello(4_000, 1_200, 3);
    let energies: Vec<f64> = [1u32, 3, 5]
        .iter()
        .map(|&rf| {
            run_experiment(
                &reqs,
                &spec(
                    SchedulerKind::Heuristic(CostFunction::energy_only()),
                    20,
                    rf,
                ),
            )
            .normalized_energy()
        })
        .collect();
    assert!(
        energies[2] < energies[0],
        "rf5 {} must save more than rf1 {}",
        energies[2],
        energies[0]
    );
}

#[test]
fn static_is_invariant_to_replication() {
    let reqs = sparse_cello(2_000, 800, 4);
    let e1 = run_experiment(&reqs, &spec(SchedulerKind::Static, 20, 1));
    let e5 = run_experiment(&reqs, &spec(SchedulerKind::Static, 20, 5));
    // Same seed → same original placement → identical runs.
    assert_eq!(e1.energy_j, e5.energy_j);
    assert_eq!(e1.spinups, e5.spinups);
}

#[test]
fn mwis_offline_has_no_spinup_delays() {
    let reqs = sparse_cello(2_000, 800, 5);
    let m = run_experiment(
        &reqs,
        &spec(
            SchedulerKind::Mwis {
                solver: MwisSolver::GwMin,
                max_successors: 3,
            },
            20,
            3,
        ),
    );
    // Offline model: responses are pure service time (≈ 10 ms), never the
    // 10 s spin-up penalty.
    assert!(m.response.max() < 0.1, "max response {}", m.response.max());
    assert!(m.response_mean_s() < 0.05);
}

#[test]
fn online_schedulers_do_suffer_spinup_delays() {
    let reqs = sparse_cello(2_000, 800, 6);
    let m = run_experiment(&reqs, &spec(SchedulerKind::Static, 20, 1));
    // Disks start in standby: at least the first access of each busy disk
    // waits out a ~10 s spin-up.
    assert!(
        m.response.max() >= 10.0,
        "expected spin-up stalls, max {}",
        m.response.max()
    );
    // ... but they are rare: p50 far below the spin-up time.
    assert!(m.response.quantile(0.5) < 1.0);
}

#[test]
fn runs_are_bit_deterministic() {
    let reqs = sparse_cello(2_000, 800, 7);
    for kind in paper_schedulers() {
        let label = kind.label();
        let a = run_experiment(&reqs, &spec(kind.clone(), 20, 3));
        let b = run_experiment(&reqs, &spec(kind, 20, 3));
        assert_eq!(a.energy_j, b.energy_j, "{label}");
        assert_eq!(a.spinups, b.spinups, "{label}");
        assert_eq!(a.spindowns, b.spindowns, "{label}");
        assert_eq!(a.response_mean_s(), b.response_mean_s(), "{label}");
    }
}

#[test]
fn always_on_baseline_normalizes_to_one() {
    let reqs = sparse_cello(2_000, 800, 8);
    let m = run_always_on_baseline(&reqs, &spec(SchedulerKind::Static, 20, 3));
    assert!(
        (m.normalized_energy() - 1.0).abs() < 0.02,
        "always-on normalized {}",
        m.normalized_energy()
    );
    assert_eq!(m.spin_cycles(), 0);
}

#[test]
fn state_fractions_are_a_partition() {
    let reqs = sparse_cello(2_000, 800, 9);
    for kind in paper_schedulers() {
        let label = kind.label();
        let m = run_experiment(&reqs, &spec(kind, 20, 3));
        for (i, d) in m.per_disk.iter().enumerate() {
            let sum: f64 = d.state_fractions.iter().sum();
            assert!((sum - 1.0).abs() < 1e-5, "{label} disk {i}: sum {sum}");
        }
    }
}

#[test]
fn financial_workload_runs_end_to_end() {
    let trace = FinancialLike {
        requests: 3_000,
        data_items: 1_000,
        rate: 10.0,
        ..FinancialLike::default()
    }
    .generate(1);
    let reqs = requests_from_trace(&trace);
    let m = run_experiment(
        &reqs,
        &spec(SchedulerKind::Heuristic(CostFunction::default()), 20, 3),
    );
    assert_eq!(m.requests, 3_000);
    assert!(m.normalized_energy() < 1.0);
}
