//! Deterministic property checks for Theorem 1: on pseudo-randomly
//! generated small instances (seeded `spindown::sim` RNG, identical cases
//! every run), the exact-MWIS planner's schedule is energy-optimal
//! (matches exhaustive search over all replica assignments).

use spindown::core::model::{DataId, DiskId, Request};
use spindown::core::offline::{brute_force_optimal, evaluate_offline};
use spindown::core::sched::{ExplicitPlacement, LocationProvider, MwisPlanner, MwisSolver};
use spindown::disk::power::PowerParams;
use spindown::sim::rng::SimRng;
use spindown::sim::time::SimTime;

/// A random offline instance: up to 7 requests over up to 4 disks, each
/// request replicated on 1–3 distinct disks, arrival gaps 0–8 s (around
/// the toy breakeven of 5 s so all Lemma-1 cases occur).
fn random_instance(rng: &mut SimRng) -> (Vec<Request>, ExplicitPlacement) {
    let disks = 4u32;
    let n = 1 + rng.index(7);
    let mut t = 0u64;
    let mut locations = Vec::new();
    let mut requests = Vec::new();
    for i in 0..n {
        t += rng.next_below(8_001); // gap to previous request, ms
        let copies = 1 + rng.index(3);
        let mut locs: Vec<DiskId> = Vec::new();
        while locs.len() < copies {
            let d = DiskId(rng.next_below(disks as u64) as u32);
            if !locs.contains(&d) {
                locs.push(d);
            }
        }
        locs.sort_unstable_by_key(|d| d.0);
        locations.push(locs);
        requests.push(Request {
            index: i as u32,
            at: SimTime::from_millis(t),
            data: DataId(i as u64),
            size: 4096,
        });
    }
    (requests, ExplicitPlacement::new(locations, disks))
}

#[test]
fn exact_mwis_schedule_is_optimal() {
    let mut rng = SimRng::seed_from_u64(0x7e01e1);
    for _ in 0..128 {
        let (requests, placement) = random_instance(&mut rng);
        let params = PowerParams::paper_example();
        let planner = MwisPlanner {
            params: params.clone(),
            solver: MwisSolver::Exact { node_limit: 256 },
            max_successors: 16,
        };
        let (assignment, claimed) = planner.plan(&requests, &placement);
        let planned = evaluate_offline(&requests, &assignment, 4, &params, None, None);
        let (_, optimal) =
            brute_force_optimal(&requests, &placement, &params, 100_000).expect("tiny instance");
        assert!(
            (planned.energy_j - optimal).abs() < 1e-9,
            "planner energy {} != optimal {}",
            planned.energy_j,
            optimal
        );
        // The energy identity of §3.1.1: total energy = N·E_max − saving
        // ... holds for the *claimed* saving of an optimal selection.
        let e_max = params.max_request_energy_j();
        let ident = requests.len() as f64 * e_max - claimed;
        assert!(
            (ident - planned.energy_j).abs() < 1e-9,
            "Eq. 1 identity violated: N*E_max - saving = {} vs energy {}",
            ident,
            planned.energy_j
        );
    }
}

#[test]
fn greedy_mwis_is_feasible_and_bounded() {
    let mut rng = SimRng::seed_from_u64(0x7e01e2);
    for _ in 0..128 {
        let (requests, placement) = random_instance(&mut rng);
        let params = PowerParams::paper_example();
        for solver in [
            MwisSolver::GwMin,
            MwisSolver::GwMin2,
            MwisSolver::GwMinLocalSearch,
        ] {
            let planner = MwisPlanner {
                params: params.clone(),
                solver,
                max_successors: 16,
            };
            let (assignment, claimed) = planner.plan(&requests, &placement);
            // Feasibility: every request on one of its locations.
            for (r, req) in requests.iter().enumerate() {
                assert!(placement.locations(req.data).contains(&assignment.disk_of(r)));
            }
            // Bounded by the optimum from below, by N·E_max from above.
            let planned = evaluate_offline(&requests, &assignment, 4, &params, None, None);
            let (_, optimal) = brute_force_optimal(&requests, &placement, &params, 100_000)
                .expect("tiny instance");
            assert!(planned.energy_j >= optimal - 1e-9);
            assert!(
                planned.energy_j
                    <= requests.len() as f64 * params.max_request_energy_j() + 1e-9
            );
            // Soundness of the claimed saving: the schedule realizes at
            // least what the independent set promised (Eq. 1 as an
            // inequality for sub-optimal selections).
            let bound = requests.len() as f64 * params.max_request_energy_j() - claimed;
            assert!(
                planned.energy_j <= bound + 1e-9,
                "{solver:?}: energy {} above N*E_max - claimed {}",
                planned.energy_j,
                bound
            );
        }
    }
}
