//! `Random` baseline: uniformly pick one of the request's replica
//! locations (paper §4.3).

use spindown_sim::rng::SplitMix64;

use crate::model::{DiskId, Request};
use crate::sched::{Scheduler, SystemView};

/// The paper's `Random` baseline scheduler.
///
/// The pick for a request is a pure hash of `(seed, request index)` rather
/// than a draw from a sequential stream, so the decision for a given
/// request does not depend on how many other requests this scheduler
/// instance has seen. That makes the scheduler *partition-invariant*:
/// island-parallel replay, where each island sees only its own requests,
/// reproduces the serial run's assignments exactly.
#[derive(Debug, Clone)]
pub struct RandomScheduler {
    seed: u64,
}

impl RandomScheduler {
    /// Creates the scheduler with its own deterministic stream.
    pub fn new(seed: u64) -> Self {
        RandomScheduler {
            seed: seed ^ 0x52414E44, // "RAND"
        }
    }
}

impl Scheduler for RandomScheduler {
    fn name(&self) -> &'static str {
        "random"
    }

    fn assign(&mut self, reqs: &[Request], view: &SystemView<'_>) -> Vec<DiskId> {
        let mut out = Vec::with_capacity(reqs.len());
        self.assign_into(reqs, view, &mut out);
        out
    }

    fn assign_into(&mut self, reqs: &[Request], view: &SystemView<'_>, out: &mut Vec<DiskId>) {
        out.clear();
        out.extend(reqs.iter().map(|r| {
            let locs = view.locations(r.data);
            let x = SplitMix64::new(
                self.seed ^ (r.index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            )
            .next_u64();
            // Unbiased-enough fixed-point scaling of x into 0..len
            // (Lemire's multiply-shift; bias is < len / 2^64).
            let pick = ((x as u128 * locs.len() as u128) >> 64) as usize;
            locs[pick]
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::DiskStatus;
    use crate::model::DataId;
    use crate::sched::ExplicitPlacement;
    use spindown_disk::power::PowerParams;
    use spindown_disk::state::DiskPowerState;
    use spindown_sim::time::SimTime;

    fn view<'a>(
        placement: &'a ExplicitPlacement,
        params: &'a PowerParams,
        statuses: &'a [DiskStatus],
    ) -> SystemView<'a> {
        SystemView {
            now: SimTime::ZERO,
            params,
            placement,
            statuses,
        }
    }

    fn req(i: u32, data: u64) -> Request {
        Request {
            index: i,
            at: SimTime::ZERO,
            data: DataId(data),
            size: 4096,
        }
    }

    #[test]
    fn picks_only_valid_locations_and_spreads() {
        let placement = ExplicitPlacement::new(vec![vec![DiskId(1), DiskId(3), DiskId(4)]], 5);
        let params = PowerParams::barracuda();
        let statuses = vec![
            DiskStatus {
                state: DiskPowerState::Standby,
                last_request_at: None,
                load: 0
            };
            5
        ];
        let v = view(&placement, &params, &statuses);
        let mut s = RandomScheduler::new(1);
        let mut counts = [0u32; 5];
        for i in 0..3000 {
            let picks = s.assign(&[req(i, 0)], &v);
            counts[picks[0].index()] += 1;
        }
        assert_eq!(counts[0], 0);
        assert_eq!(counts[2], 0);
        for d in [1, 3, 4] {
            assert!(counts[d] > 800, "disk {d} only picked {}", counts[d]);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let placement = ExplicitPlacement::new(vec![vec![DiskId(0), DiskId(1)]], 2);
        let params = PowerParams::barracuda();
        let statuses = vec![
            DiskStatus {
                state: DiskPowerState::Standby,
                last_request_at: None,
                load: 0
            };
            2
        ];
        let v = view(&placement, &params, &statuses);
        let run = |seed| {
            let mut s = RandomScheduler::new(seed);
            (0..50)
                .map(|i| s.assign(&[req(i, 0)], &v)[0])
                .collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn decision_depends_only_on_request_not_history() {
        // The pick for request 42 is the same whether the scheduler has
        // previously assigned 0 or 1000 other requests — the property that
        // lets island-parallel replay split the stream arbitrarily.
        let placement = ExplicitPlacement::new(vec![vec![DiskId(0), DiskId(1), DiskId(2)]], 3);
        let params = PowerParams::barracuda();
        let statuses = vec![
            DiskStatus {
                state: DiskPowerState::Standby,
                last_request_at: None,
                load: 0
            };
            3
        ];
        let v = view(&placement, &params, &statuses);
        let mut warm = RandomScheduler::new(7);
        for i in 0..1000 {
            warm.assign(&[req(i, 0)], &v);
        }
        let mut cold = RandomScheduler::new(7);
        assert_eq!(warm.assign(&[req(42, 0)], &v), cold.assign(&[req(42, 0)], &v));
    }
}
