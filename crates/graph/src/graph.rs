//! Undirected node-weighted graph.
//!
//! This is the data structure the offline scheduler's conflict graph is
//! built on (paper §3.1.2, Fig. 4): one node per candidate energy saving
//! `X(i,j,k)`, one edge per violated constraint pair.

/// Node identifier (dense, `0..n`).
pub type NodeId = u32;

/// Read-only access shared by the two storage layouts — the mutable
/// adjacency-list [`Graph`] and the frozen [`CsrGraph`](crate::csr::CsrGraph).
///
/// The MWIS solvers in [`crate::mwis`] are generic over this trait, so any
/// backend that can enumerate neighbors and weights gets the full solver
/// stack. Implementations must present each node's neighbors as a slice
/// (duplicate-free, no self-loops); whether that slice is sorted is a
/// backend property (CSR: always; `Graph`: only when
/// [`Graph::adjacency_is_sorted`] holds), and `has_edge` is expected to
/// exploit sortedness where available.
pub trait GraphView {
    /// Number of nodes.
    fn len(&self) -> usize;

    /// Weight of node `v`.
    fn weight(&self, v: NodeId) -> f64;

    /// Neighbors of `v` (duplicate-free, no self-loop).
    fn neighbors(&self, v: NodeId) -> &[NodeId];

    /// `true` if the edge `{u, v}` exists.
    fn has_edge(&self, u: NodeId, v: NodeId) -> bool;

    /// `true` if the graph has no nodes.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Degree of `v`.
    fn degree(&self, v: NodeId) -> usize {
        self.neighbors(v).len()
    }

    /// Sum of weights over `nodes`.
    fn set_weight_sum(&self, nodes: &[NodeId]) -> f64 {
        nodes.iter().map(|&v| self.weight(v)).sum()
    }

    /// `true` if `nodes` is an independent set (pairwise non-adjacent, no
    /// duplicates).
    fn is_independent_set(&self, nodes: &[NodeId]) -> bool {
        let mut mark = vec![false; self.len()];
        for &v in nodes {
            if (v as usize) >= self.len() || mark[v as usize] {
                return false;
            }
            mark[v as usize] = true;
        }
        for &v in nodes {
            if self.neighbors(v).iter().any(|&u| mark[u as usize]) {
                return false;
            }
        }
        true
    }
}

/// An undirected graph with `f64` node weights and deduplicated adjacency
/// lists.
///
/// # Examples
///
/// ```
/// use spindown_graph::graph::Graph;
///
/// let mut g = Graph::new(3);
/// g.set_weight(0, 5.0);
/// g.add_edge(0, 1);
/// g.add_edge(1, 2);
/// assert_eq!(g.degree(1), 2);
/// assert!(g.has_edge(0, 1));
/// assert!(!g.has_edge(0, 2));
/// ```
#[derive(Debug, Clone)]
pub struct Graph {
    weights: Vec<f64>,
    adj: Vec<Vec<NodeId>>,
    edges: usize,
    /// `true` while every adjacency list is ascending — maintained across
    /// [`add_edge`](Graph::add_edge) calls so [`has_edge`](Graph::has_edge)
    /// can binary-search instead of scanning.
    sorted: bool,
}

impl Default for Graph {
    fn default() -> Self {
        Graph::new(0)
    }
}

impl Graph {
    /// Creates a graph with `n` isolated nodes of weight 1.
    pub fn new(n: usize) -> Self {
        Graph {
            weights: vec![1.0; n],
            adj: vec![Vec::new(); n],
            edges: 0,
            sorted: true,
        }
    }

    /// Creates a graph from explicit node weights.
    pub fn with_weights(weights: Vec<f64>) -> Self {
        let n = weights.len();
        Graph {
            weights,
            adj: vec![Vec::new(); n],
            edges: 0,
            sorted: true,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// `true` if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Number of (undirected) edges.
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// Appends a new node with the given weight, returning its id.
    pub fn add_node(&mut self, weight: f64) -> NodeId {
        self.weights.push(weight);
        self.adj.push(Vec::new());
        (self.weights.len() - 1) as NodeId
    }

    /// Adds the undirected edge `{u, v}`. Self-loops and duplicate edges
    /// are ignored. Returns `true` if the edge was newly inserted.
    ///
    /// Each insertion scans the shorter endpoint's adjacency list to keep
    /// the lists deduplicated, so this is `O(min degree)` per call —
    /// `O(E · d̄)` for a bulk load of `E` edges at mean degree `d̄`. That
    /// is the right trade for *incremental* mutation of an existing
    /// graph; when all edges are known up front, accumulate them in a
    /// [`GraphBuilder`] instead and pay one `O(E + n)` finalize pass.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        assert!(
            (u as usize) < self.len() && (v as usize) < self.len(),
            "edge endpoint out of range"
        );
        if u == v || self.has_edge(u, v) {
            return false;
        }
        if self.sorted {
            // Appending keeps a list ascending only when the new neighbor
            // exceeds its current maximum; otherwise fall back to scans.
            self.sorted = self.adj[u as usize].last().is_none_or(|&l| l < v)
                && self.adj[v as usize].last().is_none_or(|&l| l < u);
        }
        self.adj[u as usize].push(v);
        self.adj[v as usize].push(u);
        self.edges += 1;
        true
    }

    /// `true` if the edge `{u, v}` exists: `O(log min-degree)` binary
    /// search while the adjacency is sorted (see
    /// [`adjacency_is_sorted`](Graph::adjacency_is_sorted)), otherwise a
    /// linear scan of the shorter endpoint's list.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        let (a, b) = if self.adj[u as usize].len() <= self.adj[v as usize].len() {
            (u, v)
        } else {
            (v, u)
        };
        let list = &self.adj[a as usize];
        if self.sorted {
            list.binary_search(&b).is_ok()
        } else {
            list.contains(&b)
        }
    }

    /// `true` while every adjacency list is ascending. Holds for empty
    /// graphs and is preserved by [`add_edge`](Graph::add_edge) as long as
    /// each insertion appends past the list maximum (e.g. edges arriving
    /// in lexicographic order); one out-of-order insertion downgrades
    /// [`has_edge`](Graph::has_edge) to linear scans until
    /// [`sort_adjacency`](Graph::sort_adjacency) restores the invariant.
    pub fn adjacency_is_sorted(&self) -> bool {
        self.sorted
    }

    /// Sorts every adjacency list ascending, re-enabling binary-search
    /// [`has_edge`](Graph::has_edge). `O(E log d̄)`; a no-op when the
    /// lists are already sorted.
    pub fn sort_adjacency(&mut self) {
        if self.sorted {
            return;
        }
        for list in &mut self.adj {
            list.sort_unstable();
        }
        self.sorted = true;
    }

    /// Weight of node `v`.
    pub fn weight(&self, v: NodeId) -> f64 {
        self.weights[v as usize]
    }

    /// Sets the weight of node `v`.
    pub fn set_weight(&mut self, v: NodeId, w: f64) {
        self.weights[v as usize] = w;
    }

    /// All node weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Neighbors of `v`.
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.adj[v as usize]
    }

    /// Degree of `v`.
    pub fn degree(&self, v: NodeId) -> usize {
        self.adj[v as usize].len()
    }

    /// Sum of all node weights.
    pub fn total_weight(&self) -> f64 {
        self.weights.iter().sum()
    }

    /// Sum of weights over `nodes`.
    pub fn set_weight_sum(&self, nodes: &[NodeId]) -> f64 {
        nodes.iter().map(|&v| self.weight(v)).sum()
    }

    /// `true` if `nodes` is an independent set (pairwise non-adjacent,
    /// no duplicates).
    pub fn is_independent_set(&self, nodes: &[NodeId]) -> bool {
        let mut mark = vec![false; self.len()];
        for &v in nodes {
            if (v as usize) >= self.len() || mark[v as usize] {
                return false;
            }
            mark[v as usize] = true;
        }
        for &v in nodes {
            if self.adj[v as usize].iter().any(|&u| mark[u as usize]) {
                return false;
            }
        }
        true
    }
}

/// Bulk constructor for [`Graph`]: edges are scattered straight into the
/// adjacency lists without any duplicate checking, and one deduplication
/// pass runs at [`finalize`](GraphBuilder::finalize).
///
/// [`Graph::add_edge`] deduplicates on every insert with a linear scan of
/// the shorter endpoint list, which is `O(E · d̄)` over a bulk load of
/// `E` edges at mean degree `d̄`. The builder's
/// [`add_edge`](GraphBuilder::add_edge) is two `O(1)`-amortized pushes —
/// it bucket-sorts the edge stream by endpoint as it arrives — and
/// `finalize` deduplicates every list in a single stamped sweep, `O(E +
/// n)` total. Use the builder when edges arrive as a stream during
/// construction — the conflict-graph build of §3.1.2 — and
/// `Graph::add_edge` to mutate a graph that already exists.
///
/// `finalize` preserves **first-occurrence insertion order** within each
/// adjacency list: the resulting graph is indistinguishable, neighbor
/// order included, from one built by feeding the same edge sequence to
/// `Graph::add_edge`. Order-sensitive consumers (`gwmin2`'s float
/// accumulation, `local_search`'s first-improving scan) therefore see
/// identical graphs on either path.
///
/// # Examples
///
/// ```
/// use spindown_graph::graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1);
/// b.add_edge(1, 2);
/// b.add_edge(1, 0); // duplicate: dropped at finalize
/// b.add_edge(2, 2); // self-loop: ignored
/// let g = b.finalize();
/// assert_eq!(g.edge_count(), 2);
/// assert_eq!(g.neighbors(1), &[0, 2]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    weights: Vec<f64>,
    adj: Vec<Vec<NodeId>>,
    recorded: usize,
}

impl GraphBuilder {
    /// Creates a builder with `n` isolated nodes of weight 1.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            weights: vec![1.0; n],
            adj: vec![Vec::new(); n],
            recorded: 0,
        }
    }

    /// Creates a builder from explicit node weights.
    pub fn with_weights(weights: Vec<f64>) -> Self {
        let n = weights.len();
        GraphBuilder {
            weights,
            adj: vec![Vec::new(); n],
            recorded: 0,
        }
    }

    /// Number of nodes so far.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// `true` if no nodes have been added.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Appends a new node with the given weight, returning its id.
    pub fn add_node(&mut self, weight: f64) -> NodeId {
        self.weights.push(weight);
        self.adj.push(Vec::new());
        (self.weights.len() - 1) as NodeId
    }

    /// Pre-allocates each node's adjacency list for the given number of
    /// incident edge records (indices past `hints.len()` keep their
    /// current capacity). A caller that can bound degrees up front — the
    /// conflict-graph build knows every node's bucket sizes before
    /// emitting a single edge — skips all doubling reallocations and
    /// their copy traffic during [`add_edge`](GraphBuilder::add_edge).
    /// Hints are advisory: under-estimates just fall back to amortized
    /// growth.
    pub fn reserve_degrees(&mut self, hints: &[usize]) {
        for (list, &hint) in self.adj.iter_mut().zip(hints) {
            list.reserve(hint);
        }
    }

    /// Records the undirected edge `{u, v}`. Self-loops are ignored;
    /// duplicates are accepted here and collapsed by
    /// [`finalize`](GraphBuilder::finalize). Two `O(1)`-amortized pushes,
    /// no scan.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        assert!(
            (u as usize) < self.len() && (v as usize) < self.len(),
            "edge endpoint out of range"
        );
        if u == v {
            return;
        }
        self.adj[u as usize].push(v);
        self.adj[v as usize].push(u);
        self.recorded += 1;
    }

    /// Number of edge records accumulated (duplicates still counted).
    pub fn pending_edges(&self) -> usize {
        self.recorded
    }

    /// Merges shard-local edge buckets produced by a parallel
    /// enumeration, in **stable shard-index order**: shard `s`'s records
    /// land before shard `s + 1`'s, and within a shard in emission
    /// order — exactly the sequence a serial enumerator walking the
    /// shards in order would have fed to
    /// [`add_edge`](GraphBuilder::add_edge). A builder filled this way is
    /// therefore indistinguishable from the serial build, so every
    /// finalize flavor (insertion-order [`finalize`], `O(n)`
    /// [`finalize_unique`], sorted [`finalize_csr`]) yields a
    /// bit-identical graph for any shard count.
    ///
    /// Before inserting, one counting pass over the shards sizes every
    /// adjacency list ([`reserve_degrees`](GraphBuilder::reserve_degrees)
    /// with exact per-node record counts), so the merge never pays a
    /// doubling reallocation.
    ///
    /// [`finalize`]: GraphBuilder::finalize
    /// [`finalize_unique`]: GraphBuilder::finalize_unique
    /// [`finalize_csr`]: GraphBuilder::finalize_csr
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is out of range.
    pub fn merge_edge_shards(&mut self, shards: &[Vec<(NodeId, NodeId)>]) {
        let mut degree = vec![0usize; self.len()];
        for shard in shards {
            for &(u, v) in shard {
                assert!(
                    (u as usize) < self.len() && (v as usize) < self.len(),
                    "edge endpoint out of range"
                );
                if u != v {
                    degree[u as usize] += 1;
                    degree[v as usize] += 1;
                }
            }
        }
        self.reserve_degrees(&degree);
        drop(degree);
        for shard in shards {
            for &(u, v) in shard {
                self.add_edge(u, v);
            }
        }
    }

    /// Deduplicates every adjacency list in one sweep and returns the
    /// finished graph. `O(E + n)`: `stamp[v]` records the last node whose
    /// list saw `v`, so a repeat within one list is detected in `O(1)`
    /// with no clearing between nodes. A duplicate edge record put one
    /// extra entry in *both* endpoint lists, and both are dropped here,
    /// keeping the lists symmetric.
    pub fn finalize(self) -> Graph {
        let n = self.weights.len();
        let mut adj = self.adj;
        let mut stamp: Vec<u32> = vec![u32::MAX; n];
        let mut half_edges = 0usize;
        let mut sorted = true;
        for (u, list) in adj.iter_mut().enumerate() {
            list.retain(|&v| {
                if stamp[v as usize] == u as u32 {
                    false
                } else {
                    stamp[v as usize] = u as u32;
                    true
                }
            });
            half_edges += list.len();
            sorted &= list.windows(2).all(|w| w[0] < w[1]);
        }
        Graph {
            weights: self.weights,
            adj,
            edges: half_edges / 2,
            sorted,
        }
    }

    /// Like [`finalize`](GraphBuilder::finalize), but for callers that
    /// guarantee **no duplicate edges were recorded**: skips the
    /// deduplication sweep entirely, making finalization a pure `O(n)`
    /// edge count. The conflict-graph build qualifies — it emits every
    /// conflict pair exactly once by construction.
    ///
    /// Debug builds verify the guarantee and panic on a duplicate;
    /// release builds trust the caller, and a violated guarantee yields a
    /// graph with duplicate adjacency entries and an inflated edge count.
    pub fn finalize_unique(self) -> Graph {
        #[cfg(debug_assertions)]
        {
            let n = self.weights.len();
            let mut stamp: Vec<u32> = vec![u32::MAX; n];
            for (u, list) in self.adj.iter().enumerate() {
                for &v in list {
                    assert_ne!(
                        stamp[v as usize], u as u32,
                        "finalize_unique: duplicate edge ({u}, {v})"
                    );
                    stamp[v as usize] = u as u32;
                }
            }
        }
        let half_edges: usize = self.adj.iter().map(Vec::len).sum();
        // Insertion order is preserved verbatim, so sortedness is unknown
        // without an extra sweep — stay conservative and keep the claimed
        // O(n) finalization; callers wanting binary-search `has_edge` run
        // `sort_adjacency` or build a CSR graph instead.
        Graph {
            weights: self.weights,
            adj: self.adj,
            edges: half_edges / 2,
            sorted: false,
        }
    }

    /// Finalizes straight into the immutable CSR layout
    /// ([`CsrGraph`](crate::csr::CsrGraph)): each accumulated bucket list
    /// is sorted and deduplicated in place and appended to the flat
    /// offset/neighbor arrays — no intermediate [`Graph`] and no second
    /// copy of the adjacency. `O(E log d̄)` for the per-node sorts.
    ///
    /// This is the intended endpoint for build-once-solve-many graphs
    /// like the §3.1.2 conflict graph; use
    /// [`finalize`](GraphBuilder::finalize) when the result must stay
    /// mutable or must preserve first-occurrence neighbor order.
    pub fn finalize_csr(self) -> crate::csr::CsrGraph {
        crate::csr::CsrGraph::from_lists(self.weights, self.adj)
    }
}

impl GraphView for Graph {
    fn len(&self) -> usize {
        Graph::len(self)
    }

    fn weight(&self, v: NodeId) -> f64 {
        Graph::weight(self, v)
    }

    fn neighbors(&self, v: NodeId) -> &[NodeId] {
        Graph::neighbors(self, v)
    }

    fn degree(&self, v: NodeId) -> usize {
        Graph::degree(self, v)
    }

    fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        Graph::has_edge(self, u, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let mut g = Graph::new(4);
        assert_eq!(g.len(), 4);
        assert!(!g.is_empty());
        assert!(g.add_edge(0, 1));
        assert!(g.add_edge(1, 2));
        assert!(!g.add_edge(1, 0), "duplicate edge must be ignored");
        assert!(!g.add_edge(2, 2), "self-loop must be ignored");
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.degree(3), 0);
        assert!(g.has_edge(2, 1));
        assert!(!g.has_edge(0, 3));
    }

    #[test]
    fn weights() {
        let mut g = Graph::with_weights(vec![1.0, 2.0, 3.0]);
        assert_eq!(g.total_weight(), 6.0);
        g.set_weight(0, 10.0);
        assert_eq!(g.weight(0), 10.0);
        assert_eq!(g.set_weight_sum(&[0, 2]), 13.0);
    }

    #[test]
    fn add_node_extends() {
        let mut g = Graph::new(1);
        let v = g.add_node(7.0);
        assert_eq!(v, 1);
        assert_eq!(g.len(), 2);
        assert_eq!(g.weight(v), 7.0);
        g.add_edge(0, v);
        assert!(g.has_edge(0, 1));
    }

    #[test]
    fn independent_set_checks() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1);
        g.add_edge(2, 3);
        assert!(g.is_independent_set(&[]));
        assert!(g.is_independent_set(&[0, 2]));
        assert!(g.is_independent_set(&[1, 3]));
        assert!(!g.is_independent_set(&[0, 1]));
        assert!(!g.is_independent_set(&[0, 0]), "duplicates rejected");
        assert!(!g.is_independent_set(&[9]), "out of range rejected");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn edge_bounds_checked() {
        let mut g = Graph::new(2);
        g.add_edge(0, 5);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::new(0);
        assert!(g.is_empty());
        assert_eq!(g.total_weight(), 0.0);
        assert!(g.is_independent_set(&[]));
    }

    #[test]
    fn builder_matches_incremental() {
        let edges = [(0, 1), (1, 2), (1, 0), (3, 1), (2, 2), (0, 3), (3, 0)];
        let mut g = Graph::with_weights(vec![1.0, 2.0, 3.0, 4.0]);
        let mut b = GraphBuilder::with_weights(vec![1.0, 2.0, 3.0, 4.0]);
        for &(u, v) in &edges {
            g.add_edge(u, v);
            b.add_edge(u, v);
        }
        assert_eq!(b.pending_edges(), 6, "self-loop dropped at insert");
        let built = b.finalize();
        assert_eq!(built.edge_count(), g.edge_count());
        for v in 0..4 {
            assert_eq!(built.neighbors(v), g.neighbors(v), "node {v}");
            assert_eq!(built.weight(v), g.weight(v));
        }
    }

    #[test]
    fn finalize_unique_matches_finalize_on_unique_input() {
        let edges = [(0, 1), (1, 2), (0, 3), (3, 1)];
        let mut a = GraphBuilder::with_weights(vec![1.0; 4]);
        let mut b = GraphBuilder::with_weights(vec![1.0; 4]);
        a.reserve_degrees(&[3, 3, 1, 2]);
        for &(u, v) in &edges {
            a.add_edge(u, v);
            b.add_edge(u, v);
        }
        let fast = a.finalize_unique();
        let safe = b.finalize();
        assert_eq!(fast.edge_count(), safe.edge_count());
        for v in 0..4 {
            assert_eq!(fast.neighbors(v), safe.neighbors(v), "node {v}");
        }
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "duplicate edge")]
    fn finalize_unique_catches_duplicates_in_debug() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        b.add_edge(1, 0);
        let _ = b.finalize_unique();
    }

    #[test]
    fn merge_edge_shards_matches_serial_feed() {
        // The same edge sequence, split across shard buckets at an
        // arbitrary boundary, must reproduce the serial builder exactly
        // on every finalize flavor.
        let edges = [(0u32, 1u32), (2, 3), (1, 2), (0, 3), (3, 1), (2, 0)];
        let weights = vec![1.0, 2.0, 3.0, 4.0];
        let mut serial = GraphBuilder::with_weights(weights.clone());
        for &(u, v) in &edges {
            serial.add_edge(u, v);
        }
        for split in 0..=edges.len() {
            let shards = vec![edges[..split].to_vec(), edges[split..].to_vec()];
            let mut merged = GraphBuilder::with_weights(weights.clone());
            merged.merge_edge_shards(&shards);
            assert_eq!(merged.pending_edges(), serial.pending_edges());
            let (a, b) = (merged.finalize(), serial.clone().finalize());
            assert_eq!(a.edge_count(), b.edge_count(), "split {split}");
            for v in 0..4 {
                assert_eq!(a.neighbors(v), b.neighbors(v), "split {split} node {v}");
            }
            // CSR flavor too (sorted adjacency).
            let mut merged = GraphBuilder::with_weights(weights.clone());
            merged.merge_edge_shards(&shards);
            assert_eq!(merged.finalize_csr(), serial.clone().finalize_csr());
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn merge_edge_shards_bounds_checked() {
        let mut b = GraphBuilder::new(2);
        b.merge_edge_shards(&[vec![(0, 7)]]);
    }

    #[test]
    fn builder_add_node_and_empty() {
        let mut b = GraphBuilder::new(0);
        assert!(b.is_empty());
        let u = b.add_node(5.0);
        let v = b.add_node(7.0);
        b.add_edge(v, u); // reversed orientation still lands as {u, v}
        let g = b.finalize();
        assert_eq!(g.len(), 2);
        assert!(g.has_edge(u, v));
        assert_eq!(g.weight(v), 7.0);
        assert!(GraphBuilder::new(0).finalize().is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn builder_bounds_checked() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 5);
    }

    #[test]
    fn sorted_flag_tracks_insertion_order() {
        let mut g = Graph::new(4);
        assert!(g.adjacency_is_sorted(), "empty lists are sorted");
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        assert!(g.adjacency_is_sorted(), "ascending appends keep the flag");
        assert!(g.has_edge(1, 2) && !g.has_edge(0, 3));
        // Out-of-order append: adj[2] becomes [1, 3, 0].
        g.add_edge(2, 0);
        assert!(!g.adjacency_is_sorted());
        assert!(g.has_edge(2, 0), "linear fallback still answers correctly");
        assert!(!g.has_edge(1, 3));
        g.sort_adjacency();
        assert!(g.adjacency_is_sorted());
        assert_eq!(g.neighbors(2), &[0, 1, 3]);
        assert!(g.has_edge(2, 0) && g.has_edge(0, 2) && !g.has_edge(1, 3));
    }

    #[test]
    fn finalize_detects_sortedness() {
        let mut ordered = GraphBuilder::new(4);
        for (u, v) in [(0, 1), (0, 2), (1, 2), (2, 3)] {
            ordered.add_edge(u, v);
        }
        let g = ordered.finalize();
        assert!(g.adjacency_is_sorted(), "lexicographic emission sorts every list");
        assert!(g.has_edge(1, 2) && !g.has_edge(0, 3));

        let mut unordered = GraphBuilder::new(3);
        unordered.add_edge(1, 2);
        unordered.add_edge(0, 2); // adj[2] = [1, 0]
        let g = unordered.finalize();
        assert!(!g.adjacency_is_sorted());
        assert!(g.has_edge(0, 2) && !g.has_edge(0, 1));
    }

    #[test]
    fn graph_view_defaults_agree_with_inherent_methods() {
        fn probe<G: GraphView>(g: &G) -> (usize, usize, f64, bool) {
            (
                g.len(),
                g.degree(1),
                g.set_weight_sum(&[0, 2]),
                g.is_independent_set(&[0, 2]),
            )
        }
        let mut g = Graph::with_weights(vec![1.0, 2.0, 4.0]);
        g.add_edge(0, 1);
        assert_eq!(probe(&g), (3, 1, 5.0, true));
        assert!(!GraphView::is_independent_set(&g, &[0, 1]));
        assert!(!GraphView::is_empty(&g));
    }
}
