//! Integration tests pinning every number the paper's worked examples
//! quote (Figs. 2–5) through the public facade API.

use spindown::core::offline::{brute_force_optimal, evaluate_offline};
use spindown::core::paper_example as paper;
use spindown::core::sched::{LocationProvider, MwisPlanner, MwisSolver};
use spindown::prelude::*;

fn energy(requests: &[Request], schedule: &Assignment) -> f64 {
    evaluate_offline(requests, schedule, 4, &paper::params(), None, None).energy_j
}

#[test]
fn fig2_batch_energies() {
    let batch = paper::batch_requests();
    assert_eq!(energy(&batch, &paper::schedule_a()), 15.0);
    assert_eq!(energy(&batch, &paper::schedule_b()), 10.0);
    let m = evaluate_offline(
        &batch,
        &paper::schedule_b(),
        4,
        &paper::params(),
        None,
        None,
    );
    assert_eq!(m.always_on_j, 20.0);
}

#[test]
fn fig2_schedule_b_is_batch_optimal() {
    let batch = paper::batch_requests();
    let (_, optimal) =
        brute_force_optimal(&batch, &paper::placement(), &paper::params(), 1_000_000)
            .expect("small instance");
    assert_eq!(optimal, 10.0, "schedule B is optimal for the batch case");
}

#[test]
fn fig3_offline_energies() {
    let offline = paper::offline_requests();
    assert_eq!(energy(&offline, &paper::schedule_b()), 23.0);
    assert_eq!(energy(&offline, &paper::schedule_c()), 19.0);
    let m = evaluate_offline(
        &offline,
        &paper::schedule_c(),
        4,
        &paper::params(),
        None,
        None,
    );
    assert_eq!(m.always_on_j, 72.0);
}

#[test]
fn fig3_schedule_c_is_offline_optimal() {
    let offline = paper::offline_requests();
    let (_, optimal) =
        brute_force_optimal(&offline, &paper::placement(), &paper::params(), 1_000_000)
            .expect("small instance");
    assert_eq!(optimal, 19.0, "schedule C is optimal for the offline case");
}

#[test]
fn fig4_mwis_pipeline_recovers_the_optimum() {
    let offline = paper::offline_requests();
    let placement = paper::placement();
    for solver in [
        MwisSolver::GwMin,
        MwisSolver::GwMin2,
        MwisSolver::GwMinLocalSearch,
        MwisSolver::Exact { node_limit: 64 },
    ] {
        let planner = MwisPlanner {
            params: paper::params(),
            solver,
            max_successors: 8,
        };
        let (assignment, claimed) = planner.plan(&offline, &placement);
        assert_eq!(claimed, 11.0, "{solver:?}: Fig. 4's saving is 4+3+4");
        assert_eq!(
            energy(&offline, &assignment),
            19.0,
            "{solver:?} must recover schedule C's energy"
        );
        for (r, req) in offline.iter().enumerate() {
            assert!(placement
                .locations(req.data)
                .contains(&assignment.disk_of(r)));
        }
    }
}

#[test]
fn fig5_power_configuration() {
    let p = PowerParams::barracuda();
    // Standby draws about a tenth of idle power (paper §1).
    assert!(p.standby_w < p.idle_w / 9.0);
    // TB = E_up/down / P_I.
    assert!((p.breakeven_secs() - (p.spinup_j + p.spindown_j) / p.idle_w).abs() < 1e-9);
    // Spin-up penalties land in the 5–15 s band the paper quotes.
    assert!((5.0..=15.0).contains(&p.spinup_s));
}

#[test]
fn optimal_schedule_depends_on_the_power_model() {
    // Under the toy model (free transitions) schedule C beats B; under
    // the real Barracuda model (E_up = 135 J) waking a third disk is
    // expensive, so the two-disk schedule B wins — and the exact MWIS
    // planner adapts, matching the brute-force optimum either way.
    let offline = paper::offline_requests();
    let params = PowerParams::barracuda().with_breakeven(5.0);
    let eval = |a: &Assignment| evaluate_offline(&offline, a, 4, &params, None, None).energy_j;
    assert!(
        eval(&paper::schedule_b()) < eval(&paper::schedule_c()),
        "with costly spin-ups, fewer disks wins"
    );
    let planner = MwisPlanner {
        params: params.clone(),
        solver: MwisSolver::Exact { node_limit: 256 },
        max_successors: 16,
    };
    let (assignment, _) = planner.plan(&offline, &paper::placement());
    let (_, optimal) =
        brute_force_optimal(&offline, &paper::placement(), &params, 1_000_000).expect("small");
    assert!(
        (eval(&assignment) - optimal).abs() < 1e-9,
        "planner {} vs optimal {}",
        eval(&assignment),
        optimal
    );
}
