//! Experiment orchestration: turn a trace + placement + scheduler choice
//! into one [`RunMetrics`] row, the unit every figure in the paper's
//! evaluation is built from.

use std::collections::HashSet;

use spindown_disk::mechanics::Mechanics;
use spindown_sim::rng::SimRng;
use spindown_sim::time::{SimDuration, SimTime};
use spindown_trace::record::{OpKind, Trace, TraceRecord};

use crate::cost::CostFunction;
use crate::metrics::RunMetrics;
use crate::model::{DataId, Request};
use crate::offline::evaluate_offline_with_jobs;
use crate::placement::{PlacementConfig, PlacementMap};
use crate::sched::{
    HeuristicScheduler, LoadAwareScheduler, MwisPlanner, MwisSolver, RandomScheduler, Scheduler,
    StaticScheduler, WscScheduler,
};
use crate::system::{run_system_with_jobs, PolicyKind, SourceError, SystemConfig};

/// Which scheduling algorithm an experiment runs (paper §4.3).
#[derive(Debug, Clone, PartialEq)]
pub enum SchedulerKind {
    /// Uniform over replica locations.
    Random,
    /// Always the original location.
    Static,
    /// Online Eq. 6 cost minimization.
    Heuristic(CostFunction),
    /// Join-the-shortest-queue latency baseline (extension, not in the
    /// paper).
    LoadAware,
    /// Batch weighted set cover.
    Wsc {
        /// Disk-weight cost function (the paper reuses the heuristic's).
        cost: CostFunction,
        /// Batching interval (0.1 s in the paper).
        interval: SimDuration,
    },
    /// Offline MWIS (evaluated analytically under the offline model).
    Mwis {
        /// Step 3 solver.
        solver: MwisSolver,
        /// Successor fan-out kept during graph construction.
        max_successors: usize,
    },
}

impl SchedulerKind {
    /// The paper's five schedulers with their published configurations.
    pub fn paper_set() -> Vec<SchedulerKind> {
        vec![
            SchedulerKind::Random,
            SchedulerKind::Static,
            SchedulerKind::Heuristic(CostFunction::default()),
            SchedulerKind::Wsc {
                cost: CostFunction::default(),
                interval: SimDuration::from_millis(100),
            },
            SchedulerKind::Mwis {
                solver: MwisSolver::GwMin,
                max_successors: 3,
            },
        ]
    }

    /// Short display name matching the paper's legends.
    pub fn label(&self) -> &'static str {
        match self {
            SchedulerKind::Random => "random",
            SchedulerKind::Static => "static",
            SchedulerKind::Heuristic(_) => "heuristic",
            SchedulerKind::LoadAware => "load-aware",
            SchedulerKind::Wsc { .. } => "wsc",
            SchedulerKind::Mwis { .. } => "mwis",
        }
    }
}

/// One experiment: trace × placement × scheduler × power manager.
#[derive(Debug, Clone)]
pub struct ExperimentSpec {
    /// Placement parameters (disks, replication factor, Zipf z).
    pub placement: PlacementConfig,
    /// The scheduler under test.
    pub scheduler: SchedulerKind,
    /// System parameters (power model, geometry, policy).
    pub system: SystemConfig,
    /// Seed for placement and scheduler randomness.
    pub seed: u64,
}

impl ExperimentSpec {
    /// The paper's default rig: 180 Cheetah-class disks under 2CPM,
    /// replication 3, Zipf z = 1 placement.
    pub fn paper_defaults(scheduler: SchedulerKind) -> Self {
        ExperimentSpec {
            placement: PlacementConfig::default(),
            scheduler,
            system: SystemConfig::default(),
            seed: 42,
        }
    }
}

/// Converts a trace into the scheduler's request stream: reads only
/// (write off-loading, §2.1), rebased to t = 0, data ids densified, and
/// indexed in stream order.
pub fn requests_from_trace(trace: &Trace) -> Vec<Request> {
    let trace = trace.reads_only().rebased().densified();
    trace
        .records()
        .iter()
        .enumerate()
        .map(|(i, r)| Request {
            index: i as u32,
            at: r.at,
            data: r.data,
            size: r.size,
        })
        .collect()
}

/// Number of distinct data items in a request stream (dense id space).
pub fn data_space(requests: &[Request]) -> usize {
    requests
        .iter()
        .map(|r| r.data.0 as usize + 1)
        .max()
        .unwrap_or(0)
}

/// Pass-one summary of a trace stream: the compact state (O(distinct
/// data), never O(records)) that [`StreamScan::requests`] needs to turn
/// a second pass over the same records into the scheduler's request
/// stream without materializing a [`Trace`].
///
/// The two-pass pair is the streaming equivalent of
/// [`requests_from_trace`]: reads only, rebased to the first read,
/// densified over read ids — differential tests pin the outputs
/// identical.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamScan {
    /// Sorted distinct data ids of the read records; a dense id is the
    /// rank in this table (matching [`Trace::densified`]'s ascending
    /// remap).
    ids: Vec<u64>,
    /// Number of read records seen.
    reads: usize,
    /// Timestamp of the first read record — the rebase anchor.
    anchor: SimTime,
    /// Timestamp of the last read record.
    end: SimTime,
}

impl StreamScan {
    /// Number of read records the scan saw (= requests pass two yields).
    pub fn reads(&self) -> usize {
        self.reads
    }

    /// Size of the dense data-id space (distinct read ids).
    pub fn data_space(&self) -> usize {
        self.ids.len()
    }

    /// Rebased span of the read stream, seconds (= the last request's
    /// arrival time after pass two).
    pub fn span_s(&self) -> f64 {
        self.end.saturating_since(self.anchor).as_secs_f64()
    }

    /// Adapts a second pass over the same records into a request source
    /// for [`crate::system::run_system_streamed`]. `stream` must replay
    /// the records of the scanned pass in the same (time-sorted) order —
    /// re-open the file, re-seed the generator.
    pub fn requests<S>(self, stream: S) -> StreamRequests<S> {
        let dense_lut = self.build_lut();
        StreamRequests {
            inner: stream,
            scan: self,
            dense_lut,
            next_index: 0,
        }
    }

    /// Builds a direct-index raw-id → rank table when the raw id space
    /// is compact enough (at most a small constant factor larger than
    /// the distinct-id count). Returns an empty table — meaning "use
    /// binary search" — for sparse id spaces, so memory stays O(distinct
    /// data) in the worst case.
    fn build_lut(&self) -> Vec<u32> {
        const ABSENT: u32 = u32::MAX;
        let Some(&max) = self.ids.last() else {
            return Vec::new();
        };
        if self.ids.len() >= ABSENT as usize || max >= (self.ids.len() * 4 + 1024) as u64 {
            return Vec::new();
        }
        let mut lut = vec![ABSENT; max as usize + 1];
        for (rank, &id) in self.ids.iter().enumerate() {
            lut[id as usize] = rank as u32;
        }
        lut
    }
}

/// First pass: folds a record stream down to its [`StreamScan`] summary.
/// Fails with the stream's first error.
pub fn scan_stream<E>(
    stream: impl Iterator<Item = Result<TraceRecord, E>>,
) -> Result<StreamScan, E> {
    let mut ids: HashSet<u64> = HashSet::new();
    let mut reads = 0usize;
    let mut anchor: Option<SimTime> = None;
    let mut end = SimTime::ZERO;
    for record in stream {
        let r = record?;
        if r.op != OpKind::Read {
            continue;
        }
        reads += 1;
        anchor.get_or_insert(r.at);
        end = end.max(r.at);
        ids.insert(r.data.0);
    }
    let mut ids: Vec<u64> = ids.into_iter().collect();
    ids.sort_unstable();
    Ok(StreamScan {
        ids,
        reads,
        anchor: anchor.unwrap_or(SimTime::ZERO),
        end,
    })
}

/// Second pass: lazily maps trace records to [`Request`]s (reads only,
/// rebased, dense ids, stream-order indices) using a prior
/// [`StreamScan`]. Yields [`SourceError`]s for upstream failures or
/// records whose data id the scan never saw (a divergent replay).
#[derive(Debug)]
pub struct StreamRequests<S> {
    inner: S,
    scan: StreamScan,
    /// Raw id → dense rank, `u32::MAX` = absent; empty when the id
    /// space is too sparse (then `scan.ids` is binary-searched instead).
    dense_lut: Vec<u32>,
    next_index: u32,
}

impl<S, E> Iterator for StreamRequests<S>
where
    S: Iterator<Item = Result<TraceRecord, E>>,
    E: std::fmt::Display,
{
    type Item = Result<Request, SourceError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let r = match self.inner.next()? {
                Ok(r) => r,
                Err(e) => return Some(Err(SourceError::new(e.to_string()))),
            };
            if r.op != OpKind::Read {
                continue;
            }
            let rank = if self.dense_lut.is_empty() {
                self.scan.ids.binary_search(&r.data.0).ok()
            } else {
                self.dense_lut
                    .get(r.data.0 as usize)
                    .copied()
                    .filter(|&rank| rank != u32::MAX)
                    .map(|rank| rank as usize)
            };
            let dense = match rank {
                Some(rank) => rank as u64,
                None => {
                    return Some(Err(SourceError::new(format!(
                        "data id {} absent from the scan pass (replay diverged)",
                        r.data.0
                    ))))
                }
            };
            let index = self.next_index;
            self.next_index += 1;
            return Some(Ok(Request {
                index,
                at: SimTime::ZERO + r.at.saturating_since(self.scan.anchor),
                data: DataId(dense),
                size: r.size,
            }));
        }
    }
}

/// Builds the event-loop scheduler for `kind`, or `None` for the
/// offline MWIS plan (which never runs through the simulator — use
/// [`run_experiment`] or [`crate::offline::evaluate_offline`] instead).
pub fn build_scheduler(kind: &SchedulerKind, seed: u64) -> Option<Box<dyn Scheduler>> {
    match kind {
        SchedulerKind::Random => Some(Box::new(RandomScheduler::new(seed))),
        SchedulerKind::Static => Some(Box::new(StaticScheduler)),
        SchedulerKind::Heuristic(cost) => Some(Box::new(HeuristicScheduler::new(*cost))),
        SchedulerKind::LoadAware => Some(Box::new(LoadAwareScheduler)),
        SchedulerKind::Wsc { cost, interval } => Some(Box::new(WscScheduler::new(*cost, *interval))),
        SchedulerKind::Mwis { .. } => None,
    }
}

/// Runs one experiment end to end.
///
/// Online and batch schedulers run through the event-driven simulator;
/// the MWIS scheduler is planned over the full stream and evaluated with
/// the analytic offline model (advance spin-up, no spin-up delays), as in
/// the paper (§4.3: "configured to an offline model with no disk spin-up
/// delay").
pub fn run_experiment(requests: &[Request], spec: &ExperimentSpec) -> RunMetrics {
    run_experiment_with_jobs(requests, spec, 1)
}

/// [`run_experiment`] with intra-run parallelism: the MWIS conflict-graph
/// build ([`MwisPlanner::plan_with_jobs`]) and the per-disk offline
/// evaluation ([`evaluate_offline_with_jobs`]) fan out across `jobs`
/// workers; event-loop schedulers replay island-parallel via
/// [`run_system_with_jobs`]. All substrates are bit-identical to serial
/// for any thread count, so the returned metrics do not depend on
/// `jobs`.
///
/// [`evaluate_offline_with_jobs`]: crate::offline::evaluate_offline_with_jobs
pub fn run_experiment_with_jobs(
    requests: &[Request],
    spec: &ExperimentSpec,
    jobs: usize,
) -> RunMetrics {
    let placement = PlacementMap::build(data_space(requests), &spec.placement, spec.seed);
    match &spec.scheduler {
        SchedulerKind::Mwis {
            solver,
            max_successors,
        } => {
            let planner = MwisPlanner {
                params: spec.system.power.clone(),
                solver: *solver,
                max_successors: *max_successors,
            };
            let (assignment, _) = planner.plan_with_jobs(requests, &placement, jobs);
            let mechanics = Mechanics::new(
                spec.system.geometry.clone(),
                SimRng::seed_from_u64(spec.seed),
            );
            evaluate_offline_with_jobs(
                requests,
                &assignment,
                spec.placement.disks,
                &spec.system.power,
                None,
                Some(&mechanics),
                jobs,
            )
        }
        online_or_batch => {
            let config = SystemConfig {
                disks: spec.placement.disks,
                seed: spec.seed,
                ..spec.system.clone()
            };
            run_system_with_jobs(
                requests,
                &placement,
                &|| {
                    build_scheduler(online_or_batch, spec.seed)
                        .expect("non-MWIS kinds build an event-loop scheduler")
                },
                &config,
                jobs,
            )
        }
    }
}

/// Convenience: run the always-on baseline (Static scheduler, always-on
/// power) — the paper's normalization reference configuration.
pub fn run_always_on_baseline(requests: &[Request], spec: &ExperimentSpec) -> RunMetrics {
    let mut spec = spec.clone();
    spec.scheduler = SchedulerKind::Static;
    spec.system.policy = PolicyKind::AlwaysOn;
    run_experiment(requests, &spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spindown_trace::synth::{CelloLike, TraceGenerator};

    fn small_trace() -> Vec<Request> {
        let trace = CelloLike {
            requests: 1_500,
            data_items: 600,
            ..CelloLike::default()
        }
        .generate(7);
        requests_from_trace(&trace)
    }

    fn small_spec(scheduler: SchedulerKind, replication: u32) -> ExperimentSpec {
        ExperimentSpec {
            placement: PlacementConfig {
                disks: 24,
                replication,
                zipf_z: 1.0,
            },
            scheduler,
            system: SystemConfig {
                disks: 24,
                ..SystemConfig::default()
            },
            seed: 11,
        }
    }

    #[test]
    fn requests_from_trace_is_dense_sorted_indexed() {
        let reqs = small_trace();
        assert_eq!(reqs.len(), 1_500);
        assert!(reqs.windows(2).all(|w| w[0].at <= w[1].at));
        for (i, r) in reqs.iter().enumerate() {
            assert_eq!(r.index as usize, i);
        }
        assert!(data_space(&reqs) <= 600);
    }

    #[test]
    fn all_paper_schedulers_run() {
        let reqs = small_trace();
        for kind in SchedulerKind::paper_set() {
            let label = kind.label();
            let m = run_experiment(&reqs, &small_spec(kind, 3));
            assert_eq!(m.requests, 1_500, "{label}");
            assert!(m.energy_j > 0.0, "{label}");
            assert!(
                m.normalized_energy() < 1.05,
                "{label}: {}",
                m.normalized_energy()
            );
        }
    }

    #[test]
    fn energy_aware_beats_baselines_at_rf3() {
        // A sparse workload (trace span >> breakeven time) so spin-down
        // dynamics dominate, with energy-focused cost functions — the
        // regime where the paper's energy ordering is unambiguous.
        use spindown_trace::synth::arrivals::OnOffProcess;
        let trace = CelloLike {
            requests: 4_000,
            data_items: 800,
            arrivals: OnOffProcess {
                sources: 8,
                on_shape: 1.5,
                on_scale_s: 2.0,
                off_shape: 1.3,
                off_scale_s: 30.0,
                burst_rate: 10.0,
            },
            ..CelloLike::default()
        }
        .generate(3);
        let reqs = requests_from_trace(&trace);
        let run = |k| run_experiment(&reqs, &small_spec(k, 3)).normalized_energy();
        let random = run(SchedulerKind::Random);
        let static_ = run(SchedulerKind::Static);
        let heuristic = run(SchedulerKind::Heuristic(CostFunction::energy_only()));
        let wsc = run(SchedulerKind::Wsc {
            cost: CostFunction::energy_only(),
            interval: SimDuration::from_millis(100),
        });
        let mwis = run(SchedulerKind::Mwis {
            solver: MwisSolver::GwMin,
            max_successors: 3,
        });
        assert!(
            heuristic < random && heuristic < static_,
            "heuristic {heuristic} vs random {random} / static {static_}"
        );
        assert!(
            wsc <= heuristic + 0.05,
            "wsc {wsc} vs heuristic {heuristic}"
        );
        // Greedy-solved MWIS is not strictly dominant on every workload
        // (the paper's clear win shows up at figure scale); it must at
        // least be competitive with the online schedulers and beat the
        // non-energy-aware baselines.
        assert!(
            mwis < static_ && mwis < random,
            "mwis {mwis} vs static {static_} / random {random}"
        );
        assert!(
            mwis <= heuristic + 0.02,
            "mwis {mwis} vs heuristic {heuristic}"
        );
    }

    #[test]
    fn rf1_makes_all_online_schedulers_identical() {
        let reqs = small_trace();
        let energies: Vec<f64> = [
            SchedulerKind::Random,
            SchedulerKind::Static,
            SchedulerKind::Heuristic(CostFunction::default()),
        ]
        .into_iter()
        .map(|k| run_experiment(&reqs, &small_spec(k, 1)).energy_j)
        .collect();
        assert!(
            (energies[0] - energies[1]).abs() < 1e-6,
            "random {} vs static {}",
            energies[0],
            energies[1]
        );
        assert!((energies[1] - energies[2]).abs() < 1e-6);
    }

    #[test]
    fn always_on_baseline_is_normalized_one() {
        let reqs = small_trace();
        let m = run_always_on_baseline(&reqs, &small_spec(SchedulerKind::Static, 3));
        assert!(
            (m.normalized_energy() - 1.0).abs() < 0.02,
            "normalized {}",
            m.normalized_energy()
        );
    }

    #[test]
    fn experiments_are_deterministic() {
        let reqs = small_trace();
        let spec = small_spec(SchedulerKind::Heuristic(CostFunction::default()), 3);
        let a = run_experiment(&reqs, &spec);
        let b = run_experiment(&reqs, &spec);
        assert_eq!(a.energy_j, b.energy_j);
        assert_eq!(a.spinups, b.spinups);
    }

    #[test]
    fn labels_are_stable() {
        for (k, label) in SchedulerKind::paper_set().into_iter().zip([
            "random",
            "static",
            "heuristic",
            "wsc",
            "mwis",
        ]) {
            assert_eq!(k.label(), label);
        }
    }
}
