//! Zero-dependency micro-benchmark harness.
//!
//! Times the algorithmic substrates — conflict-graph construction (the
//! arena-backed flat-edge path versus the incremental `add_edge`
//! baseline), each MWIS solver (the production tournament-tree engine on
//! CSR, the adjacency-list backend, and the eager-cascade reference
//! engine), and full experiment-grid evaluation — over a
//! configurable warmup + iteration count, reporting median/p10/p90 wall
//! times. The `spindown bench` subcommand renders a [`BenchReport`] to
//! JSON (`BENCH_core.json` at the repo root by default); no external
//! benchmarking crate is involved, so the harness runs in fully offline
//! builds.
//!
//! [`BenchConfig::filter`] restricts a run to benchmarks whose name
//! contains a substring; fixtures are built lazily, so a filtered run
//! pays only for the workloads its benchmarks touch.

use std::hint::black_box;
use std::time::Instant;

use spindown_core::cost::CostFunction;
use spindown_core::experiment::{build_scheduler, data_space, scan_stream, SchedulerKind};
use spindown_core::model::{Assignment, DiskId, Request};
use spindown_core::offline::evaluate_offline_with_jobs;
use spindown_core::placement::{PlacementConfig, PlacementMap};
#[cfg(feature = "bench-alloc")]
use spindown_core::sched::PlanScratch;
use spindown_core::sched::{ExplicitPlacement, MwisPlanner, MwisSolver, WindowedPlanner};
use spindown_core::system::{
    run_system, run_system_streamed, run_system_with_jobs, SystemConfig,
};
use spindown_disk::mechanics::{DiskGeometry, Mechanics};
use spindown_disk::power::PowerParams;
use spindown_graph::mwis as solvers;
use spindown_graph::setcover::SetCoverInstance;
use spindown_sim::rng::SimRng;
use spindown_sim::time::SimTime;
use spindown_trace::spc::{self, SpcStream};
use spindown_trace::synth::TraceGenerator;
use spindown_trace::{ParsePolicy, StreamError};

use crate::grids::{EvalGrid, PolicyGrid};
use crate::workload::{self, Scale};

/// Knobs of one harness run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchConfig {
    /// Untimed iterations before sampling starts.
    pub warmup: usize,
    /// Timed iterations per benchmark (at least 1).
    pub iters: usize,
    /// Worker threads for the grid-evaluation benchmarks.
    pub jobs: usize,
    /// Workload seed shared by every fixture.
    pub seed: u64,
    /// Substring filter: only benchmarks whose name contains this run
    /// (`None` runs everything). Derived ratios are emitted only when
    /// both of their component benchmarks ran.
    pub filter: Option<String>,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            warmup: 1,
            iters: 5,
            jobs: 1,
            seed: 42,
            filter: None,
        }
    }
}

/// Wall-time quantiles of one benchmark, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenchStats {
    /// Median sample.
    pub median_ns: u64,
    /// 10th-percentile sample.
    pub p10_ns: u64,
    /// 90th-percentile sample.
    pub p90_ns: u64,
}

impl BenchStats {
    /// Summarizes raw samples (sorted internally).
    fn from_samples(mut samples: Vec<u64>) -> BenchStats {
        assert!(!samples.is_empty(), "need at least one sample");
        samples.sort_unstable();
        let q = |frac: f64| {
            let idx = ((samples.len() - 1) as f64 * frac).round() as usize;
            samples[idx]
        };
        BenchStats {
            median_ns: q(0.5),
            p10_ns: q(0.1),
            p90_ns: q(0.9),
        }
    }
}

/// One named benchmark result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchEntry {
    /// Benchmark id (stable, snake_case — the JSON key).
    pub name: &'static str,
    /// Measured quantiles.
    pub stats: BenchStats,
}

/// One derived (ratio) result — a median-over-median speedup.
#[derive(Debug, Clone, PartialEq)]
pub struct DerivedEntry {
    /// Derived id (stable, snake_case — the JSON key).
    pub name: &'static str,
    /// The ratio value.
    pub value: f64,
}

/// Execution context of the host the report was produced on, recorded so
/// a reader can judge the `*_parallel_*` numbers: a speedup below 1.0 on
/// an `available_parallelism: 1` host is the expected thread-overhead
/// floor, not a regression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostContext {
    /// `std::thread::available_parallelism()` at run time (1 when the
    /// host does not report one).
    pub available_parallelism: usize,
    /// Worker count every `*_parallel_*` fixture actually ran at — the
    /// requested jobs clamped to the host's parallelism when the config
    /// did not pin one explicitly.
    pub parallel_jobs: usize,
}

impl HostContext {
    /// Captures the current host, with the effective worker count.
    fn capture(parallel_jobs: usize) -> HostContext {
        HostContext {
            available_parallelism: host_parallelism(),
            parallel_jobs,
        }
    }
}

/// `available_parallelism`, defaulting to 1 when unavailable.
pub fn host_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The full harness output.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// The configuration that produced the report.
    pub config: BenchConfig,
    /// All benchmark results, in execution order.
    pub entries: Vec<BenchEntry>,
    /// Median-over-median speedups computed from this run's entries:
    /// `graph_build_speedup_medium` (bulk vs incremental build),
    /// `mwis_speedup_gwmin` / `mwis_speedup_gwmin2` (eager cascade on
    /// adjacency lists vs the tournament-tree engine on CSR — the
    /// original implementation against the production one),
    /// `allocs_per_solve` (heap allocations inside a warm production
    /// solve, `bench-alloc` builds only), and the intra-run
    /// parallelism ratios `graph_build_parallel_speedup` /
    /// `offline_eval_parallel_speedup` (serial vs
    /// [`PARALLEL_BENCH_JOBS`]-worker runs of the same fixture).
    pub derived: Vec<DerivedEntry>,
    /// Host context the run executed under.
    pub host: HostContext,
}

impl BenchReport {
    /// Stats for a benchmark by name.
    pub fn stats(&self, name: &str) -> Option<BenchStats> {
        self.entries
            .iter()
            .find(|e| e.name == name)
            .map(|e| e.stats)
    }

    /// Value of a derived ratio by name.
    pub fn derived(&self, name: &str) -> Option<f64> {
        self.derived
            .iter()
            .find(|d| d.name == name)
            .map(|d| d.value)
    }

    /// Renders the report as a JSON object (hand-emitted; the values are
    /// integers, plain floats, and snake_case keys, so no escaping is
    /// needed).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"schema\": \"spindown-bench-v1\",\n");
        s.push_str(&format!("  \"warmup\": {},\n", self.config.warmup));
        s.push_str(&format!("  \"iters\": {},\n", self.config.iters));
        s.push_str(&format!("  \"jobs\": {},\n", self.config.jobs));
        s.push_str(&format!("  \"seed\": {},\n", self.config.seed));
        s.push_str(&format!(
            "  \"host\": {{\"available_parallelism\": {}, \"parallel_jobs\": {}}},\n",
            self.host.available_parallelism, self.host.parallel_jobs
        ));
        s.push_str("  \"benches\": {\n");
        for (i, e) in self.entries.iter().enumerate() {
            let comma = if i + 1 == self.entries.len() { "" } else { "," };
            s.push_str(&format!(
                "    \"{}\": {{\"median_ns\": {}, \"p10_ns\": {}, \"p90_ns\": {}}}{comma}\n",
                e.name, e.stats.median_ns, e.stats.p10_ns, e.stats.p90_ns
            ));
        }
        s.push_str("  },\n");
        s.push_str("  \"derived\": {\n");
        for (i, d) in self.derived.iter().enumerate() {
            let comma = if i + 1 == self.derived.len() { "" } else { "," };
            s.push_str(&format!("    \"{}\": {:.3}{comma}\n", d.name, d.value));
        }
        s.push_str("  }\n}\n");
        s
    }

    /// Renders a short human-readable table.
    pub fn to_table(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "{:<30} {:>12} {:>12} {:>12}\n",
            "benchmark", "median", "p10", "p90"
        ));
        for e in &self.entries {
            s.push_str(&format!(
                "{:<30} {:>12} {:>12} {:>12}\n",
                e.name,
                fmt_ns(e.stats.median_ns),
                fmt_ns(e.stats.p10_ns),
                fmt_ns(e.stats.p90_ns)
            ));
        }
        for d in &self.derived {
            s.push_str(&format!("{}: {:.2}x\n", d.name, d.value));
        }
        if let Some(f) = &self.config.filter {
            s.push_str(&format!("(filtered: \"{f}\")\n"));
        }
        s.pop();
        s
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Times `f` over `warmup + iters` calls and summarizes the timed ones.
fn time_ns<F: FnMut()>(warmup: usize, iters: usize, mut f: F) -> BenchStats {
    for _ in 0..warmup {
        f();
    }
    let iters = iters.max(1);
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let start = Instant::now();
        f();
        samples.push(start.elapsed().as_nanos() as u64);
    }
    BenchStats::from_samples(samples)
}

/// A conflict-graph fixture: a workload plus its placement and planner.
struct GraphFixture {
    requests: Vec<Request>,
    placement: PlacementMap,
    planner: MwisPlanner,
}

impl GraphFixture {
    fn new(scale: Scale, replication: u32, max_successors: usize, seed: u64) -> Self {
        let requests = workload::cello(scale, seed);
        let placement = PlacementMap::build(
            data_space(&requests),
            &PlacementConfig {
                disks: scale.disks,
                replication,
                zipf_z: 1.0,
            },
            seed,
        );
        let planner = MwisPlanner {
            params: PowerParams::barracuda(),
            solver: MwisSolver::GwMin,
            max_successors,
        };
        GraphFixture {
            requests,
            placement,
            planner,
        }
    }
}

/// A seeded exact-set-cover fixture: one continuous-weight singleton per
/// element (guaranteed coverable, continuous weights keep the optimum
/// unique) plus `2 × universe` random multi-element sets — the same
/// generator shape as the solver's differential suite.
fn cover_fixture(universe: usize, seed: u64) -> SetCoverInstance {
    let mut rng = SimRng::seed_from_u64(seed ^ 0x5e7c0f);
    let mut inst = SetCoverInstance::new(universe);
    for e in 0..universe {
        inst.add_set(0.5 + rng.next_f64() * 2.0, [e as u32]);
    }
    for _ in 0..2 * universe {
        let w = 0.1 + rng.next_f64() * 8.0;
        let elems: Vec<u32> = (0..1 + rng.index(universe))
            .map(|_| rng.index(universe) as u32)
            .collect();
        inst.add_set(w, elems);
    }
    inst
}

/// Default worker cap the `*_parallel_*` benches run at when the config
/// does not ask for a specific one (`--jobs` > 1 overrides it,
/// unclamped), compared against their serial (`jobs = 1`) counterparts
/// by the `derived.*_speedup` ratios. The default is clamped to
/// [`host_parallelism`] — worker threads beyond the cores the host
/// grants only add hand-off overhead — and the effective count is
/// recorded in the report's `host.parallel_jobs` field, so a reader can
/// tell an 8-way run from a single-core one.
pub const PARALLEL_BENCH_JOBS: usize = 8;

/// The small graph-build / grid scale (matches the unit-test scale).
fn small_scale() -> Scale {
    Scale {
        requests: 600,
        data_items: 250,
        disks: 12,
        rate: 3.0,
    }
}

/// The medium scale: few data items and a deep successor horizon give
/// dense conflict buckets (~100k nodes, ~15M edges at replication 3,
/// successor horizon 32 — mean degree ~290), so the `O(E · d̄)`
/// per-insert dedup scans of the incremental build clearly separate from
/// the `O(E + n)` bulk path, while the working set stays small enough
/// that shared-host memory noise doesn't swamp the ratio.
fn medium_scale() -> Scale {
    Scale {
        requests: 1_200,
        data_items: 150,
        disks: 24,
        rate: 10.0,
    }
}

/// The MWIS-solver scale: moderate density (~190k nodes, ~7M edges). The
/// greedy solvers' deletion cascade is `O(E · d̄)` in heap traffic on the
/// eager engine, so on the deliberately dense [`medium_scale`] graph a
/// single eager gwmin run takes ~45 s — too slow to iterate on. This
/// keeps a solver iteration in single-digit seconds.
fn solver_scale() -> Scale {
    Scale {
        requests: 8_000,
        data_items: 3_000,
        disks: 24,
        rate: 10.0,
    }
}

/// The grid-evaluation medium scale (kept below [`medium_scale`]: a grid
/// is 30 full simulations per iteration).
fn grid_medium_scale() -> Scale {
    Scale {
        requests: 2_400,
        data_items: 1_000,
        disks: 20,
        rate: 6.0,
    }
}

/// Runs the whole suite under `config`, honoring its name filter.
pub fn run_benches(config: &BenchConfig) -> BenchReport {
    let mut entries: Vec<BenchEntry> = Vec::new();
    let mut derived: Vec<DerivedEntry> = Vec::new();
    let want = |name: &str| match &config.filter {
        Some(f) => name.contains(f.as_str()),
        None => true,
    };
    let (warmup, iters) = (config.warmup, config.iters);
    // Worker count for the `*_parallel_*` fixtures: `--jobs` when the
    // caller pinned one (the CI `--jobs 4` gate), the suite default
    // clamped to the host's parallelism otherwise.
    let par_jobs = if config.jobs > 1 {
        config.jobs
    } else {
        PARALLEL_BENCH_JOBS.min(host_parallelism())
    };

    // Conflict-graph construction: bulk (flat edge arena -> CSR) vs
    // incremental (Graph::add_edge), small and medium density. All four
    // build benches get extra samples: iterations are cheap (tens to
    // hundreds of ms — the small ones especially are noise-dominated at
    // few samples) and their medians feed the derived ratio and the CI
    // regression gate, so they must hold still on noisy shared hosts.
    let gb_iters = iters.max(1) * 2 + 1;
    if want("graph_build_bulk_small") || want("graph_build_incremental_small") {
        let small = GraphFixture::new(small_scale(), 3, 8, config.seed);
        if want("graph_build_bulk_small") {
            entries.push(BenchEntry {
                name: "graph_build_bulk_small",
                stats: time_ns(warmup, gb_iters, || {
                    black_box(small.planner.build_graph(&small.requests, &small.placement));
                }),
            });
        }
        if want("graph_build_incremental_small") {
            entries.push(BenchEntry {
                name: "graph_build_incremental_small",
                stats: time_ns(warmup, gb_iters, || {
                    black_box(
                        small
                            .planner
                            .build_graph_incremental(&small.requests, &small.placement),
                    );
                }),
            });
        }
    }
    if want("graph_build_bulk_medium")
        || want("graph_build_incremental_medium")
        || want("graph_build_parallel_medium")
    {
        let medium = GraphFixture::new(medium_scale(), 3, 32, config.seed);
        let mut bulk_medium = None;
        let mut incr_medium = None;
        if want("graph_build_bulk_medium") {
            let stats = time_ns(warmup, gb_iters, || {
                black_box(
                    medium
                        .planner
                        .build_graph(&medium.requests, &medium.placement),
                );
            });
            entries.push(BenchEntry {
                name: "graph_build_bulk_medium",
                stats,
            });
            bulk_medium = Some(stats);
        }
        if want("graph_build_incremental_medium") {
            let stats = time_ns(warmup, gb_iters, || {
                black_box(
                    medium
                        .planner
                        .build_graph_incremental(&medium.requests, &medium.placement),
                );
            });
            entries.push(BenchEntry {
                name: "graph_build_incremental_medium",
                stats,
            });
            incr_medium = Some(stats);
        }
        if let (Some(bulk), Some(incr)) = (bulk_medium, incr_medium) {
            derived.push(DerivedEntry {
                name: "graph_build_speedup_medium",
                value: incr.median_ns as f64 / bulk.median_ns as f64,
            });
        }
        if want("graph_build_parallel_medium") {
            let stats = time_ns(warmup, gb_iters, || {
                black_box(medium.planner.build_graph_with_jobs(
                    &medium.requests,
                    &medium.placement,
                    par_jobs,
                ));
            });
            entries.push(BenchEntry {
                name: "graph_build_parallel_medium",
                stats,
            });
            if let Some(bulk) = bulk_medium {
                derived.push(DerivedEntry {
                    name: "graph_build_parallel_speedup",
                    value: bulk.median_ns as f64 / stats.median_ns as f64,
                });
            }
        }
    }

    // Rolling-horizon re-planning: the same sliding-window schedule run
    // through the delta-maintained WindowedPlanner (tombstone retire +
    // resume-region re-emission + new-endpoint bucket scan + compact to
    // canonical CSR) versus a from-scratch conflict-graph rebuild (full
    // Step 1/2 + CSR finalization) per window. Each window's solve is
    // identical on both paths (the maintained graph is bit-identical to
    // the rebuilt one, and `mwis_*` already times it), so the fixtures
    // time graph maintenance alone — the work the delta layer actually
    // replaces — and the derived `incremental_replan_speedup` is their
    // ratio. The schedule ramps from empty (cold start admits only the
    // first step) and then slides at full width, the production regime
    // where window >> step.
    if want("window_replan_incremental_medium") || want("window_replan_rebuild_medium") {
        let scale = Scale {
            requests: 1_400,
            data_items: 150,
            disks: 24,
            rate: 10.0,
        };
        let fix = GraphFixture::new(scale, 3, 32, config.seed);
        const CAP: usize = 800; // window size, requests
        const STEP: usize = 25; // arrivals admitted per advance
        let mut schedule: Vec<(std::ops::Range<usize>, SimTime)> = Vec::new();
        let mut fed = 0usize;
        while fed < fix.requests.len() {
            let to = (fed + STEP).min(fix.requests.len());
            let horizon = match to.checked_sub(CAP) {
                Some(cut) => fix.requests[cut].at,
                None => SimTime::ZERO,
            };
            schedule.push((fed..to, horizon));
            fed = to;
        }
        let mut incr_medium = None;
        let mut rebuild_medium = None;
        if want("window_replan_incremental_medium") {
            let stats = time_ns(warmup, iters, || {
                let mut w = WindowedPlanner::new(fix.planner.clone(), scale.disks);
                for (r, h) in &schedule {
                    w.advance_window(&fix.requests[r.clone()], *h, &fix.placement);
                    black_box(w.graph().edge_count());
                }
            });
            entries.push(BenchEntry {
                name: "window_replan_incremental_medium",
                stats,
            });
            incr_medium = Some(stats);
        }
        if want("window_replan_rebuild_medium") {
            // The naive re-planner's graph phase: every window re-runs
            // the full from-scratch build. Windows are pre-rebased so
            // the rebuild side pays only for building, not bookkeeping.
            let windows: Vec<Vec<Request>> = schedule
                .iter()
                .map(|(r, h)| {
                    let start = fix.requests.partition_point(|q| q.at < *h);
                    fix.requests[start..r.end]
                        .iter()
                        .enumerate()
                        .map(|(p, q)| Request {
                            index: p as u32,
                            ..*q
                        })
                        .collect()
                })
                .collect();
            let stats = time_ns(warmup, iters, || {
                for window in &windows {
                    black_box(fix.planner.build_graph(window, &fix.placement));
                }
            });
            entries.push(BenchEntry {
                name: "window_replan_rebuild_medium",
                stats,
            });
            rebuild_medium = Some(stats);
        }
        if let (Some(incr), Some(rebuild)) = (incr_medium, rebuild_medium) {
            derived.push(DerivedEntry {
                name: "incremental_replan_speedup",
                value: rebuild.median_ns as f64 / incr.median_ns as f64,
            });
        }
        // Warm-window solve allocations: after the slide, re-solving the
        // maintained canonical graph with a warmed scratch must not
        // touch the heap — the measured form of the warm-start
        // invariant (DESIGN §12).
        #[cfg(feature = "bench-alloc")]
        if want("window_replan_incremental_medium") {
            let mut w = WindowedPlanner::new(fix.planner.clone(), scale.disks);
            for (r, h) in &schedule {
                w.advance_window(&fix.requests[r.clone()], *h, &fix.placement);
            }
            let mut scratch = PlanScratch::new();
            fix.planner.solve_view_into(w.graph(), &mut scratch); // warm
            spindown_alloctrack::reset_thread_allocs();
            fix.planner.solve_view_into(w.graph(), &mut scratch);
            derived.push(DerivedEntry {
                name: "window_replan_allocs_per_solve",
                value: spindown_alloctrack::thread_allocs() as f64,
            });
        }
    }

    // Per-disk offline evaluation, serial vs fanned across the worker
    // pool — the paper-scale phase (180 disks) that is embarrassingly
    // parallel once the assignment is fixed. The serial entry is timed
    // here (rather than reusing another bench) so the derived speedup
    // compares the same fixture under the same cache state.
    if want("offline_eval_serial_medium") || want("offline_eval_parallel_medium") {
        let scale = Scale {
            requests: 100_000,
            data_items: 20_000,
            disks: 180,
            rate: 40.0,
        };
        let requests = workload::cello(scale, config.seed);
        let placement = PlacementMap::build(
            data_space(&requests),
            &PlacementConfig {
                disks: scale.disks,
                replication: 3,
                zipf_z: 1.0,
            },
            config.seed,
        );
        // Fixed static assignment: every request to its first replica.
        let assignment = Assignment {
            disks: requests
                .iter()
                .map(|r| placement.locations(r.data)[0])
                .collect(),
        };
        let params = PowerParams::barracuda();
        let mechanics = Mechanics::new(
            DiskGeometry::cheetah_15k5(),
            SimRng::seed_from_u64(config.seed),
        );
        let mut serial_stats = None;
        if want("offline_eval_serial_medium") {
            let stats = time_ns(warmup, gb_iters, || {
                black_box(evaluate_offline_with_jobs(
                    &requests,
                    &assignment,
                    scale.disks,
                    &params,
                    None,
                    Some(&mechanics),
                    1,
                ));
            });
            entries.push(BenchEntry {
                name: "offline_eval_serial_medium",
                stats,
            });
            serial_stats = Some(stats);
        }
        if want("offline_eval_parallel_medium") {
            let stats = time_ns(warmup, gb_iters, || {
                black_box(evaluate_offline_with_jobs(
                    &requests,
                    &assignment,
                    scale.disks,
                    &params,
                    None,
                    Some(&mechanics),
                    par_jobs,
                ));
            });
            entries.push(BenchEntry {
                name: "offline_eval_parallel_medium",
                stats,
            });
            if let Some(serial) = serial_stats {
                derived.push(DerivedEntry {
                    name: "offline_eval_parallel_speedup",
                    value: serial.median_ns as f64 / stats.median_ns as f64,
                });
            }
        }
    }

    // MWIS solvers on a moderate-density conflict graph (see
    // [`solver_scale`] for why not the medium one). Three configurations
    // per greedy:
    //   *            — tournament-tree engine on the CSR backend, solving
    //                  out of a warm scratch (production: the repeated-
    //                  window configuration the planner runs);
    //   *_adjacency  — tournament-tree engine on the adjacency-list
    //                  backend (isolates the storage layout);
    //   *_eager      — eager cascade on the adjacency-list backend (the
    //                  original implementation; isolates the engine when
    //                  read against *_adjacency).
    //
    // With the `bench-alloc` feature the warm production solves are also
    // bracketed by the thread-local allocation counter and the largest
    // count is reported as the derived `allocs_per_solve` — the
    // measured form of the scratch-reuse zero-allocation contract.
    let solver_names = [
        "mwis_gwmin",
        "mwis_gwmin2",
        "mwis_gwmin_adjacency",
        "mwis_gwmin2_adjacency",
        "mwis_gwmin_eager",
        "mwis_gwmin2_eager",
        "mwis_local_search",
    ];
    if solver_names.iter().any(|n| want(n)) {
        let solver_fix = GraphFixture::new(solver_scale(), 3, 8, config.seed);
        let cg = solver_fix
            .planner
            .build_graph(&solver_fix.requests, &solver_fix.placement);
        let mut csr_gwmin = None;
        let mut csr_gwmin2 = None;
        let mut scratch = solvers::GreedyScratch::new();
        let mut selected: Vec<spindown_graph::graph::NodeId> = Vec::new();
        #[cfg(feature = "bench-alloc")]
        let mut max_allocs_per_solve: u64 = 0;
        #[cfg(feature = "bench-alloc")]
        let count_warm_solve = |f: &mut dyn FnMut()| -> u64 {
            spindown_alloctrack::reset_thread_allocs();
            f();
            spindown_alloctrack::thread_allocs()
        };
        if want("mwis_gwmin") {
            // NB: "mwis_gwmin" is a substring of every gwmin variant, so a
            // `--filter mwis_gwmin` run times all of them — that is the
            // comparison someone filtering on the name wants.
            solvers::gwmin_into(&cg.graph, &mut scratch, &mut selected);
            let stats = time_ns(warmup, iters, || {
                solvers::gwmin_into(&cg.graph, &mut scratch, &mut selected);
                black_box(&selected);
            });
            entries.push(BenchEntry {
                name: "mwis_gwmin",
                stats,
            });
            csr_gwmin = Some(stats);
            #[cfg(feature = "bench-alloc")]
            {
                let allocs = count_warm_solve(&mut || {
                    solvers::gwmin_into(&cg.graph, &mut scratch, &mut selected)
                });
                max_allocs_per_solve = max_allocs_per_solve.max(allocs);
            }
        }
        if want("mwis_gwmin2") {
            solvers::gwmin2_into(&cg.graph, &mut scratch, &mut selected);
            let stats = time_ns(warmup, iters, || {
                solvers::gwmin2_into(&cg.graph, &mut scratch, &mut selected);
                black_box(&selected);
            });
            entries.push(BenchEntry {
                name: "mwis_gwmin2",
                stats,
            });
            csr_gwmin2 = Some(stats);
            #[cfg(feature = "bench-alloc")]
            {
                let allocs = count_warm_solve(&mut || {
                    solvers::gwmin2_into(&cg.graph, &mut scratch, &mut selected)
                });
                max_allocs_per_solve = max_allocs_per_solve.max(allocs);
            }
        }
        #[cfg(feature = "bench-alloc")]
        if want("mwis_gwmin") || want("mwis_gwmin2") {
            derived.push(DerivedEntry {
                name: "allocs_per_solve",
                value: max_allocs_per_solve as f64,
            });
        }
        if [
            "mwis_gwmin_adjacency",
            "mwis_gwmin2_adjacency",
            "mwis_gwmin_eager",
            "mwis_gwmin2_eager",
        ]
        .iter()
        .any(|n| want(n))
        {
            let cg_adj = solver_fix
                .planner
                .build_graph_incremental(&solver_fix.requests, &solver_fix.placement);
            if want("mwis_gwmin_adjacency") {
                entries.push(BenchEntry {
                    name: "mwis_gwmin_adjacency",
                    stats: time_ns(warmup, iters, || {
                        black_box(solvers::gwmin(&cg_adj.graph));
                    }),
                });
            }
            if want("mwis_gwmin2_adjacency") {
                entries.push(BenchEntry {
                    name: "mwis_gwmin2_adjacency",
                    stats: time_ns(warmup, iters, || {
                        black_box(solvers::gwmin2(&cg_adj.graph));
                    }),
                });
            }
            if want("mwis_gwmin_eager") {
                let stats = time_ns(warmup, iters, || {
                    black_box(solvers::baseline::gwmin(&cg_adj.graph));
                });
                entries.push(BenchEntry {
                    name: "mwis_gwmin_eager",
                    stats,
                });
                if let Some(csr) = csr_gwmin {
                    derived.push(DerivedEntry {
                        name: "mwis_speedup_gwmin",
                        value: stats.median_ns as f64 / csr.median_ns as f64,
                    });
                }
            }
            if want("mwis_gwmin2_eager") {
                let stats = time_ns(warmup, iters, || {
                    black_box(solvers::baseline::gwmin2(&cg_adj.graph));
                });
                entries.push(BenchEntry {
                    name: "mwis_gwmin2_eager",
                    stats,
                });
                if let Some(csr) = csr_gwmin2 {
                    derived.push(DerivedEntry {
                        name: "mwis_speedup_gwmin2",
                        value: stats.median_ns as f64 / csr.median_ns as f64,
                    });
                }
            }
        }
        if want("mwis_local_search") {
            let start = solvers::gwmin(&cg.graph);
            entries.push(BenchEntry {
                name: "mwis_local_search",
                stats: time_ns(warmup, iters, || {
                    black_box(solvers::local_search(&cg.graph, &start));
                }),
            });
        }
    }

    // Exact branch-and-bound. The iterative bitset solver
    // (`mwis_exact_small` / `mwis_exact_medium`) is gated against the
    // retained recursive clone-per-branch oracle
    // (`mwis_exact_baseline_small`); the derived `mwis_exact_speedup`
    // ratio is the headline number for the rewrite. The medium fixture
    // sits past the size the recursive solver could comfortably carry.
    if ["mwis_exact_small", "mwis_exact_baseline_small"]
        .iter()
        .any(|n| want(n))
    {
        let tiny = GraphFixture::new(
            Scale {
                requests: 18,
                data_items: 12,
                disks: 4,
                rate: 2.0,
            },
            2,
            2,
            config.seed,
        );
        let tiny_cg = tiny.planner.build_graph(&tiny.requests, &tiny.placement);
        let mut iter_stats = None;
        if want("mwis_exact_small") {
            let stats = time_ns(warmup, iters, || {
                black_box(solvers::exact(&tiny_cg.graph, usize::MAX));
            });
            entries.push(BenchEntry {
                name: "mwis_exact_small",
                stats,
            });
            iter_stats = Some(stats);
        }
        if want("mwis_exact_baseline_small") {
            let stats = time_ns(warmup, iters, || {
                black_box(solvers::baseline::exact(&tiny_cg.graph, usize::MAX));
            });
            entries.push(BenchEntry {
                name: "mwis_exact_baseline_small",
                stats,
            });
            if let Some(it) = iter_stats {
                derived.push(DerivedEntry {
                    name: "mwis_exact_speedup",
                    value: stats.median_ns as f64 / it.median_ns as f64,
                });
            }
        }
    }
    if want("mwis_exact_medium") {
        let mid = GraphFixture::new(
            Scale {
                requests: 30,
                data_items: 18,
                disks: 4,
                rate: 2.0,
            },
            2,
            3,
            config.seed,
        );
        let mid_cg = mid.planner.build_graph(&mid.requests, &mid.placement);
        entries.push(BenchEntry {
            name: "mwis_exact_medium",
            stats: time_ns(warmup, iters, || {
                black_box(solvers::exact(&mid_cg.graph, usize::MAX));
            }),
        });
    }

    // Exact weighted set cover, same shape: iterative vs recursive
    // baseline on seeded instances (one singleton per element for
    // coverability plus random multi-sets), and medium instances the
    // baseline is not asked to carry. A single solve is microseconds —
    // far below timer jitter at the CI gate's 25% tolerance — so each
    // timed iteration solves a whole batch of distinct instances.
    if ["setcover_exact_small", "setcover_exact_baseline_small"]
        .iter()
        .any(|n| want(n))
    {
        let insts: Vec<_> = (0..256)
            .map(|i| cover_fixture(14, config.seed.wrapping_add(i)))
            .collect();
        let mut iter_stats = None;
        if want("setcover_exact_small") {
            let stats = time_ns(warmup, iters, || {
                for inst in &insts {
                    black_box(inst.solve_exact(usize::MAX));
                }
            });
            entries.push(BenchEntry {
                name: "setcover_exact_small",
                stats,
            });
            iter_stats = Some(stats);
        }
        if want("setcover_exact_baseline_small") {
            let stats = time_ns(warmup, iters, || {
                for inst in &insts {
                    black_box(inst.solve_exact_baseline(usize::MAX));
                }
            });
            entries.push(BenchEntry {
                name: "setcover_exact_baseline_small",
                stats,
            });
            if let Some(it) = iter_stats {
                derived.push(DerivedEntry {
                    name: "setcover_exact_speedup",
                    value: stats.median_ns as f64 / it.median_ns as f64,
                });
            }
        }
    }
    if want("setcover_exact_medium") {
        let insts: Vec<_> = (0..256)
            .map(|i| cover_fixture(22, config.seed.wrapping_add(i)))
            .collect();
        entries.push(BenchEntry {
            name: "setcover_exact_medium",
            stats: time_ns(warmup, iters, || {
                for inst in &insts {
                    black_box(inst.solve_exact(usize::MAX));
                }
            }),
        });
    }

    // Full experiment grids (30 simulations each), small and medium.
    if want("grid_eval_small") {
        let grid_small_reqs = workload::cello(small_scale(), config.seed);
        entries.push(BenchEntry {
            name: "grid_eval_small",
            stats: time_ns(warmup, iters, || {
                black_box(EvalGrid::compute_with_jobs(
                    &grid_small_reqs,
                    small_scale(),
                    1.0,
                    config.seed,
                    config.jobs,
                ));
            }),
        });
    }
    if want("grid_eval_medium") {
        let grid_medium_reqs = workload::cello(grid_medium_scale(), config.seed);
        entries.push(BenchEntry {
            name: "grid_eval_medium",
            stats: time_ns(warmup, iters, || {
                black_box(EvalGrid::compute_with_jobs(
                    &grid_medium_reqs,
                    grid_medium_scale(),
                    1.0,
                    config.seed,
                    config.jobs,
                ));
            }),
        });
    }

    // Scenario × spin-down-policy sweep: six event-loop simulations
    // (diurnal and flash-crowd, each under 2CPM / adaptive / quantile).
    // Besides the timing, the run yields the headline quality ratio
    // `predictive_vs_2cpm_energy_ratio` — quantile-policy energy over
    // 2CPM energy on the flash-crowd scenario (< 1.0 means the learned
    // policy beats the fixed breakeven; the grids-crate acceptance test
    // additionally pins equal-or-better p99).
    if want("policy_sweep_medium") {
        let scale = Scale::policy_sweep();
        let mut ratio = f64::NAN;
        let stats = time_ns(warmup, iters, || {
            let grid = PolicyGrid::compute_with_jobs(scale, config.seed, config.jobs);
            ratio = grid.cell("flash-crowd", "quantile").metrics.energy_j
                / grid.cell("flash-crowd", "2cpm").metrics.energy_j;
            black_box(grid);
        });
        entries.push(BenchEntry {
            name: "policy_sweep_medium",
            stats,
        });
        derived.push(DerivedEntry {
            name: "predictive_vs_2cpm_energy_ratio",
            value: ratio,
        });
    }

    // Streaming trace pipeline. Two benches gate the two halves of the
    // constant-memory path: the incremental SPC parser on its own, and
    // the full two-pass streamed replay (scan -> placement -> lazy
    // request source -> pull-based event loop).
    if want("stream_parse_spc_medium") {
        let scale = Scale {
            requests: 100_000,
            data_items: 20_000,
            disks: 24,
            rate: 40.0,
        };
        // Render the fixture once; the bench times parsing only. Like
        // the graph-build benches, iterations are cheap (~10 ms) and the
        // median feeds the CI regression gate, so take extra samples
        // after extra warmup to ride out frequency-scaling transients.
        let text = spc::to_string(&workload::cello_like(scale).generate(config.seed));
        let stats = time_ns(warmup + 4, gb_iters, || {
            let mut n = 0usize;
            for rec in SpcStream::new(text.as_bytes(), ParsePolicy::Strict) {
                black_box(rec.expect("rendered fixture parses clean"));
                n += 1;
            }
            assert_eq!(n, scale.requests);
        });
        entries.push(BenchEntry {
            name: "stream_parse_spc_medium",
            stats,
        });
        derived.push(DerivedEntry {
            name: "stream_parse_records_per_sec",
            value: scale.requests as f64 / (stats.median_ns as f64 / 1e9),
        });
    }
    if want("stream_run_medium") {
        let scale = Scale {
            requests: 20_000,
            data_items: 5_000,
            disks: 24,
            rate: 20.0,
        };
        let gen = workload::cello_like(scale);
        let pcfg = PlacementConfig {
            disks: scale.disks,
            replication: 3,
            zipf_z: 1.0,
        };
        let sys = SystemConfig {
            disks: scale.disks,
            seed: config.seed,
            ..SystemConfig::default()
        };
        // The pass-one scan and placement build are per-trace setup, not
        // replay: the timed region is pass two alone — lazy request
        // decode through the scan summary plus the pull-based event loop
        // — the phase that repeats per scheduler/policy configuration
        // over a fixed trace and that `stream_run_records_per_sec`
        // advertises.
        let scan = scan_stream(gen.stream(config.seed).map(Ok::<_, StreamError>))
            .expect("synthetic streams are infallible");
        let placement = PlacementMap::build(scan.data_space(), &pcfg, config.seed);
        let mut peaks = (0usize, 0usize);
        // Extra warmup + samples for the same reason as the parse bench.
        let stats = time_ns(warmup + 4, gb_iters, || {
            let mut sched = build_scheduler(
                &SchedulerKind::Heuristic(CostFunction::energy_only()),
                config.seed,
            )
            .expect("event-loop scheduler");
            let mut source = scan
                .clone()
                .requests(gen.stream(config.seed).map(Ok::<_, StreamError>));
            let m = run_system_streamed(&mut source, &placement, sched.as_mut(), &sys)
                .expect("streamed replay of a synthetic trace");
            peaks = (m.peak_events, m.peak_in_flight);
            black_box(m);
        });
        entries.push(BenchEntry {
            name: "stream_run_medium",
            stats,
        });
        derived.push(DerivedEntry {
            name: "stream_run_records_per_sec",
            value: scale.requests as f64 / (stats.median_ns as f64 / 1e9),
        });
        // Estimated peak resident bytes of the pipeline's only
        // trace-proportional buffers: queued events (time + two ids) plus
        // in-flight bookkeeping (id + arrival time + the request batch
        // slot). An estimate from struct sizes, not an allocator
        // measurement — its job is to prove the replay buffers stay
        // O(in-flight work), far below the materialized trace.
        let event_bytes = std::mem::size_of::<SimTime>() + 2 * std::mem::size_of::<u64>();
        let in_flight_bytes = std::mem::size_of::<u64>()
            + std::mem::size_of::<SimTime>()
            + std::mem::size_of::<Request>();
        derived.push(DerivedEntry {
            name: "stream_run_peak_buffer_bytes",
            value: (peaks.0 * event_bytes + peaks.1 * in_flight_bytes) as f64,
        });
    }
    if want("stream_run_islands_serial_medium") || want("stream_run_islands_medium") {
        // Island-parallel replay: 8 replica islands of 6 disks (3
        // replicas inside the group), so `run_system_with_jobs` can run
        // 8 independent event loops. The serial fixture is the oracle
        // engine on the identical workload; `island_sim_speedup` is
        // their median ratio (near 1.0 on a single-core runner — only
        // the bit-identical outputs are meaningful there, and the
        // `host` block in the report records how many workers actually
        // ran). Iterations are kept tens-of-ms long and tripled
        // relative to the global count so shared-host steal spikes
        // land inside a sample and get voted out of the median instead
        // of whipsawing the gated ratio.
        let scale = Scale {
            requests: 60_000,
            data_items: 14_400,
            disks: 48,
            rate: 20.0,
        };
        let requests = workload::cello(scale, config.seed);
        let islands = 8usize;
        let group = 6usize;
        let locations: Vec<Vec<DiskId>> = (0..data_space(&requests))
            .map(|d| {
                let g = d % islands;
                (0..3)
                    .map(|r| DiskId((g * group + (d / islands + r) % group) as u32))
                    .collect()
            })
            .collect();
        let placement = ExplicitPlacement::new(locations, scale.disks);
        let sys = SystemConfig {
            disks: scale.disks,
            seed: config.seed,
            ..SystemConfig::default()
        };
        let factory = || {
            build_scheduler(
                &SchedulerKind::Heuristic(CostFunction::energy_only()),
                config.seed,
            )
            .expect("event-loop scheduler")
        };
        let mut serial_stats = None;
        if want("stream_run_islands_serial_medium") {
            let stats = time_ns(warmup + 4, gb_iters * 3, || {
                let mut sched = factory();
                black_box(run_system(&requests, &placement, sched.as_mut(), &sys));
            });
            entries.push(BenchEntry {
                name: "stream_run_islands_serial_medium",
                stats,
            });
            serial_stats = Some(stats);
        }
        if want("stream_run_islands_medium") {
            let stats = time_ns(warmup + 4, gb_iters * 3, || {
                black_box(run_system_with_jobs(
                    &requests, &placement, &factory, &sys, par_jobs,
                ));
            });
            entries.push(BenchEntry {
                name: "stream_run_islands_medium",
                stats,
            });
            if let Some(serial) = serial_stats {
                derived.push(DerivedEntry {
                    name: "island_sim_speedup",
                    value: serial.median_ns as f64 / stats.median_ns as f64,
                });
            }
        }
    }

    BenchReport {
        config: config.clone(),
        entries,
        derived,
        host: HostContext::capture(par_jobs),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_quantiles() {
        let s = BenchStats::from_samples((1..=100).collect());
        assert_eq!(s.p10_ns, 11);
        assert_eq!(s.median_ns, 51);
        assert_eq!(s.p90_ns, 90);
        let one = BenchStats::from_samples(vec![7]);
        assert_eq!((one.p10_ns, one.median_ns, one.p90_ns), (7, 7, 7));
    }

    #[test]
    fn json_shape() {
        let report = BenchReport {
            config: BenchConfig::default(),
            entries: vec![
                BenchEntry {
                    name: "a",
                    stats: BenchStats {
                        median_ns: 10,
                        p10_ns: 5,
                        p90_ns: 20,
                    },
                },
                BenchEntry {
                    name: "b",
                    stats: BenchStats {
                        median_ns: 30,
                        p10_ns: 25,
                        p90_ns: 40,
                    },
                },
            ],
            derived: vec![
                DerivedEntry {
                    name: "graph_build_speedup_medium",
                    value: 2.5,
                },
                DerivedEntry {
                    name: "mwis_speedup_gwmin",
                    value: 3.25,
                },
            ],
            host: HostContext {
                available_parallelism: 4,
                parallel_jobs: 4,
            },
        };
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"spindown-bench-v1\""));
        assert!(json.contains("\"host\": {\"available_parallelism\": 4, \"parallel_jobs\": 4},"));
        assert!(json.contains("\"a\": {\"median_ns\": 10, \"p10_ns\": 5, \"p90_ns\": 20},"));
        assert!(json.contains("\"b\": {\"median_ns\": 30, \"p10_ns\": 25, \"p90_ns\": 40}\n"));
        assert!(json.contains("\"graph_build_speedup_medium\": 2.500,"));
        assert!(json.contains("\"mwis_speedup_gwmin\": 3.250\n"));
        assert_eq!(report.stats("b").unwrap().median_ns, 30);
        assert!(report.stats("c").is_none());
        assert_eq!(report.derived("mwis_speedup_gwmin"), Some(3.25));
        assert!(report.derived("missing").is_none());
        // Balanced braces — cheap structural sanity for the hand emitter.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced JSON"
        );
    }

    #[test]
    fn empty_report_keeps_valid_shape() {
        let report = BenchReport {
            config: BenchConfig {
                filter: Some("nothing".into()),
                ..BenchConfig::default()
            },
            entries: vec![],
            derived: vec![],
            host: HostContext::capture(1),
        };
        let json = report.to_json();
        assert!(json.contains("\"benches\": {\n  },"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(report.to_table().contains("(filtered: \"nothing\")"));
    }

    #[test]
    fn filter_skips_unmatched_benches() {
        // A filter that matches nothing must run nothing (and build no
        // fixtures — this test would take minutes otherwise).
        let report = run_benches(&BenchConfig {
            warmup: 0,
            iters: 1,
            filter: Some("no_such_bench".into()),
            ..BenchConfig::default()
        });
        assert!(report.entries.is_empty());
        assert!(report.derived.is_empty());

        // A narrow filter runs exactly its match; no derived ratios
        // without their counterparts (the baseline alone must not emit
        // `mwis_exact_speedup`).
        let report = run_benches(&BenchConfig {
            warmup: 0,
            iters: 1,
            filter: Some("mwis_exact_baseline_small".into()),
            ..BenchConfig::default()
        });
        let names: Vec<&str> = report.entries.iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["mwis_exact_baseline_small"]);
        assert!(report.derived.is_empty());
    }

    #[test]
    fn exact_benches_emit_speedup_ratios() {
        let report = run_benches(&BenchConfig {
            warmup: 0,
            iters: 1,
            filter: Some("exact_".into()),
            ..BenchConfig::default()
        });
        let names: Vec<&str> = report.entries.iter().map(|e| e.name).collect();
        assert_eq!(
            names,
            vec![
                "mwis_exact_small",
                "mwis_exact_baseline_small",
                "mwis_exact_medium",
                "setcover_exact_small",
                "setcover_exact_baseline_small",
                "setcover_exact_medium",
            ]
        );
        let derived: Vec<&str> = report.derived.iter().map(|d| d.name).collect();
        assert_eq!(
            derived,
            vec!["mwis_exact_speedup", "setcover_exact_speedup"]
        );
    }

    #[test]
    fn timer_collects_iters() {
        let mut calls = 0usize;
        let stats = time_ns(2, 3, || calls += 1);
        assert_eq!(calls, 5);
        assert!(stats.p10_ns <= stats.median_ns && stats.median_ns <= stats.p90_ns);
    }
}
