//! HP SRT-style parser — a whitespace-delimited representation of the
//! **Cello** trace family the paper evaluates on (§4.1, \[3\]).
//!
//! HP's original `.srt` files are binary and not redistributable; the
//! conventional textual export (one record per line) is:
//!
//! ```text
//! <timestamp_s> <device_id> <block_number> <size_bytes> <R|W>
//! ```
//!
//! Data identity follows the paper: one data item per unique
//! `(device, block)` pair.

use std::io::BufRead;

use spindown_sim::time::SimTime;

use crate::record::{DataId, OpKind, Trace, TraceRecord};
use crate::stream::{ParsePolicy, StreamError};

/// A parse failure with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SrtParseError {
    /// 1-based line number of the offending record.
    pub line: usize,
    /// What went wrong.
    pub kind: SrtErrorKind,
}

/// Categories of SRT parse failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SrtErrorKind {
    /// A line failed to parse (human-readable description).
    Malformed(String),
    /// The underlying reader failed (`line` is the line being read).
    Io(String),
}

impl std::fmt::Display for SrtParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.kind {
            SrtErrorKind::Malformed(msg) => write!(f, "line {}: {}", self.line, msg),
            SrtErrorKind::Io(msg) => write!(f, "line {}: read error: {}", self.line, msg),
        }
    }
}

impl std::error::Error for SrtParseError {}

impl From<SrtParseError> for StreamError {
    fn from(e: SrtParseError) -> Self {
        match e.kind {
            SrtErrorKind::Io(msg) => StreamError::Io(msg),
            SrtErrorKind::Malformed(message) => StreamError::Malformed {
                line: e.line,
                message,
            },
        }
    }
}

/// Encodes a `(device, block)` pair as the data identity.
pub fn data_id(device: u16, block: u64) -> DataId {
    DataId(((device as u64) << 48) | (block & ((1u64 << 48) - 1)))
}

/// Parses SRT-style text into a [`Trace`]. Blank lines and `#` comments
/// are skipped.
///
/// # Examples
///
/// ```
/// use spindown_trace::srt::parse;
///
/// let text = "0.125 3 81920 8192 R\n0.250 3 81928 8192 W\n";
/// let trace = parse(text).unwrap();
/// assert_eq!(trace.len(), 2);
/// ```
pub fn parse(text: &str) -> Result<Trace, SrtParseError> {
    // Materializing re-sorts, so out-of-order exports are tolerated here
    // (unlike the raw stream, which yields file order).
    crate::stream::collect_trace(SrtStream::new(text.as_bytes(), ParsePolicy::Strict))
}

fn parse_line(line: &str, line_no: usize) -> Result<TraceRecord, SrtParseError> {
    let err = |message: String| SrtParseError {
        line: line_no,
        kind: SrtErrorKind::Malformed(message),
    };
    let fields: Vec<&str> = line.split_whitespace().collect();
    if fields.len() < 5 {
        return Err(err(format!("expected 5 fields, got {}", fields.len())));
    }
    let ts: f64 = fields[0]
        .parse()
        .map_err(|_| err(format!("bad timestamp {:?}", fields[0])))?;
    if !ts.is_finite() || ts < 0.0 {
        return Err(err(format!("bad timestamp {:?}", fields[0])));
    }
    let device: u16 = fields[1]
        .parse()
        .map_err(|_| err(format!("bad device id {:?}", fields[1])))?;
    let block: u64 = fields[2]
        .parse()
        .map_err(|_| err(format!("bad block number {:?}", fields[2])))?;
    let size: u64 = fields[3]
        .parse()
        .map_err(|_| err(format!("bad size {:?}", fields[3])))?;
    let op = match fields[4] {
        "r" | "R" => OpKind::Read,
        "w" | "W" => OpKind::Write,
        other => return Err(err(format!("bad op {other:?}"))),
    };
    Ok(TraceRecord {
        at: SimTime::from_secs_f64(ts),
        data: data_id(device, block),
        size,
        op,
    })
}

/// Incremental SRT parser over any [`BufRead`]: one line in memory at a
/// time. Yields records in *file* order — unlike [`parse`], which
/// re-sorts while materializing — so feed time-sorted exports (or wrap
/// in [`crate::stream::EnsureSorted`]) when downstream consumers need
/// the ordering invariant.
///
/// CRLF endings, surrounding whitespace, blank lines and `#` comments
/// are tolerated; [`ParsePolicy::Lenient`] skips and counts malformed
/// lines ([`SrtStream::skipped`]). I/O failures always abort.
#[derive(Debug)]
pub struct SrtStream<R> {
    reader: R,
    buf: String,
    line_no: usize,
    policy: ParsePolicy,
    skipped: usize,
    done: bool,
}

impl<R: BufRead> SrtStream<R> {
    /// Streams SRT records from `reader` under `policy`.
    pub fn new(reader: R, policy: ParsePolicy) -> Self {
        SrtStream {
            reader,
            buf: String::new(),
            line_no: 0,
            policy,
            skipped: 0,
            done: false,
        }
    }

    /// Malformed lines skipped so far under [`ParsePolicy::Lenient`].
    pub fn skipped(&self) -> usize {
        self.skipped
    }
}

impl<R> crate::stream::SkipCount for SrtStream<R> {
    fn skipped_lines(&self) -> usize {
        self.skipped
    }
}

impl<R: BufRead> Iterator for SrtStream<R> {
    type Item = Result<TraceRecord, SrtParseError>;

    fn next(&mut self) -> Option<Self::Item> {
        while !self.done {
            self.buf.clear();
            match self.reader.read_line(&mut self.buf) {
                Ok(0) => {
                    self.done = true;
                    return None;
                }
                Ok(_) => {}
                Err(e) => {
                    self.done = true;
                    return Some(Err(SrtParseError {
                        line: self.line_no + 1,
                        kind: SrtErrorKind::Io(e.to_string()),
                    }));
                }
            }
            self.line_no += 1;
            let line = self.buf.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            match parse_line(line, self.line_no) {
                Ok(rec) => return Some(Ok(rec)),
                Err(e) => match self.policy {
                    ParsePolicy::Strict => {
                        self.done = true;
                        return Some(Err(e));
                    }
                    ParsePolicy::Lenient => self.skipped += 1,
                },
            }
        }
        None
    }
}

/// Serializes a [`Trace`] to SRT text, inverting [`data_id`].
pub fn to_string(trace: &Trace) -> String {
    let mut out = String::new();
    for r in trace.records() {
        let device = (r.data.0 >> 48) as u16;
        let block = r.data.0 & ((1u64 << 48) - 1);
        let op = match r.op {
            OpKind::Read => 'R',
            OpKind::Write => 'W',
        };
        out.push_str(&format!(
            "{:.6} {} {} {} {}\n",
            r.at.as_secs_f64(),
            device,
            block,
            r.size,
            op
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_records() {
        let t = parse("0.125 3 81920 8192 R\n0.250 4 81928 8192 W\n").unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.records()[0].data, data_id(3, 81920));
        assert_eq!(t.records()[0].op, OpKind::Read);
        assert_eq!(t.records()[1].op, OpKind::Write);
    }

    #[test]
    fn skips_comments_and_blanks() {
        let t = parse("# header\n\n0.5 1 2 4096 R\n").unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn sorts_out_of_order_records() {
        let t = parse("5.0 1 2 4096 R\n1.0 1 3 4096 R\n").unwrap();
        assert_eq!(t.records()[0].at, SimTime::from_secs(1));
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse("0.5 1 2 4096\n").is_err());
        assert!(parse("x 1 2 4096 R\n").is_err());
        assert!(parse("0.5 1 2 4096 Z\n").is_err());
        assert!(parse("-1 1 2 4096 R\n").is_err());
        let e = parse("0.5 1 2 4096 R\nbroken\n").unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn roundtrip() {
        let text = "0.125000 3 81920 8192 R\n0.250000 4 81928 8192 W\n";
        let t = parse(text).unwrap();
        assert_eq!(to_string(&t), text);
    }

    #[test]
    fn extra_fields_tolerated() {
        // Real exports sometimes append queue depth etc.
        let t = parse("0.5 1 2 4096 R extra stuff\n").unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn crlf_line_endings_tolerated() {
        let t = parse("0.5 1 2 4096 R\r\n# hdr\r\n0.75 1 3 4096 W\r\n").unwrap();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn stream_yields_file_order() {
        let text = "5.0 1 2 4096 R\n1.0 1 3 4096 R\n";
        let streamed: Vec<_> = SrtStream::new(text.as_bytes(), ParsePolicy::Strict)
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(streamed[0].at, SimTime::from_secs(5));
        // The batch parser re-sorts the same input.
        assert_eq!(parse(text).unwrap().records()[0].at, SimTime::from_secs(1));
    }

    #[test]
    fn lenient_skips_and_counts() {
        let text = "0.5 1 2 4096 R\nnope\n0.7 1 2 4096 Z\n0.9 1 2 4096 W\n";
        let mut s = SrtStream::new(text.as_bytes(), ParsePolicy::Lenient);
        let recs: Vec<_> = (&mut s).map(|r| r.unwrap()).collect();
        assert_eq!(recs.len(), 2);
        assert_eq!(s.skipped(), 2);
    }

    #[test]
    fn io_failures_surface_as_io_errors() {
        struct FailingReader;
        impl std::io::Read for FailingReader {
            fn read(&mut self, _: &mut [u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("cable unplugged"))
            }
        }
        let reader = std::io::BufReader::new(FailingReader);
        let e = SrtStream::new(reader, ParsePolicy::Strict)
            .next()
            .unwrap()
            .unwrap_err();
        assert!(matches!(e.kind, SrtErrorKind::Io(_)));
    }
}
