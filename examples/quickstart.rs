//! Quickstart: a 16-disk storage system under a bursty workload —
//! energy-aware scheduling vs. the static baseline.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use spindown::prelude::*;
use spindown::trace::synth::arrivals::OnOffProcess;

fn main() {
    // 1. A workload: 5 000 bursty, Zipf-skewed read requests over 2 000
    //    blocks (a small Cello-like trace spanning ~20 minutes, so disks
    //    see idle periods long enough to spin down).
    let trace = CelloLike {
        requests: 5_000,
        data_items: 2_000,
        arrivals: OnOffProcess {
            sources: 8,
            on_shape: 1.5,
            on_scale_s: 2.0,
            off_shape: 1.3,
            off_scale_s: 30.0,
            burst_rate: 12.0,
        },
        ..CelloLike::default()
    }
    .generate(42);
    let requests = requests_from_trace(&trace);
    println!(
        "workload: {} reads over {} blocks, {:.0} s span",
        requests.len(),
        2_000,
        requests.last().unwrap().at.as_secs_f64()
    );

    // 2. A storage system: 16 disks, blocks replicated 3×, originals
    //    skewed by Zipf(z=1), replicas uniform — and the 2CPM power
    //    manager that spins idle disks down after the breakeven time.
    let base = ExperimentSpec {
        placement: PlacementConfig {
            disks: 16,
            replication: 3,
            zipf_z: 1.0,
        },
        scheduler: SchedulerKind::Static,
        system: SystemConfig {
            disks: 16,
            ..SystemConfig::default()
        },
        seed: 7,
    };
    println!(
        "power model: idle {} W, standby {} W, breakeven {:.1} s\n",
        base.system.power.idle_w,
        base.system.power.standby_w,
        base.system.power.breakeven_secs()
    );

    // 3. Compare schedulers.
    println!(
        "{:<12} {:>14} {:>12} {:>12} {:>12}",
        "scheduler", "energy (kJ)", "vs always-on", "spin cycles", "mean resp"
    );
    for kind in [
        SchedulerKind::Static,
        SchedulerKind::Random,
        SchedulerKind::Heuristic(CostFunction::default()),
        SchedulerKind::Wsc {
            cost: CostFunction::default(),
            interval: SimDuration::from_millis(100),
        },
        SchedulerKind::Mwis {
            solver: MwisSolver::GwMin,
            max_successors: 3,
        },
    ] {
        let label = kind.label();
        let m = run_experiment(
            &requests,
            &ExperimentSpec {
                scheduler: kind,
                ..base.clone()
            },
        );
        println!(
            "{:<12} {:>14.1} {:>11.1}% {:>12} {:>11.0}ms",
            label,
            m.energy_j / 1000.0,
            m.normalized_energy() * 100.0,
            m.spin_cycles(),
            m.response_mean_s() * 1000.0
        );
    }
    println!(
        "\nThe energy-aware schedulers steer each read to whichever replica\n\
         keeps the fewest disks spinning — no data is ever moved."
    );
}
