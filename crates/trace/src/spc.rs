//! SPC trace-format parser — the format of the UMass **Financial1** trace
//! the paper evaluates on (§4.1, \[23\]).
//!
//! Each line is a comma-separated record:
//!
//! ```text
//! ASU,LBA,Size,Opcode,Timestamp[,optional fields...]
//! ```
//!
//! * `ASU` — application storage unit (integer),
//! * `LBA` — logical block address (integer),
//! * `Size` — bytes (integer),
//! * `Opcode` — `r`/`R` read, `w`/`W` write,
//! * `Timestamp` — seconds since trace start (float).
//!
//! Data identity follows the paper: one data item per unique `(ASU, LBA)`
//! pair, encoded as `ASU << 48 | LBA`.

use spindown_sim::time::SimTime;

use crate::record::{DataId, OpKind, Trace, TraceRecord};

/// A parse failure with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpcParseError {
    /// 1-based line number of the offending record.
    pub line: usize,
    /// What went wrong.
    pub kind: SpcErrorKind,
}

/// Categories of SPC parse failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpcErrorKind {
    /// Fewer than five comma-separated fields.
    TooFewFields,
    /// A numeric field failed to parse.
    BadNumber(&'static str),
    /// The opcode field was not `r`/`R`/`w`/`W`.
    BadOpcode(String),
}

impl std::fmt::Display for SpcParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.kind {
            SpcErrorKind::TooFewFields => write!(f, "line {}: too few fields", self.line),
            SpcErrorKind::BadNumber(field) => {
                write!(f, "line {}: invalid number in field {}", self.line, field)
            }
            SpcErrorKind::BadOpcode(op) => {
                write!(f, "line {}: invalid opcode {:?}", self.line, op)
            }
        }
    }
}

impl std::error::Error for SpcParseError {}

/// Encodes an `(asu, lba)` pair as the paper's data identity.
pub fn data_id(asu: u16, lba: u64) -> DataId {
    DataId(((asu as u64) << 48) | (lba & ((1u64 << 48) - 1)))
}

/// Parses SPC-format text into a [`Trace`]. Blank lines and lines starting
/// with `#` are skipped.
///
/// # Examples
///
/// ```
/// use spindown_trace::spc::parse;
///
/// let text = "0,20941264,8192,W,0.551706\n0,20939840,8192,W,0.554041\n1,3436288,15872,r,1.011732\n";
/// let trace = parse(text).unwrap();
/// assert_eq!(trace.len(), 3);
/// assert_eq!(trace.reads_only().len(), 1);
/// ```
pub fn parse(text: &str) -> Result<Trace, SpcParseError> {
    let mut records = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        records.push(parse_line(line, line_no)?);
    }
    Ok(Trace::from_records(records))
}

fn parse_line(line: &str, line_no: usize) -> Result<TraceRecord, SpcParseError> {
    let err = |kind| SpcParseError {
        line: line_no,
        kind,
    };
    let mut fields = line.split(',');
    let mut next = |name: &'static str| {
        fields
            .next()
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .ok_or_else(|| err_field(line_no, name))
    };
    fn err_field(line: usize, _name: &'static str) -> SpcParseError {
        SpcParseError {
            line,
            kind: SpcErrorKind::TooFewFields,
        }
    }

    let asu: u16 = next("asu")?
        .parse()
        .map_err(|_| err(SpcErrorKind::BadNumber("asu")))?;
    let lba: u64 = next("lba")?
        .parse()
        .map_err(|_| err(SpcErrorKind::BadNumber("lba")))?;
    let size: u64 = next("size")?
        .parse()
        .map_err(|_| err(SpcErrorKind::BadNumber("size")))?;
    let op = match next("opcode")? {
        "r" | "R" => OpKind::Read,
        "w" | "W" => OpKind::Write,
        other => return Err(err(SpcErrorKind::BadOpcode(other.to_string()))),
    };
    let ts: f64 = next("timestamp")?
        .parse()
        .map_err(|_| err(SpcErrorKind::BadNumber("timestamp")))?;
    if !ts.is_finite() || ts < 0.0 {
        return Err(err(SpcErrorKind::BadNumber("timestamp")));
    }
    Ok(TraceRecord {
        at: SimTime::from_secs_f64(ts),
        data: data_id(asu, lba),
        size,
        op,
    })
}

/// Serializes a [`Trace`] back to SPC text (for round-trip tests and for
/// exporting synthetic traces in a standard format). The `(asu, lba)`
/// encoding of [`data_id`] is inverted.
pub fn to_string(trace: &Trace) -> String {
    let mut out = String::new();
    for r in trace.records() {
        let asu = (r.data.0 >> 48) as u16;
        let lba = r.data.0 & ((1u64 << 48) - 1);
        let op = match r.op {
            OpKind::Read => 'r',
            OpKind::Write => 'w',
        };
        out.push_str(&format!(
            "{},{},{},{},{:.6}\n",
            asu,
            lba,
            r.size,
            op,
            r.at.as_secs_f64()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_financial1_style_lines() {
        let text = "\
0,20941264,8192,W,0.551706
0,20939840,8192,W,0.554041
1,3436288,15872,r,1.011732
# a comment

2,515200,3072,R,2.97794
";
        let t = parse(text).unwrap();
        assert_eq!(t.len(), 4);
        assert_eq!(t.reads_only().len(), 2);
        assert_eq!(t.records()[0].size, 8192);
        assert_eq!(t.records()[0].op, OpKind::Write);
        assert_eq!(t.records()[2].data, data_id(1, 3436288));
        assert_eq!(t.records()[0].at, SimTime::from_secs_f64(0.551706));
    }

    #[test]
    fn distinct_asu_same_lba_are_distinct_data() {
        assert_ne!(data_id(0, 100), data_id(1, 100));
        assert_eq!(data_id(3, 100), data_id(3, 100));
    }

    #[test]
    fn rejects_short_lines() {
        let e = parse("1,2,3\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert_eq!(e.kind, SpcErrorKind::TooFewFields);
    }

    #[test]
    fn rejects_bad_numbers() {
        let e = parse("x,2,3,r,0.5\n").unwrap_err();
        assert_eq!(e.kind, SpcErrorKind::BadNumber("asu"));
        let e = parse("1,2,3,r,notatime\n").unwrap_err();
        assert_eq!(e.kind, SpcErrorKind::BadNumber("timestamp"));
        let e = parse("1,2,3,r,-5\n").unwrap_err();
        assert_eq!(e.kind, SpcErrorKind::BadNumber("timestamp"));
    }

    #[test]
    fn rejects_bad_opcode() {
        let e = parse("1,2,3,x,0.5\n").unwrap_err();
        assert_eq!(e.kind, SpcErrorKind::BadOpcode("x".into()));
        assert_eq!(e.line, 1);
    }

    #[test]
    fn error_lines_are_accurate() {
        let e = parse("1,2,3,r,0.5\n1,2,3,r,bad\n").unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn roundtrip() {
        let text = "0,1024,4096,r,0.500000\n7,2048,8192,w,1.250000\n";
        let t = parse(text).unwrap();
        assert_eq!(to_string(&t), text);
    }

    #[test]
    fn display_messages() {
        let e = parse("1,2,3,z,0.5\n").unwrap_err();
        assert!(e.to_string().contains("invalid opcode"));
        let e = parse("1\n").unwrap_err();
        assert!(e.to_string().contains("too few fields"));
    }

    #[test]
    fn whitespace_tolerant() {
        let t = parse(" 1 , 2 , 3 , r , 0.5 \n").unwrap();
        assert_eq!(t.len(), 1);
    }
}
