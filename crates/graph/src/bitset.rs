//! Word-packed `u64` bitset primitives shared by the exact solvers.
//!
//! Both branch-and-bound oracles ([`crate::mwis::exact`] and
//! [`crate::setcover::SetCoverInstance::solve_exact`]) keep their search
//! state as flat `&[u64]` word slices: an alive/covered set of `words_for(n)`
//! words, a row-major `n × words_for(n)` mask table (closed neighborhoods,
//! set element masks), and an undo arena with one `words_for(n)`-word slot
//! per search depth. Everything here operates on plain slices so the solvers
//! can carve rows and slots out of single allocations without lifetimes or
//! wrapper types getting in the way.

/// Number of `u64` words needed to hold `bits` bits.
#[inline]
pub fn words_for(bits: usize) -> usize {
    bits.div_ceil(64)
}

/// Sets bit `i`.
#[inline]
pub fn set(words: &mut [u64], i: usize) {
    words[i / 64] |= 1u64 << (i % 64);
}

/// Clears bit `i`.
#[inline]
pub fn clear(words: &mut [u64], i: usize) {
    words[i / 64] &= !(1u64 << (i % 64));
}

/// Tests bit `i`.
#[inline]
pub fn test(words: &[u64], i: usize) -> bool {
    (words[i / 64] >> (i % 64)) & 1 == 1
}

/// Number of set bits.
#[inline]
pub fn count(words: &[u64]) -> usize {
    words.iter().map(|w| w.count_ones() as usize).sum()
}

/// Number of set bits in `a & b` without materializing the intersection.
#[inline]
pub fn intersection_count(a: &[u64], b: &[u64]) -> usize {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x & y).count_ones() as usize)
        .sum()
}

/// Index of the lowest set bit, if any.
#[inline]
pub fn first_set(words: &[u64]) -> Option<usize> {
    words
        .iter()
        .position(|&w| w != 0)
        .map(|i| i * 64 + words[i].trailing_zeros() as usize)
}

/// Iterates the indices of set bits in ascending order.
pub fn ones(words: &[u64]) -> Ones<'_> {
    Ones {
        words,
        idx: 0,
        cur: words.first().copied().unwrap_or(0),
    }
}

/// Iterator over set-bit indices, lowest first (see [`ones`]).
pub struct Ones<'a> {
    words: &'a [u64],
    idx: usize,
    cur: u64,
}

impl Iterator for Ones<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.cur == 0 {
            self.idx += 1;
            if self.idx >= self.words.len() {
                return None;
            }
            self.cur = self.words[self.idx];
        }
        let bit = self.cur.trailing_zeros() as usize;
        self.cur &= self.cur - 1; // drop the lowest set bit
        Some(self.idx * 64 + bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_for_boundaries() {
        assert_eq!(words_for(0), 0);
        assert_eq!(words_for(1), 1);
        assert_eq!(words_for(64), 1);
        assert_eq!(words_for(65), 2);
        assert_eq!(words_for(128), 2);
        assert_eq!(words_for(129), 3);
    }

    #[test]
    fn set_clear_test_roundtrip() {
        let mut ws = vec![0u64; 2];
        for i in [0usize, 1, 63, 64, 90, 127] {
            assert!(!test(&ws, i));
            set(&mut ws, i);
            assert!(test(&ws, i));
        }
        assert_eq!(count(&ws), 6);
        clear(&mut ws, 64);
        assert!(!test(&ws, 64));
        assert_eq!(count(&ws), 5);
    }

    #[test]
    fn ones_crosses_word_boundaries() {
        let mut ws = vec![0u64; 3];
        let bits = [3usize, 63, 64, 100, 128, 191];
        for &b in &bits {
            set(&mut ws, b);
        }
        assert_eq!(ones(&ws).collect::<Vec<_>>(), bits);
        assert_eq!(first_set(&ws), Some(3));
    }

    #[test]
    fn empty_and_zero_sets() {
        assert_eq!(ones(&[]).next(), None);
        assert_eq!(first_set(&[]), None);
        assert_eq!(first_set(&[0, 0]), None);
        assert_eq!(count(&[]), 0);
    }

    #[test]
    fn intersection_count_matches_manual() {
        let a = [0b1011u64, u64::MAX];
        let b = [0b0110u64, 1u64 << 63];
        assert_eq!(intersection_count(&a, &b), 1 + 1);
    }
}
