//! Energy-aware `MWIS` offline planner (paper §3.1, Fig. 4).
//!
//! Given the entire request stream up front, scheduling is reduced to
//! maximum-weight independent set:
//!
//! * **Step 1** — one graph node per candidate saving `X(i,j,k) > 0`: a
//!   pair of requests `r_i`, `r_j` (`t_i < t_j`, gap inside the saving
//!   window) whose data both live on disk `d_k`, weighted by Eq. 3.
//! * **Step 2** — an edge for every violated constraint pair:
//!   *energy-constraint* (two nodes claim the same `r_i`) and
//!   *schedule-constraint* (two nodes share a request but name different
//!   disks).
//! * **Step 3** — solve MWIS (the paper uses the GMIN greedy \[22\]).
//! * **Step 4** — derive the assignment: each selected `X(i,j,k)` pins
//!   `r_i` and `r_j` to `d_k`; leftover requests go to any location
//!   (cheapest by recent-use, ties to lower disk id).
//!
//! ### Node pruning
//!
//! The formulation admits a node for *every* in-window pair on a disk,
//! which is quadratic in per-disk request density. Since `X` shrinks as
//! the gap grows, far successors are dominated by near ones; the planner
//! keeps the nearest [`MwisPlanner::max_successors`] successors per
//! `(request, disk)` (default 3, configurable; tests use exhaustive
//! settings on small instances).

use spindown_disk::power::PowerParams;
use spindown_sim::pool;
use spindown_sim::time::SimTime;

use spindown_graph::csr::CsrGraph;
use spindown_graph::delta::DeltaGraph;
use spindown_graph::graph::{Graph, GraphView, NodeId};
use spindown_graph::mwis as solvers;

use crate::model::{Assignment, DiskId, Request};
use crate::saving::SavingModel;
use crate::sched::LocationProvider;

/// Which MWIS algorithm Step 3 runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MwisSolver {
    /// The paper's GMIN greedy (Sakai et al. \[22\]).
    GwMin,
    /// Weight-ratio greedy variant — the "more sophisticated independent
    /// set algorithm" the paper suggests would save more (§5.1).
    GwMin2,
    /// GWMIN followed by (1,2)-swap local search.
    GwMinLocalSearch,
    /// Exact branch-and-bound — only feasible on small instances; falls
    /// back to GWMIN above the given node budget.
    Exact {
        /// Maximum node count before falling back to GWMIN.
        node_limit: usize,
    },
    /// GWMIN followed by assignment-level hill climbing
    /// ([`crate::refine::refine_assignment`]) — an extension beyond the
    /// paper that directly improves the derived schedule.
    GwMinRefined {
        /// Maximum hill-climbing passes over the request stream.
        passes: usize,
    },
}

impl MwisSolver {
    /// Exact branch-and-bound at the solver library's default node budget
    /// ([`solvers::DEFAULT_NODE_LIMIT`]) — raised from the old hardcoded
    /// 64 now that the iterative bitset solver carries larger instances.
    pub fn exact_default() -> Self {
        MwisSolver::Exact {
            node_limit: solvers::DEFAULT_NODE_LIMIT,
        }
    }
}

/// A constructed Step 1/2 graph plus the metadata to interpret its nodes,
/// generic over the graph storage backend.
///
/// The production pipeline freezes the conflict graph into
/// [`CsrGraph`] (see [`ConflictGraph`]); the incremental reference build
/// keeps the mutable adjacency-list [`Graph`] as its oracle backend.
#[derive(Debug)]
pub struct ConflictGraphOn<G> {
    /// The node-weighted conflict graph.
    pub graph: G,
    /// Per node: the `(i, j, k)` triple it encodes.
    pub nodes: Vec<(u32, u32, DiskId)>,
}

/// The default conflict graph: CSR storage, built once and solved many
/// times — sorted flat adjacency gives the MWIS cascades contiguous
/// neighbor scans and `has_edge` a binary search.
pub type ConflictGraph = ConflictGraphOn<CsrGraph>;

/// Reusable working memory for repeated planner solves: the greedy
/// engine's [`GreedyScratch`](solvers::GreedyScratch) plus the selection
/// vector the solve writes into. A scratch warmed on one window performs
/// zero allocations on every later greedy solve of windows no larger
/// than the warm one — the property the rolling-horizon re-planning
/// loop (ROADMAP) and the bench harness's `allocs_per_solve` gauge
/// depend on. Carries no results between solves.
#[derive(Default)]
pub struct PlanScratch {
    greedy: solvers::GreedyScratch,
    /// Selection of the most recent [`MwisPlanner::solve_into`] call,
    /// sorted ascending.
    pub selected: Vec<NodeId>,
}

impl PlanScratch {
    /// An empty scratch; buffers are sized lazily by the first solve.
    pub fn new() -> Self {
        PlanScratch::default()
    }
}

/// Minimum build size — candidate-pair units, `requests ×
/// max_successors` — below which [`MwisPlanner::build_graph_with_jobs`]
/// stays serial regardless of the requested worker count.
///
/// Sharding a build costs two pool spawns (Step 1 disk ranges, Step 2
/// bucket ranges) plus the shard merges; on builds enumerating fewer
/// than ~2 k candidate pairs the whole serial build finishes in tens of
/// microseconds, below the spawn overhead alone, which is how
/// `graph_build_parallel_speedup` regressed under 1.0 on few-core hosts.
/// This mirrors the offline evaluator's
/// [`MIN_PARALLEL_WORK`](crate::offline::MIN_PARALLEL_WORK) guard; the
/// value is recorded in DESIGN.md §12. The parallel-determinism suite's
/// instances all enumerate ≥ 2 400 candidate pairs, so the sharded path
/// stays genuinely exercised.
pub const MIN_PARALLEL_BUILD_WORK: usize = 1 << 11;

/// The offline scheduler.
#[derive(Debug, Clone)]
pub struct MwisPlanner {
    /// Power model (for Eq. 3 weights and the saving window).
    pub params: PowerParams,
    /// Step 3 algorithm.
    pub solver: MwisSolver,
    /// Per-(request, disk) successor fan-out kept in Step 1.
    pub max_successors: usize,
}

impl MwisPlanner {
    /// Planner with the paper's configuration: GMIN greedy, pruned
    /// successor fan-out.
    pub fn new(params: PowerParams) -> Self {
        MwisPlanner {
            params,
            solver: MwisSolver::GwMin,
            max_successors: 3,
        }
    }

    /// Per-disk time-ordered request lists — the Step 1 enumeration
    /// input, shared by the serial and sharded drivers.
    fn per_disk_lists(requests: &[Request], placement: &dyn LocationProvider) -> Vec<Vec<u32>> {
        let mut per_disk: Vec<Vec<u32>> = vec![Vec::new(); placement.disks() as usize];
        for r in requests {
            for d in placement.locations(r.data) {
                per_disk[d.index()].push(r.index);
            }
        }
        per_disk
    }

    /// Step 1 inner loop for one disk: emits every candidate saving
    /// `X(i,j,k) > 0` among successor pairs on `list` (the disk's
    /// time-ordered request ids), appending to `weights`/`nodes` and
    /// reporting both endpoints of each new node through `touch`. Shared
    /// verbatim by the serial and sharded Step 1 drivers so the two
    /// paths cannot diverge.
    #[allow(clippy::too_many_arguments)]
    fn step1_disk(
        model: &SavingModel,
        requests: &[Request],
        max_successors: usize,
        k: usize,
        list: &[u32],
        weights: &mut Vec<f64>,
        nodes: &mut Vec<(u32, u32, DiskId)>,
        touch: &mut dyn FnMut(u32, NodeId),
    ) {
        for (pos, &i) in list.iter().enumerate() {
            let ti = requests[i as usize].at;
            for &j in list[pos + 1..].iter().take(max_successors) {
                let tj = requests[j as usize].at;
                // Strict ordering per Eq. 4 (t_i < t_j). Same-instant
                // pairs are ordered by stream index, which is the
                // paper's batch situation — allow them with gap 0.
                let x = model.pair_saving_j(ti, tj);
                if x <= 0.0 {
                    // Later successors only have larger gaps on this
                    // disk, so stop early.
                    break;
                }
                let id = weights.len() as NodeId;
                weights.push(x);
                nodes.push((i, j, DiskId(k as u32)));
                touch(i, id);
                touch(j, id);
            }
        }
    }

    /// Step 1 shared by both graph builders: one node per candidate
    /// saving `X(i,j,k) > 0`. Returns the node weights, the `(i, j, k)`
    /// triple per node, and per-request buckets of touching nodes that
    /// Step 2 scans for conflicts.
    #[allow(clippy::type_complexity)]
    fn step1_nodes(
        &self,
        requests: &[Request],
        placement: &dyn LocationProvider,
    ) -> (Vec<f64>, Vec<(u32, u32, DiskId)>, Vec<Vec<NodeId>>) {
        debug_assert!(
            requests.windows(2).all(|w| w[0].at <= w[1].at),
            "requests must be sorted by time"
        );
        let model = SavingModel::new(&self.params);
        let per_disk = Self::per_disk_lists(requests, placement);

        let mut weights: Vec<f64> = Vec::new();
        let mut nodes: Vec<(u32, u32, DiskId)> = Vec::new();
        let mut touching: Vec<Vec<NodeId>> = vec![Vec::new(); requests.len()];
        for (k, list) in per_disk.iter().enumerate() {
            Self::step1_disk(
                &model,
                requests,
                self.max_successors,
                k,
                list,
                &mut weights,
                &mut nodes,
                &mut |r, id| touching[r as usize].push(id),
            );
        }
        (weights, nodes, touching)
    }

    /// Sharded Step 1: contiguous disk ranges fan out across the pool,
    /// each shard emitting locally-numbered nodes plus `(request,
    /// local_id)` touch records in its own emission order.
    ///
    /// The merge walks shards in shard-index order, offsetting each
    /// shard's local ids by the node count of all earlier shards — which
    /// is exactly the serial disk-order id sequence, so `weights`,
    /// `nodes`, and every `touching[r]` bucket come out byte-identical
    /// to [`step1_nodes`](Self::step1_nodes) for any `jobs` value.
    #[allow(clippy::type_complexity)]
    fn step1_nodes_sharded(
        &self,
        requests: &[Request],
        placement: &dyn LocationProvider,
        jobs: usize,
    ) -> (Vec<f64>, Vec<(u32, u32, DiskId)>, Vec<Vec<NodeId>>) {
        debug_assert!(
            requests.windows(2).all(|w| w[0].at <= w[1].at),
            "requests must be sorted by time"
        );
        let model = SavingModel::new(&self.params);
        let per_disk = Self::per_disk_lists(requests, placement);
        let ranges = pool::shard_ranges(per_disk.len(), pool::default_shards(jobs, per_disk.len()));
        let max_successors = self.max_successors;
        let parts = pool::map_indexed(jobs, ranges.len(), |s| {
            let mut weights: Vec<f64> = Vec::new();
            let mut nodes: Vec<(u32, u32, DiskId)> = Vec::new();
            let mut touches: Vec<(u32, NodeId)> = Vec::new();
            for k in ranges[s].clone() {
                Self::step1_disk(
                    &model,
                    requests,
                    max_successors,
                    k,
                    &per_disk[k],
                    &mut weights,
                    &mut nodes,
                    &mut |r, id| touches.push((r, id)),
                );
            }
            (weights, nodes, touches)
        });

        let total: usize = parts.iter().map(|p| p.0.len()).sum();
        let mut weights: Vec<f64> = Vec::with_capacity(total);
        let mut nodes: Vec<(u32, u32, DiskId)> = Vec::with_capacity(total);
        let mut touching: Vec<Vec<NodeId>> = vec![Vec::new(); requests.len()];
        for (w, n, t) in parts {
            let offset = weights.len() as NodeId;
            weights.extend(w);
            nodes.extend(n);
            for (r, local) in t {
                touching[r as usize].push(offset + local);
            }
        }
        (weights, nodes, touching)
    }

    /// Step 2 conflict scan over one request bucket, reporting each edge
    /// through `emit` exactly once (the two-shared-request case is
    /// emitted from bucket `i` only). Shared verbatim by the serial
    /// builder feed and the sharded edge-bucket producers.
    fn step2_bucket(
        nodes: &[(u32, u32, DiskId)],
        r: usize,
        bucket: &[NodeId],
        emit: &mut dyn FnMut(NodeId, NodeId),
    ) {
        for (a_pos, &a) in bucket.iter().enumerate() {
            let (ia, ja, ka) = nodes[a as usize];
            for &b in &bucket[a_pos + 1..] {
                let (ib, jb, kb) = nodes[b as usize];
                if ia == ib || ja == jb || ka != kb {
                    // A pair sharing *both* requests — the same (i, j)
                    // hosted on two disks — co-occurs in bucket i and
                    // again in bucket j. Emit it from bucket i only so
                    // every conflict edge is recorded exactly once.
                    if ia == ib && ja == jb && r != ia as usize {
                        continue;
                    }
                    emit(a, b);
                }
            }
        }
    }

    /// Pair-count upper bound on the conflict records bucket range
    /// `lens` can emit: every co-bucket pair, `Σ C(|bucket|, 2)`. Sizes
    /// the flat Step 2 edge arenas in `O(#buckets)` — an over-count only
    /// by chained pairs (no conflict) and two-shared-request pairs
    /// (emitted from one bucket), so the arenas never reallocate and
    /// carry little slack.
    fn step2_arena_bound<'a>(lens: impl Iterator<Item = &'a Vec<NodeId>>) -> usize {
        lens.map(|b| b.len() * b.len().saturating_sub(1) / 2).sum()
    }

    /// Builds the Step 1/2 conflict graph for `requests` (sorted by
    /// time) under `placement`.
    ///
    /// Step 2 emits each conflict edge exactly once into a flat
    /// `(u32, u32)` edge arena sized up front by a counting pass over the
    /// bucket sizes, and the arena scatters straight into CSR storage
    /// through [`CsrGraph::from_unique_edges`] — one exactly-reserved
    /// neighbor allocation, no per-node `Vec` growth, no builder replay.
    /// `O(E log d̄)` in the conflict count for the per-slice sorts. The
    /// resulting graph encodes exactly the edge set produced by
    /// [`build_graph_incremental`](MwisPlanner::build_graph_incremental),
    /// with each neighbor slice sorted ascending.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `requests` is not time-sorted.
    pub fn build_graph(
        &self,
        requests: &[Request],
        placement: &dyn LocationProvider,
    ) -> ConflictGraph {
        let (weights, nodes, touching) = self.step1_nodes(requests, placement);

        // Step 2: edges. Two nodes sharing a request conflict unless they
        // chain on the same disk (j == i'): same primary request (both
        // claim r_i's saving), same successor (r_j can immediately succeed
        // only one request per disk — this is the Fig. 4 edge set, where
        // X(1,3,1) and X(2,3,1) conflict "because of the energy-constraint
        // of request r3"), or same request pinned to different disks (the
        // schedule-constraint).
        let mut edges: Vec<(NodeId, NodeId)> =
            Vec::with_capacity(Self::step2_arena_bound(touching.iter()));
        for (r, bucket) in touching.iter().enumerate() {
            Self::step2_bucket(&nodes, r, bucket, &mut |a, b| edges.push((a, b)));
        }

        ConflictGraph {
            graph: CsrGraph::from_unique_edges(weights, &edges),
            nodes,
        }
    }

    /// Parallel [`build_graph`](MwisPlanner::build_graph): Step 1 shards
    /// over contiguous disk ranges, Step 2 over contiguous request-bucket
    /// ranges, each Step 2 shard collecting its conflicts into a private
    /// preallocated edge arena (sized by the same counting pass as the
    /// serial path, restricted to the shard's buckets). The arenas
    /// scatter straight into CSR storage through
    /// [`CsrGraph::from_unique_edge_shards`], which walks them in
    /// shard-index order — the serial emission sequence — so the returned
    /// graph is **bit-identical** to `jobs = 1` for any worker count with
    /// no intermediate merge or builder replay.
    /// ([`GraphBuilder::merge_edge_shards`](spindown_graph::graph::GraphBuilder::merge_edge_shards)
    /// remains the replay-based oracle for that equivalence.) `jobs <= 1`
    /// takes the serial path and spawns nothing, as do builds smaller
    /// than [`MIN_PARALLEL_BUILD_WORK`] candidate pairs — too little
    /// work to amortize the pool spawns.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `requests` is not time-sorted.
    pub fn build_graph_with_jobs(
        &self,
        requests: &[Request],
        placement: &dyn LocationProvider,
        jobs: usize,
    ) -> ConflictGraph {
        let work = requests.len().saturating_mul(self.max_successors);
        if jobs <= 1 || work < MIN_PARALLEL_BUILD_WORK {
            return self.build_graph(requests, placement);
        }
        let (weights, nodes, touching) = self.step1_nodes_sharded(requests, placement, jobs);

        let ranges = pool::shard_ranges(touching.len(), pool::default_shards(jobs, touching.len()));
        let nodes_ref = &nodes;
        let touching_ref = &touching;
        let edge_shards: Vec<Vec<(NodeId, NodeId)>> = pool::map_indexed(jobs, ranges.len(), |s| {
            let bound = Self::step2_arena_bound(touching_ref[ranges[s].clone()].iter());
            let mut edges: Vec<(NodeId, NodeId)> = Vec::with_capacity(bound);
            for r in ranges[s].clone() {
                Self::step2_bucket(nodes_ref, r, &touching_ref[r], &mut |a, b| {
                    edges.push((a, b));
                });
            }
            edges
        });

        ConflictGraph {
            graph: CsrGraph::from_unique_edge_shards(weights, &edge_shards),
            nodes,
        }
    }

    /// Reference Step 2 that grows the adjacency incrementally through
    /// [`Graph::add_edge`], re-discovering two-shared-request conflicts
    /// from both buckets and relying on `add_edge`'s per-insert linear
    /// dedup scan — `O(E · d̄)` overall versus [`build_graph`]'s bulk
    /// path. Produces the identical edge set on the mutable
    /// adjacency-list backend (neighbor lists in insertion order, not
    /// sorted); retained as the equivalence oracle and the benchmark
    /// baseline.
    ///
    /// [`build_graph`]: MwisPlanner::build_graph
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `requests` is not time-sorted.
    pub fn build_graph_incremental(
        &self,
        requests: &[Request],
        placement: &dyn LocationProvider,
    ) -> ConflictGraphOn<Graph> {
        let (weights, nodes, touching) = self.step1_nodes(requests, placement);

        let mut graph = Graph::with_weights(weights);
        for bucket in &touching {
            for (a_pos, &a) in bucket.iter().enumerate() {
                let (ia, ja, ka) = nodes[a as usize];
                for &b in &bucket[a_pos + 1..] {
                    let (ib, jb, kb) = nodes[b as usize];
                    if ia == ib || ja == jb || ka != kb {
                        graph.add_edge(a, b);
                    }
                }
            }
        }

        ConflictGraphOn { graph, nodes }
    }

    /// Runs Step 3 on a built graph, returning the selected node ids.
    /// Generic over the storage backend so the CSR production path and
    /// the adjacency-list oracle run the same solver code.
    pub fn solve<G: GraphView>(&self, cg: &ConflictGraphOn<G>) -> Vec<NodeId> {
        let mut scratch = PlanScratch::new();
        self.solve_into(cg, &mut scratch);
        scratch.selected
    }

    /// [`solve`](MwisPlanner::solve) with caller-owned working memory:
    /// the selection lands in `scratch.selected` and the greedy engine
    /// runs out of `scratch`'s warm buffers, so repeated windows through
    /// one scratch allocate nothing for the greedy solvers. The scratch
    /// carries no state between solves — results are identical to a
    /// fresh [`solve`](MwisPlanner::solve) call.
    pub fn solve_into<G: GraphView>(&self, cg: &ConflictGraphOn<G>, scratch: &mut PlanScratch) {
        self.solve_view_into(&cg.graph, scratch);
    }

    /// [`solve_into`](MwisPlanner::solve_into) on a bare graph view —
    /// the entry point for callers that hold the graph and its node
    /// metadata separately, like the rolling-horizon
    /// [`WindowedPlanner`] solving the compacted window graph in place.
    pub fn solve_view_into<G: GraphView>(&self, graph: &G, scratch: &mut PlanScratch) {
        let PlanScratch { greedy, selected } = scratch;
        match self.solver {
            MwisSolver::GwMin => solvers::gwmin_into(graph, greedy, selected),
            MwisSolver::GwMin2 => solvers::gwmin2_into(graph, greedy, selected),
            MwisSolver::GwMinLocalSearch => {
                solvers::gwmin_into(graph, greedy, selected);
                *selected = solvers::local_search(graph, selected);
            }
            MwisSolver::Exact { node_limit } => match solvers::exact(graph, node_limit) {
                Some(sel) => *selected = sel,
                None => solvers::gwmin_into(graph, greedy, selected),
            },
            MwisSolver::GwMinRefined { .. } => solvers::gwmin_into(graph, greedy, selected),
        }
    }

    /// Full pipeline: build, solve, derive (Step 4). Returns the
    /// assignment and the solver's total claimed saving (joules).
    pub fn plan(
        &self,
        requests: &[Request],
        placement: &dyn LocationProvider,
    ) -> (Assignment, f64) {
        self.plan_with_jobs(requests, placement, 1)
    }

    /// [`plan`](MwisPlanner::plan) with the graph build fanned across
    /// `jobs` workers ([`build_graph_with_jobs`]). Steps 3–4 are
    /// unchanged, so the plan is bit-identical for any `jobs` value.
    ///
    /// [`build_graph_with_jobs`]: MwisPlanner::build_graph_with_jobs
    pub fn plan_with_jobs(
        &self,
        requests: &[Request],
        placement: &dyn LocationProvider,
        jobs: usize,
    ) -> (Assignment, f64) {
        self.plan_with_scratch(requests, placement, jobs, &mut PlanScratch::new())
    }

    /// [`plan_with_jobs`](MwisPlanner::plan_with_jobs) solving out of a
    /// caller-owned [`PlanScratch`], so a rolling-horizon driver that
    /// re-plans window after window pays the greedy engine's working-set
    /// allocations once. The plan is identical to a fresh-scratch call
    /// for any reuse pattern.
    pub fn plan_with_scratch(
        &self,
        requests: &[Request],
        placement: &dyn LocationProvider,
        jobs: usize,
        scratch: &mut PlanScratch,
    ) -> (Assignment, f64) {
        let cg = self.build_graph_with_jobs(requests, placement, jobs);
        self.solve_into(&cg, scratch);
        self.derive_plan(requests, placement, &cg.graph, &cg.nodes, &scratch.selected)
    }

    /// Step 4 plus the claimed-saving sum, shared verbatim by
    /// [`plan_with_scratch`](MwisPlanner::plan_with_scratch) and the
    /// rolling-horizon [`WindowedPlanner`]: walks `selected` in id order
    /// (fixing the float-accumulation order of the claimed saving), pins
    /// each selected node's request pair, and routes leftovers to their
    /// most-recently-used replica — so any two callers handing in the
    /// same graph, node table, and selection derive bit-identical plans.
    pub fn derive_plan<G: GraphView>(
        &self,
        requests: &[Request],
        placement: &dyn LocationProvider,
        graph: &G,
        nodes: &[(u32, u32, DiskId)],
        selected: &[NodeId],
    ) -> (Assignment, f64) {
        let claimed: f64 = selected.iter().map(|&v| graph.weight(v)).sum();

        // Step 4: pin requests named by selected nodes.
        let mut assignment = Assignment::with_len(requests.len());
        let mut pinned = vec![false; requests.len()];
        for &v in selected {
            let (i, j, k) = nodes[v as usize];
            for r in [i, j] {
                let r = r as usize;
                debug_assert!(
                    !pinned[r] || assignment.disks[r] == k,
                    "constraint violation: request pinned to two disks"
                );
                assignment.disks[r] = k;
                pinned[r] = true;
            }
        }

        // Leftovers: any location is energetically equivalent (no saving
        // was available); choose the location that most recently received
        // a pinned/earlier request, falling back to the original copy.
        // This mirrors the paper's Fig. 4 Step 4 note about r4.
        let mut last_use: Vec<Option<u32>> = vec![None; placement.disks() as usize];
        for (r, req) in requests.iter().enumerate() {
            if pinned[r] {
                last_use[assignment.disks[r].index()] = Some(req.index);
                continue;
            }
            let locs = placement.locations(req.data);
            let choice = locs
                .iter()
                .max_by_key(|d| {
                    (
                        last_use[d.index()].map(|t| t as i64).unwrap_or(-1),
                        std::cmp::Reverse(d.0),
                    )
                })
                .copied()
                .expect("non-empty locations");
            assignment.disks[r] = choice;
            last_use[choice.index()] = Some(req.index);
        }
        if let MwisSolver::GwMinRefined { passes } = self.solver {
            crate::refine::refine_assignment(
                requests,
                &mut assignment,
                placement,
                &self.params,
                None,
                passes,
            );
        }
        (assignment, claimed)
    }
}

/// Counters kept by [`WindowedPlanner`]: cumulative delta sizes across
/// every [`advance`](WindowedPlanner::advance) plus gauges describing
/// the most recent window. The ratio of `appended_nodes_total` to
/// `graph_nodes × windows` is the turnover the incremental path paid
/// for, versus the full rebuild a from-scratch planner would have run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ReplanStats {
    /// Windows planned so far (every `advance` call).
    pub windows: u64,
    /// Advances that flattened a non-empty delta back to flat CSR;
    /// empty-delta advances skip compaction and re-solve the base.
    pub compactions: u64,
    /// Requests retired across all advances.
    pub retired_requests_total: u64,
    /// Requests arrived across all advances.
    pub arrived_requests_total: u64,
    /// Conflict-graph nodes tombstoned across all advances.
    pub retired_nodes_total: u64,
    /// Conflict-graph nodes appended across all advances.
    pub appended_nodes_total: u64,
    /// Conflict edges staged through the overlay across all advances.
    pub staged_edges_total: u64,
    /// Requests in the current window.
    pub window_requests: usize,
    /// Nodes in the current window's conflict graph.
    pub graph_nodes: usize,
    /// Edges in the current window's conflict graph.
    pub graph_edges: usize,
}

/// High bit of a bucket entry's packed disk word: set on nodes appended
/// by the in-flight advance, cleared on survivors. Valid only within one
/// advance — buckets are rebuilt (and the flag reset) every window.
const NEW_BIT: u32 = 1 << 31;

/// Rolling-horizon incremental re-planner (ROADMAP; the paper's WSC
/// batch mode run as a sliding window).
///
/// Holds one planning window of requests and its conflict graph, and
/// [`advance`](WindowedPlanner::advance)s the window by retiring
/// everything before a new horizon and admitting a batch of arrivals.
/// Instead of re-running Steps 1–2 over the whole window, an advance
/// computes the **delta**:
///
/// * retired requests tombstone their nodes in a [`DeltaGraph`] overlay
///   over the previous window's CSR graph;
/// * arriving requests extend the per-disk lists, and only the *resume
///   region* — the last `max_successors` surviving positions of each
///   disk, the only ones whose successor enumeration can grow — is
///   re-run through the shared Step 1 helper
///   (`MwisPlanner::step1_disk`), appending the genuinely new nodes;
/// * only request buckets touched by a new node are re-scanned through
///   the shared Step 2 helper (`step2_bucket`), staging exactly the
///   conflict edges that involve a new node.
///
/// The overlay is then compacted back to flat CSR under the canonical
/// disk-major emission order — the same id sequence a from-scratch
/// [`MwisPlanner::build_graph`] over the new window produces — so the
/// compacted graph is **bit-identical** to the full rebuild, and the
/// warm-scratch solve plus shared Step 4 derivation
/// ([`MwisPlanner::derive_plan`]) yield the bit-identical plan. The
/// from-scratch path is retained as the per-window oracle, pinned by
/// `core/tests/window_replan_differential.rs`.
///
/// Solves run out of one [`PlanScratch`] warmed on the first window:
/// later windows of no greater size allocate nothing in the greedy
/// engine (the `window_replan_allocs_per_solve` gauge in the bench
/// harness pins zero).
pub struct WindowedPlanner {
    planner: MwisPlanner,
    disks: u32,
    /// Current window, time-sorted, `index == position`.
    requests: Vec<Request>,
    /// Per-disk time-ordered request ids over the current window.
    per_disk: Vec<Vec<u32>>,
    /// Canonical `(i, j, k)` per node of the current window's graph.
    nodes: Vec<(u32, u32, DiskId)>,
    /// Per-request buckets of touching nodes, in emission order, split
    /// by the role the request plays: `bucket_i[r]` holds nodes whose
    /// *earlier* request is `r`, `bucket_j[r]` those whose *later*
    /// request is `r`. Each entry packs the node id with its disk (and,
    /// during an advance, a new-node flag in [`NEW_BIT`]) so the Step 2
    /// delta scan reads buckets sequentially with no node-table gathers.
    bucket_i: Vec<Vec<(NodeId, u32)>>,
    bucket_j: Vec<Vec<(NodeId, u32)>>,
    /// Overlay whose base is the current window's canonical CSR graph.
    delta: DeltaGraph,
    scratch: PlanScratch,
    /// Retired CSR arenas recycled into the next compaction.
    csr_buffers: (Vec<f64>, Vec<u32>, Vec<NodeId>),
    stats: ReplanStats,
}

impl WindowedPlanner {
    /// An empty window over a fleet of `disks` disks. The first
    /// [`advance`](WindowedPlanner::advance) loads the first window.
    pub fn new(planner: MwisPlanner, disks: u32) -> Self {
        WindowedPlanner {
            planner,
            disks,
            requests: Vec::new(),
            per_disk: vec![Vec::new(); disks as usize],
            nodes: Vec::new(),
            bucket_i: Vec::new(),
            bucket_j: Vec::new(),
            delta: DeltaGraph::new(CsrGraph::default()),
            scratch: PlanScratch::new(),
            csr_buffers: (Vec::new(), Vec::new(), Vec::new()),
            stats: ReplanStats::default(),
        }
    }

    /// The inner planner (power model, solver, pruning fan-out).
    pub fn planner(&self) -> &MwisPlanner {
        &self.planner
    }

    /// The current window's requests (window-relative ids).
    pub fn window(&self) -> &[Request] {
        &self.requests
    }

    /// The current window's conflict graph (canonical CSR).
    pub fn graph(&self) -> &CsrGraph {
        self.delta.base()
    }

    /// The current window's node table (`(i, j, k)` per graph node).
    pub fn node_table(&self) -> &[(u32, u32, DiskId)] {
        &self.nodes
    }

    /// Counters across all advances plus current-window gauges.
    pub fn stats(&self) -> &ReplanStats {
        &self.stats
    }

    /// Slides the window: retires every request with `at <
    /// expired_horizon`, admits `arrivals` at the tail, maintains the
    /// conflict graph by delta, and plans the new window. Returns the
    /// plan — assignment indexed by the new window's request positions
    /// ([`window`](WindowedPlanner::window)) plus the claimed saving —
    /// bit-identical to `MwisPlanner::plan` over the same window.
    ///
    /// `placement` must be the same provider on every call (placements
    /// are keyed by data id, so it is window-independent).
    ///
    /// # Panics
    ///
    /// Panics if `arrivals` are not time-sorted, start before the
    /// surviving window tail, or `placement` disagrees with the
    /// configured disk count.
    pub fn advance(
        &mut self,
        arrivals: &[Request],
        expired_horizon: SimTime,
        placement: &dyn LocationProvider,
    ) -> (Assignment, f64) {
        self.advance_with_jobs(arrivals, expired_horizon, placement, 1)
    }

    /// [`advance`](WindowedPlanner::advance) with an explicit worker
    /// count. Only the cold start benefits: loading a first window into
    /// an empty planner is a full from-scratch build, so it goes through
    /// the sharded [`MwisPlanner::build_graph_with_jobs`] path
    /// (bit-identical for any count). Warm advances are delta-sized and
    /// inherently serial — `jobs` is ignored there.
    pub fn advance_with_jobs(
        &mut self,
        arrivals: &[Request],
        expired_horizon: SimTime,
        placement: &dyn LocationProvider,
        jobs: usize,
    ) -> (Assignment, f64) {
        self.advance_window_with_jobs(arrivals, expired_horizon, placement, jobs);
        self.plan_current(placement)
    }

    /// The maintenance half of [`advance`](WindowedPlanner::advance):
    /// slides the window and delta-maintains the canonical conflict
    /// graph without solving it. Callers that only need the graph (or
    /// want to time maintenance apart from the solve) pair this with
    /// [`plan_current`](WindowedPlanner::plan_current).
    pub fn advance_window(
        &mut self,
        arrivals: &[Request],
        expired_horizon: SimTime,
        placement: &dyn LocationProvider,
    ) {
        self.advance_window_with_jobs(arrivals, expired_horizon, placement, 1)
    }

    /// [`advance_window`](WindowedPlanner::advance_window) with an
    /// explicit worker count for the cold-start build (see
    /// [`advance_with_jobs`](WindowedPlanner::advance_with_jobs)).
    pub fn advance_window_with_jobs(
        &mut self,
        arrivals: &[Request],
        expired_horizon: SimTime,
        placement: &dyn LocationProvider,
        jobs: usize,
    ) {
        assert_eq!(
            placement.disks(),
            self.disks,
            "placement disk count changed between advances"
        );
        assert!(
            arrivals.windows(2).all(|w| w[0].at <= w[1].at),
            "arrivals must be time-sorted"
        );
        let retired = self.requests.partition_point(|r| r.at < expired_horizon);
        if let (Some(last), Some(first)) = (self.requests.last(), arrivals.first()) {
            assert!(
                first.at >= last.at,
                "arrivals must not precede the window tail"
            );
        }
        let survivors = self.requests.len() - retired;

        self.stats.windows += 1;
        self.stats.retired_requests_total += retired as u64;
        self.stats.arrived_requests_total += arrivals.len() as u64;

        if retired == 0 && arrivals.is_empty() {
            // Empty delta: the window and its graph are unchanged — skip
            // maintenance and compaction entirely.
            return;
        }

        if self.requests.is_empty() {
            // Cold start: every request is an arrival and the delta *is*
            // the whole window, so run the from-scratch sharded build
            // directly. Counters mirror the delta path exactly (all
            // nodes appended, all edges staged, one flatten to
            // canonical CSR), keeping stats invariant in `jobs`.
            let reqs: Vec<Request> = arrivals
                .iter()
                .enumerate()
                .map(|(p, r)| Request {
                    index: p as u32,
                    ..*r
                })
                .collect();
            let cg = self.planner.build_graph_with_jobs(&reqs, placement, jobs);
            self.stats.appended_nodes_total += cg.nodes.len() as u64;
            self.stats.staged_edges_total += cg.graph.edge_count() as u64;
            self.stats.compactions += 1;
            for list in &mut self.per_disk {
                list.clear();
            }
            for r in &reqs {
                for d in placement.locations(r.data) {
                    self.per_disk[d.index()].push(r.index);
                }
            }
            // Buckets are reconstructed from the node table: canonical
            // emission pushes each node into its two request buckets in
            // increasing id order, so an id-order sweep reproduces them.
            let (mut bucket_i, mut bucket_j) =
                (std::mem::take(&mut self.bucket_i), std::mem::take(&mut self.bucket_j));
            for bucket in bucket_i.iter_mut().chain(bucket_j.iter_mut()) {
                bucket.clear();
            }
            bucket_i.resize_with(reqs.len(), Vec::new);
            bucket_j.resize_with(reqs.len(), Vec::new);
            for (id, &(i, j, k)) in cg.nodes.iter().enumerate() {
                bucket_i[i as usize].push((id as NodeId, k.0));
                bucket_j[j as usize].push((id as NodeId, k.0));
            }
            self.bucket_i = bucket_i;
            self.bucket_j = bucket_j;
            self.delta = DeltaGraph::new(cg.graph);
            self.nodes = cg.nodes;
            self.requests = reqs;
            self.refresh_gauges();
            return;
        }

        // ---- Request bookkeeping: rebase survivors, admit arrivals ----
        let mut reqs: Vec<Request> = Vec::with_capacity(survivors + arrivals.len());
        for (p, r) in self.requests[retired..].iter().enumerate() {
            reqs.push(Request {
                index: p as u32,
                ..*r
            });
        }
        for (p, r) in arrivals.iter().enumerate() {
            reqs.push(Request {
                index: (survivors + p) as u32,
                ..*r
            });
        }

        // Per-disk lists: retired ids are a prefix of every list (lists
        // are time-ordered and retirement is a time prefix); drop it,
        // rebase the survivors, and append the arrivals. `s_k` records
        // each list's survivor count — the boundary of the resume
        // region below.
        let mut survivors_per_disk: Vec<u32> = Vec::with_capacity(self.per_disk.len());
        for list in &mut self.per_disk {
            let cut = list.partition_point(|&i| (i as usize) < retired);
            list.drain(..cut);
            for i in list.iter_mut() {
                *i -= retired as u32;
            }
            survivors_per_disk.push(list.len() as u32);
        }
        for r in &reqs[survivors..] {
            for d in placement.locations(r.data) {
                self.per_disk[d.index()].push(r.index);
            }
        }

        // ---- Tombstone retired nodes ----
        // A node retires iff its *earlier* request does (i < j, and the
        // retired set is a time prefix), so the victims are exactly the
        // nodes whose `i` retired — a prefix of each disk's run.
        let old_nodes = std::mem::take(&mut self.nodes);
        let mut victims: Vec<NodeId> = Vec::new();
        for (id, &(i, _, _)) in old_nodes.iter().enumerate() {
            if (i as usize) < retired {
                victims.push(id as NodeId);
            }
        }
        // Deferred form: the victims' entries linger in surviving
        // adjacency lists (we never read overlay adjacency — the next
        // compaction filters them), skipping an `O(E)` copy-on-write
        // purge across nearly every survivor list.
        self.delta.tombstone_batch_deferred(&victims);
        self.stats.retired_nodes_total += victims.len() as u64;

        // ---- Step 1 delta: re-enumerate each disk's resume region ----
        // Only the last `max_successors` surviving positions can gain
        // successors (anything earlier already had a full fan-out or
        // broke on the saving window), plus every arrival position.
        // Re-running the shared Step 1 helper over that suffix
        // reproduces the from-scratch emission for those positions:
        // pairs among survivors are the nodes we already hold (consumed
        // 1:1 below), pairs with an arrival are genuinely new.
        let model = SavingModel::new(&self.planner.params);
        let ms = self.planner.max_successors;
        let mut tmp_weights: Vec<f64> = Vec::new();
        let mut tmp_nodes: Vec<(u32, u32, DiskId)> = Vec::new();
        let mut tmp_bounds: Vec<usize> = Vec::with_capacity(self.per_disk.len() + 1);
        tmp_bounds.push(0);
        for (k, list) in self.per_disk.iter().enumerate() {
            let resume = (survivors_per_disk[k] as usize).saturating_sub(ms);
            MwisPlanner::step1_disk(
                &model,
                &reqs,
                ms,
                k,
                &list[resume..],
                &mut tmp_weights,
                &mut tmp_nodes,
                &mut |_, _| {},
            );
            tmp_bounds.push(tmp_nodes.len());
        }

        // ---- Canonical walk: rebuild the id order, interleaving ----
        // From-scratch ids follow disk-major emission: per disk, nodes
        // grouped by the position of `i`, arrivals extending a survivor
        // group right after its surviving pairs. Surviving nodes keep
        // their relative order, so the overlay→canonical map is built in
        // one pass that merges each disk's surviving run with its resume
        // re-emission.
        let mut nodes_new: Vec<(u32, u32, DiskId)> =
            Vec::with_capacity(old_nodes.len() - victims.len() + tmp_nodes.len());
        let mut order: Vec<NodeId> = Vec::with_capacity(nodes_new.capacity());
        let (mut bucket_i, mut bucket_j) =
            (std::mem::take(&mut self.bucket_i), std::mem::take(&mut self.bucket_j));
        for bucket in bucket_i.iter_mut().chain(bucket_j.iter_mut()) {
            bucket.clear();
        }
        bucket_i.resize_with(reqs.len(), Vec::new);
        bucket_j.resize_with(reqs.len(), Vec::new);
        // One `(request, bucket position)` record per bucket entry of
        // each *new* node — the seeds of the Step 2 delta scan below,
        // one list per bucket family.
        let mut new_entries_i: Vec<(u32, u32)> = Vec::new();
        let mut new_entries_j: Vec<(u32, u32)> = Vec::new();

        let mut op = 0usize; // cursor over `old_nodes`
        let appended_before = self.delta.appended_count();
        for (k, list) in self.per_disk.iter().enumerate() {
            let dk = DiskId(k as u32);
            // Skip this disk's tombstoned prefix.
            while op < old_nodes.len() && old_nodes[op].2 == dk && (old_nodes[op].0 as usize) < retired
            {
                op += 1;
            }
            // First request id of the resume region (everything at or
            // past it is re-emitted through `tmp`).
            let resume = (survivors_per_disk[k] as usize).saturating_sub(ms);
            let resume_req = list.get(resume).copied().unwrap_or(u32::MAX);
            // (a) Surviving nodes whose `i` precedes the resume region.
            while op < old_nodes.len() && old_nodes[op].2 == dk && old_nodes[op].0 - (retired as u32) < resume_req
            {
                let (oi, oj, _) = old_nodes[op];
                let (i, j) = (oi - retired as u32, oj - retired as u32);
                let id = nodes_new.len() as NodeId;
                order.push(op as NodeId);
                nodes_new.push((i, j, dk));
                bucket_i[i as usize].push((id, dk.0));
                bucket_j[j as usize].push((id, dk.0));
                op += 1;
            }
            // (b) The resume region, replayed from the re-emission:
            // survivor pairs consume their existing node, arrival pairs
            // append a fresh overlay node.
            for t in tmp_bounds[k]..tmp_bounds[k + 1] {
                let (i, j, _) = tmp_nodes[t];
                let id = nodes_new.len() as NodeId;
                let mut flags = dk.0;
                if (j as usize) < survivors {
                    debug_assert!(
                        op < old_nodes.len()
                            && old_nodes[op].2 == dk
                            && old_nodes[op].0 - retired as u32 == i
                            && old_nodes[op].1 - retired as u32 == j,
                        "resume re-emission diverged from the stored node run"
                    );
                    debug_assert_eq!(self.delta.base().weight(op as NodeId), tmp_weights[t]);
                    order.push(op as NodeId);
                    op += 1;
                } else {
                    let overlay = self.delta.append_node(tmp_weights[t]);
                    order.push(overlay);
                    flags |= NEW_BIT;
                    // The node's bucket positions are the lengths right
                    // before the pushes just below.
                    new_entries_i.push((i, bucket_i[i as usize].len() as u32));
                    new_entries_j.push((j, bucket_j[j as usize].len() as u32));
                }
                nodes_new.push((i, j, dk));
                bucket_i[i as usize].push((id, flags));
                bucket_j[j as usize].push((id, flags));
            }
            debug_assert!(
                op >= old_nodes.len() || old_nodes[op].2 != dk,
                "disk {k} left surviving nodes unconsumed"
            );
        }
        debug_assert_eq!(op, old_nodes.len());
        let appended = self.delta.appended_count() - appended_before;
        self.stats.appended_nodes_total += appended as u64;

        // ---- Step 2 delta: scan only pairs with a new endpoint ----
        // Every new edge involves a new node, and a new node touches
        // exactly its two request buckets, so pairing each new node
        // against every other occupant of those buckets covers exactly
        // the pairs Step 2 would newly consider — `O(Σ bucket × new)`
        // instead of re-scanning whole buckets pairwise. The role split
        // collapses the generic conflict test (`ix == iy || jx == jy ||
        // kx != ky`): two nodes sharing their earlier request always
        // conflict; two sharing their later request conflict too, with
        // the pair that shares *both* requests emitted from bucket `i`
        // only (the designated-bucket rule `step2_bucket` applies); a
        // pred–succ pair shares exactly the scanned request and
        // conflicts iff the disks differ. Each edge stages once: a
        // new–new pair inside one family is claimed by its earlier
        // position, a new–new pred–succ pair by its pred-side entry.
        // Deferred staging puts the edge on the appended endpoint only
        // — no copy-on-write of survivor lists; compaction synthesizes
        // the partner half.
        let staged_before = self.delta.staged_edge_count();
        for &(r, p) in &new_entries_i {
            let preds = &bucket_i[r as usize];
            let succs = &bucket_j[r as usize];
            let (x, xf) = preds[p as usize];
            let ox = order[x as usize];
            for (q, &(y, yf)) in preds.iter().enumerate() {
                if q == p as usize || (q < p as usize && yf & NEW_BIT != 0) {
                    continue;
                }
                self.delta.add_edge_deferred(ox, order[y as usize]);
            }
            for &(y, yf) in succs.iter() {
                if yf & !NEW_BIT != xf & !NEW_BIT {
                    self.delta.add_edge_deferred(ox, order[y as usize]);
                }
            }
        }
        for &(r, p) in &new_entries_j {
            let succs = &bucket_j[r as usize];
            let preds = &bucket_i[r as usize];
            let (x, xf) = succs[p as usize];
            let ox = order[x as usize];
            let ix = nodes_new[x as usize].0;
            for (q, &(y, yf)) in succs.iter().enumerate() {
                if q == p as usize || (q < p as usize && yf & NEW_BIT != 0) {
                    continue;
                }
                if nodes_new[y as usize].0 == ix {
                    continue;
                }
                self.delta.add_edge_deferred(ox, order[y as usize]);
            }
            for &(y, yf) in preds.iter() {
                if yf & NEW_BIT != 0 {
                    continue;
                }
                if yf & !NEW_BIT != xf & !NEW_BIT {
                    self.delta.add_edge_deferred(ox, order[y as usize]);
                }
            }
        }
        self.stats.staged_edges_total += (self.delta.staged_edge_count() - staged_before) as u64;

        // ---- Compact back to flat CSR under the canonical order ----
        if self.delta.is_dirty() {
            let buffers = std::mem::take(&mut self.csr_buffers);
            let (csr, _) = self.delta.compact_into(&order, buffers);
            let retired_delta = std::mem::replace(&mut self.delta, DeltaGraph::new(csr));
            self.csr_buffers = retired_delta.into_base().into_parts();
            self.stats.compactions += 1;
        }
        self.nodes = nodes_new;
        self.bucket_i = bucket_i;
        self.bucket_j = bucket_j;
        self.requests = reqs;
        self.refresh_gauges();
    }

    fn refresh_gauges(&mut self) {
        self.stats.window_requests = self.requests.len();
        self.stats.graph_nodes = self.delta.base().len();
        self.stats.graph_edges = self.delta.base().edge_count();
    }

    /// Warm-scratch solve + shared Step 4 derivation over the current
    /// window's canonical graph. [`advance`](WindowedPlanner::advance)
    /// is [`advance_window`](WindowedPlanner::advance_window) followed
    /// by this.
    pub fn plan_current(&mut self, placement: &dyn LocationProvider) -> (Assignment, f64) {
        let graph = self.delta.base();
        self.planner.solve_view_into(graph, &mut self.scratch);
        self.planner.derive_plan(
            &self.requests,
            placement,
            graph,
            &self.nodes,
            &self.scratch.selected,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::DataId;
    use crate::sched::ExplicitPlacement;
    use spindown_sim::time::SimTime;

    /// The paper's running example (Figs. 3–4): 6 requests at
    /// t = 0,1,3,5,12,13; placement as in Fig. 2.
    fn paper_instance() -> (Vec<Request>, ExplicitPlacement) {
        let placement = ExplicitPlacement::new(
            vec![
                vec![DiskId(0)],                       // b1: d1
                vec![DiskId(0), DiskId(1)],            // b2: d1,d2
                vec![DiskId(0), DiskId(1), DiskId(3)], // b3: d1,d2,d4
                vec![DiskId(2), DiskId(3)],            // b4: d3,d4
                vec![DiskId(0), DiskId(3)],            // b5: d1,d4
                vec![DiskId(2), DiskId(3)],            // b6: d3,d4
            ],
            4,
        );
        let times = [0u64, 1, 3, 5, 12, 13];
        let requests: Vec<Request> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| Request {
                index: i as u32,
                at: SimTime::from_secs(t),
                data: DataId(i as u64),
                size: 4096,
            })
            .collect();
        (requests, placement)
    }

    fn planner(solver: MwisSolver) -> MwisPlanner {
        MwisPlanner {
            params: PowerParams::paper_example(),
            solver,
            max_successors: 8,
        }
    }

    #[test]
    fn fig4_step1_nodes() {
        let (reqs, placement) = paper_instance();
        let cg = planner(MwisSolver::GwMin).build_graph(&reqs, &placement);
        // Expected non-zero X(i,j,k) with TB=5 (window 5):
        //  d1: (r1,r2)=4, (r1,r3)=2, (r2,r3)=3, (r3,r5)? gap 9 -> 0.
        //  d2: (r2,r3)=3.
        //  d3: (r4,r6)? gap 8 -> 0.
        //  d4: (r3,r4)=3, (r4,r5)? gap 7 -> 0, (r5,r6)=4.
        let mut triples: Vec<(u32, u32, u32, f64)> = cg
            .nodes
            .iter()
            .enumerate()
            .map(|(n, &(i, j, k))| (i, j, k.0, cg.graph.weight(n as NodeId)))
            .collect();
        triples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(
            triples,
            vec![
                (0, 1, 0, 4.0),
                (0, 2, 0, 2.0),
                (1, 2, 0, 3.0),
                (1, 2, 1, 3.0),
                (2, 3, 3, 3.0),
                (4, 5, 3, 4.0),
            ]
        );
    }

    #[test]
    fn fig4_step3_selection_and_saving() {
        let (reqs, placement) = paper_instance();
        let p = planner(MwisSolver::exact_default());
        let cg = p.build_graph(&reqs, &placement);
        let sel = p.solve(&cg);
        let weight: f64 = sel.iter().map(|&v| cg.graph.weight(v)).sum();
        // Fig. 4 selects X(1,2,1), X(2,3,1), X(4,6,4) — total saving
        // 4+3+4 = 11. The instance has several optima of weight 11 (e.g.
        // pinning r3,r4 to d4 instead of r3 to d1); any of them yields the
        // optimal schedule energy of 19, so we assert the weight and
        // independence rather than one particular node set.
        assert_eq!(weight, 11.0);
        assert!(cg.graph.is_independent_set(&sel));
        assert_eq!(sel.len(), 3);
    }

    #[test]
    fn fig4_step4_assignment_matches_schedule_c() {
        let (reqs, placement) = paper_instance();
        let p = planner(MwisSolver::exact_default());
        let (assignment, claimed) = p.plan(&reqs, &placement);
        assert_eq!(claimed, 11.0);
        // Any optimum attains schedule C's energy of 19 under the offline
        // model (Fig. 3(b) — the paper's §2.3.2 arithmetic).
        let m = crate::offline::evaluate_offline(
            &reqs,
            &assignment,
            4,
            &PowerParams::paper_example(),
            None,
            None,
        );
        assert!((m.energy_j - 19.0).abs() < 1e-9, "energy {}", m.energy_j);
        // Every request sits on one of its replica locations.
        for (r, req) in reqs.iter().enumerate() {
            assert!(placement
                .locations(req.data)
                .contains(&assignment.disk_of(r)));
        }
    }

    #[test]
    fn greedy_matches_exact_on_paper_instance() {
        let (reqs, placement) = paper_instance();
        for solver in [
            MwisSolver::GwMin,
            MwisSolver::GwMin2,
            MwisSolver::GwMinLocalSearch,
        ] {
            let p = planner(solver);
            let (_, claimed) = p.plan(&reqs, &placement);
            assert_eq!(claimed, 11.0, "{solver:?} missed the optimum");
        }
    }

    #[test]
    fn assignments_respect_placement() {
        let (reqs, placement) = paper_instance();
        let (assignment, _) = planner(MwisSolver::GwMin).plan(&reqs, &placement);
        for (r, req) in reqs.iter().enumerate() {
            assert!(
                placement
                    .locations(req.data)
                    .contains(&assignment.disk_of(r)),
                "request {r} scheduled off-placement"
            );
        }
    }

    #[test]
    fn selected_set_is_independent() {
        let (reqs, placement) = paper_instance();
        let p = planner(MwisSolver::GwMin);
        let cg = p.build_graph(&reqs, &placement);
        let sel = p.solve(&cg);
        assert!(cg.graph.is_independent_set(&sel));
    }

    #[test]
    fn pruning_reduces_nodes_monotonically() {
        let (reqs, placement) = paper_instance();
        let mut sizes = Vec::new();
        for max_succ in [1usize, 2, 8] {
            let p = MwisPlanner {
                params: PowerParams::paper_example(),
                solver: MwisSolver::GwMin,
                max_successors: max_succ,
            };
            sizes.push(p.build_graph(&reqs, &placement).graph.len());
        }
        assert!(sizes[0] <= sizes[1] && sizes[1] <= sizes[2]);
        assert_eq!(sizes[2], 6);
    }

    #[test]
    fn bulk_and_incremental_builds_agree_on_paper_instance() {
        let (reqs, placement) = paper_instance();
        let p = planner(MwisSolver::GwMin);
        let bulk = p.build_graph(&reqs, &placement);
        let incr = p.build_graph_incremental(&reqs, &placement);
        assert_eq!(bulk.nodes, incr.nodes);
        assert_eq!(bulk.graph.edge_count(), incr.graph.edge_count());
        for v in 0..bulk.graph.len() as NodeId {
            // CSR adjacency is sorted; the incremental oracle keeps
            // insertion order — compare as sets.
            let mut incr_nbrs = incr.graph.neighbors(v).to_vec();
            incr_nbrs.sort_unstable();
            assert_eq!(bulk.graph.neighbors(v), &incr_nbrs[..]);
            assert_eq!(bulk.graph.weight(v), incr.graph.weight(v));
        }
        // Both backends drive the solver to the same selection.
        assert_eq!(p.solve(&bulk), p.solve(&incr));
    }

    #[test]
    fn parallel_build_matches_serial_on_paper_instance() {
        let (reqs, placement) = paper_instance();
        let p = planner(MwisSolver::GwMin);
        let serial = p.build_graph(&reqs, &placement);
        for jobs in [1usize, 2, 3, 8] {
            let par = p.build_graph_with_jobs(&reqs, &placement, jobs);
            assert_eq!(par.nodes, serial.nodes, "jobs {jobs}");
            assert_eq!(par.graph, serial.graph, "jobs {jobs}");
            let (a_par, s_par) = p.plan_with_jobs(&reqs, &placement, jobs);
            let (a_ser, s_ser) = p.plan(&reqs, &placement);
            assert_eq!(a_par.disks, a_ser.disks, "jobs {jobs}");
            assert_eq!(s_par, s_ser, "jobs {jobs}");
        }
    }

    /// One [`PlanScratch`] threaded through consecutive plans of
    /// *different* instances (the paper window, a shifted copy, the
    /// empty stream, then the paper window again) must reproduce what
    /// fresh planners with fresh scratches produce — the rolling-horizon
    /// reuse contract.
    #[test]
    fn plan_scratch_reuse_matches_fresh_planners() {
        let (reqs, placement) = paper_instance();
        let shifted: Vec<Request> = reqs
            .iter()
            .map(|r| Request {
                at: r.at + spindown_sim::time::SimDuration::from_secs(2),
                ..*r
            })
            .collect();
        for solver in [MwisSolver::GwMin, MwisSolver::GwMin2] {
            let p = planner(solver);
            let mut scratch = PlanScratch::new();
            let windows: [&[Request]; 4] = [&reqs, &shifted, &[], &reqs];
            for (w, window) in windows.iter().enumerate() {
                let warm = p.plan_with_scratch(window, &placement, 1, &mut scratch);
                let fresh = p.plan(window, &placement);
                assert_eq!(warm.0.disks, fresh.0.disks, "window {w}");
                assert_eq!(warm.1, fresh.1, "window {w}");
            }
        }
    }

    #[test]
    fn parallel_build_handles_empty_stream() {
        let placement = ExplicitPlacement::new(vec![vec![DiskId(0)]], 1);
        let p = planner(MwisSolver::GwMin);
        let cg = p.build_graph_with_jobs(&[], &placement, 8);
        assert_eq!(cg.graph.len(), 0);
        assert!(cg.nodes.is_empty());
    }

    #[test]
    fn empty_stream_plans_trivially() {
        let placement = ExplicitPlacement::new(vec![vec![DiskId(0)]], 1);
        let p = planner(MwisSolver::GwMin);
        let (a, saving) = p.plan(&[], &placement);
        assert!(a.is_empty());
        assert_eq!(saving, 0.0);
    }

    /// Rebases a window slice so `index == position`, the shape both
    /// `MwisPlanner::plan` and `WindowedPlanner` windows use.
    fn rebase(window: &[Request]) -> Vec<Request> {
        window
            .iter()
            .enumerate()
            .map(|(p, r)| Request {
                index: p as u32,
                ..*r
            })
            .collect()
    }

    #[test]
    fn windowed_advance_matches_from_scratch_on_paper_instance() {
        let (reqs, placement) = paper_instance();
        for solver in [MwisSolver::GwMin, MwisSolver::GwMin2] {
            let p = planner(solver);
            let mut w = WindowedPlanner::new(p.clone(), 4);
            // Load the full instance, then slide the horizon forward one
            // request at a time with no arrivals.
            let horizons: Vec<(usize, u64)> =
                vec![(6, 0), (6, 1), (6, 2), (6, 4), (6, 6), (6, 13), (6, 14)];
            let mut fed = 0usize;
            for (feed_to, h) in horizons {
                let arrivals = rebase(&reqs[fed..feed_to]);
                fed = feed_to;
                let (got_a, got_s) =
                    w.advance(&arrivals, SimTime::from_secs(h), &placement);
                let window = rebase(&reqs[reqs.iter().filter(|r| r.at < SimTime::from_secs(h)).count()..]);
                let (want_a, want_s) = p.plan(&window, &placement);
                assert_eq!(got_a.disks, want_a.disks, "{solver:?} horizon {h}");
                assert_eq!(got_s, want_s, "{solver:?} horizon {h}");
                assert_eq!(w.window(), &window[..], "{solver:?} horizon {h}");
                // The maintained graph is the canonical from-scratch one.
                let oracle = p.build_graph(&window, &placement);
                assert_eq!(w.graph(), &oracle.graph, "{solver:?} horizon {h}");
                assert_eq!(w.node_table(), &oracle.nodes[..], "{solver:?} horizon {h}");
            }
            assert_eq!(w.stats().windows, 7);
            assert!(w.stats().retired_requests_total == 6);
        }
    }

    #[test]
    fn windowed_empty_delta_skips_compaction() {
        let (reqs, placement) = paper_instance();
        let p = planner(MwisSolver::GwMin);
        let mut w = WindowedPlanner::new(p.clone(), 4);
        let first = w.advance(&reqs, SimTime::from_secs(0), &placement);
        let compactions = w.stats().compactions;
        let again = w.advance(&[], SimTime::from_secs(0), &placement);
        assert_eq!(first, again, "empty delta re-solves the same window");
        assert_eq!(w.stats().compactions, compactions, "no compaction paid");
        assert_eq!(w.stats().windows, 2);
    }

    #[test]
    fn windowed_full_turnover_matches_fresh_window() {
        let (reqs, placement) = paper_instance();
        let p = planner(MwisSolver::GwMin);
        let mut w = WindowedPlanner::new(p.clone(), 4);
        w.advance(&reqs, SimTime::from_secs(0), &placement);
        // Retire everything, admit a shifted copy of the whole instance.
        let shifted: Vec<Request> = reqs
            .iter()
            .map(|r| Request {
                at: r.at + spindown_sim::time::SimDuration::from_secs(100),
                ..*r
            })
            .collect();
        let (got_a, got_s) = w.advance(&shifted, SimTime::from_secs(50), &placement);
        let (want_a, want_s) = p.plan(&rebase(&shifted), &placement);
        assert_eq!(got_a.disks, want_a.disks);
        assert_eq!(got_s, want_s);
        assert_eq!(w.window().len(), 6);
    }

    #[test]
    fn windowed_cold_start_is_jobs_invariant() {
        let (reqs, placement) = paper_instance();
        let p = planner(MwisSolver::GwMin);
        let mut w1 = WindowedPlanner::new(p.clone(), 4);
        let a1 = w1.advance(&reqs, SimTime::from_secs(0), &placement);
        let mut w8 = WindowedPlanner::new(p, 4);
        let a8 = w8.advance_with_jobs(&reqs, SimTime::from_secs(0), &placement, 8);
        assert_eq!(a1, a8);
        assert_eq!(w1.graph(), w8.graph());
        assert_eq!(w1.stats(), w8.stats(), "counters must be jobs-invariant");
    }

    #[test]
    #[should_panic(expected = "must not precede the window tail")]
    fn windowed_rejects_out_of_order_arrivals() {
        let (reqs, placement) = paper_instance();
        let p = planner(MwisSolver::GwMin);
        let mut w = WindowedPlanner::new(p, 4);
        w.advance(&reqs, SimTime::from_secs(0), &placement);
        let early = rebase(&reqs[..1]); // t = 0, before the tail at t = 13
        w.advance(&early, SimTime::from_secs(0), &placement);
    }

    #[test]
    fn small_builds_stay_serial_under_threshold() {
        // The paper instance is far below MIN_PARALLEL_BUILD_WORK, so
        // the jobs > 1 path must produce the serial build (it *is* the
        // serial build); a fabricated planner with a huge fan-out
        // crosses the threshold and still matches bit-for-bit.
        let (reqs, placement) = paper_instance();
        let p = planner(MwisSolver::GwMin);
        assert!(reqs.len() * p.max_successors < MIN_PARALLEL_BUILD_WORK);
        let serial = p.build_graph(&reqs, &placement);
        let gated = p.build_graph_with_jobs(&reqs, &placement, 8);
        assert_eq!(serial.graph, gated.graph);
        let wide = MwisPlanner {
            max_successors: MIN_PARALLEL_BUILD_WORK, // 6 × this ≥ threshold
            ..p.clone()
        };
        let serial = wide.build_graph(&reqs, &placement);
        let sharded = wide.build_graph_with_jobs(&reqs, &placement, 8);
        assert_eq!(serial.graph, sharded.graph);
        assert_eq!(serial.nodes, sharded.nodes);
    }

    #[test]
    fn simultaneous_requests_can_pair() {
        // Two requests at the same instant on a shared disk: the batch
        // situation. Gap 0 gives the maximum saving.
        let placement =
            ExplicitPlacement::new(vec![vec![DiskId(0)], vec![DiskId(0), DiskId(1)]], 2);
        let reqs: Vec<Request> = (0..2)
            .map(|i| Request {
                index: i,
                at: SimTime::from_secs(1),
                data: DataId(i as u64),
                size: 4096,
            })
            .collect();
        let p = planner(MwisSolver::GwMin);
        let (a, saving) = p.plan(&reqs, &placement);
        assert_eq!(saving, 5.0, "gap-0 pair saves E_max");
        assert_eq!(a.disk_of(0), DiskId(0));
        assert_eq!(a.disk_of(1), DiskId(0));
    }
}
