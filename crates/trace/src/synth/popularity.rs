//! Block-popularity model: Zipf-distributed access frequency over a
//! shuffled rank-to-item assignment.

use spindown_sim::rng::{AliasTable, SimRng};

use crate::record::DataId;

/// Draws data items with Zipf(`z`) popularity.
///
/// Rank `r` (1-based) is accessed with probability `∝ 1/r^z`; which *item*
/// holds which rank is a random permutation drawn at construction, so item
/// ids carry no popularity information (placement and popularity stay
/// independent, as in a real trace).
///
/// Sampling is O(1) via an alias table.
#[derive(Debug, Clone)]
pub struct ZipfPopularity {
    table: AliasTable,
    rank_to_item: Vec<u64>,
}

impl ZipfPopularity {
    /// Builds a popularity model over `items` data items with exponent `z`
    /// (`z = 0` is uniform). Returns `None` if `items == 0` or `z` is
    /// negative/non-finite.
    pub fn new(items: usize, z: f64, rng: &mut SimRng) -> Option<Self> {
        if items == 0 || !z.is_finite() || z < 0.0 {
            return None;
        }
        let weights: Vec<f64> = (1..=items).map(|r| 1.0 / (r as f64).powf(z)).collect();
        let table = AliasTable::new(&weights)?;
        let mut rank_to_item: Vec<u64> = (0..items as u64).collect();
        rng.shuffle(&mut rank_to_item);
        Some(ZipfPopularity {
            table,
            rank_to_item,
        })
    }

    /// Number of items.
    pub fn items(&self) -> usize {
        self.rank_to_item.len()
    }

    /// Draws one data id.
    pub fn sample(&self, rng: &mut SimRng) -> DataId {
        let rank = self.table.sample(rng);
        DataId(self.rank_to_item[rank])
    }

    /// The item id holding popularity rank `r` (0-based; rank 0 is
    /// hottest). Exposed for tests and trace analysis.
    pub fn item_at_rank(&self, r: usize) -> DataId {
        DataId(self.rank_to_item[r])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_all_items_eventually() {
        let mut rng = SimRng::seed_from_u64(1);
        let pop = ZipfPopularity::new(50, 0.0, &mut rng).unwrap();
        let mut seen = [false; 50];
        for _ in 0..20_000 {
            seen[pop.sample(&mut rng).0 as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "uniform should hit every item");
    }

    #[test]
    fn hot_rank_dominates_under_high_skew() {
        let mut rng = SimRng::seed_from_u64(2);
        let pop = ZipfPopularity::new(1000, 1.0, &mut rng).unwrap();
        let hot = pop.item_at_rank(0);
        let n = 50_000;
        let hot_hits = (0..n).filter(|_| pop.sample(&mut rng) == hot).count();
        // P(rank 1) = 1/H_1000 ≈ 0.1336.
        let frac = hot_hits as f64 / n as f64;
        assert!((0.11..0.16).contains(&frac), "hot fraction {frac}");
    }

    #[test]
    fn rank_assignment_is_a_permutation() {
        let mut rng = SimRng::seed_from_u64(3);
        let pop = ZipfPopularity::new(100, 0.8, &mut rng).unwrap();
        let mut ids: Vec<u64> = (0..100).map(|r| pop.item_at_rank(r).0).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn deterministic_per_seed() {
        let build = |seed| {
            let mut rng = SimRng::seed_from_u64(seed);
            let pop = ZipfPopularity::new(64, 1.0, &mut rng).unwrap();
            (0..100).map(|_| pop.sample(&mut rng).0).collect::<Vec<_>>()
        };
        assert_eq!(build(9), build(9));
        assert_ne!(build(9), build(10));
    }

    #[test]
    fn rejects_degenerate_params() {
        let mut rng = SimRng::seed_from_u64(0);
        assert!(ZipfPopularity::new(0, 1.0, &mut rng).is_none());
        assert!(ZipfPopularity::new(5, -0.5, &mut rng).is_none());
        assert!(ZipfPopularity::new(5, f64::NAN, &mut rng).is_none());
    }
}
