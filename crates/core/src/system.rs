//! The event-driven storage-system simulator (paper Fig. 1): request
//! stream → scheduler → per-disk queues → disk state machines → power
//! manager, with full energy and response-time accounting.
//!
//! This is the online/batch counterpart of the analytic
//! [`crate::offline`] evaluator, playing the role OMNeT++ + DiskSim play
//! in the paper's experiments.

use spindown_disk::disk::{Disk, DiskEvent, DiskRequest};
use spindown_disk::mechanics::{DiskGeometry, Mechanics};
use spindown_disk::policy::{AdaptiveThreshold, AlwaysOn, FixedThreshold, IdlePolicy};
use spindown_disk::power::PowerParams;
use spindown_disk::queue::QueueDiscipline;
use spindown_disk::state::DiskPowerState;
use spindown_sim::event::EventQueue;
use spindown_sim::rng::{SimRng, SplitMix64};
use spindown_sim::stats::LatencyHistogram;
use spindown_sim::time::{SimDuration, SimTime};

use crate::cost::DiskStatus;
use crate::metrics::{DiskSummary, RunMetrics};
use crate::model::Request;
use crate::saving::SavingModel;
use crate::sched::{LocationProvider, ScheduleMode, Scheduler, SystemView};

/// Which power-management policy every disk runs.
#[derive(Debug, Clone, PartialEq)]
pub enum PolicyKind {
    /// Never spin down (the normalization baseline). Disks start idle.
    AlwaysOn,
    /// 2CPM with threshold = breakeven time (the paper's configuration).
    /// Disks start in standby (§2.3).
    Breakeven,
    /// 2CPM with an explicit threshold.
    FixedTimeout(SimDuration),
    /// Adaptive threshold (ablation; see
    /// [`spindown_disk::policy::AdaptiveThreshold`]).
    Adaptive,
}

/// Static configuration of a simulated storage system.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Number of disks (the paper uses 180).
    pub disks: u32,
    /// Power model of every disk.
    pub power: PowerParams,
    /// Mechanical model of every disk.
    pub geometry: DiskGeometry,
    /// Power-management policy.
    pub policy: PolicyKind,
    /// Per-disk request-queue discipline (FCFS in the paper).
    pub discipline: QueueDiscipline,
    /// When set, sample the system's total rate-power draw at this
    /// interval into [`RunMetrics::power_timeline`].
    pub power_sample: Option<SimDuration>,
    /// Seed for all stochastic components (mechanics rotation phases).
    pub seed: u64,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            disks: 180,
            power: PowerParams::barracuda(),
            geometry: DiskGeometry::cheetah_15k5(),
            policy: PolicyKind::Breakeven,
            discipline: QueueDiscipline::Fcfs,
            power_sample: None,
            seed: 0,
        }
    }
}

enum Ev {
    Arrival(u32),
    BatchTick,
    Sample,
    Disk(u32, DiskEvent),
}

/// Runs `scheduler` over `requests` (time-sorted) against `placement`,
/// returning the full metrics of the run.
///
/// The measurement horizon is `max(last event, last request + saving
/// window)`, so runs under different schedulers are normalized over
/// essentially the same span.
///
/// # Panics
///
/// Panics if `requests` is not sorted by time or a scheduler returns an
/// off-placement disk.
pub fn run_system(
    requests: &[Request],
    placement: &dyn LocationProvider,
    scheduler: &mut dyn Scheduler,
    config: &SystemConfig,
) -> RunMetrics {
    assert!(
        requests.windows(2).all(|w| w[0].at <= w[1].at),
        "requests must be sorted by time"
    );
    assert_eq!(
        placement.disks(),
        config.disks,
        "placement and system disagree on disk count"
    );

    let mut root_rng = SimRng::seed_from_u64(config.seed ^ 0x5751);
    let initial_state = match config.policy {
        PolicyKind::AlwaysOn => DiskPowerState::Idle,
        _ => DiskPowerState::Standby,
    };
    let mut disks: Vec<Disk> = (0..config.disks)
        .map(|d| {
            let policy: Box<dyn IdlePolicy> = match &config.policy {
                PolicyKind::AlwaysOn => Box::new(AlwaysOn),
                PolicyKind::Breakeven => Box::new(FixedThreshold::breakeven(&config.power)),
                PolicyKind::FixedTimeout(t) => Box::new(FixedThreshold::new(*t)),
                PolicyKind::Adaptive => Box::new(AdaptiveThreshold::new(
                    0.25,
                    1.0,
                    SimDuration::from_secs(1),
                    config.power.breakeven() * 4,
                )),
            };
            Disk::with_discipline(
                config.power.clone(),
                Mechanics::new(config.geometry.clone(), root_rng.fork(d as u64)),
                policy,
                initial_state,
                SimTime::ZERO,
                config.discipline,
            )
        })
        .collect();

    let mut queue: EventQueue<Ev> = EventQueue::with_capacity(requests.len() * 2);
    for r in requests {
        queue.schedule(r.at, Ev::Arrival(r.index));
    }
    let batch_interval = match scheduler.mode() {
        ScheduleMode::Online => None,
        ScheduleMode::Batch(interval) => {
            if !requests.is_empty() {
                queue.schedule(SimTime::ZERO + interval, Ev::BatchTick);
            }
            Some(interval)
        }
    };

    if let Some(interval) = config.power_sample {
        if !requests.is_empty() {
            queue.schedule(SimTime::ZERO, Ev::Sample);
            let _ = interval;
        }
    }
    let mut power_timeline: Vec<(f64, f64)> = Vec::new();
    let mut batch_buffer: Vec<u32> = Vec::new();
    let mut arrivals_remaining = requests.len();
    let mut response = LatencyHistogram::default();
    let mut requests_per_disk: Vec<u64> = vec![0; config.disks as usize];
    let mut last_event = SimTime::ZERO;

    // Reusable status snapshot buffer.
    let mut statuses: Vec<DiskStatus> = Vec::with_capacity(config.disks as usize);

    while let Some(ev) = queue.pop() {
        let now = ev.at;
        last_event = now;
        match ev.payload {
            Ev::Arrival(i) => {
                arrivals_remaining -= 1;
                if batch_interval.is_some() {
                    batch_buffer.push(i);
                } else {
                    dispatch(
                        &[i],
                        requests,
                        placement,
                        scheduler,
                        &mut disks,
                        &mut queue,
                        &mut statuses,
                        &mut requests_per_disk,
                        now,
                        &config.power,
                    );
                }
            }
            Ev::BatchTick => {
                if !batch_buffer.is_empty() {
                    let batch = std::mem::take(&mut batch_buffer);
                    dispatch(
                        &batch,
                        requests,
                        placement,
                        scheduler,
                        &mut disks,
                        &mut queue,
                        &mut statuses,
                        &mut requests_per_disk,
                        now,
                        &config.power,
                    );
                }
                if arrivals_remaining > 0 {
                    let interval = batch_interval.expect("tick implies batch mode");
                    queue.schedule(now + interval, Ev::BatchTick);
                }
            }
            Ev::Sample => {
                let watts: f64 = disks.iter().map(Disk::power_w).sum();
                power_timeline.push((now.as_secs_f64(), watts));
                // Keep sampling while real events remain (the only pending
                // sample is the one just popped, so a non-empty queue means
                // actual work is still in flight).
                if !queue.is_empty() {
                    let interval = config.power_sample.expect("sampling enabled");
                    queue.schedule(now + interval, Ev::Sample);
                }
            }
            Ev::Disk(d, event) => {
                let outcome = disks[d as usize].handle(now, event);
                if let Some(done) = outcome.completed {
                    let arrival = requests[done.id as usize].at;
                    response.record(now.saturating_since(arrival));
                }
                for dir in outcome.directives {
                    queue.schedule(now + dir.after, Ev::Disk(d, dir.event));
                }
            }
        }
    }

    // Horizon: cover the post-trace drain window so normalization is
    // comparable across schedulers.
    let model = SavingModel::new(&config.power);
    let trace_end = requests.last().map(|r| r.at).unwrap_or(SimTime::ZERO);
    let horizon = last_event.max(trace_end + model.window());
    let horizon_s = horizon.as_secs_f64();

    let per_disk: Vec<DiskSummary> = disks
        .iter()
        .enumerate()
        .map(|(i, d)| DiskSummary {
            energy_j: d.energy_j(horizon),
            state_fractions: d.meter().state_fractions(horizon),
            spinups: d.meter().spinups(),
            spindowns: d.meter().spindowns(),
            requests: requests_per_disk[i],
        })
        .collect();

    RunMetrics {
        scheduler: scheduler.name().into(),
        requests: requests.len(),
        horizon_s,
        energy_j: per_disk.iter().map(|d| d.energy_j).sum(),
        always_on_j: config.disks as f64 * config.power.idle_w * horizon_s,
        spinups: per_disk.iter().map(|d| d.spinups).sum(),
        spindowns: per_disk.iter().map(|d| d.spindowns).sum(),
        response,
        per_disk,
        power_timeline,
    }
}

/// Asks the scheduler to place `batch` and enqueues the results.
#[allow(clippy::too_many_arguments)]
fn dispatch(
    batch: &[u32],
    requests: &[Request],
    placement: &dyn LocationProvider,
    scheduler: &mut dyn Scheduler,
    disks: &mut [Disk],
    queue: &mut EventQueue<Ev>,
    statuses: &mut Vec<DiskStatus>,
    requests_per_disk: &mut [u64],
    now: SimTime,
    power: &PowerParams,
) {
    statuses.clear();
    statuses.extend(disks.iter().map(|d| DiskStatus {
        state: d.state(),
        last_request_at: d.last_request_at(),
        load: d.load(),
    }));
    let view = SystemView {
        now,
        params: power,
        placement,
        statuses: statuses.as_slice(),
    };
    let reqs: Vec<Request> = batch.iter().map(|&i| requests[i as usize]).collect();
    let choices = scheduler.assign(&reqs, &view);
    assert_eq!(
        choices.len(),
        reqs.len(),
        "scheduler must place every request"
    );
    for (req, disk_id) in reqs.iter().zip(choices) {
        assert!(
            placement.locations(req.data).contains(&disk_id),
            "scheduler placed request {} off-placement ({disk_id})",
            req.index
        );
        requests_per_disk[disk_id.index()] += 1;
        let lba = lba_of(req.data.0, disk_id.0, disks[disk_id.index()].params());
        let directives = disks[disk_id.index()].enqueue(
            now,
            DiskRequest {
                id: req.index as u64,
                lba,
                size: req.size,
            },
        );
        for dir in directives {
            queue.schedule(now + dir.after, Ev::Disk(disk_id.0, dir.event));
        }
    }
}

/// Deterministic pseudo-LBA of a data item on a disk: a hash of the
/// (data, disk) pair spread over a nominal 300 GB address space. Real
/// placements assign blocks to arbitrary physical locations; a hash
/// reproduces the resulting random seek pattern.
fn lba_of(data: u64, disk: u32, _params: &PowerParams) -> u64 {
    let mut h = SplitMix64::new(data ^ ((disk as u64) << 40) ^ 0x10CA);
    h.next_u64() % 300_000_000_000
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostFunction;
    use crate::model::{DataId, DiskId};
    use crate::sched::{
        ExplicitPlacement, HeuristicScheduler, RandomScheduler, StaticScheduler, WscScheduler,
    };

    fn small_config(disks: u32, policy: PolicyKind) -> SystemConfig {
        SystemConfig {
            disks,
            policy,
            seed: 1,
            ..SystemConfig::default()
        }
    }

    fn requests(times_s: &[f64], datas: &[u64]) -> Vec<Request> {
        times_s
            .iter()
            .zip(datas)
            .enumerate()
            .map(|(i, (&t, &d))| Request {
                index: i as u32,
                at: SimTime::from_secs_f64(t),
                data: DataId(d),
                size: 512 * 1024,
            })
            .collect()
    }

    fn two_disk_placement() -> ExplicitPlacement {
        ExplicitPlacement::new(
            vec![vec![DiskId(0), DiskId(1)], vec![DiskId(1), DiskId(0)]],
            2,
        )
    }

    #[test]
    fn completes_all_requests_and_measures_responses() {
        let reqs = requests(&[0.0, 1.0, 2.0, 50.0], &[0, 1, 0, 1]);
        let placement = two_disk_placement();
        let mut sched = StaticScheduler;
        let m = run_system(
            &reqs,
            &placement,
            &mut sched,
            &small_config(2, PolicyKind::Breakeven),
        );
        assert_eq!(m.response.count(), 4);
        assert_eq!(m.requests, 4);
        assert!(m.energy_j > 0.0);
        // First request hits a standby disk: response >= spin-up time.
        assert!(m.response.max() >= 10.0);
    }

    #[test]
    fn always_on_has_no_spindowns_and_fast_responses() {
        let reqs = requests(&[0.0, 30.0, 60.0], &[0, 0, 0]);
        let placement = two_disk_placement();
        let mut sched = StaticScheduler;
        let m = run_system(
            &reqs,
            &placement,
            &mut sched,
            &small_config(2, PolicyKind::AlwaysOn),
        );
        assert_eq!(m.spindowns, 0);
        assert_eq!(m.spinups, 0);
        assert!(m.response.max() < 0.1, "max {}", m.response.max());
        // Energy ≈ always-on baseline.
        assert!((m.normalized_energy() - 1.0).abs() < 0.01);
    }

    #[test]
    fn breakeven_policy_saves_energy_on_sparse_load() {
        // One burst, then silence: the 2CPM disks sleep.
        let reqs = requests(&[0.0, 0.5, 1.0], &[0, 0, 0]);
        let placement = two_disk_placement();
        let mut sched = StaticScheduler;
        let m = run_system(
            &reqs,
            &placement,
            &mut sched,
            &small_config(2, PolicyKind::Breakeven),
        );
        assert!(m.spindowns >= 1);
        assert!(
            m.normalized_energy() < 0.9,
            "normalized {}",
            m.normalized_energy()
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let reqs = requests(&[0.0, 0.2, 5.0, 40.0, 41.0], &[0, 1, 0, 1, 0]);
        let placement = two_disk_placement();
        let run = || {
            let mut sched = RandomScheduler::new(3);
            run_system(
                &reqs,
                &placement,
                &mut sched,
                &small_config(2, PolicyKind::Breakeven),
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a.energy_j, b.energy_j);
        assert_eq!(a.spinups, b.spinups);
        assert_eq!(a.response.mean(), b.response.mean());
    }

    #[test]
    fn batch_scheduler_batches_and_completes() {
        let reqs = requests(&[0.0, 0.01, 0.02, 0.03], &[0, 1, 0, 1]);
        let placement = two_disk_placement();
        let mut sched =
            WscScheduler::new(CostFunction::energy_only(), SimDuration::from_millis(100));
        let m = run_system(
            &reqs,
            &placement,
            &mut sched,
            &small_config(2, PolicyKind::Breakeven),
        );
        assert_eq!(m.response.count(), 4);
        // All four requests fit one batch: WSC covers them with ONE disk
        // (both data items live on both disks), so only one disk ever
        // spun up.
        let used: Vec<_> = m.per_disk.iter().filter(|d| d.requests > 0).collect();
        assert_eq!(used.len(), 1, "WSC should consolidate onto one disk");
        // Batch queueing delay: responses include up to 0.1 s of waiting.
        assert!(m.response.mean() >= 0.01);
    }

    #[test]
    fn heuristic_consolidates_on_spinning_disk() {
        // After the first request wakes a disk, subsequent requests for
        // data replicated on both disks should pile onto the awake disk.
        let reqs = requests(&[0.0, 12.0, 14.0, 16.0], &[0, 1, 0, 1]);
        let placement = two_disk_placement();
        let mut sched = HeuristicScheduler::new(CostFunction::energy_only());
        let m = run_system(
            &reqs,
            &placement,
            &mut sched,
            &small_config(2, PolicyKind::Breakeven),
        );
        let used: Vec<_> = m
            .per_disk
            .iter()
            .enumerate()
            .filter(|(_, d)| d.requests > 0)
            .collect();
        assert_eq!(used.len(), 1, "all requests should go to one disk");
        assert_eq!(m.spinups, 1);
    }

    #[test]
    fn empty_request_stream() {
        let placement = two_disk_placement();
        let mut sched = StaticScheduler;
        let m = run_system(
            &[],
            &placement,
            &mut sched,
            &small_config(2, PolicyKind::Breakeven),
        );
        assert_eq!(m.requests, 0);
        assert_eq!(m.response.count(), 0);
    }

    #[test]
    fn adaptive_policy_runs() {
        let reqs = requests(&[0.0, 1.0, 2.0, 100.0, 101.0], &[0, 0, 0, 0, 0]);
        let placement = two_disk_placement();
        let mut sched = StaticScheduler;
        let m = run_system(
            &reqs,
            &placement,
            &mut sched,
            &small_config(2, PolicyKind::Adaptive),
        );
        assert_eq!(m.response.count(), 5);
    }

    #[test]
    fn power_timeline_samples_when_enabled() {
        let reqs = requests(&[0.0, 1.0, 60.0], &[0, 1, 0]);
        let placement = two_disk_placement();
        let mut sched = StaticScheduler;
        let mut config = small_config(2, PolicyKind::Breakeven);
        config.power_sample = Some(SimDuration::from_secs(5));
        let m = run_system(&reqs, &placement, &mut sched, &config);
        assert!(
            m.power_timeline.len() >= 5,
            "expected several samples, got {}",
            m.power_timeline.len()
        );
        let params = PowerParams::barracuda();
        for &(t, w) in &m.power_timeline {
            assert!(t >= 0.0);
            assert!(
                (0.0..=2.0 * params.active_w).contains(&w),
                "power sample {w} out of range"
            );
        }
        // Samples are time-ordered.
        assert!(m.power_timeline.windows(2).all(|p| p[0].0 <= p[1].0));
        // Early in the run a disk is spinning; the range of sampled power
        // must vary (disks transition between states).
        let max = m.power_timeline.iter().map(|p| p.1).fold(0.0, f64::max);
        let min = m
            .power_timeline
            .iter()
            .map(|p| p.1)
            .fold(f64::MAX, f64::min);
        assert!(max > min, "power should vary over the run");
    }

    #[test]
    fn power_timeline_empty_when_disabled() {
        let reqs = requests(&[0.0], &[0]);
        let placement = two_disk_placement();
        let mut sched = StaticScheduler;
        let m = run_system(
            &reqs,
            &placement,
            &mut sched,
            &small_config(2, PolicyKind::Breakeven),
        );
        assert!(m.power_timeline.is_empty());
    }

    #[test]
    fn state_fractions_cover_horizon() {
        let reqs = requests(&[0.0, 5.0, 90.0], &[0, 1, 0]);
        let placement = two_disk_placement();
        let mut sched = StaticScheduler;
        let m = run_system(
            &reqs,
            &placement,
            &mut sched,
            &small_config(2, PolicyKind::Breakeven),
        );
        for d in &m.per_disk {
            let sum: f64 = d.state_fractions.iter().sum();
            assert!((sum - 1.0).abs() < 1e-6, "fractions sum {sum}");
        }
    }
}
