//! Benchmark regression gate.
//!
//! Compares a fresh [`BenchReport`] against a committed baseline JSON
//! (the `BENCH_core.json` written by a previous `spindown bench` run) and
//! fails when any benchmark's median wall time regressed beyond a
//! tolerance factor. CI runs this instead of a smoke-only bench pass, so
//! a change that quietly slows a solver or builder down trips the gate.
//!
//! The baseline parser is deliberately minimal: it reads only the JSON
//! this harness itself emits (`schema: spindown-bench-v1`, one
//! `"name": {"median_ns": …, "p10_ns": …, "p90_ns": …}` object per line),
//! keeping the crate zero-dependency. It is not a general JSON parser and
//! does not need to be. The report's `host` block
//! (`{"available_parallelism": …, "parallel_jobs": …}` — the cores the
//! runner advertised and the worker count the parallel fixtures actually
//! used) is ignored by the parser but read from the *fresh* report: it
//! decides whether the multi-core `island_sim_speedup` floor applies,
//! and it is what makes committed parallel ratios interpretable across
//! machines.

use crate::harness::{BenchReport, BenchStats};

/// Default multiplicative tolerance: fail when a median exceeds
/// `baseline * 1.25` (25% regression). Wide enough for shared-host
/// noise at the harness's multi-second bench scales, tight enough to
/// catch an accidental algorithmic slowdown.
pub const DEFAULT_TOLERANCE: f64 = 1.25;

/// One benchmark's baseline quantiles, as read back from JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    /// Benchmark name (the JSON key).
    pub name: String,
    /// Quantiles recorded by the baseline run.
    pub stats: BenchStats,
}

/// Outcome of one gate run: human-readable per-benchmark lines plus the
/// subset that regressed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GateReport {
    /// One line per comparison (and per skipped/new benchmark).
    pub lines: Vec<String>,
    /// Failure descriptions; empty means the gate passed.
    pub regressions: Vec<String>,
}

impl GateReport {
    /// `true` when no benchmark regressed past tolerance and no baseline
    /// benchmark went missing.
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }

    /// Renders the gate outcome for terminal output.
    pub fn to_text(&self) -> String {
        let mut s = self.lines.join("\n");
        s.push('\n');
        if self.passed() {
            s.push_str("bench regression gate: PASS\n");
        } else {
            s.push_str(&format!(
                "bench regression gate: FAIL ({} regression{})\n",
                self.regressions.len(),
                if self.regressions.len() == 1 { "" } else { "s" }
            ));
            for r in &self.regressions {
                s.push_str(&format!("  {r}\n"));
            }
        }
        s
    }
}

/// Parses a baseline `spindown-bench-v1` JSON into per-benchmark stats.
///
/// Returns an error when the schema marker is absent or no benchmark
/// line parses — a truncated or foreign file must not silently pass the
/// gate as "no baselines to compare".
pub fn parse_baseline(json: &str) -> Result<Vec<BaselineEntry>, String> {
    if !json.contains("\"schema\": \"spindown-bench-v1\"") {
        return Err("baseline is not a spindown-bench-v1 report".into());
    }
    let mut entries = Vec::new();
    for line in json.lines() {
        if !line.contains("\"median_ns\"") {
            continue;
        }
        let name = field_name(line).ok_or_else(|| format!("unparsable bench line: {line}"))?;
        let median_ns =
            field_u64(line, "median_ns").ok_or_else(|| format!("missing median_ns: {line}"))?;
        let p10_ns = field_u64(line, "p10_ns").ok_or_else(|| format!("missing p10_ns: {line}"))?;
        let p90_ns = field_u64(line, "p90_ns").ok_or_else(|| format!("missing p90_ns: {line}"))?;
        entries.push(BaselineEntry {
            name,
            stats: BenchStats {
                median_ns,
                p10_ns,
                p90_ns,
            },
        });
    }
    if entries.is_empty() {
        return Err("baseline contains no benchmark entries".into());
    }
    Ok(entries)
}

/// The benchmark name: contents of the line's first quoted string.
fn field_name(line: &str) -> Option<String> {
    let start = line.find('"')? + 1;
    let len = line[start..].find('"')?;
    Some(line[start..start + len].to_string())
}

/// The integer following `"key": `.
fn field_u64(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let digits: String = line[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// Gates `report` against `baseline` medians at `tolerance` (e.g. `1.25`
/// = fail beyond +25%).
///
/// * A baseline benchmark missing from the report is a failure — a
///   silently dropped benchmark must not pass the gate. (Run the gate on
///   unfiltered reports.)
/// * A report benchmark missing from the baseline is logged and ignored
///   (a newly added benchmark gets its baseline at the next refresh).
/// * Every comparison line carries both runs' p10/p90 bands so a noisy
///   host is distinguishable from a real regression in the CI log.
/// * On hosts advertising more than one core, a fresh
///   `island_sim_speedup` below 1.0 fails the gate outright — parallel
///   replay must not be a net slowdown where it has cores to use.
pub fn check(report: &BenchReport, baseline: &[BaselineEntry], tolerance: f64) -> GateReport {
    let mut lines = Vec::new();
    let mut regressions = Vec::new();
    for b in baseline {
        let Some(new) = report.stats(&b.name) else {
            lines.push(format!("{:<30} MISSING from this run", b.name));
            regressions.push(format!(
                "{}: present in baseline but not produced by this run",
                b.name
            ));
            continue;
        };
        let old = b.stats;
        let ratio = new.median_ns as f64 / old.median_ns.max(1) as f64;
        let verdict = if ratio > tolerance { "REGRESSED" } else { "ok" };
        lines.push(format!(
            "{:<30} {:>6.3}x  old {} [{}..{}]  new {} [{}..{}]  {}",
            b.name,
            ratio,
            old.median_ns,
            old.p10_ns,
            old.p90_ns,
            new.median_ns,
            new.p10_ns,
            new.p90_ns,
            verdict
        ));
        if ratio > tolerance {
            regressions.push(format!(
                "{}: median {} ns vs baseline {} ns ({:.3}x > {:.2}x tolerance)",
                b.name, new.median_ns, old.median_ns, ratio, tolerance
            ));
        }
    }
    for e in &report.entries {
        if !baseline.iter().any(|b| b.name == e.name) {
            lines.push(format!(
                "{:<30} NEW (no baseline; median {} ns)",
                e.name, e.stats.median_ns
            ));
        }
    }
    // Parallel win-or-fail: with more than one core, the island-parallel
    // replay must actually beat the serial oracle — a ratio below 1.0
    // means the hand-off path has regressed into a net slowdown (the
    // failure mode the batched hand-off was built to eliminate).
    // Single-core hosts are exempt: there the fixture documents parity
    // and only bit-identical output is meaningful.
    if report.host.available_parallelism > 1 {
        if let Some(speedup) = report.derived("island_sim_speedup") {
            let verdict = if speedup < 1.0 { "REGRESSED" } else { "ok" };
            lines.push(format!(
                "{:<30} {:>6.3}x  (must exceed 1.0 on multi-core hosts)  {}",
                "island_sim_speedup", speedup, verdict
            ));
            if speedup < 1.0 {
                regressions.push(format!(
                    "island_sim_speedup: {:.3} < 1.0 with {} cores available",
                    speedup, report.host.available_parallelism
                ));
            }
        }
    }
    GateReport { lines, regressions }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{BenchConfig, BenchEntry, DerivedEntry, HostContext};

    fn report(entries: Vec<(&'static str, u64)>) -> BenchReport {
        BenchReport {
            config: BenchConfig::default(),
            entries: entries
                .into_iter()
                .map(|(name, median_ns)| BenchEntry {
                    name,
                    stats: BenchStats {
                        median_ns,
                        p10_ns: median_ns - 1,
                        p90_ns: median_ns + 1,
                    },
                })
                .collect(),
            derived: vec![DerivedEntry {
                name: "graph_build_speedup_medium",
                value: 2.0,
            }],
            host: HostContext {
                available_parallelism: 2,
                parallel_jobs: 2,
            },
        }
    }

    #[test]
    fn roundtrips_own_json() {
        let r = report(vec![("alpha", 100), ("beta", 2_000_000_000)]);
        let parsed = parse_baseline(&r.to_json()).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].name, "alpha");
        assert_eq!(parsed[0].stats.median_ns, 100);
        assert_eq!(parsed[1].name, "beta");
        assert_eq!(
            parsed[1].stats,
            BenchStats {
                median_ns: 2_000_000_000,
                p10_ns: 1_999_999_999,
                p90_ns: 2_000_000_001,
            }
        );
    }

    #[test]
    fn rejects_foreign_or_empty_baselines() {
        assert!(parse_baseline("{}").is_err());
        assert!(parse_baseline("{\"schema\": \"spindown-bench-v1\"}").is_err());
    }

    #[test]
    fn passes_within_tolerance() {
        let base = parse_baseline(&report(vec![("a", 1000)]).to_json()).unwrap();
        let gate = check(&report(vec![("a", 1200)]), &base, DEFAULT_TOLERANCE);
        assert!(gate.passed(), "{:?}", gate.regressions);
        assert!(gate.to_text().contains("PASS"));
        assert!(gate.lines[0].contains("1.200x"));
    }

    #[test]
    fn fails_past_tolerance() {
        let base = parse_baseline(&report(vec![("a", 1000)]).to_json()).unwrap();
        let gate = check(&report(vec![("a", 1300)]), &base, DEFAULT_TOLERANCE);
        assert!(!gate.passed());
        assert_eq!(gate.regressions.len(), 1);
        assert!(gate.regressions[0].contains("1.300x"));
        assert!(gate.to_text().contains("FAIL"));
    }

    #[test]
    fn faster_is_never_a_failure() {
        let base = parse_baseline(&report(vec![("a", 1000)]).to_json()).unwrap();
        let gate = check(&report(vec![("a", 10)]), &base, DEFAULT_TOLERANCE);
        assert!(gate.passed());
    }

    fn with_island_speedup(mut r: BenchReport, cores: usize, speedup: f64) -> BenchReport {
        r.host.available_parallelism = cores;
        r.derived.push(DerivedEntry {
            name: "island_sim_speedup",
            value: speedup,
        });
        r
    }

    #[test]
    fn island_slowdown_fails_on_multicore_host() {
        let base = parse_baseline(&report(vec![("a", 1000)]).to_json()).unwrap();
        let fresh = with_island_speedup(report(vec![("a", 1000)]), 4, 0.85);
        let gate = check(&fresh, &base, DEFAULT_TOLERANCE);
        assert!(!gate.passed());
        assert!(gate.regressions[0].contains("island_sim_speedup"));
        assert!(gate.regressions[0].contains("4 cores"));
    }

    #[test]
    fn island_slowdown_tolerated_on_single_core_host() {
        let base = parse_baseline(&report(vec![("a", 1000)]).to_json()).unwrap();
        let fresh = with_island_speedup(report(vec![("a", 1000)]), 1, 0.85);
        let gate = check(&fresh, &base, DEFAULT_TOLERANCE);
        assert!(gate.passed(), "{:?}", gate.regressions);
    }

    #[test]
    fn island_speedup_passes_on_multicore_host() {
        let base = parse_baseline(&report(vec![("a", 1000)]).to_json()).unwrap();
        let fresh = with_island_speedup(report(vec![("a", 1000)]), 4, 1.4);
        let gate = check(&fresh, &base, DEFAULT_TOLERANCE);
        assert!(gate.passed(), "{:?}", gate.regressions);
        assert!(gate.to_text().contains("island_sim_speedup"));
    }

    #[test]
    fn missing_bench_fails_new_bench_logs() {
        let base = parse_baseline(&report(vec![("gone", 1000)]).to_json()).unwrap();
        let gate = check(&report(vec![("fresh", 1000)]), &base, DEFAULT_TOLERANCE);
        assert!(!gate.passed());
        assert!(gate.regressions[0].contains("gone"));
        assert!(gate.lines.iter().any(|l| l.contains("fresh") && l.contains("NEW")));
    }
}
