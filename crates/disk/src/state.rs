//! Disk power-state machine: the five states of the paper's Figs. 9/17 and
//! the legal transitions between them.

use std::fmt;

/// The power state of a disk.
///
/// The discriminant values index the per-state arrays used by the energy
/// meter and the metrics layer; [`DiskPowerState::COUNT`] gives the array
/// size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum DiskPowerState {
    /// Spinning and servicing a request.
    Active = 0,
    /// Spinning, ready, but no request in service.
    Idle = 1,
    /// Spun down; cannot service requests.
    Standby = 2,
    /// Transitioning standby → idle (takes `T_up`).
    SpinningUp = 3,
    /// Transitioning idle → standby (takes `T_down`).
    SpinningDown = 4,
}

impl DiskPowerState {
    /// Number of states (for per-state arrays).
    pub const COUNT: usize = 5;

    /// All states, in discriminant order.
    pub const ALL: [DiskPowerState; Self::COUNT] = [
        DiskPowerState::Active,
        DiskPowerState::Idle,
        DiskPowerState::Standby,
        DiskPowerState::SpinningUp,
        DiskPowerState::SpinningDown,
    ];

    /// Array index of this state.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Short human-readable label (matches the paper's figure legends).
    pub fn label(self) -> &'static str {
        match self {
            DiskPowerState::Active => "active",
            DiskPowerState::Idle => "idle",
            DiskPowerState::Standby => "standby",
            DiskPowerState::SpinningUp => "spin-up",
            DiskPowerState::SpinningDown => "spin-down",
        }
    }

    /// `true` if the platters are spinning and the disk can start a request
    /// immediately.
    pub fn is_ready(self) -> bool {
        matches!(self, DiskPowerState::Active | DiskPowerState::Idle)
    }

    /// `true` in the two transitional states.
    pub fn is_transitioning(self) -> bool {
        matches!(
            self,
            DiskPowerState::SpinningUp | DiskPowerState::SpinningDown
        )
    }

    /// Whether a direct transition `self → next` is physically legal.
    ///
    /// The machine is:
    ///
    /// ```text
    /// Standby ──> SpinningUp ──> Idle <──> Active
    ///    ^                        │
    ///    └──── SpinningDown <─────┘
    /// ```
    ///
    /// (`SpinningUp → Active` is also allowed: a request queued during
    /// spin-up starts service the moment the platters are ready.)
    pub fn can_transition_to(self, next: DiskPowerState) -> bool {
        use DiskPowerState::*;
        matches!(
            (self, next),
            (Standby, SpinningUp)
                | (SpinningUp, Idle)
                | (SpinningUp, Active)
                | (Idle, Active)
                | (Active, Idle)
                | (Idle, SpinningDown)
                | (SpinningDown, Standby)
        )
    }
}

impl fmt::Display for DiskPowerState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use DiskPowerState::*;

    #[test]
    fn indices_are_dense_and_distinct() {
        let mut seen = [false; DiskPowerState::COUNT];
        for s in DiskPowerState::ALL {
            assert!(!seen[s.index()], "duplicate index {}", s.index());
            seen[s.index()] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn ready_states() {
        assert!(Active.is_ready());
        assert!(Idle.is_ready());
        assert!(!Standby.is_ready());
        assert!(!SpinningUp.is_ready());
        assert!(!SpinningDown.is_ready());
    }

    #[test]
    fn transitioning_states() {
        assert!(SpinningUp.is_transitioning());
        assert!(SpinningDown.is_transitioning());
        assert!(!Idle.is_transitioning());
    }

    #[test]
    fn legal_transition_table() {
        let legal = [
            (Standby, SpinningUp),
            (SpinningUp, Idle),
            (SpinningUp, Active),
            (Idle, Active),
            (Active, Idle),
            (Idle, SpinningDown),
            (SpinningDown, Standby),
        ];
        for a in DiskPowerState::ALL {
            for b in DiskPowerState::ALL {
                let expect = legal.contains(&(a, b));
                assert_eq!(a.can_transition_to(b), expect, "{a} -> {b}");
            }
        }
    }

    #[test]
    fn no_self_transitions() {
        for s in DiskPowerState::ALL {
            assert!(!s.can_transition_to(s));
        }
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Active.to_string(), "active");
        assert_eq!(SpinningDown.to_string(), "spin-down");
    }
}
