//! A datacenter-scale scenario: the paper's full rig (180 disks, 70 000
//! requests) compared across all five schedulers — a one-page version of
//! the paper's Figs. 6–8. Pass `--quick` for a 10× smaller run.
//!
//! ```text
//! cargo run --release --example datacenter [-- --quick]
//! ```

use spindown::prelude::*;
use spindown::trace::synth::arrivals::OnOffProcess;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (n_requests, n_data, disks, rate) = if quick {
        (8_000, 3_500, 60u32, 3.5)
    } else {
        (70_000, 30_000, 180u32, 10.0)
    };

    // The calibrated Cello-like workload (see spindown-bench::workload).
    let sources = 24;
    let on_frac = {
        let e_on = 1.5 * 2.0 / 0.5;
        let e_off = 1.3 * 30.0 / 0.3;
        e_on / (e_on + e_off)
    };
    let trace = CelloLike {
        requests: n_requests,
        data_items: n_data,
        arrivals: OnOffProcess {
            sources,
            on_shape: 1.5,
            on_scale_s: 2.0,
            off_shape: 1.3,
            off_scale_s: 30.0,
            burst_rate: rate / (sources as f64 * on_frac),
        },
        ..CelloLike::default()
    }
    .generate(42);
    let requests = requests_from_trace(&trace);
    println!(
        "rig: {} disks, {} read requests over {:.0} minutes, replication 1..5\n",
        disks,
        requests.len(),
        requests.last().unwrap().at.as_secs_f64() / 60.0
    );

    let spec = |kind: SchedulerKind, rf: u32| ExperimentSpec {
        placement: PlacementConfig {
            disks,
            replication: rf,
            zipf_z: 1.0,
        },
        scheduler: kind,
        system: SystemConfig {
            disks,
            ..SystemConfig::default()
        },
        seed: 42,
    };

    for rf in [1u32, 3, 5] {
        println!("== replication factor {rf} ==");
        println!(
            "{:<12} {:>12} {:>12} {:>12} {:>14}",
            "scheduler", "vs always-on", "spin cycles", "mean resp", "standby share"
        );
        for kind in [
            SchedulerKind::Random,
            SchedulerKind::Static,
            SchedulerKind::Heuristic(CostFunction::default()),
            SchedulerKind::Wsc {
                cost: CostFunction::default(),
                interval: SimDuration::from_millis(100),
            },
            SchedulerKind::Mwis {
                solver: MwisSolver::GwMin,
                max_successors: 3,
            },
        ] {
            let label = kind.label();
            let m = run_experiment(&requests, &spec(kind, rf));
            println!(
                "{:<12} {:>11.1}% {:>12} {:>11.0}ms {:>13.1}%",
                label,
                m.normalized_energy() * 100.0,
                m.spin_cycles(),
                m.response_mean_s() * 1000.0,
                m.mean_standby_fraction() * 100.0
            );
        }
        println!();
    }
    println!(
        "More replicas give the energy-aware schedulers more routing freedom:\n\
         energy falls as rf grows, while Random drifts toward always-on\n\
         because spreading requests keeps every disk awake (paper Fig. 6)."
    );
}
