//! Shared experiment grids: one simulation per (trace, replication
//! factor, scheduler) cell. Figures 6–9 read the Cello grid; Figures
//! 14–17 read the Financial grid; the latency figures (12–13) reuse the
//! same runs plus an always-on reference.

use spindown_core::cost::CostFunction;
use spindown_core::experiment::{
    run_always_on_baseline, run_experiment, ExperimentSpec, SchedulerKind,
};
use spindown_core::metrics::RunMetrics;
use spindown_core::model::Request;
use spindown_core::placement::PlacementConfig;
use spindown_core::system::{PolicyKind, SystemConfig};
use spindown_sim::pool;

use crate::workload::{self, Scale};

/// The replication factors the paper sweeps.
pub const RF_SWEEP: [u32; 5] = [1, 2, 3, 4, 5];

/// One grid cell.
#[derive(Debug)]
pub struct GridCell {
    /// Replication factor of the run.
    pub rf: u32,
    /// Scheduler label (paper legend name).
    pub scheduler: &'static str,
    /// Full metrics of the run.
    pub metrics: RunMetrics,
}

/// A computed grid plus its always-on reference run (at rf = 1).
#[derive(Debug)]
pub struct EvalGrid {
    /// All cells, ordered by (rf, scheduler).
    pub cells: Vec<GridCell>,
    /// The always-on reference (for Figs. 12/13).
    pub always_on: RunMetrics,
}

impl EvalGrid {
    /// Runs the full scheduler × replication grid over `requests` on the
    /// calling thread. Equivalent to [`EvalGrid::compute_with_jobs`] with
    /// `jobs = 1`.
    pub fn compute(requests: &[Request], scale: Scale, zipf_z: f64, seed: u64) -> EvalGrid {
        Self::compute_with_jobs(requests, scale, zipf_z, seed, 1)
    }

    /// Runs the grid with up to `jobs` worker threads.
    ///
    /// Every cell is an independent simulation — each run derives its own
    /// RNG stream from the spec seed, never from shared mutable state —
    /// so the cells are fanned out over the shared worker pool
    /// ([`spindown_sim::pool::map_indexed`]) and collected by cell index.
    /// The grid is bit-identical to the serial (`jobs = 1`) result for
    /// any thread count. `jobs` is clamped to `1..=cell count` (and
    /// `jobs = 1` never spawns); cells run at `jobs = 1` internally so
    /// grid-level and intra-run parallelism never oversubscribe, and the
    /// always-on reference runs on the calling thread either way.
    pub fn compute_with_jobs(
        requests: &[Request],
        scale: Scale,
        zipf_z: f64,
        seed: u64,
        jobs: usize,
    ) -> EvalGrid {
        let spec_for = |scheduler: SchedulerKind, rf: u32| ExperimentSpec {
            placement: PlacementConfig {
                disks: scale.disks,
                replication: rf,
                zipf_z,
            },
            scheduler,
            system: SystemConfig {
                disks: scale.disks,
                ..SystemConfig::default()
            },
            seed,
        };

        // The cell plan, in the canonical (rf, scheduler) order the
        // figures index by.
        let mut plan: Vec<(u32, &'static str, SchedulerKind)> = Vec::new();
        for rf in RF_SWEEP {
            for kind in SchedulerKind::paper_set() {
                let label = kind.label();
                plan.push((rf, label, kind));
            }
            // Extension column: the offline planner with assignment-level
            // hill climbing (the "better MWIS algorithm" the paper
            // conjectures about in §5.1).
            plan.push((
                rf,
                "mwis-r",
                SchedulerKind::Mwis {
                    solver: spindown_core::sched::MwisSolver::GwMinRefined { passes: 4 },
                    max_successors: 3,
                },
            ));
        }

        let metrics = pool::map_indexed(jobs, plan.len(), |i| {
            let (rf, _, kind) = &plan[i];
            run_experiment(requests, &spec_for(kind.clone(), *rf))
        });

        let cells = plan
            .into_iter()
            .zip(metrics)
            .map(|((rf, scheduler, _), metrics)| GridCell {
                rf,
                scheduler,
                metrics,
            })
            .collect();
        let always_on = run_always_on_baseline(requests, &spec_for(SchedulerKind::Static, 1));
        EvalGrid { cells, always_on }
    }

    /// Looks up one cell.
    pub fn cell(&self, rf: u32, scheduler: &str) -> &GridCell {
        self.cells
            .iter()
            .find(|c| c.rf == rf && c.scheduler == scheduler)
            .unwrap_or_else(|| panic!("no grid cell for rf={rf} scheduler={scheduler}"))
    }

    /// Scheduler labels present, in paper-legend order.
    pub fn schedulers(&self) -> Vec<&'static str> {
        let mut out = Vec::new();
        for c in &self.cells {
            if !out.contains(&c.scheduler) {
                out.push(c.scheduler);
            }
        }
        out
    }
}

/// One cell of the scenario × policy sweep.
#[derive(Debug)]
pub struct PolicyCell {
    /// Scenario label (`"diurnal"` or `"flash-crowd"`).
    pub scenario: &'static str,
    /// Policy label (`"2cpm"`, `"adaptive"`, `"quantile"`).
    pub policy: &'static str,
    /// Full metrics of the run.
    pub metrics: RunMetrics,
}

/// The scenario × spin-down-policy sweep: one event-loop simulation per
/// cell, all on the heuristic scheduler at replication 1 (so the
/// request-to-disk mapping is fixed by placement and every cell differs
/// only in its power-management policy). The flash-crowd column is the
/// headline comparison: the quantile policy's conditional-tail test is
/// built to separate from the fixed 2CPM breakeven exactly when idle
/// periods are bimodal.
#[derive(Debug)]
pub struct PolicyGrid {
    /// All cells, ordered by (scenario, policy).
    pub cells: Vec<PolicyCell>,
}

/// The policies the sweep compares, in report order.
pub const POLICY_SWEEP: [(&str, PolicyKind); 3] = [
    ("2cpm", PolicyKind::Breakeven),
    ("adaptive", PolicyKind::Adaptive),
    ("quantile", PolicyKind::Quantile),
];

impl PolicyGrid {
    /// Runs the sweep with up to `jobs` worker threads. Cells are
    /// independent simulations fanned over the shared pool, bit-identical
    /// to the serial result for any thread count (same argument as
    /// [`EvalGrid::compute_with_jobs`]).
    pub fn compute_with_jobs(scale: Scale, seed: u64, jobs: usize) -> PolicyGrid {
        let scenarios: Vec<(&'static str, Vec<Request>)> = vec![
            ("diurnal", workload::diurnal(scale, seed)),
            ("flash-crowd", workload::flash_crowd(scale, seed)),
        ];
        let mut plan: Vec<(usize, &'static str, PolicyKind)> = Vec::new();
        for (si, _) in scenarios.iter().enumerate() {
            for (label, kind) in &POLICY_SWEEP {
                plan.push((si, label, kind.clone()));
            }
        }
        let metrics = pool::map_indexed(jobs, plan.len(), |i| {
            let (si, _, kind) = &plan[i];
            let spec = ExperimentSpec {
                placement: PlacementConfig {
                    disks: scale.disks,
                    replication: 1,
                    zipf_z: 1.0,
                },
                scheduler: SchedulerKind::Heuristic(CostFunction::energy_only()),
                system: SystemConfig {
                    disks: scale.disks,
                    policy: kind.clone(),
                    ..SystemConfig::default()
                },
                seed,
            };
            run_experiment(&scenarios[*si].1, &spec)
        });
        let cells = plan
            .into_iter()
            .zip(metrics)
            .map(|((si, policy, _), metrics)| PolicyCell {
                scenario: scenarios[si].0,
                policy,
                metrics,
            })
            .collect();
        PolicyGrid { cells }
    }

    /// Looks up one cell.
    pub fn cell(&self, scenario: &str, policy: &str) -> &PolicyCell {
        self.cells
            .iter()
            .find(|c| c.scenario == scenario && c.policy == policy)
            .unwrap_or_else(|| panic!("no policy cell for {scenario}/{policy}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload;

    #[test]
    fn tiny_grid_computes_and_indexes() {
        let scale = Scale {
            requests: 600,
            data_items: 250,
            disks: 12,
            rate: 3.0,
        };
        let reqs = workload::cello(scale, 1);
        let grid = EvalGrid::compute(&reqs, scale, 1.0, 3);
        assert_eq!(grid.cells.len(), 5 * 6);
        assert_eq!(
            grid.schedulers(),
            vec!["random", "static", "heuristic", "wsc", "mwis", "mwis-r"]
        );
        let c = grid.cell(3, "static");
        assert_eq!(c.rf, 3);
        assert!(c.metrics.energy_j > 0.0);
        assert!((grid.always_on.normalized_energy() - 1.0).abs() < 0.05);
    }

    #[test]
    fn parallel_grid_matches_serial() {
        let scale = Scale {
            requests: 300,
            data_items: 120,
            disks: 10,
            rate: 3.0,
        };
        let reqs = workload::cello(scale, 7);
        let serial = EvalGrid::compute_with_jobs(&reqs, scale, 1.0, 11, 1);
        let wide = EvalGrid::compute_with_jobs(&reqs, scale, 1.0, 11, 8);
        assert_eq!(format!("{:?}", serial.cells), format!("{:?}", wide.cells));
        assert_eq!(
            format!("{:?}", serial.always_on),
            format!("{:?}", wide.always_on)
        );
    }

    /// The PR's acceptance criterion: on the flash-crowd scenario the
    /// quantile policy must beat 2CPM on energy at equal-or-better p99
    /// response time. Runs at the same scale and seed as the
    /// `policy_sweep_medium` bench, so the committed
    /// `derived.predictive_vs_2cpm_energy_ratio` reflects this test.
    #[test]
    fn quantile_beats_2cpm_on_flash_crowd() {
        let grid = PolicyGrid::compute_with_jobs(Scale::policy_sweep(), 42, 4);
        let q = &grid.cell("flash-crowd", "quantile").metrics;
        let b = &grid.cell("flash-crowd", "2cpm").metrics;
        let ratio = q.energy_j / b.energy_j;
        assert!(ratio < 1.0, "quantile/2cpm energy ratio {ratio}");
        // p99 is bucket-granular; equal-or-better means same bucket or
        // lower, so a strict <= on the reported edge is the right test.
        assert!(
            q.response.quantile(0.99) <= b.response.quantile(0.99),
            "p99 regressed: quantile {} s vs 2cpm {} s",
            q.response.quantile(0.99),
            b.response.quantile(0.99)
        );
        // Both scenarios actually exercise spin-downs for every policy.
        for c in &grid.cells {
            assert!(
                c.metrics.spin_cycles() > 0,
                "{}/{} never spun down",
                c.scenario,
                c.policy
            );
        }
    }

    #[test]
    fn parallel_policy_grid_matches_serial() {
        let scale = Scale {
            requests: 1_500,
            data_items: 500,
            disks: 8,
            rate: 4.0,
        };
        let serial = PolicyGrid::compute_with_jobs(scale, 11, 1);
        let wide = PolicyGrid::compute_with_jobs(scale, 11, 8);
        assert_eq!(format!("{:?}", serial.cells), format!("{:?}", wide.cells));
    }

    #[test]
    #[should_panic(expected = "no grid cell")]
    fn missing_cell_panics() {
        let scale = Scale {
            requests: 100,
            data_items: 50,
            disks: 8,
            rate: 2.0,
        };
        let reqs = workload::cello(scale, 1);
        let grid = EvalGrid::compute(&reqs, scale, 1.0, 3);
        grid.cell(9, "static");
    }
}
