//! Deterministic fan-out of one sorted stream into per-group substreams.
//!
//! [`StreamSplitter`] routes items pulled from a single upstream source to
//! `n` consumer groups (one per island event loop) **without materializing
//! the stream**: each group owns a bounded lookahead buffer, and whichever
//! consumer needs an item next drives the shared source until its own next
//! item appears, parking foreign items in their groups' buffers.
//!
//! Properties:
//!
//! * **Order-preserving** — each group receives exactly its items, in
//!   upstream order (a `reading` flag serializes the read-route-park
//!   transaction, so per-group FIFO order is independent of thread timing).
//! * **Bounded** — a group's buffer never exceeds the configured capacity;
//!   the reader blocks until the lagging consumer drains. The observed
//!   maximum is reported by [`StreamSplitter::high_water`].
//! * **Fail-fast** — an upstream error is latched and returned to every
//!   group, matching the serial pipeline's abort semantics.
//!
//! Deadlock freedom relies on one contract: **every group is consumed by a
//! live thread until it yields `None` or an error**. The island runner
//! guarantees this by construction (each worker loops on `pull` until its
//! substream ends).

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Shared state behind the splitter's mutex.
struct SplitState<'a, T, E> {
    /// The single upstream source; `None` result means exhausted.
    source: Box<dyn FnMut() -> Option<Result<T, E>> + Send + 'a>,
    /// Maps an item to its consumer group, `0..n_groups`.
    route: Box<dyn FnMut(&T) -> usize + Send + 'a>,
    /// Per-group lookahead buffers.
    buffers: Vec<VecDeque<T>>,
    /// Upstream exhausted.
    done: bool,
    /// Latched upstream error, returned to every group.
    error: Option<E>,
    /// A consumer is currently driving the source.
    reading: bool,
    /// Largest buffer length ever observed (diagnostic).
    high_water: usize,
}

/// Splits one sorted upstream into per-group sorted substreams with
/// bounded lookahead. See the [module docs](self) for the contract.
pub struct StreamSplitter<'a, T, E> {
    state: Mutex<SplitState<'a, T, E>>,
    ready: Condvar,
    capacity: usize,
}

impl<'a, T, E: Clone> StreamSplitter<'a, T, E> {
    /// Default per-group lookahead bound.
    pub const DEFAULT_CAPACITY: usize = 4096;

    /// Creates a splitter over `source` routing into `n_groups` buffers of
    /// at most `capacity` items each.
    ///
    /// # Panics
    ///
    /// Panics if `n_groups == 0` or `capacity == 0`.
    pub fn new(
        source: Box<dyn FnMut() -> Option<Result<T, E>> + Send + 'a>,
        route: Box<dyn FnMut(&T) -> usize + Send + 'a>,
        n_groups: usize,
        capacity: usize,
    ) -> Self {
        assert!(n_groups > 0, "need at least one group");
        assert!(capacity > 0, "lookahead capacity must be positive");
        StreamSplitter {
            state: Mutex::new(SplitState {
                source,
                route,
                buffers: (0..n_groups).map(|_| VecDeque::new()).collect(),
                done: false,
                error: None,
                reading: false,
                high_water: 0,
            }),
            ready: Condvar::new(),
            capacity,
        }
    }

    /// Next item for `group`: `Some(Ok(item))` in upstream order,
    /// `Some(Err(e))` if the upstream failed (latched — every later call
    /// returns the same error), `None` once the upstream is exhausted and
    /// the group's buffer is drained.
    pub fn pull(&self, group: usize) -> Option<Result<T, E>> {
        let mut st = self.state.lock().expect("splitter lock poisoned");
        loop {
            if let Some(item) = st.buffers[group].pop_front() {
                // A parked reader may be waiting for this buffer to drain.
                self.ready.notify_all();
                return Some(Ok(item));
            }
            if let Some(e) = &st.error {
                return Some(Err(e.clone()));
            }
            if st.done {
                return None;
            }
            if st.reading {
                // Another consumer is driving the source; it will either
                // park an item for us or finish the stream.
                st = self.ready.wait(st).expect("splitter lock poisoned");
                continue;
            }
            // Become the reader and drive the source until our own next
            // item appears (or the stream ends).
            st.reading = true;
            let outcome = loop {
                match (st.source)() {
                    None => {
                        st.done = true;
                        break None;
                    }
                    Some(Err(e)) => {
                        st.error = Some(e.clone());
                        break Some(Err(e));
                    }
                    Some(Ok(item)) => {
                        let g = (st.route)(&item);
                        debug_assert!(g < st.buffers.len(), "route out of range");
                        if g == group {
                            break Some(Ok(item));
                        }
                        // Park the foreign item, blocking while its group
                        // lags `capacity` items behind. Its consumer is
                        // live by contract and pops under this same lock,
                        // so the wait always terminates.
                        while st.buffers[g].len() >= self.capacity {
                            st = self.ready.wait(st).expect("splitter lock poisoned");
                        }
                        st.buffers[g].push_back(item);
                        st.high_water = st.high_water.max(st.buffers[g].len());
                    }
                }
            };
            st.reading = false;
            self.ready.notify_all();
            return outcome;
        }
    }

    /// Largest per-group buffer length observed so far. Call after all
    /// groups have drained for the run's lookahead high-water mark.
    pub fn high_water(&self) -> usize {
        self.state
            .lock()
            .expect("splitter lock poisoned")
            .high_water
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vec_source<T: Send + 'static>(
        items: Vec<Result<T, String>>,
    ) -> Box<dyn FnMut() -> Option<Result<T, String>> + Send> {
        let mut it = items.into_iter();
        Box::new(move || it.next())
    }

    #[test]
    fn single_group_passthrough() {
        let s = StreamSplitter::new(
            vec_source((0..100).map(Ok).collect()),
            Box::new(|_: &i32| 0),
            1,
            8,
        );
        let mut out = Vec::new();
        while let Some(r) = s.pull(0) {
            out.push(r.unwrap());
        }
        assert_eq!(out, (0..100).collect::<Vec<_>>());
        assert_eq!(s.high_water(), 0);
    }

    #[test]
    fn routes_preserve_per_group_order() {
        let n: i32 = 10_000;
        let s = StreamSplitter::new(
            vec_source((0..n).map(Ok).collect()),
            Box::new(|x: &i32| (*x % 3) as usize),
            3,
            StreamSplitter::<i32, String>::DEFAULT_CAPACITY,
        );
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..3usize)
                .map(|g| {
                    let s = &s;
                    scope.spawn(move || {
                        let mut out = Vec::new();
                        while let Some(r) = s.pull(g) {
                            out.push(r.unwrap());
                        }
                        out
                    })
                })
                .collect();
            for (g, h) in handles.into_iter().enumerate() {
                let got = h.join().unwrap();
                let want: Vec<i32> = (0..n).filter(|x| (*x % 3) as usize == g).collect();
                assert_eq!(got, want, "group {g}");
            }
        });
        assert!(s.high_water() > 0);
    }

    #[test]
    fn bounded_buffers_block_instead_of_growing() {
        // Group 1 gets the first 50 items; group 0's single item comes
        // last. Group 0 must drive the source through all of group 1's
        // items, respecting the capacity bound via backpressure.
        let mut items: Vec<Result<i32, String>> = (0..50).map(|i| Ok(i * 2 + 1)).collect();
        items.push(Ok(0));
        let cap = 4;
        let s = StreamSplitter::new(
            vec_source(items),
            Box::new(|x: &i32| (*x % 2) as usize),
            2,
            cap,
        );
        std::thread::scope(|scope| {
            let s0 = &s;
            let slow = scope.spawn(move || {
                let mut out = Vec::new();
                while let Some(r) = s0.pull(1) {
                    out.push(r.unwrap());
                }
                out
            });
            assert_eq!(s.pull(0), Some(Ok(0)));
            assert_eq!(s.pull(0), None);
            let odd = slow.join().unwrap();
            assert_eq!(odd.len(), 50);
        });
        assert!(s.high_water() <= cap, "high water {}", s.high_water());
    }

    #[test]
    fn upstream_error_latches_for_every_group() {
        let s = StreamSplitter::new(
            vec_source(vec![Ok(0), Ok(1), Err("boom".to_string())]),
            Box::new(|x: &i32| *x as usize),
            2,
            8,
        );
        assert_eq!(s.pull(0), Some(Ok(0)));
        // Pulling group 0 again drives past item 1 (parked for group 1)
        // into the error.
        assert_eq!(s.pull(0), Some(Err("boom".to_string())));
        // Group 1 still sees its buffered item first, then the error.
        assert_eq!(s.pull(1), Some(Ok(1)));
        assert_eq!(s.pull(1), Some(Err("boom".to_string())));
        assert_eq!(s.pull(0), Some(Err("boom".to_string())));
    }

    #[test]
    fn exhaustion_yields_none_for_all_groups() {
        let s = StreamSplitter::new(
            vec_source(vec![Ok(1)]),
            Box::new(|_: &i32| 1),
            2,
            8,
        );
        assert_eq!(s.pull(0), None);
        assert_eq!(s.pull(1), Some(Ok(1)));
        assert_eq!(s.pull(1), None);
        assert_eq!(s.pull(0), None);
    }
}
