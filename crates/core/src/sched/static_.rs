//! `Static` baseline: always dispatch to the original data location
//! (paper §4.3). Replication is ignored entirely, so this scheduler's
//! results are independent of the replication factor — the flat lines in
//! Figs. 6–8.

use crate::model::{DiskId, Request};
use crate::sched::{Scheduler, SystemView};

/// The paper's `Static` baseline scheduler.
#[derive(Debug, Default, Clone)]
pub struct StaticScheduler;

impl Scheduler for StaticScheduler {
    fn name(&self) -> &'static str {
        "static"
    }

    fn assign(&mut self, reqs: &[Request], view: &SystemView<'_>) -> Vec<DiskId> {
        let mut out = Vec::with_capacity(reqs.len());
        self.assign_into(reqs, view, &mut out);
        out
    }

    fn assign_into(&mut self, reqs: &[Request], view: &SystemView<'_>, out: &mut Vec<DiskId>) {
        out.clear();
        out.extend(reqs.iter().map(|r| view.locations(r.data)[0]));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::DiskStatus;
    use crate::model::DataId;
    use crate::sched::ExplicitPlacement;
    use spindown_disk::power::PowerParams;
    use spindown_disk::state::DiskPowerState;
    use spindown_sim::time::SimTime;

    #[test]
    fn always_picks_original() {
        let placement = ExplicitPlacement::new(
            vec![vec![DiskId(2), DiskId(0)], vec![DiskId(1), DiskId(2)]],
            3,
        );
        let params = PowerParams::barracuda();
        let statuses = vec![
            DiskStatus {
                state: DiskPowerState::Idle,
                last_request_at: None,
                load: 0
            };
            3
        ];
        let view = SystemView {
            now: SimTime::ZERO,
            params: &params,
            placement: &placement,
            statuses: &statuses,
        };
        let mut s = StaticScheduler;
        let reqs: Vec<Request> = (0..2)
            .map(|i| Request {
                index: i,
                at: SimTime::ZERO,
                data: DataId(i as u64),
                size: 4096,
            })
            .collect();
        assert_eq!(s.assign(&reqs, &view), vec![DiskId(2), DiskId(1)]);
        assert_eq!(s.name(), "static");
    }
}
