//! HP SRT-style parser — a whitespace-delimited representation of the
//! **Cello** trace family the paper evaluates on (§4.1, \[3\]).
//!
//! HP's original `.srt` files are binary and not redistributable; the
//! conventional textual export (one record per line) is:
//!
//! ```text
//! <timestamp_s> <device_id> <block_number> <size_bytes> <R|W>
//! ```
//!
//! Data identity follows the paper: one data item per unique
//! `(device, block)` pair.

use spindown_sim::time::SimTime;

use crate::record::{DataId, OpKind, Trace, TraceRecord};

/// A parse failure with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SrtParseError {
    /// 1-based line number of the offending record.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for SrtParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for SrtParseError {}

/// Encodes a `(device, block)` pair as the data identity.
pub fn data_id(device: u16, block: u64) -> DataId {
    DataId(((device as u64) << 48) | (block & ((1u64 << 48) - 1)))
}

/// Parses SRT-style text into a [`Trace`]. Blank lines and `#` comments
/// are skipped.
///
/// # Examples
///
/// ```
/// use spindown_trace::srt::parse;
///
/// let text = "0.125 3 81920 8192 R\n0.250 3 81928 8192 W\n";
/// let trace = parse(text).unwrap();
/// assert_eq!(trace.len(), 2);
/// ```
pub fn parse(text: &str) -> Result<Trace, SrtParseError> {
    let mut records = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |message: String| SrtParseError {
            line: line_no,
            message,
        };
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() < 5 {
            return Err(err(format!("expected 5 fields, got {}", fields.len())));
        }
        let ts: f64 = fields[0]
            .parse()
            .map_err(|_| err(format!("bad timestamp {:?}", fields[0])))?;
        if !ts.is_finite() || ts < 0.0 {
            return Err(err(format!("bad timestamp {:?}", fields[0])));
        }
        let device: u16 = fields[1]
            .parse()
            .map_err(|_| err(format!("bad device id {:?}", fields[1])))?;
        let block: u64 = fields[2]
            .parse()
            .map_err(|_| err(format!("bad block number {:?}", fields[2])))?;
        let size: u64 = fields[3]
            .parse()
            .map_err(|_| err(format!("bad size {:?}", fields[3])))?;
        let op = match fields[4] {
            "r" | "R" => OpKind::Read,
            "w" | "W" => OpKind::Write,
            other => return Err(err(format!("bad op {other:?}"))),
        };
        records.push(TraceRecord {
            at: SimTime::from_secs_f64(ts),
            data: data_id(device, block),
            size,
            op,
        });
    }
    Ok(Trace::from_records(records))
}

/// Serializes a [`Trace`] to SRT text, inverting [`data_id`].
pub fn to_string(trace: &Trace) -> String {
    let mut out = String::new();
    for r in trace.records() {
        let device = (r.data.0 >> 48) as u16;
        let block = r.data.0 & ((1u64 << 48) - 1);
        let op = match r.op {
            OpKind::Read => 'R',
            OpKind::Write => 'W',
        };
        out.push_str(&format!(
            "{:.6} {} {} {} {}\n",
            r.at.as_secs_f64(),
            device,
            block,
            r.size,
            op
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_records() {
        let t = parse("0.125 3 81920 8192 R\n0.250 4 81928 8192 W\n").unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.records()[0].data, data_id(3, 81920));
        assert_eq!(t.records()[0].op, OpKind::Read);
        assert_eq!(t.records()[1].op, OpKind::Write);
    }

    #[test]
    fn skips_comments_and_blanks() {
        let t = parse("# header\n\n0.5 1 2 4096 R\n").unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn sorts_out_of_order_records() {
        let t = parse("5.0 1 2 4096 R\n1.0 1 3 4096 R\n").unwrap();
        assert_eq!(t.records()[0].at, SimTime::from_secs(1));
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse("0.5 1 2 4096\n").is_err());
        assert!(parse("x 1 2 4096 R\n").is_err());
        assert!(parse("0.5 1 2 4096 Z\n").is_err());
        assert!(parse("-1 1 2 4096 R\n").is_err());
        let e = parse("0.5 1 2 4096 R\nbroken\n").unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn roundtrip() {
        let text = "0.125000 3 81920 8192 R\n0.250000 4 81928 8192 W\n";
        let t = parse(text).unwrap();
        assert_eq!(to_string(&t), text);
    }

    #[test]
    fn extra_fields_tolerated() {
        // Real exports sometimes append queue depth etc.
        let t = parse("0.5 1 2 4096 R extra stuff\n").unwrap();
        assert_eq!(t.len(), 1);
    }
}
