//! Energy metering: integrates per-state power over time and adds lump
//! transition energies.
//!
//! Accounting convention (matches the paper's model): the two transitional
//! states draw **no rate power** — their entire cost is the lump `E_up` /
//! `E_down` charged when the transition starts. This avoids double counting
//! and makes a completed up/down cycle cost exactly `E_up + E_down`
//! regardless of `T_up`/`T_down`.

use spindown_sim::stats::StateTimer;
use spindown_sim::time::{SimDuration, SimTime};

use crate::power::PowerParams;
use crate::state::DiskPowerState;

/// Per-disk energy meter and state-occupancy tracker.
///
/// # Examples
///
/// ```
/// use spindown_disk::energy::EnergyMeter;
/// use spindown_disk::power::PowerParams;
/// use spindown_disk::state::DiskPowerState;
/// use spindown_sim::time::SimTime;
///
/// let p = PowerParams::barracuda();
/// let mut m = EnergyMeter::new(&p, DiskPowerState::Idle, SimTime::ZERO);
/// m.transition(DiskPowerState::Active, SimTime::from_secs(10));
/// // 10 s idle at 9.3 W
/// assert!((m.energy_j(SimTime::from_secs(10), &p) - 93.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct EnergyMeter {
    timer: StateTimer<{ DiskPowerState::COUNT }>,
    spinups: u64,
    spindowns: u64,
    started: SimTime,
}

impl EnergyMeter {
    /// Creates a meter for a disk that is in `initial` at `start`.
    pub fn new(_params: &PowerParams, initial: DiskPowerState, start: SimTime) -> Self {
        EnergyMeter {
            timer: StateTimer::new(initial.index(), start),
            spinups: 0,
            spindowns: 0,
            started: start,
        }
    }

    /// Records a state change at `now`. Entering [`DiskPowerState::SpinningUp`]
    /// increments the spin-up counter (and charges `E_up` in the energy
    /// total); likewise for spin-down.
    pub fn transition(&mut self, next: DiskPowerState, now: SimTime) {
        match next {
            DiskPowerState::SpinningUp => self.spinups += 1,
            DiskPowerState::SpinningDown => self.spindowns += 1,
            _ => {}
        }
        self.timer.transition(next.index(), now);
    }

    /// The state currently being timed.
    pub fn current_state(&self) -> DiskPowerState {
        DiskPowerState::ALL[self.timer.current()]
    }

    /// Number of spin-up transitions so far.
    pub fn spinups(&self) -> u64 {
        self.spinups
    }

    /// Number of spin-down transitions so far.
    pub fn spindowns(&self) -> u64 {
        self.spindowns
    }

    /// Combined spin-up + spin-down count — the paper's Fig. 7/15 metric.
    pub fn spin_cycles(&self) -> u64 {
        self.spinups + self.spindowns
    }

    /// Time spent in each state as of `now` (open interval included).
    pub fn state_times(&self, now: SimTime) -> [SimDuration; DiskPowerState::COUNT] {
        self.timer.snapshot(now)
    }

    /// Fraction of elapsed time per state as of `now` — one bar of the
    /// paper's Fig. 9/17.
    pub fn state_fractions(&self, now: SimTime) -> [f64; DiskPowerState::COUNT] {
        self.timer.fractions(now)
    }

    /// Total energy consumed as of `now`, joules:
    /// rate states integrate power × time, transitions add lump energies.
    pub fn energy_j(&self, now: SimTime, params: &PowerParams) -> f64 {
        let t = self.timer.snapshot(now);
        let rate = t[DiskPowerState::Active.index()].as_secs_f64() * params.active_w
            + t[DiskPowerState::Idle.index()].as_secs_f64() * params.idle_w
            + t[DiskPowerState::Standby.index()].as_secs_f64() * params.standby_w;
        rate + self.spinups as f64 * params.spinup_j + self.spindowns as f64 * params.spindown_j
    }

    /// Energy an always-on disk (idle the whole run, never servicing) would
    /// have consumed over the same horizon — the normalization baseline of
    /// the paper's Fig. 6/14.
    pub fn always_on_baseline_j(&self, now: SimTime, params: &PowerParams) -> f64 {
        now.saturating_since(self.started).as_secs_f64() * params.idle_w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idle_meter() -> (EnergyMeter, PowerParams) {
        let p = PowerParams::barracuda();
        let m = EnergyMeter::new(&p, DiskPowerState::Idle, SimTime::ZERO);
        (m, p)
    }

    #[test]
    fn pure_idle_integrates_idle_power() {
        let (m, p) = idle_meter();
        let e = m.energy_j(SimTime::from_secs(100), &p);
        assert!((e - 930.0).abs() < 1e-9);
    }

    #[test]
    fn standby_integrates_standby_power() {
        let p = PowerParams::barracuda();
        let m = EnergyMeter::new(&p, DiskPowerState::Standby, SimTime::ZERO);
        let e = m.energy_j(SimTime::from_secs(100), &p);
        assert!((e - 80.0).abs() < 1e-9);
    }

    #[test]
    fn full_cycle_costs_transition_energy() {
        let (mut m, p) = idle_meter();
        // idle 10 s, spin down, standby until 100 s, spin up, idle again.
        m.transition(DiskPowerState::SpinningDown, SimTime::from_secs(10));
        m.transition(DiskPowerState::Standby, SimTime::from_secs_f64(11.5));
        m.transition(DiskPowerState::SpinningUp, SimTime::from_secs(100));
        m.transition(DiskPowerState::Idle, SimTime::from_secs(110));
        let e = m.energy_j(SimTime::from_secs(120), &p);
        let expect = 10.0 * 9.3          // idle before
            + 13.0                        // spin-down lump
            + (100.0 - 11.5) * 0.8        // standby
            + 135.0                       // spin-up lump
            + 10.0 * 9.3; // idle after
        assert!((e - expect).abs() < 1e-6, "e={e} expect={expect}");
        assert_eq!(m.spinups(), 1);
        assert_eq!(m.spindowns(), 1);
        assert_eq!(m.spin_cycles(), 2);
    }

    #[test]
    fn transitional_states_draw_no_rate_power() {
        let (mut m, p) = idle_meter();
        m.transition(DiskPowerState::SpinningDown, SimTime::ZERO);
        // Sit "spinning down" for an hour: cost must stay the 13 J lump.
        let e = m.energy_j(SimTime::from_secs(3600), &p);
        assert!((e - 13.0).abs() < 1e-9);
    }

    #[test]
    fn active_uses_active_power() {
        let p = PowerParams::barracuda();
        let mut m = EnergyMeter::new(&p, DiskPowerState::Active, SimTime::ZERO);
        m.transition(DiskPowerState::Idle, SimTime::from_secs(2));
        let e = m.energy_j(SimTime::from_secs(3), &p);
        assert!((e - (2.0 * 12.8 + 9.3)).abs() < 1e-9);
    }

    #[test]
    fn state_fractions_cover_the_run() {
        let (mut m, _) = idle_meter();
        m.transition(DiskPowerState::SpinningDown, SimTime::from_secs(50));
        m.transition(DiskPowerState::Standby, SimTime::from_secs(52));
        let f = m.state_fractions(SimTime::from_secs(100));
        let total: f64 = f.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!((f[DiskPowerState::Idle.index()] - 0.5).abs() < 1e-9);
        assert!((f[DiskPowerState::Standby.index()] - 0.48).abs() < 1e-9);
    }

    #[test]
    fn always_on_baseline() {
        let (m, p) = idle_meter();
        let b = m.always_on_baseline_j(SimTime::from_secs(1000), &p);
        assert!((b - 9300.0).abs() < 1e-9);
    }

    #[test]
    fn current_state_tracks() {
        let (mut m, _) = idle_meter();
        assert_eq!(m.current_state(), DiskPowerState::Idle);
        m.transition(DiskPowerState::Active, SimTime::from_secs(1));
        assert_eq!(m.current_state(), DiskPowerState::Active);
    }
}
