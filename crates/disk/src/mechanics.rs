//! Mechanical service-time model — the part of DiskSim this reproduction
//! actually needs.
//!
//! The paper treats per-request I/O time (milliseconds) as negligible next
//! to power-management timescales (seconds), but still runs requests through
//! DiskSim so that queueing and sub-100 ms response times are realistic
//! (Fig. 12's left half). We model the three classical components:
//!
//! * **seek** — a three-coefficient curve `a + b·√d + c·d` over the seek
//!   distance fraction `d ∈ [0,1]`, calibrated from track-to-track, average
//!   and full-stroke seek times;
//! * **rotational latency** — uniform in `[0, rotation period)`;
//! * **transfer** — request size over the sustained media rate.

use spindown_sim::rng::SimRng;
use spindown_sim::time::SimDuration;

/// Static description of a disk's mechanics.
///
/// # Examples
///
/// ```
/// use spindown_disk::mechanics::DiskGeometry;
///
/// let g = DiskGeometry::cheetah_15k5();
/// assert_eq!(g.rpm, 15_000.0);
/// // Full rotation at 15k RPM takes 4 ms.
/// assert!((g.rotation_period_s() - 0.004).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DiskGeometry {
    /// Spindle speed, revolutions per minute.
    pub rpm: f64,
    /// Track-to-track (minimum) seek time, seconds.
    pub seek_track_s: f64,
    /// Average seek time, seconds (defined at one third of full stroke).
    pub seek_avg_s: f64,
    /// Full-stroke (maximum) seek time, seconds.
    pub seek_full_s: f64,
    /// Sustained media transfer rate, bytes per second.
    pub transfer_rate_bps: f64,
    /// Addressable capacity, bytes. Seek distance is modelled as LBA
    /// distance over capacity.
    pub capacity_bytes: u64,
}

impl DiskGeometry {
    /// Seagate Cheetah 15K.5 enterprise disk — the model simulated in the
    /// paper's experiments (§4): 15 000 RPM, ~3.5 ms average seek,
    /// ~125 MB/s sustained transfer, 300 GB.
    pub fn cheetah_15k5() -> Self {
        DiskGeometry {
            rpm: 15_000.0,
            seek_track_s: 0.0005,
            seek_avg_s: 0.0035,
            seek_full_s: 0.008,
            transfer_rate_bps: 125.0e6,
            capacity_bytes: 300_000_000_000,
        }
    }

    /// Seagate Barracuda-class 7200 RPM nearline disk.
    pub fn barracuda_7200() -> Self {
        DiskGeometry {
            rpm: 7_200.0,
            seek_track_s: 0.001,
            seek_avg_s: 0.0085,
            seek_full_s: 0.020,
            transfer_rate_bps: 78.0e6,
            capacity_bytes: 750_000_000_000,
        }
    }

    /// One full platter rotation, seconds.
    pub fn rotation_period_s(&self) -> f64 {
        60.0 / self.rpm
    }

    /// Expected (mean) rotational latency: half a rotation, seconds.
    pub fn avg_rotational_latency_s(&self) -> f64 {
        self.rotation_period_s() / 2.0
    }
}

/// Deterministic-given-seed mechanical service-time model for one disk.
///
/// Tracks head position (as the LBA of the last access) so consecutive
/// requests to nearby blocks seek less — sequential workloads are rewarded
/// exactly as on real hardware.
#[derive(Debug, Clone)]
pub struct Mechanics {
    geometry: DiskGeometry,
    // Seek curve coefficients for seek(d) = a + b*sqrt(d) + c*d, d in (0,1].
    seek_a: f64,
    seek_b: f64,
    seek_c: f64,
    head_lba: u64,
    rng: SimRng,
}

impl Mechanics {
    /// Builds the model, fitting the seek curve to the geometry's three
    /// calibration points:
    ///
    /// * `seek(0+) = seek_track_s`
    /// * `seek(1/3) = seek_avg_s`
    /// * `seek(1)  = seek_full_s`
    pub fn new(geometry: DiskGeometry, rng: SimRng) -> Self {
        // Solve for a, b, c:
        //   a                      = t   (track-to-track, d -> 0)
        //   a + b/sqrt(3) + c/3    = avg
        //   a + b + c              = full
        let t = geometry.seek_track_s;
        let avg = geometry.seek_avg_s;
        let full = geometry.seek_full_s;
        let s3 = 1.0 / 3.0f64.sqrt();
        // Two equations in b, c:
        //   b*s3 + c/3 = avg - t
        //   b + c      = full - t
        let rhs1 = avg - t;
        let rhs2 = full - t;
        let det = s3 * 1.0 - (1.0 / 3.0);
        let b = (rhs1 - rhs2 / 3.0) / det;
        let c = rhs2 - b;
        Mechanics {
            geometry,
            seek_a: t,
            seek_b: b,
            seek_c: c,
            head_lba: 0,
            rng,
        }
    }

    /// The geometry this model was built from.
    pub fn geometry(&self) -> &DiskGeometry {
        &self.geometry
    }

    /// The LBA the head is currently positioned after (the end of the
    /// last transfer). Queue disciplines use this to estimate seek
    /// distances.
    pub fn head_lba(&self) -> u64 {
        self.head_lba
    }

    /// Seek time for a seek distance expressed as a fraction of the full
    /// stroke. Zero distance costs nothing (same-track access).
    pub fn seek_time_s(&self, distance_frac: f64) -> f64 {
        let d = distance_frac.clamp(0.0, 1.0);
        if d == 0.0 {
            return 0.0;
        }
        (self.seek_a + self.seek_b * d.sqrt() + self.seek_c * d).max(0.0)
    }

    /// Service time for a request at `lba` of `size_bytes`, advancing the
    /// head. Rotational latency is sampled uniformly in
    /// `[0, rotation period)` from the model's own deterministic stream.
    pub fn service_time(&mut self, lba: u64, size_bytes: u64) -> SimDuration {
        let cap = self.geometry.capacity_bytes.max(1);
        let dist = self.head_lba.abs_diff(lba).min(cap);
        let d = dist as f64 / cap as f64;
        let seek = self.seek_time_s(d);
        let rot = self.rng.next_f64() * self.geometry.rotation_period_s();
        let xfer = size_bytes as f64 / self.geometry.transfer_rate_bps;
        self.head_lba = lba.saturating_add(size_bytes);
        SimDuration::from_secs_f64(seek + rot + xfer)
    }

    /// Expected service time for a random request of `size_bytes` —
    /// average seek + half rotation + transfer. Used by the analytic
    /// offline evaluator where per-request simulation is skipped.
    pub fn expected_service_time(&self, size_bytes: u64) -> SimDuration {
        let s = self.geometry.seek_avg_s
            + self.geometry.avg_rotational_latency_s()
            + size_bytes as f64 / self.geometry.transfer_rate_bps;
        SimDuration::from_secs_f64(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mech() -> Mechanics {
        Mechanics::new(DiskGeometry::cheetah_15k5(), SimRng::seed_from_u64(1))
    }

    #[test]
    fn seek_curve_hits_calibration_points() {
        let m = mech();
        let g = m.geometry().clone();
        // d -> 0 gives approximately track-to-track time.
        assert!((m.seek_time_s(1e-12) - g.seek_track_s).abs() < 1e-6);
        assert!((m.seek_time_s(1.0 / 3.0) - g.seek_avg_s).abs() < 1e-9);
        assert!((m.seek_time_s(1.0) - g.seek_full_s).abs() < 1e-9);
    }

    #[test]
    fn seek_curve_is_monotone() {
        let m = mech();
        let mut prev = 0.0;
        for i in 1..=100 {
            let t = m.seek_time_s(i as f64 / 100.0);
            assert!(t >= prev, "seek not monotone at {i}");
            prev = t;
        }
    }

    #[test]
    fn zero_distance_seek_is_free() {
        let m = mech();
        assert_eq!(m.seek_time_s(0.0), 0.0);
    }

    #[test]
    fn rotation_period() {
        let g = DiskGeometry::cheetah_15k5();
        assert!((g.rotation_period_s() - 0.004).abs() < 1e-12);
        assert!((g.avg_rotational_latency_s() - 0.002).abs() < 1e-12);
        let b = DiskGeometry::barracuda_7200();
        assert!((b.rotation_period_s() - 60.0 / 7200.0).abs() < 1e-12);
    }

    #[test]
    fn service_time_is_milliseconds_scale() {
        let mut m = mech();
        for i in 0..1000u64 {
            let t = m.service_time(i * 1_000_000, 512 * 1024).as_secs_f64();
            // 512 KB request on a Cheetah: bounded by full seek + rotation
            // + transfer ≈ 8 + 4 + 4.2 ms.
            assert!(t > 0.0 && t < 0.020, "service time {t}");
        }
    }

    #[test]
    fn sequential_access_is_faster_than_random() {
        let mut seq = mech();
        let mut rnd = mech();
        let mut rng = SimRng::seed_from_u64(9);
        let n = 2000;
        let mut t_seq = 0.0;
        let mut t_rnd = 0.0;
        let mut lba = 0u64;
        for _ in 0..n {
            t_seq += seq.service_time(lba, 64 * 1024).as_secs_f64();
            lba += 64 * 1024;
            let r = rng.next_below(DiskGeometry::cheetah_15k5().capacity_bytes);
            t_rnd += rnd.service_time(r, 64 * 1024).as_secs_f64();
        }
        assert!(
            t_seq < t_rnd * 0.8,
            "sequential {t_seq} not faster than random {t_rnd}"
        );
    }

    #[test]
    fn service_time_is_deterministic_per_seed() {
        let mut a = mech();
        let mut b = mech();
        for i in 0..100u64 {
            assert_eq!(
                a.service_time(i * 7_919, 4096),
                b.service_time(i * 7_919, 4096)
            );
        }
    }

    #[test]
    fn expected_service_time_matches_components() {
        let m = mech();
        let e = m.expected_service_time(512 * 1024).as_secs_f64();
        let g = DiskGeometry::cheetah_15k5();
        let want =
            g.seek_avg_s + g.avg_rotational_latency_s() + (512.0 * 1024.0) / g.transfer_rate_bps;
        // SimDuration rounds to whole microseconds.
        assert!((e - want).abs() < 1e-6);
    }

    #[test]
    fn lba_past_capacity_clamps() {
        let mut m = mech();
        let t = m.service_time(u64::MAX, 4096).as_secs_f64();
        assert!(t < 0.020, "clamped seek still bounded: {t}");
    }
}
