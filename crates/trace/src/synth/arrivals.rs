//! Arrival-time processes: Poisson (smooth) and multi-source Pareto ON/OFF
//! (bursty / self-similar).

use spindown_sim::rng::SimRng;
use spindown_sim::time::SimTime;

/// Generates `n` Poisson arrival times with the given mean rate
/// (arrivals per second), starting at time zero.
///
/// # Panics
///
/// Panics if `rate` is not strictly positive.
pub fn poisson(rng: &mut SimRng, rate: f64, n: usize) -> Vec<SimTime> {
    assert!(rate > 0.0, "arrival rate must be positive");
    let mut t = 0.0;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        t += rng.exponential(rate);
        out.push(SimTime::from_secs_f64(t));
    }
    out
}

/// Multi-source Pareto ON/OFF arrival process.
///
/// Each of `sources` independent sources alternates between an ON period
/// (Pareto-distributed duration, during which it emits a Poisson stream at
/// `burst_rate`) and a silent OFF period (Pareto as well). Aggregating many
/// heavy-tailed ON/OFF sources is the classical construction of
/// self-similar traffic (Willinger et al.) and reproduces the burstiness
/// the Cello trace is known for.
#[derive(Debug, Clone)]
pub struct OnOffProcess {
    /// Number of independent ON/OFF sources.
    pub sources: usize,
    /// Pareto shape for ON durations (1 < shape ≤ 2 gives heavy tails).
    pub on_shape: f64,
    /// Pareto scale (minimum) for ON durations, seconds.
    pub on_scale_s: f64,
    /// Pareto shape for OFF durations.
    pub off_shape: f64,
    /// Pareto scale (minimum) for OFF durations, seconds.
    pub off_scale_s: f64,
    /// Poisson rate while a source is ON, arrivals per second.
    pub burst_rate: f64,
}

impl OnOffProcess {
    /// Expected fraction of time a source spends ON.
    pub fn on_fraction(&self) -> f64 {
        let e_on = pareto_mean(self.on_shape, self.on_scale_s);
        let e_off = pareto_mean(self.off_shape, self.off_scale_s);
        e_on / (e_on + e_off)
    }

    /// Expected aggregate arrival rate, arrivals per second.
    pub fn mean_rate(&self) -> f64 {
        self.sources as f64 * self.burst_rate * self.on_fraction()
    }

    /// Generates exactly `n` arrival times (ascending, starting near zero).
    ///
    /// # Panics
    ///
    /// Panics if any parameter is non-positive or `sources == 0`.
    pub fn generate(&self, rng: &mut SimRng, n: usize) -> Vec<SimTime> {
        assert!(self.sources > 0, "need at least one source");
        assert!(
            self.on_shape > 1.0 && self.off_shape > 1.0,
            "Pareto shapes must exceed 1 for finite means"
        );
        assert!(
            self.on_scale_s > 0.0 && self.off_scale_s > 0.0 && self.burst_rate > 0.0,
            "scales and rate must be positive"
        );
        // Simulate each source until we have comfortably more than n
        // aggregate arrivals, then merge and truncate.
        let horizon = 1.3 * n as f64 / self.mean_rate() + self.on_scale_s + self.off_scale_s;
        let mut all: Vec<SimTime> = Vec::with_capacity(n + n / 4);
        for s in 0..self.sources {
            let mut src_rng = rng.fork(s as u64);
            // Random initial phase: start OFF with a random residual.
            let mut t = src_rng.next_f64() * self.off_scale_s;
            while t < horizon {
                // ON period.
                let on_end = t + src_rng.pareto(self.on_shape, self.on_scale_s);
                loop {
                    t += src_rng.exponential(self.burst_rate);
                    if t >= on_end || t >= horizon {
                        break;
                    }
                    all.push(SimTime::from_secs_f64(t));
                }
                t = on_end.max(t.min(horizon));
                // OFF period.
                t += src_rng.pareto(self.off_shape, self.off_scale_s);
            }
        }
        all.sort_unstable();
        all.truncate(n);
        // Degenerate parameterizations can under-produce; extend with a
        // Poisson tail so callers always get n arrivals.
        if all.len() < n {
            let mut t = all.last().map(|x| x.as_secs_f64()).unwrap_or(0.0);
            while all.len() < n {
                t += rng.exponential(self.mean_rate().max(1e-6));
                all.push(SimTime::from_secs_f64(t));
            }
        }
        all
    }
}

impl OnOffProcess {
    /// Lazy equivalent of [`OnOffProcess::generate`]: yields exactly the
    /// same `n` arrival times in the same order, drawing from `rng` at
    /// construction exactly as `generate` would (so a caller's subsequent
    /// draws land on identical values), but merging the per-source
    /// streams on demand with a k-way heap instead of materializing and
    /// sorting the aggregate.
    ///
    /// Construction performs one counting dry run of the sources (clones
    /// of the per-source rngs; no arrival vector is built), so it costs
    /// the same generation work once more but only O(sources) memory —
    /// plus the Poisson fallback tail, which only degenerate
    /// parameterizations produce.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is non-positive or `sources == 0`.
    pub fn stream(&self, rng: &mut SimRng, n: usize) -> OnOffStream {
        assert!(self.sources > 0, "need at least one source");
        assert!(
            self.on_shape > 1.0 && self.off_shape > 1.0,
            "Pareto shapes must exceed 1 for finite means"
        );
        assert!(
            self.on_scale_s > 0.0 && self.off_scale_s > 0.0 && self.burst_rate > 0.0,
            "scales and rate must be positive"
        );
        let horizon = 1.3 * n as f64 / self.mean_rate() + self.on_scale_s + self.off_scale_s;
        let mut sources: Vec<OnOffSource> = (0..self.sources)
            .map(|s| OnOffSource::new(self, rng.fork(s as u64), horizon))
            .collect();

        // Counting dry run: how many arrivals the sources produce and the
        // latest one — `generate` needs both before its fallback draws,
        // and the fallback draws must come off `rng` before any caller
        // draw that follows construction.
        let mut produced = 0usize;
        let mut last = SimTime::ZERO;
        for src in &sources {
            for t in src.clone() {
                produced += 1;
                if t > last {
                    last = t;
                }
            }
        }
        let mut fallback = Vec::new();
        if produced < n {
            let mut t = if produced > 0 { last.as_secs_f64() } else { 0.0 };
            while produced + fallback.len() < n {
                t += rng.exponential(self.mean_rate().max(1e-6));
                fallback.push(SimTime::from_secs_f64(t));
            }
        }

        let mut heap = std::collections::BinaryHeap::with_capacity(sources.len());
        for (i, src) in sources.iter_mut().enumerate() {
            if let Some(t) = src.next() {
                heap.push(std::cmp::Reverse((t, i)));
            }
        }
        OnOffStream {
            sources,
            heap,
            fallback: fallback.into_iter(),
            remaining: n,
        }
    }
}

/// One lazy Pareto-ON/OFF source: replays exactly the rng draws of the
/// corresponding per-source loop in [`OnOffProcess::generate`]. Cloning
/// replays the remaining arrivals identically (the rng clone resumes the
/// same stream).
#[derive(Debug, Clone)]
struct OnOffSource {
    rng: SimRng,
    t: f64,
    on_end: f64,
    horizon: f64,
    in_on: bool,
    on_shape: f64,
    on_scale_s: f64,
    off_shape: f64,
    off_scale_s: f64,
    burst_rate: f64,
}

impl OnOffSource {
    fn new(proc: &OnOffProcess, mut rng: SimRng, horizon: f64) -> Self {
        // Random initial phase: start OFF with a random residual.
        let t = rng.next_f64() * proc.off_scale_s;
        OnOffSource {
            rng,
            t,
            on_end: 0.0,
            horizon,
            in_on: false,
            on_shape: proc.on_shape,
            on_scale_s: proc.on_scale_s,
            off_shape: proc.off_shape,
            off_scale_s: proc.off_scale_s,
            burst_rate: proc.burst_rate,
        }
    }
}

impl Iterator for OnOffSource {
    type Item = SimTime;

    fn next(&mut self) -> Option<SimTime> {
        loop {
            if !self.in_on {
                if self.t >= self.horizon {
                    return None;
                }
                // ON period.
                self.on_end = self.t + self.rng.pareto(self.on_shape, self.on_scale_s);
                self.in_on = true;
            }
            self.t += self.rng.exponential(self.burst_rate);
            if self.t >= self.on_end || self.t >= self.horizon {
                self.t = self.on_end.max(self.t.min(self.horizon));
                // OFF period.
                self.t += self.rng.pareto(self.off_shape, self.off_scale_s);
                self.in_on = false;
                continue;
            }
            return Some(SimTime::from_secs_f64(self.t));
        }
    }
}

/// Lazy aggregate of [`OnOffProcess`] sources — see
/// [`OnOffProcess::stream`]. Yields exactly `n` ascending arrival times.
#[derive(Debug)]
pub struct OnOffStream {
    sources: Vec<OnOffSource>,
    heap: std::collections::BinaryHeap<std::cmp::Reverse<(SimTime, usize)>>,
    fallback: std::vec::IntoIter<SimTime>,
    remaining: usize,
}

impl Iterator for OnOffStream {
    type Item = SimTime;

    fn next(&mut self) -> Option<SimTime> {
        if self.remaining == 0 {
            return None;
        }
        let t = if let Some(std::cmp::Reverse((t, i))) = self.heap.pop() {
            if let Some(next) = self.sources[i].next() {
                self.heap.push(std::cmp::Reverse((next, i)));
            }
            t
        } else {
            self.fallback.next()?
        };
        self.remaining -= 1;
        Some(t)
    }
}

fn pareto_mean(shape: f64, scale: f64) -> f64 {
    if shape <= 1.0 {
        f64::INFINITY
    } else {
        shape * scale / (shape - 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_count_and_order() {
        let mut rng = SimRng::seed_from_u64(1);
        let ts = poisson(&mut rng, 10.0, 1000);
        assert_eq!(ts.len(), 1000);
        assert!(ts.windows(2).all(|w| w[0] <= w[1]));
        // 1000 arrivals at 10/s should take roughly 100 s.
        let span = ts.last().unwrap().as_secs_f64();
        assert!((70.0..140.0).contains(&span), "span {span}");
    }

    #[test]
    fn poisson_interarrival_cv_is_one() {
        let mut rng = SimRng::seed_from_u64(2);
        let ts = poisson(&mut rng, 5.0, 20_000);
        let gaps: Vec<f64> = ts
            .windows(2)
            .map(|w| w[1].as_secs_f64() - w[0].as_secs_f64())
            .collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / gaps.len() as f64;
        let cv = var.sqrt() / mean;
        assert!((cv - 1.0).abs() < 0.05, "cv {cv}");
    }

    fn bursty() -> OnOffProcess {
        OnOffProcess {
            sources: 20,
            on_shape: 1.5,
            on_scale_s: 1.0,
            off_shape: 1.3,
            off_scale_s: 10.0,
            burst_rate: 40.0,
        }
    }

    #[test]
    fn onoff_produces_exact_count_sorted() {
        let mut rng = SimRng::seed_from_u64(3);
        let ts = bursty().generate(&mut rng, 5000);
        assert_eq!(ts.len(), 5000);
        assert!(ts.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn onoff_is_burstier_than_poisson() {
        let mut rng = SimRng::seed_from_u64(4);
        let proc = bursty();
        let ts = proc.generate(&mut rng, 30_000);
        let gaps: Vec<f64> = ts
            .windows(2)
            .map(|w| w[1].as_secs_f64() - w[0].as_secs_f64())
            .collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / gaps.len() as f64;
        let cv = var.sqrt() / mean;
        assert!(
            cv > 1.5,
            "ON/OFF inter-arrival CV should exceed Poisson's 1, got {cv}"
        );
    }

    #[test]
    fn onoff_mean_rate_estimate_is_sane() {
        let proc = bursty();
        let frac = proc.on_fraction();
        assert!(frac > 0.0 && frac < 1.0);
        let mut rng = SimRng::seed_from_u64(5);
        let n = 20_000;
        let ts = proc.generate(&mut rng, n);
        let span = ts.last().unwrap().as_secs_f64();
        let measured = n as f64 / span;
        // Within a factor of 2 of the analytic estimate (heavy tails make
        // this noisy by construction).
        assert!(
            measured > proc.mean_rate() / 2.0 && measured < proc.mean_rate() * 2.0,
            "measured {measured} vs estimate {}",
            proc.mean_rate()
        );
    }

    #[test]
    fn onoff_is_deterministic_per_seed() {
        let a = bursty().generate(&mut SimRng::seed_from_u64(7), 1000);
        let b = bursty().generate(&mut SimRng::seed_from_u64(7), 1000);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "shapes must exceed 1")]
    fn onoff_rejects_infinite_mean() {
        let mut p = bursty();
        p.on_shape = 0.9;
        p.generate(&mut SimRng::seed_from_u64(0), 10);
    }

    /// The lazy stream must replay `generate` bit-for-bit: same arrival
    /// times AND the same post-call rng position (callers interleave
    /// further draws).
    #[test]
    fn onoff_stream_matches_generate_and_rng_position() {
        for seed in [3u64, 7, 11] {
            let proc = bursty();
            let mut rng_a = SimRng::seed_from_u64(seed);
            let batch = proc.generate(&mut rng_a, 5_000);
            let mut rng_b = SimRng::seed_from_u64(seed);
            let streamed: Vec<SimTime> = proc.stream(&mut rng_b, 5_000).collect();
            assert_eq!(streamed, batch);
            assert_eq!(rng_a.next_u64(), rng_b.next_u64(), "rng position differs");
        }
    }

    /// Degenerate parameterizations exercise the Poisson fallback tail.
    #[test]
    fn onoff_stream_matches_generate_with_fallback() {
        // Heavy-tailed ON durations make typical ON periods far shorter
        // than the analytic mean the horizon is sized from, so the
        // sources under-produce and the Poisson tail kicks in.
        let proc = OnOffProcess {
            sources: 2,
            on_shape: 1.02,
            on_scale_s: 0.1,
            off_shape: 3.0,
            off_scale_s: 5.0,
            burst_rate: 2.0,
        };
        let mut rng_a = SimRng::seed_from_u64(9);
        let batch = proc.generate(&mut rng_a, 400);
        let mut rng_b = SimRng::seed_from_u64(9);
        let streamed: Vec<SimTime> = proc.stream(&mut rng_b, 400).collect();
        assert_eq!(streamed.len(), 400);
        assert_eq!(streamed, batch);
        assert_eq!(rng_a.next_u64(), rng_b.next_u64());
    }
}
