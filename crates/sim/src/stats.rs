//! Online statistics used by the metrics layer: streaming mean/variance,
//! a log-bucketed latency histogram with percentile queries, and a
//! time-weighted accumulator for state-occupancy breakdowns.

use crate::time::{SimDuration, SimTime};

/// Streaming mean / variance / min / max via Welford's algorithm.
///
/// Numerically stable for long runs; O(1) space.
///
/// # Examples
///
/// ```
/// use spindown_sim::stats::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert_eq!(s.mean(), 5.0);
/// assert!((s.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        self.sum += x;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 when empty).
    pub fn population_variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample variance (0 with fewer than two observations).
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Coefficient of variation: σ / μ (0 for an empty or zero-mean stream).
    pub fn cv(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.std_dev() / m
        }
    }

    /// Smallest observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Log-bucketed histogram of durations, built for latency distributions
/// that span six orders of magnitude (100 µs disk hits to 15 s spin-up
/// stalls, paper Fig. 12).
///
/// Buckets are geometric: bucket `i` covers
/// `[min_value · growth^i, min_value · growth^(i+1))`. With the default
/// configuration (`min = 10 µs`, `growth = 1.25`) relative quantile error
/// is bounded by 25 %, plenty for the paper's log-scale plots.
/// Internally the exact-value summary (mean / max) is kept as an integer
/// microsecond sum plus a float maximum rather than a Welford accumulator,
/// so that [`LatencyHistogram::merge`] is *exactly* order-invariant: merging
/// per-island histograms in any grouping reproduces the serial accumulation
/// bit for bit.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyHistogram {
    min_value: f64,
    log_growth: f64,
    counts: Vec<u64>,
    underflow: u64,
    total: u64,
    /// Exact sum of recorded values, quantized to integer microseconds
    /// (the simulator's native resolution). `u128` cannot overflow:
    /// 2^64 events of 2^64 µs each still fit.
    sum_us: u128,
    /// Largest recorded value in seconds (0 when empty; values are
    /// durations, so never negative).
    max_s: f64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new(10e-6, 1.25, 128)
    }
}

impl LatencyHistogram {
    /// Creates a histogram with `buckets` geometric buckets starting at
    /// `min_value` seconds and growing by `growth` per bucket.
    ///
    /// # Panics
    ///
    /// Panics if `min_value <= 0`, `growth <= 1`, or `buckets == 0`.
    pub fn new(min_value: f64, growth: f64, buckets: usize) -> Self {
        assert!(min_value > 0.0, "min_value must be positive");
        assert!(growth > 1.0, "growth must exceed 1");
        assert!(buckets > 0, "need at least one bucket");
        LatencyHistogram {
            min_value,
            log_growth: growth.ln(),
            counts: vec![0; buckets],
            underflow: 0,
            total: 0,
            sum_us: 0,
            max_s: 0.0,
        }
    }

    /// Records a duration.
    pub fn record(&mut self, d: SimDuration) {
        self.total += 1;
        // `SimDuration` is µs-backed: take the mean's µs term directly
        // rather than round-tripping through seconds. Equivalent to
        // [`LatencyHistogram::record_secs`] — the f64 round-trip is
        // exact for µs counts below 2^51 (~71 years).
        self.sum_us += d.as_micros() as u128;
        self.bucket(d.as_secs_f64());
    }

    /// Records a value in seconds. The value is quantized to the nearest
    /// microsecond for the mean (bucketing and max use the raw value).
    pub fn record_secs(&mut self, secs: f64) {
        self.total += 1;
        self.sum_us += SimDuration::from_secs_f64(secs).as_micros() as u128;
        self.bucket(secs);
    }

    fn bucket(&mut self, secs: f64) {
        self.max_s = self.max_s.max(secs);
        if secs < self.min_value {
            self.underflow += 1;
            return;
        }
        let idx = ((secs / self.min_value).ln() / self.log_growth) as usize;
        let idx = idx.min(self.counts.len() - 1);
        self.counts[idx] += 1;
    }

    /// Total number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean of the recorded values at microsecond resolution (not bucket
    /// midpoints).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.total as f64 / 1e6
        }
    }

    /// Largest exact recorded value.
    pub fn max(&self) -> f64 {
        self.max_s
    }

    /// Approximate quantile `q ∈ [0,1]`, returned in seconds. Uses the
    /// upper edge of the bucket containing the quantile (conservative).
    /// Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = self.underflow;
        if seen >= target {
            return self.min_value;
        }
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return self.bucket_upper(i);
            }
        }
        self.max_s
    }

    fn bucket_upper(&self, i: usize) -> f64 {
        self.min_value * ((i + 1) as f64 * self.log_growth).exp()
    }

    fn bucket_lower(&self, i: usize) -> f64 {
        self.min_value * (i as f64 * self.log_growth).exp()
    }

    /// Inverse CDF points `(x_seconds, P[value > x])` for every non-empty
    /// bucket edge — exactly the curve plotted in the paper's Fig. 12.
    pub fn inverse_cdf(&self) -> Vec<(f64, f64)> {
        let mut points = Vec::new();
        if self.total == 0 {
            return points;
        }
        let mut above = self.total - self.underflow;
        points.push((self.min_value, above as f64 / self.total as f64));
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            above -= c;
            points.push((self.bucket_upper(i), above as f64 / self.total as f64));
        }
        points
    }

    /// Fraction of recorded values strictly greater than `x` seconds
    /// (bucket-granular).
    pub fn fraction_above(&self, x: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let mut above = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if self.bucket_lower(i) >= x {
                above += c;
            }
        }
        above as f64 / self.total as f64
    }

    /// Clears every recorded value in place, keeping the bucket geometry
    /// and the `counts` allocation. A reset histogram is indistinguishable
    /// from a freshly constructed one with the same configuration, so
    /// hot loops (e.g. the serial offline evaluator) can reuse one
    /// scratch histogram per iteration instead of reallocating.
    pub fn reset(&mut self) {
        self.counts.fill(0);
        self.underflow = 0;
        self.total = 0;
        self.sum_us = 0;
        self.max_s = 0.0;
    }

    /// Merges another histogram with identical bucket configuration.
    ///
    /// The merge is *exact*: every field is an integer sum or a float
    /// maximum, so `a.merge(&b)` equals recording `b`'s observations into
    /// `a` directly, bit for bit, regardless of how the observations were
    /// partitioned.
    ///
    /// # Panics
    ///
    /// Panics if the configurations differ.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        assert_eq!(
            self.counts.len(),
            other.counts.len(),
            "bucket count mismatch"
        );
        assert!(
            (self.min_value - other.min_value).abs() < 1e-15
                && (self.log_growth - other.log_growth).abs() < 1e-15,
            "bucket geometry mismatch"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.total += other.total;
        self.sum_us += other.sum_us;
        self.max_s = self.max_s.max(other.max_s);
    }
}

/// Accumulates how long an entity spends in each of a small, fixed set of
/// states — the raw material of the paper's Fig. 9 / Fig. 17 per-disk
/// state-time breakdowns.
///
/// `N` is the number of states; callers index states with a `usize`
/// (typically `enum as usize`).
#[derive(Debug, Clone)]
pub struct StateTimer<const N: usize> {
    acc: [SimDuration; N],
    current: usize,
    since: SimTime,
}

impl<const N: usize> StateTimer<N> {
    /// Starts timing in `initial` at time `start`.
    ///
    /// # Panics
    ///
    /// Panics if `initial >= N`.
    pub fn new(initial: usize, start: SimTime) -> Self {
        assert!(initial < N, "state index out of range");
        StateTimer {
            acc: [SimDuration::ZERO; N],
            current: initial,
            since: start,
        }
    }

    /// The state currently being timed.
    pub fn current(&self) -> usize {
        self.current
    }

    /// Switches to `next` at time `now`, crediting the elapsed interval to
    /// the previous state. Switching to the current state is a no-op credit.
    ///
    /// # Panics
    ///
    /// Panics if `next >= N` or `now` precedes the last transition.
    pub fn transition(&mut self, next: usize, now: SimTime) {
        assert!(next < N, "state index out of range");
        self.acc[self.current] += now - self.since;
        self.current = next;
        self.since = now;
    }

    /// Accumulated time in `state`, *excluding* the still-open interval.
    pub fn accumulated(&self, state: usize) -> SimDuration {
        self.acc[state]
    }

    /// Snapshot of all state durations as of `now` (the open interval is
    /// credited to the current state).
    pub fn snapshot(&self, now: SimTime) -> [SimDuration; N] {
        let mut out = self.acc;
        out[self.current] += now.saturating_since(self.since);
        out
    }

    /// Fractions of total elapsed time per state as of `now`. Returns all
    /// zeros if no time has elapsed.
    pub fn fractions(&self, now: SimTime) -> [f64; N] {
        let snap = self.snapshot(now);
        let total: f64 = snap.iter().map(|d| d.as_secs_f64()).sum();
        let mut out = [0.0; N];
        if total > 0.0 {
            for (o, d) in out.iter_mut().zip(&snap) {
                *o = d.as_secs_f64() / total;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basics() {
        let mut s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.population_variance(), 0.0);
        s.push(1.0);
        s.push(2.0);
        s.push(3.0);
        assert_eq!(s.count(), 3);
        assert_eq!(s.mean(), 2.0);
        assert_eq!(s.sum(), 6.0);
        assert!((s.population_variance() - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.sample_variance() - 1.0).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 3.0);
    }

    #[test]
    fn histogram_reset_matches_fresh() {
        let mut reused = LatencyHistogram::default();
        for x in [1e-5, 3e-3, 0.2, 14.0, 1e-7] {
            reused.record_secs(x);
        }
        reused.reset();
        let fresh = LatencyHistogram::default();
        assert_eq!(reused, fresh);
        // Recording after a reset behaves exactly like a fresh histogram.
        let mut fresh = fresh;
        for x in [2e-4, 0.5] {
            reused.record_secs(x);
            fresh.record_secs(x);
        }
        assert_eq!(reused, fresh);
        assert_eq!(reused.count(), 2);
    }

    #[test]
    fn online_stats_cv() {
        let mut s = OnlineStats::new();
        for _ in 0..10 {
            s.push(5.0);
        }
        assert_eq!(s.cv(), 0.0);
        let mut t = OnlineStats::new();
        t.push(0.0);
        t.push(10.0);
        assert!((t.cv() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn online_stats_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = OnlineStats::new();
        for &x in &xs {
            all.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-12);
        assert!((a.population_variance() - all.population_variance()).abs() < 1e-9);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(4.0);
        let before = a.mean();
        a.merge(&OnlineStats::new());
        assert_eq!(a.mean(), before);
        let mut empty = OnlineStats::new();
        empty.merge(&a);
        assert_eq!(empty.mean(), before);
    }

    #[test]
    fn histogram_quantiles_bracket_truth() {
        let mut h = LatencyHistogram::default();
        // 99 values at 1 ms, 1 value at 10 s.
        for _ in 0..99 {
            h.record_secs(0.001);
        }
        h.record_secs(10.0);
        assert_eq!(h.count(), 100);
        let p50 = h.quantile(0.50);
        assert!((0.001..=0.002).contains(&p50), "p50 {p50}");
        let p999 = h.quantile(0.999);
        assert!((8.0..=13.0).contains(&p999), "p999 {p999}");
        assert!((h.mean() - (99.0 * 0.001 + 10.0) / 100.0).abs() < 1e-12);
        assert_eq!(h.max(), 10.0);
    }

    #[test]
    fn histogram_empty_behaviour() {
        let h = LatencyHistogram::default();
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.max(), 0.0);
        assert!(h.inverse_cdf().is_empty());
        assert_eq!(h.fraction_above(1.0), 0.0);
    }

    #[test]
    fn histogram_underflow_bucket() {
        let mut h = LatencyHistogram::new(0.001, 2.0, 16);
        h.record_secs(1e-9);
        h.record_secs(1e-9);
        assert_eq!(h.count(), 2);
        assert_eq!(h.quantile(1.0), 0.001);
    }

    #[test]
    fn histogram_overflow_clamps_to_last_bucket() {
        let mut h = LatencyHistogram::new(0.001, 2.0, 4);
        h.record_secs(1e9);
        assert_eq!(h.count(), 1);
        assert!(h.quantile(1.0) > 0.0);
    }

    #[test]
    fn inverse_cdf_is_monotone_nonincreasing() {
        let mut h = LatencyHistogram::default();
        let mut x = 0.0001;
        for _ in 0..1000 {
            h.record_secs(x);
            x *= 1.01;
        }
        let pts = h.inverse_cdf();
        assert!(!pts.is_empty());
        for w in pts.windows(2) {
            assert!(w[0].0 < w[1].0, "x must increase");
            assert!(w[0].1 >= w[1].1, "P[>x] must not increase");
        }
        assert!(pts.last().unwrap().1 <= 1e-9);
    }

    #[test]
    fn fraction_above_rough() {
        let mut h = LatencyHistogram::default();
        for _ in 0..90 {
            h.record_secs(0.001);
        }
        for _ in 0..10 {
            h.record_secs(5.0);
        }
        let f = h.fraction_above(1.0);
        assert!((f - 0.1).abs() < 0.02, "fraction {f}");
    }

    #[test]
    fn histogram_merge() {
        let mut a = LatencyHistogram::default();
        let mut b = LatencyHistogram::default();
        a.record_secs(0.001);
        b.record_secs(1.0);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!(a.quantile(1.0) >= 1.0);
    }

    #[test]
    fn histogram_merge_is_bit_exact_vs_sequential() {
        // Any partition of the observations, merged in any grouping, must
        // equal the serial accumulation exactly (PartialEq on all fields).
        let values: Vec<f64> = (0..500)
            .map(|i| 1e-5 * (1.0 + i as f64).powf(1.7) * ((i % 7) as f64 + 0.3))
            .collect();
        let mut serial = LatencyHistogram::default();
        for &v in &values {
            serial.record_secs(v);
        }
        for split in [1, 137, 250, 499] {
            let mut a = LatencyHistogram::default();
            let mut b = LatencyHistogram::default();
            for &v in &values[..split] {
                a.record_secs(v);
            }
            for &v in &values[split..] {
                b.record_secs(v);
            }
            a.merge(&b);
            assert_eq!(a, serial, "split at {split}");
        }
    }

    #[test]
    fn histogram_merge_empty_sides() {
        let mut a = LatencyHistogram::default();
        a.record_secs(0.25);
        a.record_secs(3.0);
        let reference = a.clone();
        // Empty right-hand side is the identity.
        a.merge(&LatencyHistogram::default());
        assert_eq!(a, reference);
        // Merging into an empty histogram reproduces the other side.
        let mut empty = LatencyHistogram::default();
        empty.merge(&reference);
        assert_eq!(empty, reference);
        // Empty-with-empty stays indistinguishable from fresh.
        let mut e2 = LatencyHistogram::default();
        e2.merge(&LatencyHistogram::default());
        assert_eq!(e2, LatencyHistogram::default());
    }

    #[test]
    #[should_panic(expected = "bucket")]
    fn histogram_merge_rejects_mismatched_geometry() {
        let mut a = LatencyHistogram::new(0.001, 2.0, 16);
        let b = LatencyHistogram::new(0.001, 2.0, 32);
        a.merge(&b);
    }

    #[test]
    fn histogram_record_duration_matches_record_secs() {
        // `record(d)` and `record_secs(d.as_secs_f64())` are the same
        // operation: the µs quantization round-trips exactly.
        let mut via_duration = LatencyHistogram::default();
        let mut via_secs = LatencyHistogram::default();
        for us in [0u64, 1, 17, 999, 1_000_000, 14_700_000_123] {
            let d = SimDuration::from_micros(us);
            via_duration.record(d);
            via_secs.record_secs(d.as_secs_f64());
        }
        assert_eq!(via_duration, via_secs);
        assert!((via_duration.mean() - via_secs.mean()).abs() == 0.0);
    }

    #[test]
    fn state_timer_accumulates() {
        let mut t: StateTimer<3> = StateTimer::new(0, SimTime::ZERO);
        t.transition(1, SimTime::from_secs(5));
        t.transition(2, SimTime::from_secs(7));
        t.transition(0, SimTime::from_secs(10));
        let snap = t.snapshot(SimTime::from_secs(12));
        assert_eq!(snap[0], SimDuration::from_secs(7)); // 5 closed + 2 open
        assert_eq!(snap[1], SimDuration::from_secs(2));
        assert_eq!(snap[2], SimDuration::from_secs(3));
        assert_eq!(t.current(), 0);
        assert_eq!(t.accumulated(0), SimDuration::from_secs(5));
    }

    #[test]
    fn state_timer_fractions_sum_to_one() {
        let mut t: StateTimer<2> = StateTimer::new(0, SimTime::ZERO);
        t.transition(1, SimTime::from_secs(1));
        let f = t.fractions(SimTime::from_secs(4));
        assert!((f[0] - 0.25).abs() < 1e-12);
        assert!((f[1] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn state_timer_zero_elapsed_fractions() {
        let t: StateTimer<2> = StateTimer::new(1, SimTime::ZERO);
        assert_eq!(t.fractions(SimTime::ZERO), [0.0, 0.0]);
    }

    #[test]
    fn state_timer_self_transition_is_benign() {
        let mut t: StateTimer<2> = StateTimer::new(0, SimTime::ZERO);
        t.transition(0, SimTime::from_secs(3));
        let snap = t.snapshot(SimTime::from_secs(4));
        assert_eq!(snap[0], SimDuration::from_secs(4));
    }
}
