//! Compressed-sparse-row (CSR) graph storage.
//!
//! [`CsrGraph`] is the frozen counterpart of [`Graph`](crate::graph::Graph):
//! the whole adjacency lives in two flat arrays (`offsets` + `neighbors`)
//! instead of one heap-allocated `Vec` per node. That buys the MWIS
//! solvers' deletion cascades contiguous, prefetch-friendly neighbor scans
//! — the dominant cost at conflict-graph scale — and, because each node's
//! neighbor slice is sorted ascending, an `O(log d)` binary-search
//! [`has_edge`](CsrGraph::has_edge).
//!
//! The layout is immutable by design: build it in one shot with
//! [`GraphBuilder::finalize_csr`](crate::graph::GraphBuilder::finalize_csr)
//! (the conflict-graph path) or snapshot an existing mutable graph with
//! [`CsrGraph::from_graph`]. Anything that still needs `add_edge` after
//! construction stays on [`Graph`](crate::graph::Graph), which remains the
//! documented test oracle for this backend.

use crate::graph::{Graph, GraphView, NodeId};

/// An immutable node-weighted undirected graph in CSR layout.
///
/// Node `v`'s neighbors occupy
/// `neighbors[offsets[v] .. offsets[v + 1]]`, sorted ascending and
/// deduplicated. Weights are indexed by node id, exactly as in
/// [`Graph`](crate::graph::Graph).
///
/// # Examples
///
/// ```
/// use spindown_graph::graph::GraphBuilder;
///
/// let mut b = GraphBuilder::with_weights(vec![1.0, 2.0, 3.0]);
/// b.add_edge(2, 0);
/// b.add_edge(0, 1);
/// let g = b.finalize_csr();
/// assert_eq!(g.neighbors(0), &[1, 2], "adjacency is sorted");
/// assert!(g.has_edge(0, 2));
/// assert_eq!(g.degree(0), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CsrGraph {
    weights: Vec<f64>,
    /// `n + 1` running half-edge counts; node `v` owns
    /// `neighbors[offsets[v] as usize .. offsets[v + 1] as usize]`.
    offsets: Vec<u32>,
    /// Concatenated adjacency, sorted ascending within each node's slice.
    neighbors: Vec<NodeId>,
    edges: usize,
}

impl CsrGraph {
    /// Builds the CSR layout from per-node adjacency lists that may still
    /// contain duplicates (both endpoints hold the duplicate, so the
    /// sort + dedup per slice keeps the adjacency symmetric).
    ///
    /// Each list is deduplicated in place *before* the flat arrays are
    /// allocated, so both are reserved to their exact final size — no
    /// growth, no slack (debug builds assert capacity == length).
    pub(crate) fn from_lists(weights: Vec<f64>, mut adj: Vec<Vec<NodeId>>) -> CsrGraph {
        for list in &mut adj {
            list.sort_unstable();
            list.dedup();
        }
        let half: usize = adj.iter().map(Vec::len).sum();
        assert!(
            half <= u32::MAX as usize,
            "CSR offsets are u32: {half} half-edges exceed u32::MAX"
        );
        let mut offsets = Vec::with_capacity(weights.len() + 1);
        let mut neighbors: Vec<NodeId> = Vec::with_capacity(half);
        offsets.push(0);
        for list in &adj {
            neighbors.extend_from_slice(list);
            offsets.push(neighbors.len() as u32);
        }
        debug_assert_eq!(
            neighbors.capacity(),
            neighbors.len(),
            "neighbor arena must be exactly reserved"
        );
        debug_assert_eq!(offsets.capacity(), offsets.len());
        let edges = neighbors.len() / 2;
        CsrGraph {
            weights,
            offsets,
            neighbors,
            edges,
        }
    }

    /// Builds the CSR layout from a flat arena of **unique** undirected
    /// edge records in one counting pass plus one ordered scatter:
    /// degrees are counted, offsets prefix-summed, and every half-edge
    /// written straight into its final slot of a single exactly-sized
    /// neighbor allocation — no per-node `Vec`s, no doubling growth, no
    /// replay through an intermediate builder. Each node's slice is then
    /// sorted ascending. `O(E + n)` plus the per-slice sorts.
    ///
    /// The caller guarantees no duplicate records (each undirected edge
    /// appears exactly once, in either orientation) — the conflict-graph
    /// build emits every pair exactly once by construction. Debug builds
    /// verify the guarantee after sorting and panic on a duplicate;
    /// release builds trust the caller. Self-loops are skipped, matching
    /// [`GraphBuilder`](crate::graph::GraphBuilder) insertion.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range or the half-edge count
    /// overflows the `u32` offset space.
    pub fn from_unique_edges(weights: Vec<f64>, edges: &[(NodeId, NodeId)]) -> CsrGraph {
        CsrGraph::from_unique_edge_shards(weights, std::slice::from_ref(&edges))
    }

    /// [`from_unique_edges`](CsrGraph::from_unique_edges) over shard-local
    /// edge arenas produced by a parallel enumeration: the counting pass
    /// walks the shards in index order and the scatter lands every record
    /// directly in its endpoint slices, so the result is bit-identical to
    /// feeding the concatenated shards through the serial constructor —
    /// without ever materializing the concatenation. This is the
    /// single-allocation replacement for the merge-into-builder-and-replay
    /// path ([`GraphBuilder::merge_edge_shards`]), which is retained as
    /// the differential oracle.
    ///
    /// [`GraphBuilder::merge_edge_shards`]:
    ///     crate::graph::GraphBuilder::merge_edge_shards
    pub fn from_unique_edge_shards<S: AsRef<[(NodeId, NodeId)]>>(
        weights: Vec<f64>,
        shards: &[S],
    ) -> CsrGraph {
        let n = weights.len();
        // Counting pass: exact per-node half-edge counts.
        let mut deg = vec![0u32; n];
        let mut edges = 0usize;
        for shard in shards {
            for &(u, v) in shard.as_ref() {
                assert!(
                    (u as usize) < n && (v as usize) < n,
                    "edge endpoint out of range"
                );
                if u != v {
                    deg[u as usize] += 1;
                    deg[v as usize] += 1;
                    edges += 1;
                }
            }
        }
        let half = 2 * edges;
        assert!(
            half <= u32::MAX as usize,
            "CSR offsets are u32: {half} half-edges exceed u32::MAX"
        );
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u32);
        let mut acc = 0u32;
        for &d in &deg {
            acc += d;
            offsets.push(acc);
        }
        // Ordered scatter into one exactly-sized allocation; `deg` is
        // reused as each node's write cursor.
        let mut neighbors = vec![0 as NodeId; half];
        deg.copy_from_slice(&offsets[..n]);
        let cursor = &mut deg;
        for shard in shards {
            for &(u, v) in shard.as_ref() {
                if u != v {
                    neighbors[cursor[u as usize] as usize] = v;
                    cursor[u as usize] += 1;
                    neighbors[cursor[v as usize] as usize] = u;
                    cursor[v as usize] += 1;
                }
            }
        }
        debug_assert!(
            cursor
                .iter()
                .zip(&offsets[1..])
                .all(|(&c, &end)| c == end),
            "scatter cursors must land exactly on the slice ends"
        );
        for v in 0..n {
            let slice = &mut neighbors[offsets[v] as usize..offsets[v + 1] as usize];
            slice.sort_unstable();
            debug_assert!(
                slice.windows(2).all(|w| w[0] < w[1]),
                "from_unique_edge_shards: duplicate edge at node {v}"
            );
        }
        debug_assert_eq!(
            neighbors.capacity(),
            neighbors.len(),
            "neighbor arena must be exactly reserved"
        );
        CsrGraph {
            weights,
            offsets,
            neighbors,
            edges,
        }
    }

    /// Assembles a CSR graph from pre-built flat arrays whose invariants
    /// the caller has already established: `offsets` has `weights.len() +
    /// 1` entries, each slice of `neighbors` is sorted ascending and
    /// duplicate-free, and the adjacency is symmetric. Used by the
    /// delta-overlay compaction ([`DeltaGraph::compact`]), which produces
    /// the arrays directly and must not pay a re-sort or a per-node
    /// re-allocation. Debug builds verify every invariant.
    ///
    /// [`DeltaGraph::compact`]: crate::delta::DeltaGraph::compact
    pub(crate) fn from_sorted_parts(
        weights: Vec<f64>,
        offsets: Vec<u32>,
        neighbors: Vec<NodeId>,
        edges: usize,
    ) -> CsrGraph {
        debug_assert_eq!(offsets.len(), weights.len() + 1);
        debug_assert_eq!(*offsets.last().unwrap_or(&0) as usize, neighbors.len());
        debug_assert_eq!(neighbors.len(), 2 * edges);
        #[cfg(debug_assertions)]
        for v in 0..weights.len() {
            let slice = &neighbors[offsets[v] as usize..offsets[v + 1] as usize];
            debug_assert!(
                slice.windows(2).all(|w| w[0] < w[1]),
                "from_sorted_parts: slice {v} not strictly ascending"
            );
            debug_assert!(
                slice.iter().all(|&u| (u as usize) < weights.len() && u != v as NodeId),
                "from_sorted_parts: slice {v} has an out-of-range or self-loop entry"
            );
        }
        CsrGraph {
            weights,
            offsets,
            neighbors,
            edges,
        }
    }

    /// Disassembles the graph into its `(weights, offsets, neighbors)`
    /// arenas so a caller that cycles through graph generations (the
    /// rolling-horizon planner) can hand the capacity back to the next
    /// [`DeltaGraph::compact_into`](crate::delta::DeltaGraph::compact_into)
    /// instead of re-faulting fresh pages every window.
    pub fn into_parts(self) -> (Vec<f64>, Vec<u32>, Vec<NodeId>) {
        (self.weights, self.offsets, self.neighbors)
    }

    /// Snapshots a mutable [`Graph`] into the CSR layout (adjacency gets
    /// sorted; the graph's lists are already deduplicated).
    pub fn from_graph(g: &Graph) -> CsrGraph {
        let n = g.len();
        let half: usize = 2 * g.edge_count();
        assert!(
            half <= u32::MAX as usize,
            "CSR offsets are u32: {half} half-edges exceed u32::MAX"
        );
        let mut offsets = Vec::with_capacity(n + 1);
        let mut neighbors: Vec<NodeId> = Vec::with_capacity(half);
        offsets.push(0);
        for v in 0..n {
            let start = neighbors.len();
            neighbors.extend_from_slice(g.neighbors(v as NodeId));
            neighbors[start..].sort_unstable();
            offsets.push(neighbors.len() as u32);
        }
        CsrGraph {
            weights: g.weights().to_vec(),
            offsets,
            neighbors,
            edges: g.edge_count(),
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// `true` if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Number of (undirected) edges.
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// Weight of node `v`.
    pub fn weight(&self, v: NodeId) -> f64 {
        self.weights[v as usize]
    }

    /// All node weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Neighbors of `v`, sorted ascending.
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        let v = v as usize;
        &self.neighbors[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }

    /// Degree of `v`.
    pub fn degree(&self, v: NodeId) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }

    /// `true` if the edge `{u, v}` exists — binary search in the smaller
    /// endpoint's sorted slice, `O(log min-degree)`.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Sum of all node weights.
    pub fn total_weight(&self) -> f64 {
        self.weights.iter().sum()
    }

    /// Sum of weights over `nodes`.
    pub fn set_weight_sum(&self, nodes: &[NodeId]) -> f64 {
        nodes.iter().map(|&v| self.weight(v)).sum()
    }

    /// `true` if `nodes` is an independent set (pairwise non-adjacent,
    /// no duplicates).
    pub fn is_independent_set(&self, nodes: &[NodeId]) -> bool {
        let mut mark = vec![false; self.len()];
        for &v in nodes {
            if (v as usize) >= self.len() || mark[v as usize] {
                return false;
            }
            mark[v as usize] = true;
        }
        for &v in nodes {
            if self.neighbors(v).iter().any(|&u| mark[u as usize]) {
                return false;
            }
        }
        true
    }
}

impl GraphView for CsrGraph {
    fn len(&self) -> usize {
        CsrGraph::len(self)
    }

    fn weight(&self, v: NodeId) -> f64 {
        CsrGraph::weight(self, v)
    }

    fn neighbors(&self, v: NodeId) -> &[NodeId] {
        CsrGraph::neighbors(self, v)
    }

    fn degree(&self, v: NodeId) -> usize {
        CsrGraph::degree(self, v)
    }

    fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        CsrGraph::has_edge(self, u, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    #[test]
    fn finalize_csr_sorts_and_dedups() {
        let mut b = GraphBuilder::with_weights(vec![1.0, 2.0, 3.0, 4.0]);
        b.add_edge(3, 0);
        b.add_edge(0, 1);
        b.add_edge(1, 0); // duplicate, reversed
        b.add_edge(2, 2); // self-loop: dropped at insert
        b.add_edge(2, 0);
        let g = b.finalize_csr();
        assert_eq!(g.len(), 4);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.neighbors(0), &[1, 2, 3]);
        assert_eq!(g.neighbors(1), &[0]);
        assert_eq!(g.neighbors(2), &[0]);
        assert_eq!(g.degree(0), 3);
        assert!(g.has_edge(0, 3) && g.has_edge(3, 0));
        assert!(!g.has_edge(1, 2));
        assert_eq!(g.weight(3), 4.0);
        assert_eq!(g.total_weight(), 10.0);
        assert_eq!(g.set_weight_sum(&[1, 3]), 6.0);
    }

    #[test]
    fn from_graph_matches_source() {
        let mut g = Graph::with_weights(vec![1.0, 2.0, 3.0]);
        g.add_edge(2, 0);
        g.add_edge(0, 1);
        let c = CsrGraph::from_graph(&g);
        assert_eq!(c.len(), g.len());
        assert_eq!(c.edge_count(), g.edge_count());
        assert_eq!(c.neighbors(0), &[1, 2], "snapshot sorts the adjacency");
        for v in 0..3u32 {
            assert_eq!(c.degree(v), g.degree(v));
            assert_eq!(c.weight(v), g.weight(v));
            for u in 0..3u32 {
                assert_eq!(c.has_edge(u, v), g.has_edge(u, v), "({u},{v})");
            }
        }
    }

    #[test]
    fn empty_and_isolated() {
        let empty = GraphBuilder::new(0).finalize_csr();
        assert!(empty.is_empty());
        assert_eq!(empty.edge_count(), 0);
        assert!(empty.is_independent_set(&[]));

        let iso = GraphBuilder::new(3).finalize_csr();
        assert_eq!(iso.len(), 3);
        assert_eq!(iso.degree(1), 0);
        assert!(iso.neighbors(1).is_empty());
        assert!(iso.is_independent_set(&[0, 1, 2]));
    }

    #[test]
    fn from_unique_edges_matches_builder() {
        let weights = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let edges = [(3u32, 0u32), (0, 1), (2, 0), (4, 1), (2, 2), (3, 4)];
        let mut b = GraphBuilder::with_weights(weights.clone());
        for &(u, v) in &edges {
            b.add_edge(u, v);
        }
        let oracle = b.finalize_csr();
        let arena = CsrGraph::from_unique_edges(weights, &edges);
        assert_eq!(arena, oracle, "arena scatter must equal the builder path");
        assert_eq!(arena.edge_count(), 5, "self-loop skipped");
    }

    #[test]
    fn from_unique_edge_shards_matches_serial_for_any_split() {
        let weights = vec![1.0, 2.0, 3.0, 4.0];
        let edges = [(0u32, 1u32), (2, 3), (1, 2), (0, 3), (3, 1), (2, 0)];
        let serial = CsrGraph::from_unique_edges(weights.clone(), &edges);
        for split in 0..=edges.len() {
            let shards = vec![edges[..split].to_vec(), edges[split..].to_vec()];
            let sharded = CsrGraph::from_unique_edge_shards(weights.clone(), &shards);
            assert_eq!(sharded, serial, "split {split}");
        }
        let empty = CsrGraph::from_unique_edges(Vec::new(), &[]);
        assert!(empty.is_empty());
        assert_eq!(empty.edge_count(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_unique_edges_bounds_checked() {
        CsrGraph::from_unique_edges(vec![1.0; 2], &[(0, 7)]);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "duplicate edge")]
    fn from_unique_edges_catches_duplicates_in_debug() {
        CsrGraph::from_unique_edges(vec![1.0; 3], &[(0, 1), (1, 0)]);
    }

    #[test]
    fn independent_set_checks() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(2, 3);
        let g = b.finalize_csr();
        assert!(g.is_independent_set(&[0, 2]));
        assert!(!g.is_independent_set(&[0, 1]));
        assert!(!g.is_independent_set(&[0, 0]), "duplicates rejected");
        assert!(!g.is_independent_set(&[9]), "out of range rejected");
    }
}
