//! # spindown-disk
//!
//! Disk model for the `spindown` workspace — the substrate that replaces
//! DiskSim plus the Seagate power specs in the ICDCS 2011 reproduction.
//!
//! Components:
//!
//! * [`power`] — the paper's Fig. 5 power configuration
//!   ([`power::PowerParams`]): per-state watts, spin-up/-down joules and
//!   seconds, breakeven time `TB = E_up/down / P_I`.
//! * [`mechanics`] — seek / rotation / transfer service-time model
//!   ([`mechanics::Mechanics`]), Cheetah 15K.5 and Barracuda presets.
//! * [`state`] — the five-state power machine
//!   ([`state::DiskPowerState`]) with a legality table.
//! * [`energy`] — [`energy::EnergyMeter`]: power × time integration plus
//!   lump transition energies, spin-cycle counters, state-time breakdowns.
//! * [`policy`] — when to spin down: [`policy::AlwaysOn`],
//!   [`policy::FixedThreshold`] (2CPM), [`policy::AdaptiveThreshold`]
//!   (ablation).
//! * [`queue`] — per-disk request queues with FCFS / SSTF / elevator
//!   disciplines ([`queue::QueueDiscipline`]).
//! * [`disk`] — [`disk::Disk`]: the passive state machine the system
//!   simulator drives through [`disk::Directive`]s.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod disk;
pub mod energy;
pub mod mechanics;
pub mod policy;
pub mod power;
pub mod queue;
pub mod state;

pub use disk::{Directive, Disk, DiskEvent, DiskRequest, Outcome};
pub use energy::EnergyMeter;
pub use mechanics::{DiskGeometry, Mechanics};
pub use policy::{AdaptiveThreshold, AlwaysOn, FixedThreshold, IdlePolicy};
pub use power::{PowerParams, PowerParamsError};
pub use queue::{QueueDiscipline, RequestQueue};
pub use state::DiskPowerState;
