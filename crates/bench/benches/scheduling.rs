//! Benchmarks of scheduler decision latency: how long each algorithm
//! takes to place requests (the cost a production dispatcher would pay).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use spindown_core::cost::{CostFunction, DiskStatus};
use spindown_core::model::{DataId, Request};
use spindown_core::placement::{PlacementConfig, PlacementMap};
use spindown_core::sched::{
    HeuristicScheduler, MwisPlanner, MwisSolver, Scheduler, SystemView, WscScheduler,
};
use spindown_disk::power::PowerParams;
use spindown_disk::state::DiskPowerState;
use spindown_sim::rng::SimRng;
use spindown_sim::time::{SimDuration, SimTime};

const DISKS: u32 = 180;

fn fixture(n_requests: usize) -> (Vec<Request>, PlacementMap, Vec<DiskStatus>, PowerParams) {
    let mut rng = SimRng::seed_from_u64(5);
    let placement = PlacementMap::build(
        30_000,
        &PlacementConfig {
            disks: DISKS,
            replication: 3,
            zipf_z: 1.0,
        },
        1,
    );
    let requests: Vec<Request> = (0..n_requests)
        .map(|i| Request {
            index: i as u32,
            at: SimTime::from_millis(i as u64 * 50),
            data: DataId(rng.next_below(30_000)),
            size: 512 * 1024,
        })
        .collect();
    let statuses: Vec<DiskStatus> = (0..DISKS)
        .map(|d| DiskStatus {
            state: if d % 3 == 0 {
                DiskPowerState::Idle
            } else {
                DiskPowerState::Standby
            },
            last_request_at: (d % 3 == 0).then(|| SimTime::from_secs(d as u64 % 30)),
            load: (d % 5) as usize,
        })
        .collect();
    (requests, placement, statuses, PowerParams::barracuda())
}

fn bench_online(c: &mut Criterion) {
    let (requests, placement, statuses, params) = fixture(10_000);
    let mut group = c.benchmark_group("online_decisions");
    group.throughput(Throughput::Elements(requests.len() as u64));
    group.bench_function("heuristic_10k", |b| {
        let mut sched = HeuristicScheduler::new(CostFunction::default());
        b.iter(|| {
            let view = SystemView {
                now: SimTime::from_secs(100),
                params: &params,
                placement: &placement,
                statuses: &statuses,
            };
            let mut picked = 0u64;
            for r in &requests {
                picked += sched.assign(std::slice::from_ref(r), &view)[0].0 as u64;
            }
            black_box(picked)
        });
    });
    group.finish();
}

fn bench_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_decisions");
    for batch in [16usize, 128, 1024] {
        let (requests, placement, statuses, params) = fixture(batch);
        group.throughput(Throughput::Elements(batch as u64));
        group.bench_function(format!("wsc_batch_{batch}"), |b| {
            let mut sched =
                WscScheduler::new(CostFunction::default(), SimDuration::from_millis(100));
            b.iter(|| {
                let view = SystemView {
                    now: SimTime::from_secs(100),
                    params: &params,
                    placement: &placement,
                    statuses: &statuses,
                };
                black_box(sched.assign(&requests, &view)).len()
            });
        });
    }
    group.finish();
}

fn bench_mwis_planner(c: &mut Criterion) {
    let mut group = c.benchmark_group("mwis_planner");
    group.sample_size(10);
    for n in [5_000usize, 20_000] {
        let (requests, placement, _, params) = fixture(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_function(format!("plan_{n}"), |b| {
            let planner = MwisPlanner {
                params: params.clone(),
                solver: MwisSolver::GwMin,
                max_successors: 3,
            };
            b.iter(|| black_box(planner.plan(&requests, &placement)).1);
        });
    }
    group.finish();
}

criterion_group!(benches, bench_online, bench_batch, bench_mwis_planner);
criterion_main!(benches);
