//! Deterministic pseudo-random number generation and the distributions the
//! workload generators need.
//!
//! Reproducibility is a hard requirement for the experiment harness (the
//! paper's figures must regenerate identically run-to-run), so the core
//! generator is implemented here rather than relying on an external crate's
//! unstable stream: [`SimRng`] is **xoshiro256\*\*** seeded through
//! **SplitMix64**, both with published reference outputs that the unit tests
//! pin down.
//!
//! Distributions provided:
//!
//! * uniform integers and floats,
//! * exponential (Poisson inter-arrivals),
//! * Pareto (heavy-tailed ON/OFF burst lengths),
//! * log-normal (service-time noise),
//! * Zipf over `{1..n}` (block popularity / placement skew, paper §4.2),
//! * arbitrary discrete distributions via Walker's alias method.

/// SplitMix64 — used to expand a single `u64` seed into the xoshiro state.
///
/// Reference: Steele, Lea, Flood, "Fast splittable pseudorandom number
/// generators" (OOPSLA 2014); constants from the public-domain C version.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

/// The simulator's deterministic PRNG: xoshiro256\*\* (Blackman & Vigna).
///
/// Cloning an `SimRng` forks the stream: the clone replays exactly the same
/// values the original would have produced.
///
/// # Examples
///
/// ```
/// use spindown_sim::rng::SimRng;
///
/// let mut a = SimRng::seed_from_u64(42);
/// let mut b = SimRng::seed_from_u64(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates a generator from a 64-bit seed (expanded via SplitMix64, the
    /// procedure recommended by the xoshiro authors).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        SimRng {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Derives an independent child stream; children with different `salt`
    /// values are decorrelated from each other and from the parent.
    pub fn fork(&mut self, salt: u64) -> SimRng {
        let base = self.next_u64();
        SimRng::seed_from_u64(base ^ salt.wrapping_mul(0x9E3779B97F4A7C15))
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform float in `(0, 1]` — safe as the argument of `ln`.
    #[inline]
    pub fn next_f64_open(&mut self) -> f64 {
        1.0 - self.next_f64()
    }

    /// Uniform integer in `[0, bound)` using Lemire's multiply-shift
    /// rejection method (unbiased).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below bound must be positive");
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let low = m as u64;
            if low >= bound {
                return (m >> 64) as u64;
            }
            // Rejection zone: only entered when low < bound.
            let threshold = bound.wrapping_neg() % bound;
            if low >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "range_inclusive requires lo <= hi");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + self.next_below(span + 1)
    }

    /// Uniform `usize` index in `[0, len)` — convenience for slice indexing.
    pub fn index(&mut self, len: usize) -> usize {
        self.next_below(len as u64) as usize
    }

    /// Picks a uniformly random element of `slice`.
    ///
    /// # Panics
    ///
    /// Panics if `slice` is empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        assert!(!slice.is_empty(), "choose on empty slice");
        &slice[self.index(slice.len())]
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.index(i + 1);
            slice.swap(i, j);
        }
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0,1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Exponential variate with the given rate `λ` (mean `1/λ`).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "exponential rate must be positive");
        -self.next_f64_open().ln() / rate
    }

    /// Pareto variate with shape `alpha` and scale (minimum) `xm`.
    ///
    /// Heavy-tailed for `alpha <= 2`; used by the ON/OFF burst generator to
    /// produce self-similar arrival processes.
    ///
    /// # Panics
    ///
    /// Panics unless `alpha > 0` and `xm > 0`.
    pub fn pareto(&mut self, alpha: f64, xm: f64) -> f64 {
        assert!(
            alpha > 0.0 && xm > 0.0,
            "pareto parameters must be positive"
        );
        xm / self.next_f64_open().powf(1.0 / alpha)
    }

    /// Standard normal variate (Marsaglia polar method).
    pub fn standard_normal(&mut self) -> f64 {
        loop {
            let u = 2.0 * self.next_f64() - 1.0;
            let v = 2.0 * self.next_f64() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }

    /// Log-normal variate where the *underlying normal* has mean `mu` and
    /// standard deviation `sigma`.
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.standard_normal()).exp()
    }
}

/// Zipf distribution over ranks `1..=n`: `P(rank = r) ∝ 1 / r^z`.
///
/// The paper places *original* data copies with a Zipf distribution whose
/// exponent `z` is swept from 0 (uniform) to 1 (classic Zipf) in Fig. 10.
///
/// Sampling is by inverted CDF with binary search (O(log n) per sample,
/// O(n) precomputation), which is exact for the modest `n` the experiments
/// use (hundreds of disks, tens of thousands of blocks).
///
/// # Examples
///
/// ```
/// use spindown_sim::rng::{SimRng, Zipf};
///
/// let zipf = Zipf::new(100, 1.0).unwrap();
/// let mut rng = SimRng::seed_from_u64(7);
/// let r = zipf.sample(&mut rng);
/// assert!((1..=100).contains(&r));
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a Zipf(`n`, `z`) distribution. `z = 0` degenerates to the
    /// uniform distribution over `1..=n`.
    ///
    /// Returns `None` if `n == 0` or `z` is negative or non-finite.
    pub fn new(n: usize, z: f64) -> Option<Self> {
        if n == 0 || !z.is_finite() || z < 0.0 {
            return None;
        }
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for r in 1..=n {
            acc += 1.0 / (r as f64).powf(z);
            cdf.push(acc);
        }
        let total = *cdf.last().expect("n > 0");
        for v in &mut cdf {
            *v /= total;
        }
        Some(Zipf { cdf })
    }

    /// Number of ranks.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Probability of rank `r` (1-based).
    pub fn pmf(&self, r: usize) -> f64 {
        if r == 0 || r > self.cdf.len() {
            return 0.0;
        }
        if r == 1 {
            self.cdf[0]
        } else {
            self.cdf[r - 1] - self.cdf[r - 2]
        }
    }

    /// Draws a rank in `1..=n`.
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let u = rng.next_f64();
        // partition_point returns the first index with cdf > u.
        let idx = self.cdf.partition_point(|&c| c <= u);
        idx.min(self.cdf.len() - 1) + 1
    }
}

/// Walker's alias method: O(1) sampling from an arbitrary discrete
/// distribution after O(n) setup.
///
/// Used for popularity-weighted block selection where per-sample binary
/// search would dominate trace-generation time.
#[derive(Debug, Clone)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<u32>,
}

impl AliasTable {
    /// Builds the table from non-negative weights. Returns `None` if the
    /// weights are empty, contain a negative/non-finite value, or sum to 0.
    pub fn new(weights: &[f64]) -> Option<Self> {
        if weights.is_empty() || weights.len() > u32::MAX as usize {
            return None;
        }
        let total: f64 = weights.iter().sum();
        if !total.is_finite() || total <= 0.0 {
            return None;
        }
        if weights.iter().any(|&w| !w.is_finite() || w < 0.0) {
            return None;
        }
        let n = weights.len();
        let mut prob: Vec<f64> = weights.iter().map(|&w| w * n as f64 / total).collect();
        let mut alias = vec![0u32; n];
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            alias[s as usize] = l;
            prob[l as usize] = (prob[l as usize] + prob[s as usize]) - 1.0;
            if prob[l as usize] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Numerical leftovers are certainties.
        for i in small.into_iter().chain(large) {
            prob[i as usize] = 1.0;
        }
        Some(AliasTable { prob, alias })
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// `true` if the table has no outcomes (never true for a constructed
    /// table; present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws an outcome index in `[0, len)`.
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let i = rng.index(self.prob.len());
        if rng.next_f64() < self.prob[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference outputs for seed 1234567 from the public-domain C code.
        let mut sm = SplitMix64::new(1234567);
        let first = sm.next_u64();
        let second = sm.next_u64();
        assert_ne!(first, second);
        // Determinism check against an independently computed pair.
        let mut sm2 = SplitMix64::new(1234567);
        assert_eq!(sm2.next_u64(), first);
        assert_eq!(sm2.next_u64(), second);
    }

    #[test]
    fn splitmix_zero_seed_is_fine() {
        let mut sm = SplitMix64::new(0);
        let a = sm.next_u64();
        let b = sm.next_u64();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn xoshiro_streams_are_deterministic_and_seed_sensitive() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(1);
        let mut c = SimRng::seed_from_u64(2);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn fork_decorrelates() {
        let mut root = SimRng::seed_from_u64(9);
        let mut x = root.fork(0);
        let mut y = root.fork(1);
        let vx: Vec<u64> = (0..8).map(|_| x.next_u64()).collect();
        let vy: Vec<u64> = (0..8).map(|_| y.next_u64()).collect();
        assert_ne!(vx, vy);
    }

    #[test]
    fn f64_is_in_unit_interval() {
        let mut rng = SimRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            let y = rng.next_f64_open();
            assert!(y > 0.0 && y <= 1.0);
        }
    }

    #[test]
    fn next_below_is_unbiased_enough() {
        let mut rng = SimRng::seed_from_u64(11);
        let mut counts = [0u32; 7];
        for _ in 0..70_000 {
            counts[rng.next_below(7) as usize] += 1;
        }
        for &c in &counts {
            // Expected 10_000; allow ±5%.
            assert!((9_500..10_500).contains(&c), "skewed bucket: {c}");
        }
    }

    #[test]
    fn range_inclusive_hits_endpoints() {
        let mut rng = SimRng::seed_from_u64(5);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..1_000 {
            match rng.range_inclusive(10, 12) {
                10 => lo_seen = true,
                12 => hi_seen = true,
                11 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        SimRng::seed_from_u64(0).next_below(0);
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut rng = SimRng::seed_from_u64(21);
        let n = 100_000;
        let rate = 4.0;
        let mean: f64 = (0..n).map(|_| rng.exponential(rate)).sum::<f64>() / n as f64;
        assert!((mean - 0.25).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn pareto_respects_minimum() {
        let mut rng = SimRng::seed_from_u64(22);
        for _ in 0..10_000 {
            assert!(rng.pareto(1.5, 2.0) >= 2.0);
        }
    }

    #[test]
    fn normal_moments() {
        let mut rng = SimRng::seed_from_u64(23);
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.standard_normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn log_normal_is_positive() {
        let mut rng = SimRng::seed_from_u64(24);
        for _ in 0..1_000 {
            assert!(rng.log_normal(0.0, 1.0) > 0.0);
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::seed_from_u64(25);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "shuffle left input sorted");
    }

    #[test]
    fn zipf_z0_is_uniform() {
        let zipf = Zipf::new(10, 0.0).unwrap();
        for r in 1..=10 {
            assert!((zipf.pmf(r) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn zipf_pmf_is_monotone_decreasing() {
        let zipf = Zipf::new(50, 1.0).unwrap();
        for r in 1..50 {
            assert!(zipf.pmf(r) > zipf.pmf(r + 1));
        }
    }

    #[test]
    fn zipf_pmf_sums_to_one() {
        let zipf = Zipf::new(123, 0.8).unwrap();
        let total: f64 = (1..=123).map(|r| zipf.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zipf_samples_in_range_and_skewed() {
        let zipf = Zipf::new(100, 1.0).unwrap();
        let mut rng = SimRng::seed_from_u64(31);
        let mut rank1 = 0;
        for _ in 0..10_000 {
            let r = zipf.sample(&mut rng);
            assert!((1..=100).contains(&r));
            if r == 1 {
                rank1 += 1;
            }
        }
        // P(rank 1) = 1/H_100 ≈ 0.1928 — expect roughly 1900 hits.
        assert!((1_600..2_300).contains(&rank1), "rank-1 count {rank1}");
    }

    #[test]
    fn zipf_rejects_bad_params() {
        assert!(Zipf::new(0, 1.0).is_none());
        assert!(Zipf::new(5, -1.0).is_none());
        assert!(Zipf::new(5, f64::NAN).is_none());
    }

    #[test]
    fn alias_table_matches_weights() {
        let table = AliasTable::new(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        let mut rng = SimRng::seed_from_u64(41);
        let mut counts = [0u32; 4];
        let n = 100_000;
        for _ in 0..n {
            counts[table.sample(&mut rng)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let expect = (i + 1) as f64 / 10.0 * n as f64;
            assert!(
                (c as f64 - expect).abs() < expect * 0.05,
                "bucket {i}: {c} vs {expect}"
            );
        }
    }

    #[test]
    fn alias_table_rejects_degenerate_inputs() {
        assert!(AliasTable::new(&[]).is_none());
        assert!(AliasTable::new(&[0.0, 0.0]).is_none());
        assert!(AliasTable::new(&[1.0, -1.0]).is_none());
        assert!(AliasTable::new(&[f64::INFINITY]).is_none());
    }

    #[test]
    fn alias_table_single_outcome() {
        let table = AliasTable::new(&[5.0]).unwrap();
        let mut rng = SimRng::seed_from_u64(1);
        assert_eq!(table.len(), 1);
        assert!(!table.is_empty());
        for _ in 0..100 {
            assert_eq!(table.sample(&mut rng), 0);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from_u64(77);
        for _ in 0..100 {
            assert!(!rng.chance(0.0));
            assert!(rng.chance(1.0 + 1e-9));
        }
    }
}
