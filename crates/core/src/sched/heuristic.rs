//! Energy-aware `Heuristic` online scheduler (paper §3.3): dispatch each
//! request to the replica location minimizing the Eq. 6 composite cost
//! `C(d_k) = E(d_k)·α/β + P(d_k)·(1−α)`.

use crate::cost::CostFunction;
use crate::model::{DiskId, Request};
use crate::sched::{Scheduler, SystemView};

/// The paper's online energy-aware scheduler.
///
/// Ties break toward the lower disk id, making decisions deterministic.
///
/// # Examples
///
/// ```
/// use spindown_core::cost::CostFunction;
/// use spindown_core::sched::HeuristicScheduler;
///
/// // The paper's operating point (α = 0.2, β = 100):
/// let sched = HeuristicScheduler::new(CostFunction::default());
/// # let _ = sched;
/// ```
#[derive(Debug, Clone)]
pub struct HeuristicScheduler {
    cost: CostFunction,
}

impl HeuristicScheduler {
    /// Creates the scheduler with the given cost function.
    ///
    /// # Panics
    ///
    /// Panics if the cost function fails validation (`α ∉ [0,1]` or
    /// `β ≤ 0`).
    pub fn new(cost: CostFunction) -> Self {
        cost.validate().expect("invalid cost function");
        HeuristicScheduler { cost }
    }

    /// The configured cost function.
    pub fn cost_function(&self) -> CostFunction {
        self.cost
    }
}

impl Scheduler for HeuristicScheduler {
    fn name(&self) -> &'static str {
        "heuristic"
    }

    fn assign(&mut self, reqs: &[Request], view: &SystemView<'_>) -> Vec<DiskId> {
        let mut out = Vec::with_capacity(reqs.len());
        self.assign_into(reqs, view, &mut out);
        out
    }

    fn assign_into(&mut self, reqs: &[Request], view: &SystemView<'_>, out: &mut Vec<DiskId>) {
        out.clear();
        out.extend(reqs.iter().map(|r| {
            // Single pass, one cost evaluation per replica (a `min_by`
            // would re-evaluate the running winner's cost on every
            // comparison). Ties — including NaN costs — break toward the
            // lower disk id, exactly as the historical
            // `partial_cmp(..).unwrap_or(Equal).then(a.cmp(b))` did.
            let locations = view.locations(r.data);
            let (first, rest) = locations
                .split_first()
                .expect("every data item has at least one location");
            let mut best = *first;
            let mut best_cost = self.cost.cost(view.status(best), view.now, view.params);
            for &d in rest {
                let c = self.cost.cost(view.status(d), view.now, view.params);
                let wins = match c.partial_cmp(&best_cost) {
                    Some(std::cmp::Ordering::Less) => true,
                    Some(std::cmp::Ordering::Greater) => false,
                    Some(std::cmp::Ordering::Equal) | None => d < best,
                };
                if wins {
                    best = d;
                    best_cost = c;
                }
            }
            best
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::DiskStatus;
    use crate::model::DataId;
    use crate::sched::ExplicitPlacement;
    use spindown_disk::power::PowerParams;
    use spindown_disk::state::DiskPowerState;
    use spindown_sim::time::SimTime;

    fn req(data: u64) -> Request {
        Request {
            index: 0,
            at: SimTime::from_secs(100),
            data: DataId(data),
            size: 4096,
        }
    }

    fn status(state: DiskPowerState, last_s: Option<u64>, load: usize) -> DiskStatus {
        DiskStatus {
            state,
            last_request_at: last_s.map(SimTime::from_secs),
            load,
        }
    }

    #[test]
    fn energy_only_prefers_spinning_disk() {
        let placement = ExplicitPlacement::new(vec![vec![DiskId(0), DiskId(1)]], 2);
        let params = PowerParams::barracuda();
        // Disk 0 standby, disk 1 active (busy but spinning).
        let statuses = vec![
            status(DiskPowerState::Standby, None, 0),
            status(DiskPowerState::Active, Some(99), 10),
        ];
        let view = SystemView {
            now: SimTime::from_secs(100),
            params: &params,
            placement: &placement,
            statuses: &statuses,
        };
        let mut s = HeuristicScheduler::new(CostFunction::energy_only());
        assert_eq!(s.assign(&[req(0)], &view), vec![DiskId(1)]);
    }

    #[test]
    fn performance_only_prefers_empty_disk() {
        let placement = ExplicitPlacement::new(vec![vec![DiskId(0), DiskId(1)]], 2);
        let params = PowerParams::barracuda();
        let statuses = vec![
            status(DiskPowerState::Standby, None, 0),
            status(DiskPowerState::Active, Some(99), 10),
        ];
        let view = SystemView {
            now: SimTime::from_secs(100),
            params: &params,
            placement: &placement,
            statuses: &statuses,
        };
        let mut s = HeuristicScheduler::new(CostFunction::performance_only());
        assert_eq!(s.assign(&[req(0)], &view), vec![DiskId(0)]);
    }

    #[test]
    fn prefers_spinning_up_disk_over_idle_one() {
        // §3.3: a spinning-up disk (cost 0) beats an idle disk whose idle
        // clock would be extended.
        let placement = ExplicitPlacement::new(vec![vec![DiskId(0), DiskId(1)]], 2);
        let params = PowerParams::barracuda();
        let statuses = vec![
            status(DiskPowerState::Idle, Some(80), 0),
            status(DiskPowerState::SpinningUp, Some(99), 2),
        ];
        let view = SystemView {
            now: SimTime::from_secs(100),
            params: &params,
            placement: &placement,
            statuses: &statuses,
        };
        let mut s = HeuristicScheduler::new(CostFunction::energy_only());
        assert_eq!(s.assign(&[req(0)], &view), vec![DiskId(1)]);
    }

    #[test]
    fn tie_breaks_to_lower_disk_id() {
        let placement = ExplicitPlacement::new(vec![vec![DiskId(1), DiskId(0)]], 2);
        let params = PowerParams::barracuda();
        let statuses = vec![status(DiskPowerState::Standby, None, 0); 2];
        let view = SystemView {
            now: SimTime::ZERO,
            params: &params,
            placement: &placement,
            statuses: &statuses,
        };
        let mut s = HeuristicScheduler::new(CostFunction::default());
        assert_eq!(s.assign(&[req(0)], &view), vec![DiskId(0)]);
    }

    #[test]
    fn default_alpha_balances() {
        // With α = 0.2 an idle disk with short extension beats a heavily
        // loaded active disk (the performance term dominates at α = 0.2).
        let placement = ExplicitPlacement::new(vec![vec![DiskId(0), DiskId(1)]], 2);
        let params = PowerParams::barracuda();
        let statuses = vec![
            status(DiskPowerState::Idle, Some(99), 0),
            status(DiskPowerState::Active, Some(100), 50),
        ];
        let view = SystemView {
            now: SimTime::from_secs(100),
            params: &params,
            placement: &placement,
            statuses: &statuses,
        };
        let mut s = HeuristicScheduler::new(CostFunction::default());
        assert_eq!(s.assign(&[req(0)], &view), vec![DiskId(0)]);
    }

    #[test]
    #[should_panic(expected = "invalid cost function")]
    fn rejects_invalid_cost() {
        HeuristicScheduler::new(CostFunction {
            alpha: 2.0,
            beta: 1.0,
        });
    }
}
