//! Disk power parameters and breakeven (idleness-threshold) math.
//!
//! This module captures everything in the paper's Fig. 5 ("2CPM
//! configuration"): per-state power draw, spin-up/-down time and energy,
//! and the derived breakeven time
//!
//! ```text
//! TB = E_up/down / P_I            (paper §1, citing Irani et al. [11])
//! ```
//!
//! after which the fixed-threshold power manager (2CPM) spins an idle disk
//! down. 2CPM is 2-competitive: its energy use is at most twice that of the
//! offline-optimal policy that knows all future arrivals.

use spindown_sim::time::SimDuration;

/// Complete power model of one disk.
///
/// All powers are in watts, energies in joules, times in seconds
/// (converted to [`SimDuration`] via the accessors).
///
/// # Examples
///
/// ```
/// use spindown_disk::power::PowerParams;
///
/// let p = PowerParams::barracuda();
/// // Breakeven: (135 J + 13 J) / 9.3 W ≈ 15.9 s
/// assert!((p.breakeven_secs() - 15.913).abs() < 0.01);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PowerParams {
    /// Power while actively servicing a request (read/write), watts.
    pub active_w: f64,
    /// Power while spinning but not servicing (idle), watts. `P_I` in the
    /// paper.
    pub idle_w: f64,
    /// Power while spun down (standby), watts.
    pub standby_w: f64,
    /// Energy of one spin-up transition, joules. `E_up`.
    pub spinup_j: f64,
    /// Energy of one spin-down transition, joules. `E_down`.
    pub spindown_j: f64,
    /// Duration of a spin-up transition, seconds. `T_up`.
    pub spinup_s: f64,
    /// Duration of a spin-down transition, seconds. `T_down`.
    pub spindown_s: f64,
    /// Optional override of the derived breakeven time, seconds.
    ///
    /// The paper's toy examples (Figs. 2–4) pin `TB = 5 s` with zero
    /// transition cost, which the derived `E/P` formula cannot express;
    /// experiment configs normally leave this `None`.
    pub breakeven_override_s: Option<f64>,
}

impl PowerParams {
    /// Seagate Barracuda-class desktop/nearline disk — the preset the paper
    /// uses for its power figures (its Cheetah documents omit standby
    /// power). Values follow the publicly documented Barracuda/Ultrastar
    /// numbers ubiquitous in the energy-management literature.
    pub fn barracuda() -> Self {
        PowerParams {
            active_w: 12.8,
            idle_w: 9.3,
            standby_w: 0.8,
            spinup_j: 135.0,
            spindown_j: 13.0,
            spinup_s: 10.0,
            spindown_s: 1.5,
            breakeven_override_s: None,
        }
    }

    /// IBM Ultrastar 36Z15-class enterprise disk (Pinheiro & Bianchini,
    /// Zhu & Zhou use these figures). Useful as an ablation preset.
    pub fn ultrastar() -> Self {
        PowerParams {
            active_w: 13.5,
            idle_w: 10.2,
            standby_w: 2.5,
            spinup_j: 135.0,
            spindown_j: 13.0,
            spinup_s: 10.9,
            spindown_s: 1.5,
            breakeven_override_s: None,
        }
    }

    /// The idealized unit-power model of the paper's worked examples
    /// (Figs. 2–4): 1 W in idle/active, zero standby power, zero-cost and
    /// zero-time transitions, breakeven pinned to 5 s.
    pub fn paper_example() -> Self {
        PowerParams {
            active_w: 1.0,
            idle_w: 1.0,
            standby_w: 0.0,
            spinup_j: 0.0,
            spindown_j: 0.0,
            spinup_s: 0.0,
            spindown_s: 0.0,
            breakeven_override_s: Some(5.0),
        }
    }

    /// Combined transition energy `E_up/down = E_up + E_down`, joules.
    pub fn transition_j(&self) -> f64 {
        self.spinup_j + self.spindown_j
    }

    /// Combined transition time `T_up + T_down`, seconds.
    pub fn transition_s(&self) -> f64 {
        self.spinup_s + self.spindown_s
    }

    /// Breakeven time in seconds: the override if set, else
    /// `TB = E_up/down / P_I` (paper §1).
    pub fn breakeven_secs(&self) -> f64 {
        match self.breakeven_override_s {
            Some(tb) => tb,
            None => self.transition_j() / self.idle_w,
        }
    }

    /// Breakeven time as a [`SimDuration`].
    pub fn breakeven(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.breakeven_secs())
    }

    /// Spin-up duration as a [`SimDuration`].
    pub fn spinup(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.spinup_s)
    }

    /// Spin-down duration as a [`SimDuration`].
    pub fn spindown(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.spindown_s)
    }

    /// Maximum energy attributable to a single request under 2CPM
    /// (paper §3.1.1): `E_max = E_up + E_down + TB · P_I`, reached when the
    /// successor arrives only after the disk has fully spun down.
    pub fn max_request_energy_j(&self) -> f64 {
        self.transition_j() + self.breakeven_secs() * self.idle_w
    }

    /// Returns a copy with the breakeven time pinned to `tb_secs`.
    ///
    /// # Panics
    ///
    /// Panics if `tb_secs` is negative or non-finite.
    pub fn with_breakeven(mut self, tb_secs: f64) -> Self {
        assert!(tb_secs.is_finite() && tb_secs >= 0.0, "invalid breakeven");
        self.breakeven_override_s = Some(tb_secs);
        self
    }

    /// Validates physical plausibility: powers non-negative and ordered
    /// (`standby ≤ idle ≤ active`), transition costs non-negative, idle
    /// power strictly positive (the breakeven formula divides by it).
    pub fn validate(&self) -> Result<(), PowerParamsError> {
        let all = [
            self.active_w,
            self.idle_w,
            self.standby_w,
            self.spinup_j,
            self.spindown_j,
            self.spinup_s,
            self.spindown_s,
        ];
        if all.iter().any(|v| !v.is_finite() || *v < 0.0) {
            return Err(PowerParamsError::Negative);
        }
        if self.idle_w <= 0.0 {
            return Err(PowerParamsError::ZeroIdlePower);
        }
        if self.standby_w > self.idle_w || self.idle_w > self.active_w {
            return Err(PowerParamsError::Unordered);
        }
        if let Some(tb) = self.breakeven_override_s {
            if !tb.is_finite() || tb < 0.0 {
                return Err(PowerParamsError::Negative);
            }
        }
        Ok(())
    }
}

/// Validation failures for [`PowerParams::validate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PowerParamsError {
    /// A parameter is negative or non-finite.
    Negative,
    /// Idle power is zero (breakeven undefined).
    ZeroIdlePower,
    /// Powers are not ordered `standby ≤ idle ≤ active`.
    Unordered,
}

impl std::fmt::Display for PowerParamsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PowerParamsError::Negative => write!(f, "power parameter negative or non-finite"),
            PowerParamsError::ZeroIdlePower => write!(f, "idle power must be positive"),
            PowerParamsError::Unordered => {
                write!(f, "powers must satisfy standby <= idle <= active")
            }
        }
    }
}

impl std::error::Error for PowerParamsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn barracuda_breakeven() {
        let p = PowerParams::barracuda();
        assert!((p.breakeven_secs() - 148.0 / 9.3).abs() < 1e-9);
        assert!((p.transition_j() - 148.0).abs() < 1e-12);
        assert!((p.transition_s() - 11.5).abs() < 1e-12);
        p.validate().unwrap();
    }

    #[test]
    fn ultrastar_validates() {
        PowerParams::ultrastar().validate().unwrap();
    }

    #[test]
    fn paper_example_matches_figures() {
        let p = PowerParams::paper_example();
        assert_eq!(p.breakeven_secs(), 5.0);
        // E_max = 0 + 0 + 5 * 1 = 5 — the toy examples' per-request cap.
        assert_eq!(p.max_request_energy_j(), 5.0);
        p.validate().unwrap();
    }

    #[test]
    fn with_breakeven_overrides() {
        let p = PowerParams::barracuda().with_breakeven(30.0);
        assert_eq!(p.breakeven_secs(), 30.0);
        assert_eq!(p.breakeven(), SimDuration::from_secs(30));
    }

    #[test]
    #[should_panic(expected = "invalid breakeven")]
    fn with_breakeven_rejects_negative() {
        let _ = PowerParams::barracuda().with_breakeven(-1.0);
    }

    #[test]
    fn max_request_energy() {
        let p = PowerParams::barracuda();
        let expect = 148.0 + (148.0 / 9.3) * 9.3;
        assert!((p.max_request_energy_j() - expect).abs() < 1e-9);
    }

    #[test]
    fn validate_catches_unordered_powers() {
        let mut p = PowerParams::barracuda();
        p.standby_w = 100.0;
        assert_eq!(p.validate(), Err(PowerParamsError::Unordered));
        let mut q = PowerParams::barracuda();
        q.active_w = 1.0;
        assert_eq!(q.validate(), Err(PowerParamsError::Unordered));
    }

    #[test]
    fn validate_catches_negatives_and_zero_idle() {
        let mut p = PowerParams::barracuda();
        p.spinup_j = -1.0;
        assert_eq!(p.validate(), Err(PowerParamsError::Negative));
        let mut q = PowerParams::barracuda();
        q.idle_w = 0.0;
        q.standby_w = 0.0;
        assert_eq!(q.validate(), Err(PowerParamsError::ZeroIdlePower));
        let mut r = PowerParams::barracuda();
        r.breakeven_override_s = Some(f64::NAN);
        assert_eq!(r.validate(), Err(PowerParamsError::Negative));
    }

    #[test]
    fn durations_convert() {
        let p = PowerParams::barracuda();
        assert_eq!(p.spinup(), SimDuration::from_secs(10));
        assert_eq!(p.spindown(), SimDuration::from_millis(1500));
    }
}
