//! Deterministic property checks for the disk state machine: pseudo-random
//! arrival sequences (seeded `spindown_sim` RNG, identical cases every run)
//! driven through a miniature event loop must preserve the core
//! invariants, and the 2CPM policy must stay within its competitive bound
//! of the offline-optimal single-disk policy.

use spindown_disk::disk::{Disk, DiskEvent, DiskRequest};
use spindown_disk::mechanics::{DiskGeometry, Mechanics};
use spindown_disk::policy::{AlwaysOn, FixedThreshold};
use spindown_disk::power::PowerParams;
use spindown_disk::queue::QueueDiscipline;
use spindown_disk::state::DiskPowerState;
use spindown_sim::rng::SimRng;
use spindown_sim::time::{SimDuration, SimTime};

/// Drives one disk over a fixed arrival list; returns (completions in
/// completion order, final horizon).
fn drive(disk: &mut Disk, arrivals: &[(SimTime, DiskRequest)]) -> (Vec<u64>, SimTime) {
    #[derive(Debug)]
    enum Ev {
        Arrive(DiskRequest),
        Disk(DiskEvent),
    }
    let mut queue = spindown_sim::event::EventQueue::new();
    for (t, r) in arrivals {
        queue.schedule(*t, Ev::Arrive(*r));
    }
    let mut completed = Vec::new();
    let mut last = SimTime::ZERO;
    while let Some(ev) = queue.pop() {
        last = ev.at;
        match ev.payload {
            Ev::Arrive(r) => {
                if let Some(d) = disk.enqueue(ev.at, r) {
                    queue.schedule(ev.at + d.after, Ev::Disk(d.event));
                }
            }
            Ev::Disk(e) => {
                let out = disk.handle(ev.at, e);
                if let Some(r) = out.completed {
                    completed.push(r.id);
                }
                if let Some(d) = out.directive {
                    queue.schedule(ev.at + d.after, Ev::Disk(d.event));
                }
            }
        }
    }
    (completed, last)
}

fn arrivals_from(gaps_ms: &[u64]) -> Vec<(SimTime, DiskRequest)> {
    let mut t = SimTime::ZERO;
    gaps_ms
        .iter()
        .enumerate()
        .map(|(i, &gap)| {
            t += SimDuration::from_millis(gap);
            (
                t,
                DiskRequest {
                    id: i as u64,
                    lba: (i as u64).wrapping_mul(7_919_777_001),
                    size: 64 * 1024,
                },
            )
        })
        .collect()
}

fn random_gaps(rng: &mut SimRng, max_gap_ms: u64, max_len: usize) -> Vec<u64> {
    let len = 1 + rng.index(max_len - 1);
    (0..len).map(|_| rng.next_below(max_gap_ms)).collect()
}

fn make_disk(discipline: QueueDiscipline, policy_2cpm: bool) -> Disk {
    let params = PowerParams::barracuda();
    let policy: Box<dyn spindown_disk::policy::IdlePolicy> = if policy_2cpm {
        Box::new(FixedThreshold::breakeven(&params))
    } else {
        Box::new(AlwaysOn)
    };
    Disk::with_discipline(
        params,
        Mechanics::new(DiskGeometry::cheetah_15k5(), SimRng::seed_from_u64(7)),
        policy,
        if policy_2cpm {
            DiskPowerState::Standby
        } else {
            DiskPowerState::Idle
        },
        SimTime::ZERO,
        discipline,
    )
}

/// Every request completes exactly once, whatever the arrival pattern
/// and discipline.
#[test]
fn all_requests_complete_exactly_once() {
    let mut rng = SimRng::seed_from_u64(0xd15c1);
    let disciplines = [
        QueueDiscipline::Fcfs,
        QueueDiscipline::Sstf,
        QueueDiscipline::Elevator,
    ];
    for case in 0..48 {
        let gaps = random_gaps(&mut rng, 40_000, 40);
        let discipline = disciplines[case % disciplines.len()];
        let arrivals = arrivals_from(&gaps);
        let mut disk = make_disk(discipline, true);
        let (mut completed, _) = drive(&mut disk, &arrivals);
        completed.sort_unstable();
        assert_eq!(completed, (0..gaps.len() as u64).collect::<Vec<_>>());
        assert_eq!(disk.load(), 0, "queue fully drained");
    }
}

/// FCFS preserves arrival order in the completion stream.
#[test]
fn fcfs_completions_are_in_order() {
    let mut rng = SimRng::seed_from_u64(0xd15c2);
    for _ in 0..48 {
        let gaps = random_gaps(&mut rng, 40_000, 40);
        let arrivals = arrivals_from(&gaps);
        let mut disk = make_disk(QueueDiscipline::Fcfs, true);
        let (completed, _) = drive(&mut disk, &arrivals);
        assert!(completed.windows(2).all(|w| w[0] < w[1]));
    }
}

/// Energy accounting: state fractions partition the horizon, spin-ups
/// and spin-downs balance, and total energy sits between the standby
/// floor and the always-on ceiling plus transition lumps.
#[test]
fn energy_invariants() {
    let mut rng = SimRng::seed_from_u64(0xd15c3);
    for _ in 0..48 {
        let gaps = random_gaps(&mut rng, 60_000, 40);
        let arrivals = arrivals_from(&gaps);
        let mut disk = make_disk(QueueDiscipline::Fcfs, true);
        let (_, horizon) = drive(&mut disk, &arrivals);
        let horizon = horizon + SimDuration::from_secs(1);
        let params = disk.params().clone();

        let fr = disk.meter().state_fractions(horizon);
        let sum: f64 = fr.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "fractions sum {sum}");

        let ups = disk.meter().spinups();
        let downs = disk.meter().spindowns();
        // Starts standby: every up is preceded by nothing or a down; the
        // final state may leave one transition unmatched.
        assert!(ups.abs_diff(downs) <= 1, "ups {ups} downs {downs}");

        let e = disk.energy_j(horizon);
        let h = horizon.as_secs_f64();
        let floor = params.standby_w * h * 0.5; // generous floor
        let ceiling = params.active_w * h + (ups + downs) as f64 * params.transition_j();
        assert!(e >= floor, "energy {e} below floor {floor}");
        assert!(e <= ceiling, "energy {e} above ceiling {ceiling}");
    }
}

/// Responses are causal: completion time ≥ arrival time, and with an
/// always-on disk the response never includes a spin-up wait.
#[test]
fn always_on_never_waits_for_spinup() {
    let mut rng = SimRng::seed_from_u64(0xd15c4);
    for _ in 0..48 {
        let gaps = random_gaps(&mut rng, 20_000, 30);
        let arrivals = arrivals_from(&gaps);
        let mut disk = make_disk(QueueDiscipline::Fcfs, false);
        let (completed, _) = drive(&mut disk, &arrivals);
        assert_eq!(completed.len(), gaps.len());
        assert_eq!(disk.meter().spinups(), 0);
        assert_eq!(disk.meter().spindowns(), 0);
    }
}

/// 2CPM competitiveness: its energy is at most ~2× the offline-optimal
/// per-gap policy (idle through the gap, or pay the transition and
/// sleep), plus bounded additive slack for service/edge effects.
#[test]
fn two_cpm_is_two_competitive() {
    let mut rng = SimRng::seed_from_u64(0xd15c5);
    for _ in 0..48 {
        let mut gaps = random_gaps(&mut rng, 120_000, 40);
        if gaps.len() < 2 {
            gaps.push(rng.next_below(120_000));
        }
        let arrivals = arrivals_from(&gaps);
        let mut disk = make_disk(QueueDiscipline::Fcfs, true);
        let (_, end) = drive(&mut disk, &arrivals);
        let actual = disk.energy_j(end);
        let params = disk.params().clone();

        // Offline optimum (lower bound): per inter-arrival gap take the
        // cheaper of idling through or a full sleep cycle; ignore service
        // time (it only adds energy to the actual run).
        let mut optimal = params.spinup_j; // must wake for the first request
        for w in arrivals.windows(2) {
            let g = (w[1].0 - w[0].0).as_secs_f64();
            let idle = g * params.idle_w;
            let sleep =
                params.transition_j() + params.standby_w * (g - params.transition_s()).max(0.0);
            optimal += idle.min(sleep);
        }
        assert!(
            actual >= optimal * 0.99 - 1.0,
            "actual {actual} below the offline lower bound {optimal}"
        );
        // 2-competitive bound with additive slack for the tail (one
        // breakeven of idling + one transition) and active-power service.
        let slack =
            params.max_request_energy_j() + arrivals.len() as f64 * 0.02 * params.active_w;
        assert!(
            actual <= 2.0 * optimal + slack,
            "actual {actual} above 2x optimal {optimal} + slack {slack}"
        );
    }
}
