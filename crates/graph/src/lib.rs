//! # spindown-graph
//!
//! Graph-algorithm substrate for the ICDCS 2011 reproduction: the two
//! NP-complete problems the paper reduces energy-aware scheduling to.
//!
//! * [`graph`] — node-weighted undirected [`graph::Graph`] (the `X(i,j,k)`
//!   conflict graph of paper §3.1).
//! * [`mwis`] — maximum-weight-independent-set solvers: the paper's GMIN
//!   greedy ([`mwis::gwmin`], Sakai et al. \[22\]), the stronger
//!   [`mwis::gwmin2`], a [`mwis::local_search`] improver, and an
//!   [`mwis::exact`] branch-and-bound oracle.
//! * [`setcover`] — weighted set cover for the batch scheduler (§3.2):
//!   greedy `H_n`-approximation and an exact oracle.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod graph;
pub mod mwis;
pub mod setcover;

pub use graph::{Graph, GraphBuilder, NodeId};
pub use setcover::{Cover, SetCoverInstance, WeightedSet};
