//! # spindown-bench
//!
//! The reproduction harness: regenerates every table and figure of the
//! paper's evaluation section (Figs. 2–17) as plain-text reports, plus
//! ablations the paper only gestures at. Zero-dependency micro-benchmarks
//! for the algorithmic substrates live in [`harness`] (run them with
//! `spindown bench`); [`regression`] gates a fresh run against a
//! committed baseline report (`spindown bench --bench-baseline`).
//!
//! Run everything at the paper's scale (180 disks, 70 000 requests):
//!
//! ```text
//! cargo run --release -p spindown-bench --bin figures -- all
//! ```
//!
//! or one figure, at reduced scale:
//!
//! ```text
//! cargo run --release -p spindown-bench --bin figures -- --quick fig6
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;
pub mod grids;
pub mod harness;
pub mod regression;
pub mod table;
pub mod workload;

pub use figures::Harness;
pub use harness::{run_benches, BenchConfig, BenchReport};
pub use regression::{check, parse_baseline, GateReport};
pub use workload::Scale;
