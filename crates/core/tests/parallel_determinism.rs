//! Seeded determinism suite for the intra-run parallel substrates.
//!
//! The worker pool's contract is that parallelism changes wall-clock,
//! never bytes: the sharded conflict-graph build and the fanned per-disk
//! offline evaluation must return **bit-identical** results for any
//! worker count. This suite pins that contract across `jobs ∈ {1, 2, 8}`
//! on seeded instances spanning sparse to dense conflict structure,
//! mirroring the solver differential suites: the serial path is the
//! oracle and every parallel output is compared with exact equality
//! (CSR offsets/neighbors/weights through `CsrGraph`'s `PartialEq`,
//! full `RunMetrics` including the response histogram).

use spindown_core::experiment::{
    data_space, requests_from_trace, run_experiment_with_jobs, ExperimentSpec, SchedulerKind,
};
use spindown_core::model::Request;
use spindown_core::offline::evaluate_offline_with_jobs;
use spindown_core::placement::{PlacementConfig, PlacementMap};
use spindown_core::sched::{MwisPlanner, MwisSolver};
use spindown_core::system::SystemConfig;
use spindown_disk::power::PowerParams;
use spindown_trace::synth::arrivals::OnOffProcess;
use spindown_trace::synth::{CelloLike, TraceGenerator};

/// Bursty multi-source arrivals at `burst_rate` req/s per source —
/// higher rates pack more requests into each disk's saving window,
/// densifying the conflict graph.
fn workload(requests: usize, data_items: usize, burst_rate: f64, seed: u64) -> Vec<Request> {
    let trace = CelloLike {
        requests,
        data_items,
        arrivals: OnOffProcess {
            sources: 8,
            on_shape: 1.5,
            on_scale_s: 2.0,
            off_shape: 1.3,
            off_scale_s: 30.0,
            burst_rate,
        },
        ..CelloLike::default()
    }
    .generate(seed);
    requests_from_trace(&trace)
}

const JOBS: [usize; 3] = [1, 2, 8];

/// One seeded instance: workload shape plus placement and pruning knobs.
/// `rate` (the per-source burst rate) relative to `requests`/`data_items`
/// controls conflict density — the sweep below runs from sparse graphs
/// (few pairs share a window) to dense ones (hot blocks, deep successor
/// horizon).
struct Instance {
    name: &'static str,
    requests: usize,
    data_items: usize,
    rate: f64,
    disks: u32,
    replication: u32,
    max_successors: usize,
    seed: u64,
}

const INSTANCES: [Instance; 4] = [
    Instance {
        name: "sparse-rf1",
        requests: 800,
        data_items: 600,
        rate: 3.0,
        disks: 16,
        replication: 1,
        max_successors: 3,
        seed: 11,
    },
    Instance {
        name: "moderate-rf3",
        requests: 1_200,
        data_items: 400,
        rate: 6.0,
        disks: 20,
        replication: 3,
        max_successors: 8,
        seed: 23,
    },
    Instance {
        name: "dense-rf5",
        requests: 1_000,
        data_items: 120,
        rate: 12.0,
        disks: 12,
        replication: 5,
        max_successors: 16,
        seed: 37,
    },
    Instance {
        name: "many-disks",
        requests: 1_500,
        data_items: 700,
        rate: 8.0,
        disks: 90,
        replication: 3,
        max_successors: 4,
        seed: 51,
    },
];

impl Instance {
    fn workload(&self) -> (Vec<Request>, PlacementMap) {
        let requests = workload(self.requests, self.data_items, self.rate, self.seed);
        let placement = PlacementMap::build(
            data_space(&requests),
            &PlacementConfig {
                disks: self.disks,
                replication: self.replication,
                zipf_z: 1.0,
            },
            self.seed,
        );
        (requests, placement)
    }

    fn planner(&self) -> MwisPlanner {
        MwisPlanner {
            params: PowerParams::barracuda(),
            solver: MwisSolver::GwMin,
            max_successors: self.max_successors,
        }
    }
}

/// The sharded Step 1/Step 2 build yields the same `ConflictGraph` —
/// node triples, CSR offsets, sorted neighbor slices, weights — as the
/// serial path, for every worker count, on every density.
#[test]
fn conflict_graph_is_bit_identical_across_jobs() {
    for inst in &INSTANCES {
        let (requests, placement) = inst.workload();
        let planner = inst.planner();
        let serial = planner.build_graph(&requests, &placement);
        assert!(
            !serial.graph.is_empty(),
            "{}: degenerate instance (no nodes) proves nothing",
            inst.name
        );
        for jobs in JOBS {
            let par = planner.build_graph_with_jobs(&requests, &placement, jobs);
            assert_eq!(par.nodes, serial.nodes, "{} jobs {jobs}", inst.name);
            assert_eq!(par.graph, serial.graph, "{} jobs {jobs}", inst.name);
        }
    }
}

/// The full plan (build + solve + Step 4 derivation) is invariant in
/// `jobs`: the same assignment and the same claimed saving.
#[test]
fn mwis_plan_is_bit_identical_across_jobs() {
    for inst in &INSTANCES {
        let (requests, placement) = inst.workload();
        let planner = inst.planner();
        let (serial_assignment, serial_saving) = planner.plan(&requests, &placement);
        for jobs in JOBS {
            let (assignment, saving) = planner.plan_with_jobs(&requests, &placement, jobs);
            assert_eq!(
                assignment.disks, serial_assignment.disks,
                "{} jobs {jobs}",
                inst.name
            );
            assert_eq!(saving, serial_saving, "{} jobs {jobs}", inst.name);
        }
    }
}

/// Fanned per-disk offline evaluation returns the identical
/// `RunMetrics` — energies, spin counts, per-disk summaries, and the
/// merged response histogram — for every worker count.
#[test]
fn offline_report_is_bit_identical_across_jobs() {
    for inst in &INSTANCES {
        let (requests, placement) = inst.workload();
        let planner = inst.planner();
        let (assignment, _) = planner.plan(&requests, &placement);
        let params = PowerParams::barracuda();
        let mechanics = spindown_disk::mechanics::Mechanics::new(
            spindown_disk::mechanics::DiskGeometry::cheetah_15k5(),
            spindown_sim::rng::SimRng::seed_from_u64(inst.seed),
        );
        for mech in [None, Some(&mechanics)] {
            let serial = evaluate_offline_with_jobs(
                &requests, &assignment, inst.disks, &params, None, mech, 1,
            );
            for jobs in JOBS {
                let par = evaluate_offline_with_jobs(
                    &requests, &assignment, inst.disks, &params, None, mech, jobs,
                );
                assert_eq!(par, serial, "{} jobs {jobs} mech {}", inst.name, mech.is_some());
            }
        }
    }
}

/// End to end through the experiment layer: a full MWIS experiment run
/// (placement, graph build, solve, offline evaluation) is invariant in
/// `jobs`.
#[test]
fn mwis_experiment_is_bit_identical_across_jobs() {
    let inst = &INSTANCES[1];
    let requests = workload(inst.requests, inst.data_items, inst.rate, inst.seed);
    let spec = ExperimentSpec {
        placement: PlacementConfig {
            disks: inst.disks,
            replication: inst.replication,
            zipf_z: 1.0,
        },
        scheduler: SchedulerKind::Mwis {
            solver: MwisSolver::GwMin,
            max_successors: inst.max_successors,
        },
        system: SystemConfig {
            disks: inst.disks,
            ..SystemConfig::default()
        },
        seed: inst.seed,
    };
    let serial = run_experiment_with_jobs(&requests, &spec, 1);
    for jobs in JOBS {
        let par = run_experiment_with_jobs(&requests, &spec, jobs);
        assert_eq!(par, serial, "jobs {jobs}");
    }
}
