//! Plain-text table rendering for figure reports.

/// A simple aligned text table.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with column alignment and a separator under the header.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>width$}", cell, width = widths[i]));
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with 3 decimal places.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a float with 2 decimal places.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a duration in seconds adaptively (ms below 1 s).
pub fn secs(x: f64) -> String {
    if x < 1.0 {
        format!("{:.0}ms", x * 1000.0)
    } else {
        format!("{x:.2}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(["rf", "energy"]);
        t.row(["1", "0.884"]);
        t.row(["10", "0.52"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("rf"));
        assert!(lines[1].starts_with('-'));
        // Right-aligned: "10" under "rf" column ends at same offset.
        assert!(lines[3].trim_start().starts_with("10"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new(["a", "b", "c"]);
        t.row(["1"]);
        let s = t.render();
        assert!(s.lines().count() == 3);
    }

    #[test]
    fn formatters() {
        assert_eq!(f3(0.12345), "0.123");
        assert_eq!(f2(1.005), "1.00");
        assert_eq!(secs(0.5), "500ms");
        assert_eq!(secs(1.5), "1.50s");
    }
}
