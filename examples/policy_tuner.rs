//! Sweeps the cost-function knobs α and β (paper Eq. 6, Fig. 11) on a
//! small system and prints the energy/latency trade-off frontier the
//! online heuristic exposes.
//!
//! ```text
//! cargo run --release --example policy_tuner
//! ```

use spindown::prelude::*;

fn main() {
    let trace = CelloLike {
        requests: 8_000,
        data_items: 3_000,
        ..CelloLike::default()
    }
    .generate(5);
    let requests = requests_from_trace(&trace);

    let spec = |alpha: f64, beta: f64| ExperimentSpec {
        placement: PlacementConfig {
            disks: 24,
            replication: 3,
            zipf_z: 1.0,
        },
        scheduler: SchedulerKind::Heuristic(CostFunction { alpha, beta }),
        system: SystemConfig {
            disks: 24,
            ..SystemConfig::default()
        },
        seed: 3,
    };

    println!("C(d) = E(d)·α/β + P(d)·(1−α)   —   α trades energy vs response time\n");
    println!(
        "{:>5} {:>6} {:>13} {:>13} {:>12}",
        "α", "β", "energy (kJ)", "mean resp", "p90 resp"
    );
    for &beta in &[10.0, 100.0, 1000.0] {
        for &alpha in &[0.0, 0.2, 0.5, 0.8, 1.0] {
            let m = run_experiment(&requests, &spec(alpha, beta));
            println!(
                "{:>5} {:>6} {:>13.1} {:>11.0}ms {:>10.0}ms",
                alpha,
                beta,
                m.energy_j / 1000.0,
                m.response_mean_s() * 1000.0,
                m.response_p90_s() * 1000.0
            );
        }
        println!();
    }
    println!(
        "α = 1 chases energy only (requests pile onto awake disks);\n\
         α = 0 chases response time only (requests spread to idle disks).\n\
         The paper settles on α = 0.2, β = 100 as the balanced operating point."
    );
}
