//! Differential tests: the streaming ingestion path (two-pass
//! `scan_stream` + `StreamRequests` + `run_system_streamed`) must be
//! bit-identical to the materialized oracle (`requests_from_trace` +
//! `run_system`) for every event-loop scheduler, and its buffering must
//! stay bounded by in-flight work rather than trace length.

use spindown_core::cost::CostFunction;
use spindown_core::experiment::{
    build_scheduler, data_space, requests_from_trace, scan_stream, SchedulerKind,
};
use spindown_core::model::{DataId, Request};
use spindown_core::placement::{PlacementConfig, PlacementMap};
use spindown_core::sched::ExplicitPlacement;
use spindown_core::system::{
    run_system, run_system_streamed, PolicyKind, SourceError, SystemConfig,
};
use spindown_sim::time::{SimDuration, SimTime};
use spindown_trace::record::{Trace, TraceRecord};
use spindown_trace::stream::StreamError;
use spindown_trace::synth::arrivals::OnOffProcess;
use spindown_trace::synth::{CelloLike, FinancialLike, TraceGenerator};

fn event_loop_schedulers() -> Vec<SchedulerKind> {
    vec![
        SchedulerKind::Random,
        SchedulerKind::Static,
        SchedulerKind::Heuristic(CostFunction::energy_only()),
        SchedulerKind::LoadAware,
        SchedulerKind::Wsc {
            cost: CostFunction::energy_only(),
            interval: SimDuration::from_millis(100),
        },
    ]
}

fn test_config(disks: u32) -> SystemConfig {
    SystemConfig {
        disks,
        policy: PolicyKind::Breakeven,
        power_sample: Some(SimDuration::from_secs(5)),
        seed: 11,
        ..SystemConfig::default()
    }
}

/// Runs every scheduler over `trace` via both paths and asserts the
/// full `RunMetrics` are identical. `make_stream` must replay the same
/// records on every call (re-seeded generator = re-opened file).
fn assert_stream_matches_oracle<S>(trace: &Trace, make_stream: impl Fn() -> S)
where
    S: Iterator<Item = TraceRecord>,
{
    const DISKS: u32 = 24;
    const SEED: u64 = 17;
    let pcfg = PlacementConfig {
        disks: DISKS,
        replication: 3,
        zipf_z: 1.0,
    };
    let config = test_config(DISKS);

    let reqs = requests_from_trace(trace);
    let scan = scan_stream(make_stream().map(Ok::<_, StreamError>)).expect("in-memory scan");
    assert_eq!(scan.reads(), reqs.len(), "pass one must count the reads");
    assert_eq!(
        scan.data_space(),
        data_space(&reqs),
        "pass one must recover the dense id space"
    );
    assert_eq!(
        scan.span_s(),
        reqs.last().map(|r| r.at.as_secs_f64()).unwrap_or(0.0),
        "pass one must recover the rebased span"
    );

    for kind in event_loop_schedulers() {
        let label = kind.label();

        let placement = PlacementMap::build(data_space(&reqs), &pcfg, SEED);
        let mut sched = build_scheduler(&kind, SEED).expect("event-loop scheduler");
        let oracle = run_system(&reqs, &placement, sched.as_mut(), &config);

        let placement = PlacementMap::build(scan.data_space(), &pcfg, SEED);
        let mut sched = build_scheduler(&kind, SEED).expect("event-loop scheduler");
        let mut source = scan
            .clone()
            .requests(make_stream().map(Ok::<_, StreamError>));
        let streamed = run_system_streamed(&mut source, &placement, sched.as_mut(), &config)
            .expect("streamed replay of an in-memory trace");

        assert_eq!(streamed, oracle, "{label}: streamed != materialized");
    }
}

#[test]
fn cello_stream_matches_materialized_oracle() {
    let gen = CelloLike {
        requests: 3_000,
        data_items: 800,
        ..CelloLike::default()
    };
    let trace = gen.generate(5);
    assert_stream_matches_oracle(&trace, || gen.stream(5));
}

#[test]
fn financial_stream_with_writes_matches_materialized_oracle() {
    // write_fraction > 0 exercises the reads-only filter in both passes.
    let gen = FinancialLike {
        requests: 2_500,
        data_items: 600,
        write_fraction: 0.2,
        ..FinancialLike::default()
    };
    let trace = gen.generate(9);
    assert_stream_matches_oracle(&trace, || gen.stream(9));
}

#[test]
fn streamed_event_queue_peak_is_independent_of_trace_length() {
    // Residual queue occupancy comes from stale idle-timer tokens, which
    // are bounded by arrival rate × idle threshold (stationary), never by
    // trace length. Doubling the trace must leave the peak essentially
    // flat — the constant-memory property of streamed ingestion.
    const DISKS: u32 = 24;
    let run = |n: usize| {
        let gen = CelloLike {
            requests: n,
            data_items: 1_000,
            arrivals: OnOffProcess {
                burst_rate: 50.0,
                ..CelloLike::default().arrivals
            },
            ..CelloLike::default()
        };
        let pcfg = PlacementConfig {
            disks: DISKS,
            replication: 3,
            zipf_z: 1.0,
        };
        let scan = scan_stream(gen.stream(2).map(Ok::<_, StreamError>)).unwrap();
        let placement = PlacementMap::build(scan.data_space(), &pcfg, 1);
        let mut sched =
            build_scheduler(&SchedulerKind::Heuristic(CostFunction::energy_only()), 1)
                .expect("event-loop scheduler");
        let mut source = scan.requests(gen.stream(2).map(Ok::<_, StreamError>));
        let m = run_system_streamed(
            &mut source,
            &placement,
            sched.as_mut(),
            &test_config(DISKS),
        )
        .unwrap();
        assert_eq!(m.requests, n);
        assert!(m.peak_in_flight < n, "in-flight never holds the whole trace");
        m.peak_events
    };
    let peak_5k = run(5_000);
    let peak_10k = run(10_000);
    assert!(
        peak_10k < peak_5k * 3 / 2,
        "peak grew with trace length: {peak_5k} @5k vs {peak_10k} @10k"
    );
}

fn req(index: u32, at_s: f64) -> Request {
    Request {
        index,
        at: SimTime::from_secs_f64(at_s),
        data: DataId(0),
        size: 512 * 1024,
    }
}

fn tiny_placement() -> ExplicitPlacement {
    ExplicitPlacement::new(vec![vec![spindown_core::model::DiskId(0)]], 1)
}

#[test]
fn out_of_order_source_fails_fast() {
    let placement = tiny_placement();
    let mut sched = build_scheduler(&SchedulerKind::Static, 1).unwrap();
    let config = SystemConfig {
        disks: 1,
        ..SystemConfig::default()
    };
    let mut source = vec![Ok(req(0, 1.0)), Ok(req(1, 0.5))].into_iter();
    let err = run_system_streamed(&mut source, &placement, sched.as_mut(), &config)
        .expect_err("time regression must fail");
    assert!(err.0.contains("sorted"), "unexpected message: {err}");
}

#[test]
fn source_error_propagates_verbatim() {
    let placement = tiny_placement();
    let mut sched = build_scheduler(&SchedulerKind::Static, 1).unwrap();
    let config = SystemConfig {
        disks: 1,
        ..SystemConfig::default()
    };
    let mut source = vec![Ok(req(0, 0.0)), Err(SourceError::new("mid-stream parse failure"))]
        .into_iter();
    let err = run_system_streamed(&mut source, &placement, sched.as_mut(), &config)
        .expect_err("source error must surface");
    assert_eq!(err, SourceError::new("mid-stream parse failure"));
}

#[test]
fn empty_source_runs_clean() {
    let placement = tiny_placement();
    let mut sched = build_scheduler(&SchedulerKind::Static, 1).unwrap();
    let config = SystemConfig {
        disks: 1,
        ..SystemConfig::default()
    };
    let mut source = std::iter::empty::<Result<Request, SourceError>>();
    let m = run_system_streamed(&mut source, &placement, sched.as_mut(), &config).unwrap();
    assert_eq!(m.requests, 0);
    assert_eq!(m.peak_events, 0);
    assert_eq!(m.peak_in_flight, 0);
}
