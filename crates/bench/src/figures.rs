//! One generator per table/figure of the paper's evaluation. Each
//! function returns a plain-text report; the `figures` binary writes them
//! under `results/`.

use std::cell::OnceCell;

use spindown_core::cost::CostFunction;
use spindown_core::experiment::{run_experiment, ExperimentSpec, SchedulerKind};
use spindown_core::model::Request;
use spindown_core::offline::evaluate_offline;
use spindown_core::paper_example;
use spindown_core::placement::PlacementConfig;
use spindown_core::sched::{MwisPlanner, MwisSolver};
use spindown_core::system::SystemConfig;
use spindown_disk::power::PowerParams;
use spindown_disk::state::DiskPowerState;
use spindown_sim::time::SimDuration;

use crate::grids::{EvalGrid, RF_SWEEP};
use crate::table::{f2, f3, secs, Table};
use crate::workload::{self, Scale};

/// Lazily computes and caches the expensive shared state (workloads and
/// grids) across figure generators.
pub struct Harness {
    scale: Scale,
    seed: u64,
    jobs: usize,
    cello: OnceCell<Vec<Request>>,
    financial: OnceCell<Vec<Request>>,
    cello_grid: OnceCell<EvalGrid>,
    financial_grid: OnceCell<EvalGrid>,
}

impl Harness {
    /// Creates a harness at the given scale and seed, computing grids on
    /// the calling thread.
    pub fn new(scale: Scale, seed: u64) -> Self {
        Harness::with_jobs(scale, seed, 1)
    }

    /// Creates a harness whose grid computations fan out over up to
    /// `jobs` worker threads ([`EvalGrid::compute_with_jobs`]). Grid
    /// contents are bit-identical for every `jobs` value.
    pub fn with_jobs(scale: Scale, seed: u64, jobs: usize) -> Self {
        Harness {
            scale,
            seed,
            jobs: jobs.max(1),
            cello: OnceCell::new(),
            financial: OnceCell::new(),
            cello_grid: OnceCell::new(),
            financial_grid: OnceCell::new(),
        }
    }

    /// The harness scale.
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// Worker-thread budget for grid computation.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    fn cello(&self) -> &[Request] {
        self.cello
            .get_or_init(|| workload::cello(self.scale, self.seed))
    }

    fn financial(&self) -> &[Request] {
        self.financial
            .get_or_init(|| workload::financial(self.scale, self.seed))
    }

    fn cello_grid(&self) -> &EvalGrid {
        self.cello_grid.get_or_init(|| {
            EvalGrid::compute_with_jobs(self.cello(), self.scale, 1.0, self.seed, self.jobs)
        })
    }

    fn financial_grid(&self) -> &EvalGrid {
        self.financial_grid.get_or_init(|| {
            EvalGrid::compute_with_jobs(self.financial(), self.scale, 1.0, self.seed, self.jobs)
        })
    }

    /// Dispatches a figure by id (`"fig2"` … `"fig17"`). Returns `None`
    /// for unknown ids.
    pub fn generate(&self, id: &str) -> Option<String> {
        Some(match id {
            "table1" => table1(),
            "fig2" => fig2(),
            "fig3" => fig3(),
            "fig4" => fig4(),
            "fig5" => fig5(),
            "fig6" => fig_energy(self.cello_grid(), "Fig. 6 — energy (Cello)"),
            "fig7" => fig_spins(self.cello_grid(), "Fig. 7 — spin-up/down (Cello)"),
            "fig8" => fig_response(self.cello_grid(), "Fig. 8 — mean response time (Cello)"),
            "fig9" => fig_breakdown(
                self.cello_grid(),
                "Fig. 9 — disk time breakdown (Cello, rf=3)",
            ),
            "fig10" => fig10(self),
            "fig11" => fig11(self),
            "fig12" => fig12(
                self.cello_grid(),
                "Fig. 12 — response-time inverse CDF (Cello, rf=3)",
            ),
            "fig13" => fig13(
                self.cello_grid(),
                "Fig. 13 — 90th-percentile response time (Cello)",
            ),
            "fig14" => fig_energy(self.financial_grid(), "Fig. 14 — energy (Financial1)"),
            "fig15" => fig_spins(self.financial_grid(), "Fig. 15 — spin-up/down (Financial1)"),
            "fig16" => fig_response(
                self.financial_grid(),
                "Fig. 16 — mean response time (Financial1)",
            ),
            "fig17" => fig_breakdown(
                self.financial_grid(),
                "Fig. 17 — disk time breakdown (Financial1, rf=3)",
            ),
            _ => return None,
        })
    }

    /// All figure ids in paper order.
    pub fn all_ids() -> &'static [&'static str] {
        &[
            "table1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
            "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17",
        ]
    }
}

/// Table 1 — the paper's variable glossary, mapped to this codebase.
pub fn table1() -> String {
    let mut t = Table::new(["paper variable", "meaning", "implementation"]);
    for (var, meaning, imp) in [
        ("D = {d1..dK}", "disks in the system", "core::model::DiskId / system disks"),
        ("B = {b1..bM}", "data items", "core::model::DataId (dense ids)"),
        ("L = {l1..lM}", "placement: disks holding each item", "core::placement::PlacementMap::locations"),
        ("R = {r1..rN}", "time-sorted request stream", "core::model::Request (index = i)"),
        ("t_i", "disk access time of r_i", "Request::at (SimTime)"),
        ("ES(R,D,L,P)", "a scheduling problem", "core::experiment::ExperimentSpec"),
        ("S_ES", "all feasible schedules", "(search space of Assignment)"),
        ("S*_ES", "optimal schedule", "core::offline::brute_force_optimal"),
        ("X(i,j,k)", "saving of r_i with successor r_j on d_k", "core::saving::SavingModel::pair_saving_j"),
        ("X(S,r_i)", "saving of r_i under schedule S", "core::offline::evaluate_offline"),
        ("X(S)", "total saving of schedule S", "MwisPlanner::plan (claimed saving)"),
        ("P_I", "disk idle power", "disk::power::PowerParams::idle_w"),
        ("TB", "breakeven time / idleness threshold", "PowerParams::breakeven_secs"),
        ("E_up/down", "spin-up/down energy", "PowerParams::spinup_j + spindown_j"),
        ("T_up/down", "spin-up/down time", "PowerParams::spinup_s / spindown_s"),
    ] {
        t.row([var.to_string(), meaning.to_string(), imp.to_string()]);
    }
    format!(
        "Table 1 — variables for problem definition (paper Appendix B)\n\n{}",
        t.render()
    )
}

/// Fig. 2 — the batch toy example: schedules A and B vs always-on.
pub fn fig2() -> String {
    let reqs = paper_example::batch_requests();
    let mut t = Table::new(["schedule", "disks used", "energy", "paper"]);
    for (name, schedule, paper) in [
        (
            "A (r1,r5→d1; r2,r3→d2; r4,r6→d3)",
            paper_example::schedule_a(),
            "15",
        ),
        (
            "B (r1,r2,r3,r5→d1; r4,r6→d3)",
            paper_example::schedule_b(),
            "10 (optimal)",
        ),
    ] {
        let m = evaluate_offline(&reqs, &schedule, 4, &paper_example::params(), None, None);
        let used = m.per_disk.iter().filter(|d| d.requests > 0).count();
        t.row([
            name.to_string(),
            used.to_string(),
            f2(m.energy_j),
            paper.into(),
        ]);
    }
    let m = evaluate_offline(
        &reqs,
        &paper_example::schedule_b(),
        4,
        &paper_example::params(),
        None,
        None,
    );
    t.row([
        "always-on".to_string(),
        "4".to_string(),
        f2(m.always_on_j),
        "20".into(),
    ]);
    format!("Fig. 2 — batch scheduling example\n\n{}", t.render())
}

/// Fig. 3 — the offline toy example: schedule B loses its optimality.
pub fn fig3() -> String {
    let reqs = paper_example::offline_requests();
    let mut t = Table::new(["schedule", "energy", "paper"]);
    for (name, schedule, paper) in [
        ("B (batch-optimal)", paper_example::schedule_b(), "23"),
        ("C (offline-optimal)", paper_example::schedule_c(), "19*"),
    ] {
        let m = evaluate_offline(&reqs, &schedule, 4, &paper_example::params(), None, None);
        t.row([name.to_string(), f2(m.energy_j), paper.into()]);
    }
    let m = evaluate_offline(
        &reqs,
        &paper_example::schedule_c(),
        4,
        &paper_example::params(),
        None,
        None,
    );
    t.row([
        "always-on".into(),
        f2(m.always_on_j),
        "72 (18s × 4 disks)".into(),
    ]);
    format!(
        "Fig. 3 — offline scheduling example\n\n{}\n\
         * the paper's §2.3.2 text computes 19 (d1 idle 0–8, d3 5–10, d4 12–18);\n\
         the figure caption's 21 contradicts its own text.\n",
        t.render()
    )
}

/// Fig. 4 — the MWIS algorithm walkthrough on the toy instance.
pub fn fig4() -> String {
    let reqs = paper_example::offline_requests();
    let placement = paper_example::placement();
    let planner = MwisPlanner {
        params: paper_example::params(),
        solver: MwisSolver::exact_default(),
        max_successors: 8,
    };
    let cg = planner.build_graph(&reqs, &placement);
    let sel = planner.solve(&cg);
    let mut out = String::new();
    out.push_str("Fig. 4 — MWIS scheduling algorithm walkthrough\n\n");
    out.push_str("Step 1/2 (nodes X(i,j,k), 1-based as in the paper):\n");
    let mut t = Table::new(["node", "weight", "degree"]);
    for (n, &(i, j, k)) in cg.nodes.iter().enumerate() {
        t.row([
            format!("X({},{},d{})", i + 1, j + 1, k.0 + 1),
            f2(cg.graph.weight(n as u32)),
            cg.graph.degree(n as u32).to_string(),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nStep 3: selected independent set (total saving {}):\n",
        f2(sel.iter().map(|&v| cg.graph.weight(v)).sum())
    ));
    for &v in &sel {
        let (i, j, k) = cg.nodes[v as usize];
        out.push_str(&format!("  X({},{},d{})\n", i + 1, j + 1, k.0 + 1));
    }
    let (assignment, _) = planner.plan(&reqs, &placement);
    let m = evaluate_offline(&reqs, &assignment, 4, &paper_example::params(), None, None);
    out.push_str(&format!(
        "\nStep 4: derived schedule energy = {} (paper's optimal schedule C: 19)\n",
        f2(m.energy_j)
    ));
    out
}

/// Fig. 5 — the 2CPM power configuration.
pub fn fig5() -> String {
    let p = PowerParams::barracuda();
    let mut t = Table::new(["parameter", "value"]);
    t.row(["active power".to_string(), format!("{} W", p.active_w)]);
    t.row(["idle power (P_I)".to_string(), format!("{} W", p.idle_w)]);
    t.row(["standby power".to_string(), format!("{} W", p.standby_w)]);
    t.row([
        "spin-up energy (E_up)".to_string(),
        format!("{} J", p.spinup_j),
    ]);
    t.row([
        "spin-down energy (E_down)".to_string(),
        format!("{} J", p.spindown_j),
    ]);
    t.row([
        "spin-up time (T_up)".to_string(),
        format!("{} s", p.spinup_s),
    ]);
    t.row([
        "spin-down time (T_down)".to_string(),
        format!("{} s", p.spindown_s),
    ]);
    t.row([
        "breakeven time (TB = E/P_I)".to_string(),
        format!("{:.1} s", p.breakeven_secs()),
    ]);
    t.row([
        "max request energy (E_max)".to_string(),
        format!("{:.1} J", p.max_request_energy_j()),
    ]);
    format!(
        "Fig. 5 — 2CPM configuration (Seagate Barracuda-class power model)\n\n{}",
        t.render()
    )
}

/// Figs. 6/14 — normalized energy vs replication factor.
pub fn fig_energy(grid: &EvalGrid, title: &str) -> String {
    let mut t = Table::new(
        std::iter::once("rf".to_string()).chain(grid.schedulers().iter().map(|s| s.to_string())),
    );
    for rf in RF_SWEEP {
        let mut row = vec![rf.to_string()];
        for s in grid.schedulers() {
            row.push(f3(grid.cell(rf, s).metrics.normalized_energy()));
        }
        t.row(row);
    }
    format!(
        "{title}\nenergy normalized to the always-on configuration\n\n{}",
        t.render()
    )
}

/// Figs. 7/15 — spin-up/down count normalized to Static.
pub fn fig_spins(grid: &EvalGrid, title: &str) -> String {
    let mut t = Table::new(
        std::iter::once("rf".to_string()).chain(grid.schedulers().iter().map(|s| s.to_string())),
    );
    for rf in RF_SWEEP {
        let static_spins = grid.cell(rf, "static").metrics.spin_cycles().max(1);
        let mut row = vec![rf.to_string()];
        for s in grid.schedulers() {
            let spins = grid.cell(rf, s).metrics.spin_cycles();
            row.push(f3(spins as f64 / static_spins as f64));
        }
        t.row(row);
    }
    format!(
        "{title}\nspin-up/down operations normalized to Static\n\n{}",
        t.render()
    )
}

/// Figs. 8/16 — mean request response time.
pub fn fig_response(grid: &EvalGrid, title: &str) -> String {
    let mut t = Table::new(
        std::iter::once("rf".to_string()).chain(grid.schedulers().iter().map(|s| s.to_string())),
    );
    for rf in RF_SWEEP {
        let mut row = vec![rf.to_string()];
        for s in grid.schedulers() {
            row.push(secs(grid.cell(rf, s).metrics.response_mean_s()));
        }
        t.row(row);
    }
    format!(
        "{title}\n(mwis runs under the offline model: no spin-up or queueing delay,\n\
         which is why the paper omits it from its Fig. 8)\n\n{}",
        t.render()
    )
}

/// Figs. 9/17 — per-disk state-time breakdown at rf = 3, disks sorted by
/// standby time. Rendered as per-scheduler percentile rows plus means.
pub fn fig_breakdown(grid: &EvalGrid, title: &str) -> String {
    let mut out = format!("{title}\nper-disk %time in each state, disks sorted by standby time\n");
    for s in grid.schedulers() {
        let m = &grid.cell(3, s).metrics;
        let rows = m.fractions_sorted_by_standby();
        let n = rows.len();
        let mut t = Table::new(["disk pctile", "standby", "idle", "active", "spin u/d"]);
        for (label, idx) in [
            ("p0", 0),
            ("p25", n / 4),
            ("p50", n / 2),
            ("p75", 3 * n / 4),
            ("p100", n - 1),
        ] {
            let f = rows[idx];
            t.row([
                label.to_string(),
                pct(f[DiskPowerState::Standby.index()]),
                pct(f[DiskPowerState::Idle.index()]),
                pct(f[DiskPowerState::Active.index()]),
                pct(f[DiskPowerState::SpinningUp.index()] + f[DiskPowerState::SpinningDown.index()]),
            ]);
        }
        out.push_str(&format!(
            "\n[{s}]  mean standby: {}\n{}",
            pct(m.mean_standby_fraction()),
            t.render()
        ));
    }
    out
}

fn pct(f: f64) -> String {
    format!("{:.1}%", f * 100.0)
}

/// Fig. 10 — energy over replication factor × placement skew (Zipf z).
pub fn fig10(h: &Harness) -> String {
    let reqs = h.cello();
    let zs = [0.0, 0.25, 0.5, 0.75, 1.0];
    let mut out = String::from(
        "Fig. 10 — energy vs replication factor and data locality (Cello)\n\
         energy normalized to always-on; rows = rf, cols = Zipf z of originals\n",
    );
    for kind in [
        SchedulerKind::Random,
        SchedulerKind::Static,
        SchedulerKind::Heuristic(CostFunction::default()),
    ] {
        let label = kind.label();
        let mut t = Table::new(
            std::iter::once("rf".to_string()).chain(zs.iter().map(|z| format!("z={z}"))),
        );
        for rf in RF_SWEEP {
            let mut row = vec![rf.to_string()];
            for &z in &zs {
                let spec = ExperimentSpec {
                    placement: PlacementConfig {
                        disks: h.scale().disks,
                        replication: rf,
                        zipf_z: z,
                    },
                    scheduler: kind.clone(),
                    system: SystemConfig {
                        disks: h.scale().disks,
                        ..SystemConfig::default()
                    },
                    seed: 1,
                };
                row.push(f3(run_experiment(reqs, &spec).normalized_energy()));
            }
            t.row(row);
        }
        out.push_str(&format!("\n[{label}]\n{}", t.render()));
    }
    out
}

/// Fig. 11 — the cost-function trade-off: α and β sweep at rf = 3.
pub fn fig11(h: &Harness) -> String {
    let reqs = h.cello();
    let alphas = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0];
    let betas = [1.0, 10.0, 100.0, 500.0, 1000.0];
    let mut runs = Vec::new();
    for &beta in &betas {
        for &alpha in &alphas {
            let spec = ExperimentSpec {
                placement: PlacementConfig {
                    disks: h.scale().disks,
                    replication: 3,
                    zipf_z: 1.0,
                },
                scheduler: SchedulerKind::Heuristic(CostFunction { alpha, beta }),
                system: SystemConfig {
                    disks: h.scale().disks,
                    ..SystemConfig::default()
                },
                seed: 1,
            };
            runs.push((alpha, beta, run_experiment(reqs, &spec)));
        }
    }
    // Normalize to the α = 0 run of each β (as the paper does).
    let mut energy_t = Table::new(
        std::iter::once("beta".to_string()).chain(alphas.iter().map(|a| format!("a={a}"))),
    );
    let mut resp_t = Table::new(
        std::iter::once("beta".to_string()).chain(alphas.iter().map(|a| format!("a={a}"))),
    );
    for &beta in &betas {
        let base = runs
            .iter()
            .find(|(a, b, _)| *a == 0.0 && *b == beta)
            .expect("alpha 0 run");
        let mut erow = vec![format!("{beta}")];
        let mut rrow = vec![format!("{beta}")];
        for &alpha in &alphas {
            let (_, _, m) = runs
                .iter()
                .find(|(a, b, _)| *a == alpha && *b == beta)
                .expect("run");
            erow.push(f3(m.energy_j / base.2.energy_j));
            let denom = base.2.response_mean_s().max(1e-9);
            rrow.push(f2(m.response_mean_s() / denom));
        }
        energy_t.row(erow);
        resp_t.row(rrow);
    }
    format!(
        "Fig. 11 — cost-function trade-off (Heuristic, Cello, rf=3)\n\
         values normalized to the α=0 run of each β row\n\n\
         (a) energy consumption\n{}\n(b) mean response time\n{}",
        energy_t.render(),
        resp_t.render()
    )
}

/// Fig. 12 — inverse CDF of request response time at rf = 3.
pub fn fig12(grid: &EvalGrid, title: &str) -> String {
    let xs = [0.001, 0.01, 0.1, 1.0, 5.0, 10.0, 15.0];
    let mut t = Table::new(
        std::iter::once("x".to_string()).chain(
            std::iter::once("always-on".to_string())
                .chain(grid.schedulers().iter().map(|s| s.to_string())),
        ),
    );
    for &x in &xs {
        let mut row = vec![secs(x)];
        row.push(format!("{:.4}", grid.always_on.response.fraction_above(x)));
        for s in grid.schedulers() {
            row.push(format!(
                "{:.4}",
                grid.cell(3, s).metrics.response.fraction_above(x)
            ));
        }
        t.row(row);
    }
    format!("{title}\nP[response time > x]\n\n{}", t.render())
}

/// Fig. 13 — 90th-percentile response time vs replication factor.
pub fn fig13(grid: &EvalGrid, title: &str) -> String {
    let mut t = Table::new(
        std::iter::once("rf".to_string()).chain(
            std::iter::once("always-on".to_string())
                .chain(grid.schedulers().iter().map(|s| s.to_string())),
        ),
    );
    for rf in RF_SWEEP {
        let mut row = vec![rf.to_string()];
        row.push(secs(grid.always_on.response_p90_s()));
        for s in grid.schedulers() {
            row.push(secs(grid.cell(rf, s).metrics.response_p90_s()));
        }
        t.row(row);
    }
    format!("{title}\n\n{}", t.render())
}

/// Ablation (beyond the paper): MWIS solver quality at rf = 3.
pub fn ablation_mwis(h: &Harness) -> String {
    let reqs = h.cello();
    let mut t = Table::new(["solver", "norm energy", "spins", "claimed saving kJ"]);
    for (name, solver, max_succ) in [
        ("gwmin (paper)", MwisSolver::GwMin, 3usize),
        ("gwmin fanout=8", MwisSolver::GwMin, 8),
        ("gwmin2", MwisSolver::GwMin2, 3),
        ("gwmin + local search", MwisSolver::GwMinLocalSearch, 3),
        (
            "gwmin + refine x4",
            MwisSolver::GwMinRefined { passes: 4 },
            3,
        ),
        (
            "refine x4, fanout=8",
            MwisSolver::GwMinRefined { passes: 4 },
            8,
        ),
    ] {
        let spec = ExperimentSpec {
            placement: PlacementConfig {
                disks: h.scale().disks,
                replication: 3,
                zipf_z: 1.0,
            },
            scheduler: SchedulerKind::Mwis {
                solver,
                max_successors: max_succ,
            },
            system: SystemConfig {
                disks: h.scale().disks,
                ..SystemConfig::default()
            },
            seed: 1,
        };
        let m = run_experiment(reqs, &spec);
        // Claimed saving: recompute via the planner for reporting.
        let placement = spindown_core::placement::PlacementMap::build(
            spindown_core::experiment::data_space(reqs),
            &spec.placement,
            spec.seed,
        );
        let planner = MwisPlanner {
            params: spec.system.power.clone(),
            solver,
            max_successors: max_succ,
        };
        let (_, claimed) = planner.plan(reqs, &placement);
        t.row([
            name.to_string(),
            f3(m.normalized_energy()),
            m.spin_cycles().to_string(),
            f2(claimed / 1000.0),
        ]);
    }
    format!(
        "Ablation — MWIS solver quality (Cello, rf=3)\n\
         the paper conjectures better MWIS algorithms would save more (§5.1)\n\n{}",
        t.render()
    )
}

/// Ablation (beyond the paper): spin-down threshold around 2CPM's TB.
pub fn ablation_threshold(h: &Harness) -> String {
    use spindown_core::system::PolicyKind;
    let reqs = h.cello();
    let tb = spindown_disk::power::PowerParams::barracuda().breakeven_secs();
    let mut t = Table::new(["threshold", "norm energy", "spin cycles", "mean resp"]);
    for (name, policy) in [
        ("TB/4".to_string(), PolicyKind::FixedTimeout(SimDuration::from_secs_f64(tb / 4.0))),
        ("TB/2".to_string(), PolicyKind::FixedTimeout(SimDuration::from_secs_f64(tb / 2.0))),
        (format!("TB ({tb:.1}s, 2CPM)"), PolicyKind::Breakeven),
        ("2*TB".to_string(), PolicyKind::FixedTimeout(SimDuration::from_secs_f64(tb * 2.0))),
        ("4*TB".to_string(), PolicyKind::FixedTimeout(SimDuration::from_secs_f64(tb * 4.0))),
        ("adaptive".to_string(), PolicyKind::Adaptive),
        ("always-on".to_string(), PolicyKind::AlwaysOn),
    ] {
        let spec = ExperimentSpec {
            placement: PlacementConfig {
                disks: h.scale().disks,
                replication: 3,
                zipf_z: 1.0,
            },
            scheduler: SchedulerKind::Heuristic(CostFunction::default()),
            system: SystemConfig {
                disks: h.scale().disks,
                policy,
                ..SystemConfig::default()
            },
            seed: 1,
        };
        let m = run_experiment(reqs, &spec);
        t.row([
            name,
            f3(m.normalized_energy()),
            m.spin_cycles().to_string(),
            secs(m.response_mean_s()),
        ]);
    }
    format!(
        "Ablation — spin-down threshold (Heuristic, Cello, rf=3)\n\
         2CPM's breakeven threshold is 2-competitive; the sweep shows the\n\
         energy/spin-count/latency trade-off around it\n\n{}",
        t.render()
    )
}

/// Ablation (beyond the paper): DiskSim-style queue disciplines.
pub fn ablation_discipline(h: &Harness) -> String {
    use spindown_disk::queue::QueueDiscipline;
    let reqs = h.cello();
    let mut t = Table::new(["discipline", "norm energy", "mean resp", "p90 resp"]);
    for (name, discipline) in [
        ("fcfs (paper)", QueueDiscipline::Fcfs),
        ("sstf", QueueDiscipline::Sstf),
        ("elevator", QueueDiscipline::Elevator),
    ] {
        let spec = ExperimentSpec {
            placement: PlacementConfig {
                disks: h.scale().disks,
                replication: 3,
                zipf_z: 1.0,
            },
            scheduler: SchedulerKind::Heuristic(CostFunction::default()),
            system: SystemConfig {
                disks: h.scale().disks,
                discipline,
                ..SystemConfig::default()
            },
            seed: 1,
        };
        let m = run_experiment(reqs, &spec);
        t.row([
            name.to_string(),
            f3(m.normalized_energy()),
            secs(m.response_mean_s()),
            secs(m.response_p90_s()),
        ]);
    }
    format!(
        "Ablation — per-disk queue discipline (Heuristic, Cello, rf=3)\n\
         seek-aware disciplines cut positioning time on deep queues\n\n{}",
        t.render()
    )
}

/// Ablation (beyond the paper): batch-interval sensitivity of WSC.
pub fn ablation_batch_interval(h: &Harness) -> String {
    let reqs = h.cello();
    let mut t = Table::new(["interval", "norm energy", "mean resp", "p90 resp"]);
    for ms in [10u64, 50, 100, 500, 1000, 5000] {
        let spec = ExperimentSpec {
            placement: PlacementConfig {
                disks: h.scale().disks,
                replication: 3,
                zipf_z: 1.0,
            },
            scheduler: SchedulerKind::Wsc {
                cost: CostFunction::default(),
                interval: SimDuration::from_millis(ms),
            },
            system: SystemConfig {
                disks: h.scale().disks,
                ..SystemConfig::default()
            },
            seed: 1,
        };
        let m = run_experiment(reqs, &spec);
        t.row([
            format!("{ms}ms"),
            f3(m.normalized_energy()),
            secs(m.response_mean_s()),
            secs(m.response_p90_s()),
        ]);
    }
    format!(
        "Ablation — WSC batch-interval sensitivity (Cello, rf=3)\n\
         the paper fixes 0.1 s; longer batches trade latency for energy\n\n{}",
        t.render()
    )
}
