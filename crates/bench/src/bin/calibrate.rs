//! Calibration helper: sweep the aggregate arrival rate and report the
//! normalized energy of each scheduler at rf ∈ {1, 3, 5}, to anchor the
//! synthetic workload against the paper's Fig. 6 (rf = 1 ≈ 0.88; WSC at
//! rf = 5 ≈ 0.52; Random drifting toward 1.0).
//!
//! ```text
//! cargo run --release -p spindown-bench --bin calibrate -- [rates...]
//! ```

use spindown_bench::grids::EvalGrid;
use spindown_bench::workload::{self, Scale};

fn main() {
    let rates: Vec<f64> = {
        let args: Vec<f64> = std::env::args()
            .skip(1)
            .filter_map(|a| a.parse().ok())
            .collect();
        if args.is_empty() {
            vec![5.0, 10.0, 20.0]
        } else {
            args
        }
    };
    for rate in rates {
        let scale = Scale {
            rate,
            ..Scale::paper()
        };
        let reqs = workload::cello(scale, 42);
        let span = reqs.last().map(|r| r.at.as_secs_f64()).unwrap_or(0.0);
        println!("=== rate {rate} req/s (span {:.0}s) ===", span);
        let grid = EvalGrid::compute(&reqs, scale, 1.0, 42);
        println!("rf  random  static  heuristic  wsc    mwis   mwis-r (normalized energy)");
        for rf in [1u32, 3, 5] {
            print!("{rf} ");
            for s in ["random", "static", "heuristic", "wsc", "mwis"] {
                print!("  {:.3}", grid.cell(rf, s).metrics.normalized_energy());
            }
            // Refined MWIS (extension): gwmin + hill climbing.
            let spec = spindown_core::experiment::ExperimentSpec {
                placement: spindown_core::placement::PlacementConfig {
                    disks: scale.disks,
                    replication: rf,
                    zipf_z: 1.0,
                },
                scheduler: spindown_core::experiment::SchedulerKind::Mwis {
                    solver: spindown_core::sched::MwisSolver::GwMinRefined { passes: 4 },
                    max_successors: 3,
                },
                system: spindown_core::system::SystemConfig {
                    disks: scale.disks,
                    ..Default::default()
                },
                seed: 42,
            };
            let m = spindown_core::experiment::run_experiment(&reqs, &spec);
            print!("  {:.3}", m.normalized_energy());
            println!();
        }
        println!(
            "spin cycles @rf3: random {}, static {}, heuristic {}, wsc {}, mwis {}",
            grid.cell(3, "random").metrics.spin_cycles(),
            grid.cell(3, "static").metrics.spin_cycles(),
            grid.cell(3, "heuristic").metrics.spin_cycles(),
            grid.cell(3, "wsc").metrics.spin_cycles(),
            grid.cell(3, "mwis").metrics.spin_cycles(),
        );
        println!(
            "mean resp @rf3: random {:.2}s, static {:.2}s, heuristic {:.2}s, wsc {:.2}s",
            grid.cell(3, "random").metrics.response_mean_s(),
            grid.cell(3, "static").metrics.response_mean_s(),
            grid.cell(3, "heuristic").metrics.response_mean_s(),
            grid.cell(3, "wsc").metrics.response_mean_s(),
        );
    }
}
