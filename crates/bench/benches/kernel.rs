//! Micro-benchmarks of the simulation kernel: event queue, PRNG,
//! distributions, histogram.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::hint::black_box;

use spindown_sim::event::EventQueue;
use spindown_sim::rng::{AliasTable, SimRng, Zipf};
use spindown_sim::stats::LatencyHistogram;
use spindown_sim::time::SimTime;

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    for n in [1_000usize, 100_000] {
        g.throughput(Throughput::Elements(n as u64));
        g.bench_function(format!("schedule_pop_{n}"), |b| {
            let mut rng = SimRng::seed_from_u64(1);
            let times: Vec<SimTime> = (0..n)
                .map(|_| SimTime::from_micros(rng.next_below(1_000_000_000)))
                .collect();
            b.iter_batched(
                EventQueue::<u32>::new,
                |mut q| {
                    for (i, &t) in times.iter().enumerate() {
                        q.schedule(t, i as u32);
                    }
                    let mut sum = 0u64;
                    while let Some(e) = q.pop() {
                        sum += e.payload as u64;
                    }
                    black_box(sum)
                },
                BatchSize::SmallInput,
            );
        });
    }
    g.finish();
}

fn bench_rng(c: &mut Criterion) {
    let mut g = c.benchmark_group("rng");
    g.throughput(Throughput::Elements(1_000_000));
    g.bench_function("xoshiro_u64_1m", |b| {
        let mut rng = SimRng::seed_from_u64(2);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..1_000_000 {
                acc ^= rng.next_u64();
            }
            black_box(acc)
        });
    });
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("zipf_sample_100k", |b| {
        let zipf = Zipf::new(30_000, 1.0).unwrap();
        let mut rng = SimRng::seed_from_u64(3);
        b.iter(|| {
            let mut acc = 0usize;
            for _ in 0..100_000 {
                acc += zipf.sample(&mut rng);
            }
            black_box(acc)
        });
    });
    g.bench_function("alias_sample_100k", |b| {
        let weights: Vec<f64> = (1..=30_000).map(|r| 1.0 / r as f64).collect();
        let table = AliasTable::new(&weights).unwrap();
        let mut rng = SimRng::seed_from_u64(4);
        b.iter(|| {
            let mut acc = 0usize;
            for _ in 0..100_000 {
                acc += table.sample(&mut rng);
            }
            black_box(acc)
        });
    });
    g.finish();
}

fn bench_histogram(c: &mut Criterion) {
    c.bench_function("histogram_record_100k", |b| {
        let mut rng = SimRng::seed_from_u64(5);
        let values: Vec<f64> = (0..100_000).map(|_| rng.exponential(10.0)).collect();
        b.iter_batched(
            LatencyHistogram::default,
            |mut h| {
                for &v in &values {
                    h.record_secs(v);
                }
                black_box(h.quantile(0.9))
            },
            BatchSize::SmallInput,
        );
    });
}

criterion_group!(benches, bench_event_queue, bench_rng, bench_histogram);
criterion_main!(benches);
