//! Deterministic fan-out of one sorted stream into per-group substreams,
//! handed off in **blocks**.
//!
//! [`StreamSplitter`] routes items pulled from a single upstream source to
//! `n` consumer groups (one per island worker) **without materializing the
//! stream**: each group owns a bounded queue of fixed-size record blocks,
//! and whichever consumer needs data next drives the shared source until
//! its own next block fills, parking foreign items in their groups'
//! blocks. Consumers take a whole block per lock transaction
//! ([`StreamSplitter::pull_block`]), so the per-record cost of the
//! cross-thread hand-off is `1/block_len` lock acquisitions instead of
//! one — the difference between the island engines outrunning the serial
//! loop and losing to it.
//!
//! Properties:
//!
//! * **Order-preserving** — each group receives exactly its items, in
//!   upstream order (a `reading` flag serializes the read-route-park
//!   transaction, so per-group FIFO order is independent of thread
//!   timing).
//! * **Bounded, block-granularity backpressure** — a group's parked full
//!   blocks never exceed `capacity` items; the reader blocks at a block
//!   boundary until the lagging consumer drains. With the open
//!   (partially-filled) block, a group buffers at most
//!   `capacity + block_len` items; the observed maximum is reported by
//!   [`StreamSplitter::high_water`].
//! * **Recycled blocks** — drained block buffers return through a free
//!   list, so steady-state routing performs no allocation.
//! * **Fail-fast** — an upstream error is latched and returned to every
//!   group after its buffered items, matching the serial pipeline's abort
//!   semantics.
//!
//! Deadlock freedom relies on one contract: **every group is consumed by a
//! live thread until it yields `None` or an error**. The island runner
//! guarantees this by construction (each worker loops on `pull_block`
//! until its substream ends).

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Per-group buffer: parked full blocks plus the block being filled.
struct GroupState<T> {
    /// Full blocks awaiting the consumer, in upstream order.
    blocks: VecDeque<Vec<T>>,
    /// The block the reader is currently filling for this group.
    open: Vec<T>,
    /// Total items currently buffered (`blocks` + `open`).
    buffered: usize,
}

/// Shared state behind the splitter's mutex.
struct SplitState<'a, T, E> {
    /// The single upstream source; `None` result means exhausted.
    source: Box<dyn FnMut() -> Option<Result<T, E>> + Send + 'a>,
    /// Maps an item to its consumer group, `0..n_groups`.
    route: Box<dyn FnMut(&T) -> usize + Send + 'a>,
    groups: Vec<GroupState<T>>,
    /// Drained block buffers awaiting reuse.
    free: Vec<Vec<T>>,
    /// Upstream exhausted.
    done: bool,
    /// Latched upstream error, returned to every group.
    error: Option<E>,
    /// A consumer is currently driving the source.
    reading: bool,
    /// Largest per-group buffered item count ever observed (diagnostic).
    high_water: usize,
}

/// Splits one sorted upstream into per-group sorted substreams of record
/// blocks with bounded lookahead. See the [module docs](self) for the
/// contract.
pub struct StreamSplitter<'a, T, E> {
    state: Mutex<SplitState<'a, T, E>>,
    ready: Condvar,
    /// Full-block backpressure threshold, in items.
    capacity: usize,
    /// Records per block.
    block_len: usize,
}

impl<'a, T, E: Clone> StreamSplitter<'a, T, E> {
    /// Default per-group lookahead bound (items in parked full blocks).
    pub const DEFAULT_CAPACITY: usize = 4096;

    /// Default records per hand-off block.
    pub const DEFAULT_BLOCK: usize = 256;

    /// Creates a splitter over `source` routing into `n_groups` block
    /// queues of at most `capacity` parked items each. Blocks hold
    /// `min(capacity, DEFAULT_BLOCK)` records.
    ///
    /// # Panics
    ///
    /// Panics if `n_groups == 0` or `capacity == 0`.
    pub fn new(
        source: Box<dyn FnMut() -> Option<Result<T, E>> + Send + 'a>,
        route: Box<dyn FnMut(&T) -> usize + Send + 'a>,
        n_groups: usize,
        capacity: usize,
    ) -> Self {
        assert!(n_groups > 0, "need at least one group");
        assert!(capacity > 0, "lookahead capacity must be positive");
        let block_len = capacity.min(Self::DEFAULT_BLOCK);
        StreamSplitter {
            state: Mutex::new(SplitState {
                source,
                route,
                groups: (0..n_groups)
                    .map(|_| GroupState {
                        blocks: VecDeque::new(),
                        open: Vec::new(),
                        buffered: 0,
                    })
                    .collect(),
                free: Vec::new(),
                done: false,
                error: None,
                reading: false,
                high_water: 0,
            }),
            ready: Condvar::new(),
            capacity,
            block_len,
        }
    }

    /// Records per hand-off block.
    pub fn block_len(&self) -> usize {
        self.block_len
    }

    /// Next block for `group`, swapped into `out` (cleared first; its
    /// spare buffer is recycled into the free list). Returns
    /// `Some(Ok(()))` with `out` holding ≥ 1 item in upstream order,
    /// `Some(Err(e))` if the upstream failed (latched, delivered after
    /// the group's buffered items — every later call repeats it), `None`
    /// once the upstream is exhausted and the group has drained.
    pub fn pull_block(&self, group: usize, out: &mut Vec<T>) -> Option<Result<(), E>> {
        out.clear();
        let mut st = self.state.lock().expect("splitter lock poisoned");
        loop {
            if let Some(mut block) = st.groups[group].blocks.pop_front() {
                st.groups[group].buffered -= block.len();
                std::mem::swap(out, &mut block);
                // `block` is now the consumer's drained spare; recycle it.
                st.free.push(block);
                // A parked reader may be waiting on this group's drain.
                self.ready.notify_all();
                return Some(Ok(()));
            }
            if st.done || st.error.is_some() {
                let g = &mut st.groups[group];
                if !g.open.is_empty() {
                    // End-of-stream tail: a final short block.
                    g.buffered = 0;
                    std::mem::swap(out, &mut g.open);
                    return Some(Ok(()));
                }
                return st.error.as_ref().map(|e| Err(e.clone()));
            }
            if st.reading {
                // Another consumer is driving the source; it will either
                // fill a block for us or finish the stream.
                st = self.ready.wait(st).expect("splitter lock poisoned");
                continue;
            }
            // Become the reader and drive the source until our own next
            // block fills (or the stream ends or errors).
            st.reading = true;
            loop {
                match (st.source)() {
                    None => {
                        st.done = true;
                        break;
                    }
                    Some(Err(e)) => {
                        st.error = Some(e);
                        break;
                    }
                    Some(Ok(item)) => {
                        let g = (st.route)(&item);
                        debug_assert!(g < st.groups.len(), "route out of range");
                        if st.groups[g].open.is_empty() && st.groups[g].open.capacity() == 0 {
                            let buf = st.free.pop().unwrap_or_default();
                            st.groups[g].open = buf;
                        }
                        st.groups[g].open.push(item);
                        st.groups[g].buffered += 1;
                        st.high_water = st.high_water.max(st.groups[g].buffered);
                        if st.groups[g].open.len() >= self.block_len {
                            // Block boundary: apply backpressure, blocking
                            // while the group's parked blocks sit at
                            // capacity. Its consumer is live by contract
                            // and pops under this same lock, so the wait
                            // always terminates.
                            while g != group
                                && st.groups[g].buffered - st.groups[g].open.len()
                                    >= self.capacity
                            {
                                st = self.ready.wait(st).expect("splitter lock poisoned");
                            }
                            let spare = st.free.pop().unwrap_or_default();
                            let full = std::mem::replace(&mut st.groups[g].open, spare);
                            st.groups[g].blocks.push_back(full);
                            if g == group {
                                break;
                            }
                            // Wake the block's consumer without waiting for
                            // our own block to complete.
                            self.ready.notify_all();
                        }
                    }
                }
            }
            st.reading = false;
            self.ready.notify_all();
            // Loop back to take our block / tail / latched error.
        }
    }

    /// Largest per-group buffered item count observed so far. Call after
    /// all groups have drained for the run's lookahead high-water mark.
    pub fn high_water(&self) -> usize {
        self.state
            .lock()
            .expect("splitter lock poisoned")
            .high_water
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vec_source<T: Send + 'static>(
        items: Vec<Result<T, String>>,
    ) -> Box<dyn FnMut() -> Option<Result<T, String>> + Send> {
        let mut it = items.into_iter();
        Box::new(move || it.next())
    }

    /// Drains `group` block-by-block into a flat vector, stopping at the
    /// end of the substream; panics on an upstream error.
    fn pull_all<T: Clone + Send, E: Clone + std::fmt::Debug>(
        s: &StreamSplitter<'_, T, E>,
        group: usize,
    ) -> Vec<T> {
        let mut out = Vec::new();
        let mut block = Vec::new();
        while let Some(r) = s.pull_block(group, &mut block) {
            r.unwrap();
            out.extend(block.iter().cloned());
        }
        out
    }

    #[test]
    fn single_group_passthrough() {
        let s = StreamSplitter::new(
            vec_source((0..1000).map(Ok).collect()),
            Box::new(|_: &i32| 0),
            1,
            64,
        );
        assert_eq!(s.block_len(), 64);
        let out = pull_all(&s, 0);
        assert_eq!(out, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn blocks_are_full_until_the_tail() {
        let s = StreamSplitter::new(
            vec_source((0..250).map(Ok).collect()),
            Box::new(|_: &i32| 0),
            1,
            StreamSplitter::<i32, String>::DEFAULT_CAPACITY,
        );
        let mut lens = Vec::new();
        let mut block = Vec::new();
        while let Some(r) = s.pull_block(0, &mut block) {
            r.unwrap();
            lens.push(block.len());
        }
        // 250 = 256-block fixture minus the tail: everything lands in one
        // short final block per full-block run.
        assert_eq!(lens.iter().sum::<usize>(), 250);
        assert!(lens[..lens.len() - 1].iter().all(|&l| l == 256));
    }

    #[test]
    fn routes_preserve_per_group_order() {
        let n: i32 = 30_000;
        let s = StreamSplitter::new(
            vec_source((0..n).map(Ok).collect()),
            Box::new(|x: &i32| (*x % 3) as usize),
            3,
            StreamSplitter::<i32, String>::DEFAULT_CAPACITY,
        );
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..3usize)
                .map(|g| {
                    let s = &s;
                    scope.spawn(move || pull_all(s, g))
                })
                .collect();
            for (g, h) in handles.into_iter().enumerate() {
                let got = h.join().unwrap();
                let want: Vec<i32> = (0..n).filter(|x| (*x % 3) as usize == g).collect();
                assert_eq!(got, want, "group {g}");
            }
        });
        assert!(s.high_water() > 0);
    }

    #[test]
    fn bounded_buffers_block_instead_of_growing() {
        // Group 1 gets the first 200 items; group 0's single item comes
        // last. Group 0 must drive the source through all of group 1's
        // items, respecting the block-granularity backpressure bound.
        let mut items: Vec<Result<i32, String>> = (0..200).map(|i| Ok(i * 2 + 1)).collect();
        items.push(Ok(0));
        let cap = 16;
        let s = StreamSplitter::new(vec_source(items), Box::new(|x: &i32| (*x % 2) as usize), 2, cap);
        std::thread::scope(|scope| {
            let s0 = &s;
            let slow = scope.spawn(move || pull_all(s0, 1));
            let mut block = Vec::new();
            assert_eq!(s.pull_block(0, &mut block), Some(Ok(())));
            assert_eq!(block, vec![0]);
            assert_eq!(s.pull_block(0, &mut block), None);
            let odd = slow.join().unwrap();
            assert_eq!(odd.len(), 200);
        });
        // Parked full blocks are capped at `cap` items; the open block can
        // hold up to one more block beyond that.
        assert!(
            s.high_water() <= cap + s.block_len(),
            "high water {}",
            s.high_water()
        );
    }

    #[test]
    fn upstream_error_latches_for_every_group() {
        let s = StreamSplitter::new(
            vec_source(vec![Ok(0), Ok(1), Err("boom".to_string())]),
            Box::new(|x: &i32| *x as usize),
            2,
            8,
        );
        let mut block = Vec::new();
        assert_eq!(s.pull_block(0, &mut block), Some(Ok(())));
        assert_eq!(block, vec![0]);
        // Pulling group 0 again drives past item 1 (parked for group 1)
        // into the error.
        assert_eq!(s.pull_block(0, &mut block), Some(Err("boom".to_string())));
        // Group 1 still sees its buffered item first, then the error.
        assert_eq!(s.pull_block(1, &mut block), Some(Ok(())));
        assert_eq!(block, vec![1]);
        assert_eq!(s.pull_block(1, &mut block), Some(Err("boom".to_string())));
        assert_eq!(s.pull_block(0, &mut block), Some(Err("boom".to_string())));
    }

    #[test]
    fn exhaustion_yields_none_for_all_groups() {
        let s = StreamSplitter::new(vec_source(vec![Ok(1)]), Box::new(|_: &i32| 1), 2, 8);
        let mut block = Vec::new();
        assert_eq!(s.pull_block(0, &mut block), None);
        assert_eq!(s.pull_block(1, &mut block), Some(Ok(())));
        assert_eq!(block, vec![1]);
        assert_eq!(s.pull_block(1, &mut block), None);
        assert_eq!(s.pull_block(0, &mut block), None);
    }

    #[test]
    fn block_buffers_are_recycled() {
        // After a warm-up block cycles through, steady-state pulls swap
        // buffers instead of allocating: the block handed back has the
        // capacity of a previously drained one.
        let s = StreamSplitter::new(
            vec_source((0..512).map(Ok).collect()),
            Box::new(|_: &i32| 0),
            1,
            256,
        );
        let mut block = Vec::new();
        assert_eq!(s.pull_block(0, &mut block), Some(Ok(())));
        let first_ptr_cap = block.capacity();
        assert_eq!(block.len(), 256);
        assert_eq!(s.pull_block(0, &mut block), Some(Ok(())));
        assert_eq!(block.len(), 256);
        assert!(block.capacity() >= first_ptr_cap.min(256));
        assert_eq!(s.pull_block(0, &mut block), None);
    }
}
