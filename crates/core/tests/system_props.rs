//! Deterministic property checks for the end-to-end system simulator:
//! pseudo-random small workloads (seeded `spindown_sim` RNG, identical
//! cases every run) through every scheduler must satisfy conservation,
//! bounding and determinism invariants.

use spindown_core::cost::CostFunction;
use spindown_core::experiment::{run_experiment, ExperimentSpec, SchedulerKind};
use spindown_core::model::{DataId, Request};
use spindown_core::placement::PlacementConfig;
use spindown_core::sched::MwisSolver;
use spindown_core::system::SystemConfig;
use spindown_sim::rng::SimRng;
use spindown_sim::time::{SimDuration, SimTime};

fn random_requests(rng: &mut SimRng) -> Vec<Request> {
    let n = 1 + rng.index(79);
    let mut t = SimTime::ZERO;
    (0..n)
        .map(|i| {
            t += SimDuration::from_millis(rng.next_below(20_000));
            Request {
                index: i as u32,
                at: t,
                data: DataId(rng.next_below(60)),
                size: 256 * 1024,
            }
        })
        .collect()
}

fn schedulers() -> Vec<SchedulerKind> {
    vec![
        SchedulerKind::Random,
        SchedulerKind::Static,
        SchedulerKind::Heuristic(CostFunction::default()),
        SchedulerKind::Heuristic(CostFunction::energy_only()),
        SchedulerKind::Wsc {
            cost: CostFunction::default(),
            interval: SimDuration::from_millis(100),
        },
        SchedulerKind::Mwis {
            solver: MwisSolver::GwMin,
            max_successors: 3,
        },
        SchedulerKind::Mwis {
            solver: MwisSolver::GwMinRefined { passes: 2 },
            max_successors: 3,
        },
    ]
}

fn spec(scheduler: SchedulerKind, replication: u32, seed: u64) -> ExperimentSpec {
    ExperimentSpec {
        placement: PlacementConfig {
            disks: 10,
            replication,
            zipf_z: 1.0,
        },
        scheduler,
        system: SystemConfig {
            disks: 10,
            ..SystemConfig::default()
        },
        seed,
    }
}

/// Conservation: every request completes; energy is positive and never
/// meaningfully exceeds the always-on ceiling plus transition lumps.
#[test]
fn conservation_and_bounds() {
    let mut rng = SimRng::seed_from_u64(0xc04e1);
    let kinds = schedulers();
    for case in 0..24 {
        let requests = random_requests(&mut rng);
        let scheduler = kinds[case % kinds.len()].clone();
        let rf = 1 + rng.next_below(4) as u32;
        let seed = rng.next_below(50);
        let m = run_experiment(&requests, &spec(scheduler, rf, seed));
        assert_eq!(m.requests, requests.len());
        assert_eq!(m.response.count(), requests.len() as u64);
        assert!(m.energy_j > 0.0);
        let ceiling = m.always_on_j
            + (m.spinups + m.spindowns) as f64 * 148.0
            + requests.len() as f64 * 0.1 * 12.8; // service at active power
        assert!(
            m.energy_j <= ceiling,
            "energy {} above ceiling {}",
            m.energy_j,
            ceiling
        );
        // Per-disk fractions always partition the horizon.
        for d in &m.per_disk {
            let sum: f64 = d.state_fractions.iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
        // Per-disk request counts add up.
        let assigned: u64 = m.per_disk.iter().map(|d| d.requests).sum();
        assert_eq!(assigned, requests.len() as u64);
    }
}

/// Determinism: identical spec, identical metrics.
#[test]
fn determinism() {
    let mut rng = SimRng::seed_from_u64(0xc04e2);
    let kinds = schedulers();
    for case in 0..24 {
        let requests = random_requests(&mut rng);
        let scheduler = kinds[case % kinds.len()].clone();
        let seed = rng.next_below(50);
        let a = run_experiment(&requests, &spec(scheduler.clone(), 3, seed));
        let b = run_experiment(&requests, &spec(scheduler, 3, seed));
        assert_eq!(a.energy_j, b.energy_j);
        assert_eq!(a.spinups, b.spinups);
        assert_eq!(a.spindowns, b.spindowns);
        assert_eq!(a.response_mean_s(), b.response_mean_s());
    }
}

/// Responses are causal and bounded: no response below the minimum
/// service time scale or above (spin-up + full-queue drain) bounds.
#[test]
fn response_times_are_sane() {
    let mut rng = SimRng::seed_from_u64(0xc04e3);
    let kinds = schedulers();
    for case in 0..24 {
        let requests = random_requests(&mut rng);
        let scheduler = kinds[case % kinds.len()].clone();
        let m = run_experiment(&requests, &spec(scheduler, 3, 1));
        // Max possible: every request on one disk behind a spin-down/up
        // bounce plus every service.
        let bound = 11.5 + 10.0 + requests.len() as f64 * 0.1 + 0.2;
        assert!(
            m.response.max() <= bound,
            "max response {} above bound {}",
            m.response.max(),
            bound
        );
    }
}
