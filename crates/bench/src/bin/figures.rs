//! Regenerates the paper's tables and figures as plain-text reports.
//!
//! ```text
//! figures [--quick] [--seed N] [--jobs N] [--out DIR] <fig2|...|fig17|ablations|all>
//! ```
//!
//! Reports are printed to stdout and written under `results/` (or the
//! directory given by `--out`).

use std::io::Write;
use std::path::PathBuf;

use spindown_bench::figures::{
    ablation_batch_interval, ablation_discipline, ablation_mwis, ablation_threshold, Harness,
};
use spindown_bench::workload::Scale;

fn main() {
    let mut quick = false;
    let mut seed = 42u64;
    let mut jobs = 1usize;
    let mut out_dir = PathBuf::from("results");
    let mut targets: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--seed needs an integer"));
            }
            "--jobs" | "-j" => {
                jobs = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&j| j >= 1)
                    .unwrap_or_else(|| die("--jobs needs a positive integer"));
            }
            "--out" => {
                out_dir = PathBuf::from(args.next().unwrap_or_else(|| die("--out needs a path")));
            }
            "--help" | "-h" => {
                print_help();
                return;
            }
            other if other.starts_with('-') => die(&format!("unknown flag {other}")),
            other => targets.push(other.to_string()),
        }
    }
    if targets.is_empty() {
        print_help();
        std::process::exit(2);
    }

    let scale = if quick {
        Scale::quick()
    } else {
        Scale::paper()
    };
    eprintln!(
        "# scale: {} requests, {} data items, {} disks (seed {seed}, jobs {jobs})",
        scale.requests, scale.data_items, scale.disks
    );
    let harness = Harness::with_jobs(scale, seed, jobs);

    let mut ids: Vec<String> = Vec::new();
    for t in targets {
        match t.as_str() {
            "all" => {
                ids.extend(Harness::all_ids().iter().map(|s| s.to_string()));
                ids.push("ablations".into());
            }
            other => ids.push(other.to_string()),
        }
    }

    std::fs::create_dir_all(&out_dir).unwrap_or_else(|e| die(&format!("mkdir: {e}")));
    for id in ids {
        let started = std::time::Instant::now();
        let report = match id.as_str() {
            "ablation-threshold" => ablation_threshold(&harness),
            "ablations" => format!(
                "{}\n{}\n{}\n{}",
                ablation_mwis(&harness),
                ablation_batch_interval(&harness),
                ablation_discipline(&harness),
                ablation_threshold(&harness)
            ),
            fig => harness
                .generate(fig)
                .unwrap_or_else(|| die(&format!("unknown figure id {fig:?} (try fig2..fig17)"))),
        };
        println!("{report}");
        println!("# ({id} generated in {:.1?})\n", started.elapsed());
        let path = out_dir.join(format!("{id}.txt"));
        let mut f =
            std::fs::File::create(&path).unwrap_or_else(|e| die(&format!("create {path:?}: {e}")));
        f.write_all(report.as_bytes())
            .unwrap_or_else(|e| die(&format!("write {path:?}: {e}")));
    }
}

fn print_help() {
    eprintln!(
        "usage: figures [--quick] [--seed N] [--jobs N] [--out DIR] <targets...>\n\
         targets: table1 fig2 fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig10 fig11\n\
         \t fig12 fig13 fig14 fig15 fig16 fig17 ablations all"
    );
}

fn die(msg: &str) -> ! {
    eprintln!("figures: {msg}");
    std::process::exit(2);
}
