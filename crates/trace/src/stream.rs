//! Pull-based record streaming: the constant-memory ingestion pipeline.
//!
//! A *record stream* is a fallible, time-ordered iterator of
//! [`TraceRecord`]s: `Iterator<Item = Result<TraceRecord, StreamError>>`.
//! Parsers ([`crate::spc::SpcStream`], [`crate::srt::SrtStream`]), lazy
//! transform adapters ([`MergeStream`], [`WindowStream`],
//! [`RescaleStream`]), the synthetic generators' streaming fronts and the
//! simulator's request source all speak this shape, so a multi-GB trace
//! file flows from disk to the event loop without ever materializing a
//! `Vec<TraceRecord>`.
//!
//! # Ordering invariant
//!
//! Unless documented otherwise, a record stream yields records in
//! nondecreasing `at` order. Adapters that *require* the invariant
//! ([`WindowStream`]'s early exit, one-pass
//! [`crate::stats::TraceStats::from_stream`], the simulator) either
//! document the assumption or enforce it — [`EnsureSorted`] turns an
//! out-of-order record into a typed [`StreamError::OutOfOrder`]. Raw
//! parser streams yield records in *file* order; SPC exports are sorted
//! by construction, SRT exports usually are, and the batch parsers
//! re-sort as part of materializing a [`Trace`].
//!
//! # Oracle relationship
//!
//! [`Trace`] (the in-memory backend) remains the documented test oracle:
//! `trace.stream()` yields exactly the materialized records, and every
//! lazy adapter here is pinned by differential tests to the corresponding
//! batch transform in [`crate::transform`].

use std::collections::BinaryHeap;

use spindown_sim::time::{SimDuration, SimTime};

use crate::record::{Trace, TraceRecord};

/// A failure while pulling records from a stream.
///
/// `std::io::Error` is neither `Clone` nor `PartialEq`, so I/O failures
/// carry the rendered message instead of the error value.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamError {
    /// The underlying reader failed.
    Io(String),
    /// A line failed to parse (1-based line number).
    Malformed {
        /// 1-based line number of the offending record.
        line: usize,
        /// Human-readable description of the failure.
        message: String,
    },
    /// A record violated the nondecreasing-time ordering invariant
    /// (0-based record index within the stream).
    OutOfOrder {
        /// 0-based index of the offending record.
        index: usize,
    },
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::Io(msg) => write!(f, "read error: {msg}"),
            StreamError::Malformed { line, message } => {
                write!(f, "line {line}: {message}")
            }
            StreamError::OutOfOrder { index } => {
                write!(f, "record {index} is out of time order (stream must be time-sorted)")
            }
        }
    }
}

impl std::error::Error for StreamError {}

/// How a parser stream reacts to malformed lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ParsePolicy {
    /// The first malformed line aborts the stream with an error.
    #[default]
    Strict,
    /// Malformed lines are skipped and counted; only I/O failures abort.
    Lenient,
}

/// A fallible, time-ordered iterator of [`TraceRecord`]s.
///
/// Blanket-implemented for every iterator with the right item type; use
/// it as a bound (`impl RecordStream`) rather than implementing it.
pub trait RecordStream: Iterator<Item = Result<TraceRecord, StreamError>> {}

impl<T: Iterator<Item = Result<TraceRecord, StreamError>>> RecordStream for T {}

/// Streams a materialized [`Trace`] — the trivial in-memory backend.
#[derive(Debug, Clone)]
pub struct TraceStream<'a> {
    iter: std::slice::Iter<'a, TraceRecord>,
}

impl<'a> TraceStream<'a> {
    pub(crate) fn new(trace: &'a Trace) -> Self {
        TraceStream {
            iter: trace.records().iter(),
        }
    }
}

impl Iterator for TraceStream<'_> {
    type Item = Result<TraceRecord, StreamError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.iter.next().map(|r| Ok(*r))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.iter.size_hint()
    }
}

/// Drains a stream into a materialized [`Trace`] (records are re-sorted
/// by time, like any [`Trace::from_records`] construction).
pub fn collect_trace<E>(
    stream: impl Iterator<Item = Result<TraceRecord, E>>,
) -> Result<Trace, E> {
    let records: Result<Vec<_>, E> = stream.collect();
    Ok(Trace::from_records(records?))
}

/// Access to the lenient-parse skip accounting from anywhere in an
/// adapter chain.
///
/// The incremental parsers ([`crate::spc::SpcStream`],
/// [`crate::srt::SrtStream`]) count the malformed lines they skip under
/// [`ParsePolicy::Lenient`]; every adapter in this module propagates that
/// count — wrappers delegate to their inner stream, [`MergeStream`] sums
/// across its inputs — so a CLI report can read the total off the top of
/// the chain instead of losing it at the first wrapper.
pub trait SkipCount {
    /// Malformed lines skipped so far by the underlying parser(s).
    fn skipped_lines(&self) -> usize;
}

impl<S: SkipCount + ?Sized> SkipCount for &mut S {
    fn skipped_lines(&self) -> usize {
        (**self).skipped_lines()
    }
}

/// Adapts a stream with a format-specific error type (e.g.
/// [`crate::spc::SpcParseError`]) into a [`RecordStream`].
///
/// Unlike a closure `map`, the wrapped stream stays reachable through
/// [`inner`](ErasedStream::inner) (and [`SkipCount`] delegates to it), so
/// erasing a lenient parser's error type no longer discards its
/// skipped-line counter.
#[derive(Debug, Clone)]
pub struct ErasedStream<S> {
    inner: S,
}

impl<S> ErasedStream<S> {
    /// Wraps `inner`.
    pub fn new(inner: S) -> Self {
        ErasedStream { inner }
    }

    /// The wrapped stream (e.g. to read a parser's skip counter back).
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S, E> Iterator for ErasedStream<S>
where
    S: Iterator<Item = Result<TraceRecord, E>>,
    E: Into<StreamError>,
{
    type Item = Result<TraceRecord, StreamError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.inner.next().map(|r| r.map_err(Into::into))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl<S: SkipCount> SkipCount for ErasedStream<S> {
    fn skipped_lines(&self) -> usize {
        self.inner.skipped_lines()
    }
}

/// Adapts a stream with a format-specific error type (e.g.
/// [`crate::spc::SpcParseError`]) into a [`RecordStream`]. Equivalent to
/// [`ErasedStream::new`]; kept as the conversational free function.
pub fn erase<E: Into<StreamError>>(
    stream: impl Iterator<Item = Result<TraceRecord, E>>,
) -> impl RecordStream {
    ErasedStream::new(stream)
}

/// Lifts an infallible record iterator (e.g. a synthetic generator
/// stream) into a [`RecordStream`].
pub fn infallible(stream: impl Iterator<Item = TraceRecord>) -> impl RecordStream {
    stream.map(Ok)
}

/// Enforces the nondecreasing-time invariant: the first out-of-order
/// record turns into [`StreamError::OutOfOrder`] and the stream fuses.
#[derive(Debug, Clone)]
pub struct EnsureSorted<S> {
    inner: S,
    prev: Option<SimTime>,
    index: usize,
    done: bool,
}

impl<S> EnsureSorted<S> {
    /// Wraps `inner` with an ordering check.
    pub fn new(inner: S) -> Self {
        EnsureSorted {
            inner,
            prev: None,
            index: 0,
            done: false,
        }
    }

    /// The wrapped stream (e.g. to read a parser's skip counter back).
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: SkipCount> SkipCount for EnsureSorted<S> {
    fn skipped_lines(&self) -> usize {
        self.inner.skipped_lines()
    }
}

impl<S: RecordStream> Iterator for EnsureSorted<S> {
    type Item = Result<TraceRecord, StreamError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        match self.inner.next() {
            None => {
                self.done = true;
                None
            }
            Some(Err(e)) => {
                self.done = true;
                Some(Err(e))
            }
            Some(Ok(r)) => {
                if self.prev.map(|p| r.at < p).unwrap_or(false) {
                    self.done = true;
                    return Some(Err(StreamError::OutOfOrder { index: self.index }));
                }
                self.prev = Some(r.at);
                self.index += 1;
                Some(Ok(r))
            }
        }
    }
}

/// Lazy k-way merge of time-sorted streams, keyed by `(time, stream
/// index)` with FIFO order within a stream — the order a stable sort of
/// the concatenated inputs would produce, which is what the batch
/// [`crate::transform::merge`] oracle does.
///
/// The first error from any input aborts the merge (strict semantics).
#[derive(Debug)]
pub struct MergeStream<S> {
    streams: Vec<S>,
    heads: Vec<Option<TraceRecord>>,
    heap: BinaryHeap<std::cmp::Reverse<(SimTime, usize)>>,
    pending_err: Option<StreamError>,
    primed: bool,
    done: bool,
}

impl<S: RecordStream> MergeStream<S> {
    /// Merges `streams`, each of which must be time-sorted.
    pub fn new(streams: Vec<S>) -> Self {
        let n = streams.len();
        MergeStream {
            streams,
            heads: vec![None; n],
            heap: BinaryHeap::with_capacity(n),
            pending_err: None,
            primed: false,
            done: false,
        }
    }

    /// The merged input streams (e.g. to read parser skip counters back).
    pub fn streams(&self) -> &[S] {
        &self.streams
    }

    /// Pulls the next record of stream `i` into its head slot.
    fn pull(&mut self, i: usize) -> Result<(), StreamError> {
        match self.streams[i].next() {
            Some(Ok(r)) => {
                self.heap.push(std::cmp::Reverse((r.at, i)));
                self.heads[i] = Some(r);
                Ok(())
            }
            Some(Err(e)) => Err(e),
            None => Ok(()),
        }
    }
}

impl<S: SkipCount> SkipCount for MergeStream<S> {
    fn skipped_lines(&self) -> usize {
        // Summed, not dropped: each input parser counts its own lines.
        self.streams.iter().map(SkipCount::skipped_lines).sum()
    }
}

impl<S: RecordStream> Iterator for MergeStream<S> {
    type Item = Result<TraceRecord, StreamError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        if let Some(e) = self.pending_err.take() {
            self.done = true;
            return Some(Err(e));
        }
        if !self.primed {
            self.primed = true;
            for i in 0..self.streams.len() {
                if let Err(e) = self.pull(i) {
                    self.done = true;
                    return Some(Err(e));
                }
            }
        }
        let Some(std::cmp::Reverse((_, i))) = self.heap.pop() else {
            self.done = true;
            return None;
        };
        let rec = self.heads[i].take().expect("head tracked by heap entry");
        // Refill the slot now but hold any error until after this record
        // — already-merged records are not dropped on a later failure.
        if let Err(e) = self.pull(i) {
            self.pending_err = Some(e);
        }
        Some(Ok(rec))
    }
}

/// Lazy `[from, to)` time window over a sorted stream, rebased so `from`
/// becomes time zero. Short-circuits (stops pulling) at the first record
/// at or past `to` — on a time-sorted stream nothing later can qualify.
#[derive(Debug, Clone)]
pub struct WindowStream<S> {
    inner: S,
    from: SimTime,
    to: SimTime,
    done: bool,
}

impl<S> WindowStream<S> {
    /// Restricts `inner` to `[from, to)`.
    pub fn new(inner: S, from: SimTime, to: SimTime) -> Self {
        WindowStream {
            inner,
            from,
            to,
            done: false,
        }
    }

    /// The wrapped stream (e.g. to read a parser's skip counter back).
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: SkipCount> SkipCount for WindowStream<S> {
    fn skipped_lines(&self) -> usize {
        self.inner.skipped_lines()
    }
}

impl<S: RecordStream> Iterator for WindowStream<S> {
    type Item = Result<TraceRecord, StreamError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        loop {
            match self.inner.next() {
                None => {
                    self.done = true;
                    return None;
                }
                Some(Err(e)) => {
                    self.done = true;
                    return Some(Err(e));
                }
                Some(Ok(r)) => {
                    if r.at < self.from {
                        continue;
                    }
                    if r.at >= self.to {
                        self.done = true;
                        return None;
                    }
                    return Some(Ok(TraceRecord {
                        at: SimTime::ZERO + r.at.saturating_since(self.from),
                        ..r
                    }));
                }
            }
        }
    }
}

/// Lazily stretches or compresses inter-arrival times by `factor`,
/// anchored at the first record's time (matching the batch
/// [`crate::transform::rescale_time`] oracle, whose anchor is
/// `trace.start()` — the first record of a sorted trace).
#[derive(Debug, Clone)]
pub struct RescaleStream<S> {
    inner: S,
    factor: f64,
    anchor: Option<SimTime>,
}

impl<S> RescaleStream<S> {
    /// Rescales `inner` by `factor`.
    ///
    /// # Panics
    ///
    /// Panics unless `factor` is finite and positive.
    pub fn new(inner: S, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "rescale factor must be positive"
        );
        RescaleStream {
            inner,
            factor,
            anchor: None,
        }
    }

    /// The wrapped stream (e.g. to read a parser's skip counter back).
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: SkipCount> SkipCount for RescaleStream<S> {
    fn skipped_lines(&self) -> usize {
        self.inner.skipped_lines()
    }
}

impl<S: RecordStream> Iterator for RescaleStream<S> {
    type Item = Result<TraceRecord, StreamError>;

    fn next(&mut self) -> Option<Self::Item> {
        let r = match self.inner.next()? {
            Ok(r) => r,
            Err(e) => return Some(Err(e)),
        };
        let anchor = *self.anchor.get_or_insert(r.at);
        let scaled = r.at.saturating_since(anchor).as_secs_f64() * self.factor;
        Some(Ok(TraceRecord {
            at: anchor + SimDuration::from_secs_f64(scaled),
            ..r
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{DataId, OpKind};

    fn rec(at_s: f64, id: u64) -> TraceRecord {
        TraceRecord {
            at: SimTime::from_secs_f64(at_s),
            data: DataId(id),
            size: 4096,
            op: OpKind::Read,
        }
    }

    #[test]
    fn trace_stream_yields_materialized_records() {
        let t = Trace::from_records(vec![rec(1.0, 0), rec(0.5, 1)]);
        let streamed: Vec<_> = t.stream().map(|r| r.unwrap()).collect();
        assert_eq!(streamed, t.records());
    }

    #[test]
    fn collect_trace_round_trips() {
        let t = Trace::from_records(vec![rec(0.5, 1), rec(1.0, 0)]);
        let back = collect_trace(t.stream()).unwrap();
        assert_eq!(back.records(), t.records());
    }

    #[test]
    fn merge_interleaves_by_time_with_stream_order_ties() {
        let a = Trace::from_records(vec![rec(0.0, 0), rec(2.0, 0)]);
        let b = Trace::from_records(vec![rec(1.0, 1), rec(2.0, 1)]);
        let merged: Vec<_> = MergeStream::new(vec![a.stream(), b.stream()])
            .map(|r| r.unwrap())
            .collect();
        let times: Vec<f64> = merged.iter().map(|r| r.at.as_secs_f64()).collect();
        assert_eq!(times, vec![0.0, 1.0, 2.0, 2.0]);
        // Tie at t=2: the earlier stream wins, like a stable sort of a ++ b.
        assert_eq!(merged[2].data, DataId(0));
        assert_eq!(merged[3].data, DataId(1));
    }

    #[test]
    fn window_short_circuits_and_rebases() {
        // An infinite stream proves the early exit: only records < `to`
        // are pulled.
        let endless = (0..).map(|i| Ok(rec(i as f64, i)));
        let windowed: Vec<_> = WindowStream::new(
            endless,
            SimTime::from_secs(2),
            SimTime::from_secs(5),
        )
        .map(|r| r.unwrap())
        .collect();
        assert_eq!(windowed.len(), 3);
        assert_eq!(windowed[0].at, SimTime::ZERO);
        assert_eq!(windowed[2].at, SimTime::from_secs(2));
    }

    #[test]
    fn rescale_anchors_at_first_record() {
        let t = Trace::from_records(vec![rec(10.0, 0), rec(12.0, 1)]);
        let scaled: Vec<_> = RescaleStream::new(t.stream(), 2.0)
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(scaled[0].at, SimTime::from_secs_f64(10.0));
        assert_eq!(scaled[1].at, SimTime::from_secs_f64(14.0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rescale_rejects_bad_factor() {
        let t = Trace::default();
        let _ = RescaleStream::new(t.stream(), 0.0);
    }

    #[test]
    fn ensure_sorted_flags_out_of_order() {
        let raw = vec![Ok(rec(1.0, 0)), Ok(rec(0.5, 1))];
        let mut s = EnsureSorted::new(raw.into_iter());
        assert!(s.next().unwrap().is_ok());
        assert_eq!(
            s.next().unwrap().unwrap_err(),
            StreamError::OutOfOrder { index: 1 }
        );
        assert!(s.next().is_none(), "stream fuses after the error");
    }

    #[test]
    fn merge_aborts_on_first_error() {
        let bad = vec![
            Ok(rec(0.0, 0)),
            Err(StreamError::Malformed {
                line: 2,
                message: "boom".into(),
            }),
        ];
        let good = vec![Ok(rec(5.0, 1))];
        let mut m = MergeStream::new(vec![bad.into_iter(), good.into_iter()]);
        let first = m.next().unwrap().unwrap();
        assert_eq!(first.data, DataId(0));
        assert!(m.next().unwrap().is_err());
        assert!(m.next().is_none());
    }

    #[test]
    fn infallible_and_erase_compose() {
        let recs = vec![rec(0.0, 0), rec(1.0, 1)];
        let n = infallible(recs.into_iter()).count();
        assert_eq!(n, 2);
    }

    #[test]
    fn skip_count_survives_window_rescale_chain() {
        use crate::spc::SpcStream;
        // Two malformed lines among three good records; the full adapter
        // stack (erase → sort check → rescale → window) must still expose
        // the parser's count.
        let text = "0,1,4096,r,0.5\ngarbage\n0,2,4096,r,1.5\n1,2,three\n0,3,4096,r,2.5\n";
        let parser = ErasedStream::new(SpcStream::new(text.as_bytes(), ParsePolicy::Lenient));
        let mut chain = WindowStream::new(
            RescaleStream::new(EnsureSorted::new(parser), 2.0),
            SimTime::ZERO,
            SimTime::from_secs(100),
        );
        let mut yielded = 0;
        for r in chain.by_ref() {
            r.unwrap();
            yielded += 1;
        }
        assert_eq!(yielded, 3);
        assert_eq!(chain.skipped_lines(), 2);
        assert_eq!(chain.inner().inner().inner().inner().skipped(), 2);
    }

    #[test]
    fn merge_sums_skip_counts_across_inputs() {
        use crate::spc::SpcStream;
        let a = "0,1,4096,r,0.5\nbad line\n0,2,4096,r,2.0\n"; // 1 skipped
        let b = "junk\nmore junk\n0,3,4096,r,1.0\n"; // 2 skipped
        let mut m = MergeStream::new(vec![
            ErasedStream::new(SpcStream::new(a.as_bytes(), ParsePolicy::Lenient)),
            ErasedStream::new(SpcStream::new(b.as_bytes(), ParsePolicy::Lenient)),
        ]);
        let times: Vec<f64> = m
            .by_ref()
            .map(|r| r.unwrap().at.as_secs_f64())
            .collect();
        assert_eq!(times, vec![0.5, 1.0, 2.0]);
        assert_eq!(m.skipped_lines(), 3, "summed across inputs, not dropped");
        assert_eq!(m.streams()[0].skipped_lines(), 1);
        assert_eq!(m.streams()[1].skipped_lines(), 2);
    }

    #[test]
    fn window_early_exit_still_reports_skips_seen_so_far() {
        use crate::spc::SpcStream;
        // The window stops pulling at t >= 2: the trailing malformed line
        // is never reached, so only the one skip actually encountered is
        // reported — the count reflects lines the parser consumed.
        let text = "bad\n0,1,4096,r,0.5\n0,2,4096,r,5.0\nnever reached\n";
        let parser = ErasedStream::new(SpcStream::new(text.as_bytes(), ParsePolicy::Lenient));
        let mut w = WindowStream::new(parser, SimTime::ZERO, SimTime::from_secs(2));
        let mut yielded = 0;
        for r in w.by_ref() {
            r.unwrap();
            yielded += 1;
        }
        assert_eq!(yielded, 1);
        assert_eq!(w.skipped_lines(), 1);
    }
}
