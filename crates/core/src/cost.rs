//! The scheduler's cost model: Eq. 5 (marginal energy of using a disk),
//! Eq. 7 (load as the performance proxy), and Eq. 6 (their composition).

use spindown_disk::power::PowerParams;
use spindown_disk::state::DiskPowerState;
use spindown_sim::time::SimTime;

/// What the cost functions need to know about one disk at decision time.
#[derive(Debug, Clone, Copy)]
pub struct DiskStatus {
    /// The disk's power state.
    pub state: DiskPowerState,
    /// When the disk last received a request (`T_last` in Eq. 5);
    /// `None` if it never has.
    pub last_request_at: Option<SimTime>,
    /// Requests currently on the disk (queued + in service) — `P(d_k)`.
    pub load: usize,
}

/// Eq. 5 — the marginal energy cost `E(d_k)` of scheduling onto `d_k` now:
///
/// * **active / spin-up** → `0`: the request neither wakes the disk nor
///   extends its idle time;
/// * **standby / spin-down** → `E_up + E_down + TB·P_I`: the disk must be
///   woken and will later pay a full breakeven + spin-down;
/// * **idle** → `(T_now − T_last)·P_I`: the idle clock restarts, so the
///   idle time already accumulated since the previous request is extended.
pub fn energy_cost_j(status: &DiskStatus, now: SimTime, params: &PowerParams) -> f64 {
    match status.state {
        DiskPowerState::Active | DiskPowerState::SpinningUp => 0.0,
        DiskPowerState::Standby | DiskPowerState::SpinningDown => {
            params.transition_j() + params.breakeven_secs() * params.idle_w
        }
        DiskPowerState::Idle => {
            let since = match status.last_request_at {
                Some(t) => now.saturating_since(t).as_secs_f64(),
                // An idle disk that never serviced anything: its idle clock
                // has run since the start of the run.
                None => now.as_secs_f64(),
            };
            since * params.idle_w
        }
    }
}

/// Eq. 7 — the performance cost `P(d_k)`: the number of requests already
/// on the disk.
pub fn performance_cost(status: &DiskStatus) -> f64 {
    status.load as f64
}

/// The Eq. 6 composite cost `C(d_k) = E(d_k)·α/β + P(d_k)·(1−α)`.
///
/// * `alpha` trades energy (1.0) against response time (0.0);
/// * `beta` converts joules into the unit of the load cost.
///
/// The paper settles on `α = 0.2`, `β = 100` (§4.3, App. A.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostFunction {
    /// Energy/performance trade-off knob `α ∈ [0, 1]`.
    pub alpha: f64,
    /// Unit-conversion factor `β > 0`.
    pub beta: f64,
}

impl Default for CostFunction {
    /// The paper's chosen operating point: `α = 0.2`, `β = 100`.
    fn default() -> Self {
        CostFunction {
            alpha: 0.2,
            beta: 100.0,
        }
    }
}

impl CostFunction {
    /// A cost function that only considers energy (`α = 1`).
    pub fn energy_only() -> Self {
        CostFunction {
            alpha: 1.0,
            beta: 1.0,
        }
    }

    /// A cost function that only considers response time (`α = 0`).
    pub fn performance_only() -> Self {
        CostFunction {
            alpha: 0.0,
            beta: 1.0,
        }
    }

    /// Validates `α ∈ [0,1]`, `β > 0`.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.alpha) || !self.alpha.is_finite() {
            return Err(format!("alpha {} outside [0, 1]", self.alpha));
        }
        if self.beta <= 0.0 || !self.beta.is_finite() {
            return Err(format!("beta {} must be positive", self.beta));
        }
        Ok(())
    }

    /// Eq. 6: the composite cost of dispatching to a disk with `status`.
    pub fn cost(&self, status: &DiskStatus, now: SimTime, params: &PowerParams) -> f64 {
        energy_cost_j(status, now, params) * self.alpha / self.beta
            + performance_cost(status) * (1.0 - self.alpha)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn status(state: DiskPowerState, last_s: Option<u64>, load: usize) -> DiskStatus {
        DiskStatus {
            state,
            last_request_at: last_s.map(SimTime::from_secs),
            load,
        }
    }

    #[test]
    fn eq5_active_and_spinup_are_free() {
        let p = PowerParams::barracuda();
        let now = SimTime::from_secs(100);
        for s in [DiskPowerState::Active, DiskPowerState::SpinningUp] {
            assert_eq!(energy_cost_j(&status(s, Some(1), 5), now, &p), 0.0);
        }
    }

    #[test]
    fn eq5_standby_costs_full_cycle() {
        let p = PowerParams::barracuda();
        let now = SimTime::from_secs(100);
        let expect = p.transition_j() + p.breakeven_secs() * p.idle_w;
        for s in [DiskPowerState::Standby, DiskPowerState::SpinningDown] {
            assert!((energy_cost_j(&status(s, None, 0), now, &p) - expect).abs() < 1e-9);
        }
    }

    #[test]
    fn eq5_idle_costs_elapsed_idle_time() {
        let p = PowerParams::barracuda();
        let now = SimTime::from_secs(100);
        let e = energy_cost_j(&status(DiskPowerState::Idle, Some(95), 0), now, &p);
        assert!((e - 5.0 * p.idle_w).abs() < 1e-9);
        // Never-used idle disk: clock since run start.
        let e = energy_cost_j(&status(DiskPowerState::Idle, None, 0), now, &p);
        assert!((e - 100.0 * p.idle_w).abs() < 1e-9);
    }

    #[test]
    fn paper_preference_spinup_over_idle() {
        // §3.3: "a scheduler actually prefers a disk which is in the
        // process of being spun-up rather than a disk in idle mode".
        let p = PowerParams::barracuda();
        let now = SimTime::from_secs(50);
        let spinning_up = energy_cost_j(&status(DiskPowerState::SpinningUp, Some(49), 1), now, &p);
        let idle = energy_cost_j(&status(DiskPowerState::Idle, Some(40), 0), now, &p);
        assert!(spinning_up < idle);
    }

    #[test]
    fn eq7_counts_load() {
        assert_eq!(
            performance_cost(&status(DiskPowerState::Idle, None, 7)),
            7.0
        );
    }

    #[test]
    fn eq6_alpha_extremes() {
        let p = PowerParams::barracuda();
        let now = SimTime::from_secs(100);
        // Busy active disk vs empty standby disk.
        let busy_active = status(DiskPowerState::Active, Some(99), 10);
        let empty_standby = status(DiskPowerState::Standby, None, 0);
        // α=1: energy only — active wins.
        let e = CostFunction::energy_only();
        assert!(e.cost(&busy_active, now, &p) < e.cost(&empty_standby, now, &p));
        // α=0: performance only — standby wins.
        let perf = CostFunction::performance_only();
        assert!(perf.cost(&empty_standby, now, &p) < perf.cost(&busy_active, now, &p));
    }

    #[test]
    fn eq6_beta_scales_energy_term() {
        let p = PowerParams::barracuda();
        let now = SimTime::from_secs(100);
        let s = status(DiskPowerState::Standby, None, 0);
        let small_beta = CostFunction {
            alpha: 0.5,
            beta: 1.0,
        }
        .cost(&s, now, &p);
        let big_beta = CostFunction {
            alpha: 0.5,
            beta: 1000.0,
        }
        .cost(&s, now, &p);
        assert!(small_beta > big_beta);
    }

    #[test]
    fn default_matches_paper() {
        let c = CostFunction::default();
        assert_eq!(c.alpha, 0.2);
        assert_eq!(c.beta, 100.0);
        c.validate().unwrap();
    }

    #[test]
    fn validate_rejects_bad_params() {
        assert!(CostFunction {
            alpha: -0.1,
            beta: 1.0
        }
        .validate()
        .is_err());
        assert!(CostFunction {
            alpha: 1.1,
            beta: 1.0
        }
        .validate()
        .is_err());
        assert!(CostFunction {
            alpha: 0.5,
            beta: 0.0
        }
        .validate()
        .is_err());
        assert!(CostFunction {
            alpha: 0.5,
            beta: f64::NAN
        }
        .validate()
        .is_err());
    }
}
